//! Offline stand-in for crates.io `rayon`.
//!
//! Implements the narrow parallel-iterator surface the CACE workspace uses
//! (`slice.par_iter().map(f).collect()`, plus `current_num_threads`) on top
//! of `std::thread::scope`, so the batch-recognition fan-out gets real
//! multi-core execution without a registry fetch. Work is split into
//! contiguous chunks, one per worker, and chunk results are concatenated in
//! input order — so collection order (and therefore output) is identical to
//! the sequential iterator, exactly as rayon guarantees.
//!
//! When network access is available, delete the `vendor/rayon` path
//! dependency from the root `Cargo.toml`; the same source code builds
//! against the real crate unchanged.

use std::num::NonZeroUsize;
use std::thread;

pub mod iter;

/// Rayon-compatible prelude: bring the parallel-iterator traits into scope.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

/// Number of worker threads a parallel operation will fan out to.
///
/// Mirrors `rayon::current_num_threads`: the `RAYON_NUM_THREADS`
/// environment variable if set and positive, otherwise the machine's
/// available parallelism (1 if that cannot be determined).
pub fn current_num_threads() -> usize {
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}
