//! The parallel-iterator subset: `par_iter().map(f).collect()`.
//!
//! A [`ParallelIterator`] here is a description of an indexable workload:
//! it knows its length and how to produce the item at a given index. The
//! only driver is [`ParallelIterator::collect`], which splits the index
//! range into one contiguous chunk per worker thread, runs the chunks under
//! `std::thread::scope`, and concatenates the per-chunk outputs in input
//! order.

use std::thread;

/// Conversion from `&Self` into a parallel iterator (rayon's
/// `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed item type.
    type Item: 'data;
    /// The parallel iterator produced by [`par_iter`](Self::par_iter).
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrow `self` as a parallel iterator over `&Item`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParSliceIter<'data, T>;

    fn par_iter(&'data self) -> ParSliceIter<'data, T> {
        ParSliceIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParSliceIter<'data, T>;

    fn par_iter(&'data self) -> ParSliceIter<'data, T> {
        ParSliceIter { slice: self }
    }
}

/// Collecting the items of a parallel iterator into a container.
///
/// Implemented for `Vec<T>` and — as in rayon — for `Result<Vec<T>, E>`,
/// which short-circuits to the first error *in input order*.
pub trait FromParallelIterator<T>: Sized {
    /// Build the container from items delivered in input order.
    fn from_ordered_items(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_items(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_items(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// An indexable parallel workload.
pub trait ParallelIterator: Sized + Sync {
    /// Item produced for each index.
    type Item: Send;

    /// Number of items in the workload.
    fn len(&self) -> usize;

    /// Whether the workload is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce the item at `index` (called from worker threads).
    fn item_at(&self, index: usize) -> Self::Item;

    /// Map each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Execute the workload across worker threads and collect the results
    /// in input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        let n = self.len();
        let workers = crate::current_num_threads().clamp(1, n.max(1));
        if workers <= 1 || n <= 1 {
            let items = (0..n).map(|i| self.item_at(i)).collect();
            return C::from_ordered_items(items);
        }
        let chunk = n.div_ceil(workers);
        let this = &self;
        let mut chunks: Vec<Vec<Self::Item>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|start| {
                    let end = (start + chunk).min(n);
                    scope.spawn(move || (start..end).map(|i| this.item_at(i)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(chunk) => chunk,
                    // Propagate the worker's original panic payload, as
                    // real rayon does.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut items = Vec::with_capacity(n);
        for c in &mut chunks {
            items.append(c);
        }
        C::from_ordered_items(items)
    }
}

/// Conversion from `&mut Self` into a parallel iterator over mutable
/// references (rayon's `IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'data> {
    /// The mutably borrowed item type.
    type Item: 'data;
    /// The parallel iterator produced by [`par_iter_mut`](Self::par_iter_mut).
    type Iter;

    /// Borrow `self` as a parallel iterator over `&mut Item`.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = ParSliceIterMut<'data, T>;

    fn par_iter_mut(&'data mut self) -> ParSliceIterMut<'data, T> {
        ParSliceIterMut { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = ParSliceIterMut<'data, T>;

    fn par_iter_mut(&'data mut self) -> ParSliceIterMut<'data, T> {
        ParSliceIterMut { slice: self }
    }
}

/// Parallel iterator over `&mut [T]` (rayon's `rayon::slice::IterMut`).
///
/// The driver hands each worker a disjoint contiguous chunk via
/// `chunks_mut`, so mutable access never aliases — no `unsafe` needed.
#[derive(Debug)]
pub struct ParSliceIterMut<'data, T> {
    slice: &'data mut [T],
}

impl<'data, T: Send> ParSliceIterMut<'data, T> {
    /// Map each mutable reference through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> MapMut<'data, T, F>
    where
        R: Send,
        F: Fn(&'data mut T) -> R + Sync,
    {
        MapMut {
            slice: self.slice,
            f,
        }
    }

    /// Run `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'data mut T) + Sync,
    {
        let _: Vec<()> = self.map(f).collect();
    }
}

/// Mapped mutable parallel iterator (rayon's map over `par_iter_mut`).
#[derive(Debug)]
pub struct MapMut<'data, T, F> {
    slice: &'data mut [T],
    f: F,
}

impl<'data, T, R, F> MapMut<'data, T, F>
where
    T: Send,
    R: Send,
    F: Fn(&'data mut T) -> R + Sync,
{
    /// Execute the workload across worker threads and collect the results
    /// in input order.
    ///
    /// `IntoIterator::into_iter` (not `iter_mut`) on the `&'data mut [T]`
    /// chunks is load-bearing: it preserves the full `'data` lifetime the
    /// mapper `F` was declared with, where `iter_mut` would reborrow for a
    /// shorter local lifetime.
    #[allow(clippy::into_iter_on_ref)]
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        let n = self.slice.len();
        let workers = crate::current_num_threads().clamp(1, n.max(1));
        if workers <= 1 || n <= 1 {
            let items: Vec<R> = self.slice.into_iter().map(&self.f).collect();
            return C::from_ordered_items(items);
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut chunks: Vec<Vec<R>> = thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks_mut(chunk)
                .map(|ch| scope.spawn(move || ch.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(chunk) => chunk,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut items = Vec::with_capacity(n);
        for c in &mut chunks {
            items.append(c);
        }
        C::from_ordered_items(items)
    }
}

/// Parallel iterator over `&[T]` (rayon's `rayon::slice::Iter`).
#[derive(Debug)]
pub struct ParSliceIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for ParSliceIter<'data, T> {
    type Item = &'data T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn item_at(&self, index: usize) -> &'data T {
        &self.slice[index]
    }
}

/// Mapped parallel iterator (rayon's `rayon::iter::Map`).
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn item_at(&self, index: usize) -> R {
        (self.f)(self.base.item_at(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn result_collect_short_circuits_in_order() {
        let xs: Vec<u64> = (0..100).collect();
        let r: Result<Vec<u64>, u64> = xs
            .par_iter()
            .map(|&x| if x >= 40 { Err(x) } else { Ok(x) })
            .collect();
        assert_eq!(r, Err(40));
    }

    #[test]
    fn par_iter_mut_mutates_in_place_and_collects_in_order() {
        let mut xs: Vec<u64> = (0..500).collect();
        let seen: Vec<u64> = xs
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .collect();
        assert_eq!(seen, (1..=500).collect::<Vec<_>>());
        assert_eq!(xs, (1..=500).collect::<Vec<_>>());
        xs.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(xs[0], 2);
        assert_eq!(xs[499], 1000);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let xs: Vec<u64> = Vec::new();
        let ys: Vec<u64> = xs.par_iter().map(|&x| x).collect();
        assert!(ys.is_empty());
        let one = [7u64];
        let ys: Vec<u64> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(ys, vec![8]);
    }
}
