//! Offline stand-in for crates.io `serde` — with a *working* data model.
//!
//! Earlier revisions of this shim exported `#[derive(Serialize,
//! Deserialize)]` as empty markers; since the persistence layer landed
//! (`CaceEngine::save` / `CaceEngine::load` in `cace-core`), the derives are
//! real. The shim now provides:
//!
//! - the [`Serialize`] / [`Deserialize`] traits over a minimal [`Value`]
//!   data model (null, bool, integers, floats, strings, sequences, and
//!   ordered string-keyed maps),
//! - derive macros (re-exported from the sibling `serde_derive` shim) that
//!   expand to real impls for the struct/enum shapes this workspace uses,
//! - a JSON-style text backend in [`json`] whose `f64` round-trip is
//!   **bit-exact**: finite floats use Rust's shortest round-trip formatting,
//!   and the non-JSON tokens `inf` / `-inf` / `NaN` cover the specials
//!   (NaN payload bits are not preserved — every NaN reads back as the
//!   canonical quiet NaN).
//!
//! The surface intentionally deviates from real serde's
//! visitor/`Serializer` architecture: the workspace's persistence needs are
//! one self-describing format, so `serialize(&self) -> Value` +
//! `deserialize(&Value) -> Result<Self, Error>` is enough and keeps the
//! offline shim reviewable. When network access is available, swap in the
//! real `serde`/`serde_derive`/`serde_json` as described in
//! vendor/README.md; the `#[derive(...)]` sites build unchanged, and only
//! the thin call sites of [`json::to_string`] / [`json::from_str`] (all in
//! `cace-core`'s snapshot module) need the rename to their `serde_json`
//! equivalents.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

mod impls;
pub mod json;

/// Serialization/deserialization failure (malformed text, a type mismatch,
/// a missing field, or an unknown enum variant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// The self-describing data model every [`Serialize`] impl targets.
///
/// Maps preserve insertion order (struct fields serialize in declaration
/// order), which keeps the text encoding deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence (`Option::None`, unit structs).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed (negative) integer.
    Int(i64),
    /// A double-precision float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// The boolean payload.
    ///
    /// # Errors
    /// Type mismatch.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }

    /// The value as a `u64`.
    ///
    /// # Errors
    /// Type mismatch or a negative integer.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::UInt(v) => Ok(*v),
            Value::Int(v) if *v >= 0 => Ok(*v as u64),
            other => Err(Error::msg(format!(
                "expected unsigned integer, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as an `i64`.
    ///
    /// # Errors
    /// Type mismatch or overflow.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::UInt(v) => {
                i64::try_from(*v).map_err(|_| Error::msg(format!("integer {v} overflows i64")))
            }
            other => Err(Error::msg(format!(
                "expected integer, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as an `f64` (integers convert losslessly when small).
    ///
    /// # Errors
    /// Type mismatch.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::UInt(v) => Ok(*v as f64),
            Value::Int(v) => Ok(*v as f64),
            other => Err(Error::msg(format!(
                "expected float, found {}",
                other.kind()
            ))),
        }
    }

    /// The string payload.
    ///
    /// # Errors
    /// Type mismatch.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }

    /// The sequence payload.
    ///
    /// # Errors
    /// Type mismatch.
    pub fn as_seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::msg(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up `name` in a map value (derive support for named fields).
    ///
    /// # Errors
    /// Non-map value or missing field.
    pub fn expect_field(&self, name: &str, what: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}` for {what}"))),
            other => Err(Error::msg(format!(
                "expected map for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// A sequence of exactly `n` elements (derive support for tuples).
    ///
    /// # Errors
    /// Non-sequence value or wrong length.
    pub fn expect_elements(&self, n: usize, what: &str) -> Result<&[Value], Error> {
        let items = self
            .as_seq()
            .map_err(|e| Error::msg(format!("{what}: {e}")))?;
        if items.len() != n {
            return Err(Error::msg(format!(
                "expected {n} elements for {what}, found {}",
                items.len()
            )));
        }
        Ok(items)
    }

    /// Splits an externally-tagged enum value into `(variant, payload)`:
    /// a bare string is a unit variant, a single-entry map is a data
    /// variant (derive support for enums).
    ///
    /// # Errors
    /// Any other shape.
    pub fn expect_variant(&self, what: &str) -> Result<(&str, Option<&Value>), Error> {
        match self {
            Value::Str(s) => Ok((s.as_str(), None)),
            Value::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(Error::msg(format!(
                "expected enum variant for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// Asserts a unit variant carried no payload (derive support).
    ///
    /// # Errors
    /// A payload was present.
    pub fn expect_unit_payload(payload: Option<&Value>, what: &str) -> Result<(), Error> {
        match payload {
            None => Ok(()),
            Some(_) => Err(Error::msg(format!("unexpected payload for {what}"))),
        }
    }

    /// Asserts a data variant carried a payload (derive support).
    ///
    /// # Errors
    /// No payload was present.
    pub fn expect_some_payload<'a>(
        payload: Option<&'a Value>,
        what: &str,
    ) -> Result<&'a Value, Error> {
        payload.ok_or_else(|| Error::msg(format!("missing payload for {what}")))
    }
}

/// Conversion of a value into the [`Value`] data model.
///
/// Derivable via `#[derive(Serialize)]` for non-generic structs and enums.
pub trait Serialize {
    /// Converts `self` into the data model.
    fn serialize(&self) -> Value;
}

/// Reconstruction of a value from the [`Value`] data model.
///
/// Derivable via `#[derive(Deserialize)]` for non-generic structs and enums.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the data model.
    ///
    /// # Errors
    /// Type mismatches, missing fields, unknown variants.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}
