//! Offline stand-in for crates.io `serde`.
//!
//! The CACE workspace marks its domain types `#[derive(Serialize,
//! Deserialize)]` so downstream consumers can pick a wire format, but no
//! crate in the workspace serializes anything yet — the derives are pure
//! markers. This shim therefore exports the two derive macros with empty
//! expansions, which is exactly enough for `use serde::{Deserialize,
//! Serialize};` + `#[derive(...)]` to compile in an offline container.
//!
//! When network access (or a vendored registry) is available, delete the
//! `vendor/serde` path dependency from the root `Cargo.toml` and the same
//! source code builds against the real crate unchanged.

use proc_macro::TokenStream;

/// Derive-macro stand-in for `serde::Serialize`. Expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derive-macro stand-in for `serde::Deserialize`. Expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
