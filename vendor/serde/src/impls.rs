//! [`Serialize`] / [`Deserialize`] implementations for the std types the
//! workspace's derived structures are built from.

use crate::{Deserialize, Error, Serialize, Value};

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_bool()
    }
}

macro_rules! unsigned_impl {
    ($($ty:ty),+) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64()?;
                <$ty>::try_from(raw).map_err(|_| {
                    Error::msg(format!(
                        "integer {raw} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )+};
}
unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($ty:ty),+) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64()?;
                <$ty>::try_from(raw).map_err(|_| {
                    Error::msg(format!(
                        "integer {raw} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )+};
}
signed_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_f64()
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        // Exact for every value that originated as an f32 (f32→f64 widening
        // is lossless, and the narrowing cast inverts it).
        Ok(value.as_f64()? as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned)
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value.as_str()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg(format!("expected single char, found {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_seq()?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value.as_seq()?;
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected array of {N} elements, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::msg("array length changed during deserialization"))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value.expect_elements(2, "2-tuple")?;
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value.expect_elements(3, "3-tuple")?;
        Ok((
            A::deserialize(&items[0])?,
            B::deserialize(&items[1])?,
            C::deserialize(&items[2])?,
        ))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
