//! Compact JSON-style text backend for the [`Value`] data model.
//!
//! The encoding is ordinary JSON except for the float specials: finite
//! floats are written with Rust's shortest round-trip formatting (so every
//! finite `f64` re-parses to the *same bits*), and the non-standard bare
//! tokens `inf`, `-inf`, and `NaN` encode the IEEE specials that JSON
//! proper cannot represent. Integers are written as plain decimal and kept
//! distinct from floats on re-parse (a float always carries a `.`, an
//! exponent, or a special token).

use crate::{Deserialize, Error, Serialize, Value};

/// Serializes any [`Serialize`] value to the compact text encoding.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    value_to_string(&value.serialize())
}

/// Parses the text encoding into any [`Deserialize`] type.
///
/// # Errors
/// Malformed text or a data-model mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::deserialize(&value_from_str(text)?)
}

/// Renders a [`Value`] in the compact text encoding.
pub fn value_to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::Float(v) => write_float(*v, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_float(v: f64, out: &mut String) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v == f64::INFINITY {
        out.push_str("inf");
    } else if v == f64::NEG_INFINITY {
        out.push_str("-inf");
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting and always
        // marks the value as a float (`1.0`, `2.5e-308`), so the reader can
        // distinguish it from an integer.
        out.push_str(&format!("{v:?}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses the compact text encoding into a [`Value`].
///
/// # Errors
/// Malformed text (unexpected token, unterminated string, trailing junk).
pub fn value_from_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser { text, pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.text.len() {
        return Err(parser.error("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn bytes(&self) -> &'a [u8] {
        self.text.as_bytes()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.text[self.pos..].starts_with(word) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid token"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid token"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid token"))
                }
            }
            Some(b'N') => {
                if self.eat_keyword("NaN") {
                    Ok(Value::Float(f64::NAN))
                } else {
                    Err(self.error("invalid token"))
                }
            }
            Some(b'i') => {
                if self.eat_keyword("inf") {
                    Ok(Value::Float(f64::INFINITY))
                } else {
                    Err(self.error("invalid token"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-') if self.text[self.pos..].starts_with("-inf") => {
                self.pos += 4;
                Ok(Value::Float(f64::NEG_INFINITY))
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let token = &self.text[start..self.pos];
        if token.contains(['.', 'e', 'E']) {
            token
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid float literal"))
        } else if token.starts_with('-') {
            token
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.error("invalid integer literal"))
        } else {
            token
                .parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.error("invalid integer literal"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        let mut chunk_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    out.push_str(&self.text[chunk_start..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.text[chunk_start..self.pos]);
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.error("lone leading surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid trailing surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    chunk_start = self.pos;
                }
                Some(_) => {
                    // Raw UTF-8 content; advance a full char to keep slice
                    // boundaries valid.
                    let c = self.text[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("invalid utf-8 position"))?;
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .text
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated unicode escape"))?;
        let unit =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::UInt(0),
            Value::UInt(u64::MAX),
            Value::Int(-42),
            Value::Int(i64::MIN),
            Value::Str(String::new()),
            Value::Str("hi \"there\"\n\\ π €".to_string()),
        ] {
            let text = value_to_string(&v);
            assert_eq!(value_from_str(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for bits in [
            0u64,
            (-0.0f64).to_bits(),
            1.0f64.to_bits(),
            (1.0f64 / 3.0).to_bits(),
            f64::MIN_POSITIVE.to_bits(),
            5e-324f64.to_bits(), // subnormal
            f64::MAX.to_bits(),
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            (-123.456e-78f64).to_bits(),
        ] {
            let v = f64::from_bits(bits);
            let text = value_to_string(&Value::Float(v));
            let back = match value_from_str(&text).unwrap() {
                Value::Float(f) => f,
                other => panic!("float {text} parsed as {other:?}"),
            };
            assert_eq!(back.to_bits(), bits, "{text}");
        }
        // NaN survives as NaN (payload bits are not promised).
        let text = value_to_string(&Value::Float(f64::NAN));
        assert_eq!(text, "NaN");
        assert!(matches!(value_from_str(&text).unwrap(), Value::Float(f) if f.is_nan()));
    }

    #[test]
    fn collections_round_trip() {
        let v = Value::Map(vec![
            ("empty".to_string(), Value::Seq(Vec::new())),
            (
                "rows".to_string(),
                Value::Seq(vec![
                    Value::Seq(vec![Value::Float(1.5), Value::Float(-2.25)]),
                    Value::Seq(vec![Value::Float(f64::NEG_INFINITY)]),
                ]),
            ),
            ("nested".to_string(), Value::Map(vec![])),
        ]);
        let text = value_to_string(&v);
        assert_eq!(value_from_str(&text).unwrap(), v);
    }

    #[test]
    fn typed_round_trip_via_impls() {
        let rows: Vec<Vec<f64>> = vec![vec![0.1, 0.9], vec![f64::NEG_INFINITY, 0.0]];
        let text = to_string(&rows);
        let back: Vec<Vec<f64>> = from_str(&text).unwrap();
        assert_eq!(rows.len(), back.len());
        for (a, b) in rows.iter().flatten().zip(back.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        let arr: [Vec<usize>; 2] = [vec![1, 2, 3], vec![]];
        let back: [Vec<usize>; 2] = from_str(&to_string(&arr)).unwrap();
        assert_eq!(arr, back);

        let opt: Option<String> = Some("x".into());
        assert_eq!(from_str::<Option<String>>(&to_string(&opt)).unwrap(), opt);
        assert_eq!(from_str::<Option<String>>("null").unwrap(), None::<String>);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(value_from_str("").is_err());
        assert!(value_from_str("[1,").is_err());
        assert!(value_from_str("{\"a\" 1}").is_err());
        assert!(value_from_str("\"unterminated").is_err());
        assert!(value_from_str("12 34").is_err());
        assert!(value_from_str("infx").is_err());
    }
}
