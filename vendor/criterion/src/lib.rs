//! Offline stand-in for crates.io `criterion`.
//!
//! Implements the harness surface the CACE benches use —
//! `Criterion::default().sample_size(n)`, `bench_function`, `Bencher::iter`,
//! `criterion_group!` / `criterion_main!`, and `black_box` — with a plain
//! `std::time::Instant` measurement loop. Statistical machinery (outlier
//! classification, regression vs. saved baselines, HTML reports) is out of
//! scope; each benchmark reports min / median / mean / max wall time.
//!
//! Harness flags (criterion-compatible where it matters):
//! * `--test` — run each benchmark body exactly once and skip measurement
//!   (what `cargo test --benches` passes).
//! * `--quick` — 2 samples, no warm-up: the CI smoke mode.
//! * `<filter>` / `--bench <name>` etc. — positional filters select
//!   benchmark ids by substring; other flags are accepted and ignored.
//!
//! When network access is available, delete the `vendor/criterion` path
//! dependency from the root `Cargo.toml`; the bench sources build against
//! the real crate unchanged.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: configuration plus CLI-derived run mode.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    quick: bool,
    test_mode: bool,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            quick: false,
            test_mode: false,
            filters: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Fold harness CLI arguments into the configuration (called by
    /// `criterion_main!`).
    pub fn configure_from_args(&mut self) {
        let mut explicit_sample_size = None;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => self.quick = true,
                "--test" => self.test_mode = true,
                "--bench" => {}
                "--sample-size" => {
                    explicit_sample_size = args.next().and_then(|v| v.parse::<usize>().ok());
                }
                other if other.starts_with("--") => {
                    // Unrecognized flag (real criterion has many). If the
                    // next token doesn't look like a flag, assume it is
                    // this flag's value and consume it too — otherwise it
                    // would be misread as a benchmark filter and silently
                    // deselect everything.
                    if args.peek().is_some_and(|next| !next.starts_with("--")) {
                        let _ = args.next();
                    }
                }
                filter => self.filters.push(filter.to_string()),
            }
        }
        if self.quick {
            self.sample_size = 2;
        }
        if let Some(n) = explicit_sample_size {
            self.sample_size = n.max(2);
        }
    }

    /// Run one benchmark if it matches the CLI filter.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.filters.is_empty() && !self.filters.iter().any(|p| id.contains(p.as_str())) {
            return self;
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            quick: self.quick,
            test_mode: self.test_mode,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok");
        } else {
            report(id, &mut bencher.samples);
        }
        self
    }
}

/// Timing context handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    quick: bool,
    test_mode: bool,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`, recording `sample_size` samples of its mean
    /// per-iteration wall time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and per-sample iteration count: aim for samples of at
        // least ~2 ms so Instant resolution is negligible, without burning
        // minutes on slow routines.
        let mut iters_per_sample = 1usize;
        if !self.quick {
            let t0 = Instant::now();
            black_box(routine());
            let once = t0.elapsed().max(Duration::from_nanos(1));
            iters_per_sample = (Duration::from_millis(2).as_nanos() / once.as_nanos())
                .clamp(1, 1_000_000) as usize;
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t0.elapsed().as_secs_f64();
            self.samples.push(elapsed / iters_per_sample as f64);
        }
    }
}

fn report(id: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<48} time: [{} {} {}] (mean {}, {} samples)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max),
        fmt_time(mean),
        samples.len(),
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declare a benchmark group. Both the `name/config/targets` form the CACE
/// benches use and the positional short form are supported.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            criterion.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate the harness `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            sample_size: 5,
            quick: true,
            test_mode: false,
            samples: Vec::new(),
        };
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn fmt_time_picks_sane_units() {
        assert!(fmt_time(3.2e-9).ends_with("ns"));
        assert!(fmt_time(3.2e-6).ends_with("µs"));
        assert!(fmt_time(3.2e-3).ends_with("ms"));
        assert!(fmt_time(3.2).ends_with('s'));
    }
}
