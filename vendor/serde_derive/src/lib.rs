//! Offline stand-in for crates.io `serde_derive`.
//!
//! Expands `#[derive(Serialize, Deserialize)]` into real implementations of
//! the `serde` shim's traits, which serialize through the shim's
//! [`Value`](../serde/enum.Value.html) data model. The expansion is produced
//! by a small token-level parser (no `syn`/`quote` available offline) that
//! understands the shapes this workspace actually uses:
//!
//! - structs with named fields,
//! - tuple structs (newtype structs serialize transparently),
//! - unit structs,
//! - enums with unit, tuple, and struct variants.
//!
//! Generic type parameters, lifetimes on the deriving type, and the
//! `#[serde(...)]` field attributes are **not** supported; a derive on such
//! a type fails loudly at macro-expansion time rather than silently
//! miscompiling. When the real `serde`/`serde_derive` crates are swapped
//! back in (see vendor/README.md), the same derive invocations expand to the
//! genuine impls unchanged.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

/// The shape of a parsed `struct`/`enum` body.
enum Data {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` — field count.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { ... }` — variants in declaration order.
    Enum(Vec<(String, Shape)>),
}

/// The shape of one enum variant.
enum Shape {
    /// `Variant`
    Unit,
    /// `Variant(A, B)` — field count.
    Tuple(usize),
    /// `Variant { a: A }` — field names.
    Named(Vec<String>),
}

/// Derive macro for `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, data) = parse_item(input);
    expand_serialize(&name, &data)
        .parse()
        .expect("serde shim derive: generated Serialize impl must parse")
}

/// Derive macro for `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, data) = parse_item(input);
    expand_deserialize(&name, &data)
        .parse()
        .expect("serde shim derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn is_punct(tok: &TokenTree, ch: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Skips `#[...]` attributes (including expanded doc comments).
fn skip_attributes(toks: &mut Tokens) {
    while toks.peek().is_some_and(|t| is_punct(t, '#')) {
        toks.next();
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("serde shim derive: malformed attribute, got {other:?}"),
        }
    }
}

/// Skips `pub` / `pub(crate)` / `pub(in ...)` visibility qualifiers.
fn skip_visibility(toks: &mut Tokens) {
    if toks
        .peek()
        .is_some_and(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "pub"))
    {
        toks.next();
        if toks.peek().is_some_and(
            |t| matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis),
        ) {
            toks.next();
        }
    }
}

/// Consumes tokens until a top-level `,` (angle-bracket aware) or the end of
/// the stream. Returns whether any non-comma token was consumed.
fn skip_to_comma(toks: &mut Tokens) -> bool {
    let mut depth = 0i64;
    let mut arrow_dash = false;
    let mut saw_any = false;
    while let Some(tok) = toks.peek() {
        let mut next_arrow_dash = false;
        if let TokenTree::Punct(p) = tok {
            let c = p.as_char();
            if c == ',' && depth == 0 {
                toks.next();
                return saw_any;
            }
            if c == '<' {
                depth += 1;
            }
            // `->` must not close an angle bracket.
            if c == '>' && !arrow_dash {
                depth -= 1;
            }
            next_arrow_dash = c == '-' && p.spacing() == Spacing::Joint;
        }
        arrow_dash = next_arrow_dash;
        saw_any = true;
        toks.next();
    }
    saw_any
}

/// Counts the comma-separated fields of a tuple struct/variant body.
fn tuple_arity(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut count = 0usize;
    while toks.peek().is_some() {
        if skip_to_comma(&mut toks) {
            count += 1;
        }
    }
    count
}

/// Parses the `{ name: Type, ... }` body of a struct or struct variant.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut toks = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut toks);
        skip_visibility(&mut toks);
        match toks.next() {
            None => break,
            Some(TokenTree::Ident(name)) => {
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!(
                        "serde shim derive: expected `:` after field `{name}`, got {other:?}"
                    ),
                }
                fields.push(name.to_string());
                skip_to_comma(&mut toks);
            }
            Some(other) => panic!("serde shim derive: expected field name, got {other}"),
        }
    }
    fields
}

/// Parses the `{ Variant, Variant(T), Variant { f: T } }` body of an enum.
fn parse_variants(stream: TokenStream) -> Vec<(String, Shape)> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut toks);
        match toks.next() {
            None => break,
            Some(TokenTree::Ident(name)) => {
                let shape = match toks.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = tuple_arity(g.stream());
                        toks.next();
                        Shape::Tuple(arity)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        toks.next();
                        Shape::Named(fields)
                    }
                    _ => Shape::Unit,
                };
                // Skip an optional `= discriminant` up to the separator.
                skip_to_comma(&mut toks);
                variants.push((name.to_string(), shape));
            }
            Some(other) => panic!("serde shim derive: expected variant name, got {other}"),
        }
    }
    variants
}

/// Parses a full `struct`/`enum` item into its name and shape.
fn parse_item(input: TokenStream) -> (String, Data) {
    let mut toks = input.into_iter().peekable();
    skip_attributes(&mut toks);
    skip_visibility(&mut toks);

    let kind = match toks.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "struct" || i.to_string() == "enum" => {
            i.to_string()
        }
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    if toks.peek().is_some_and(|t| is_punct(t, '<')) {
        panic!("serde shim derive: generic type `{name}` is not supported by the offline shim");
    }

    let data = if kind == "enum" {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        }
    } else {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(tuple_arity(g.stream()))
            }
            Some(tok) if is_punct(&tok, ';') => Data::UnitStruct,
            other => panic!("serde shim derive: expected struct body, got {other:?}"),
        }
    };
    (name, data)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const SER: &str = "::serde::Serialize::serialize";
const DE: &str = "::serde::Deserialize::deserialize";

fn string_from(text: &str) -> String {
    format!("::std::string::String::from(\"{text}\")")
}

fn expand_serialize(name: &str, data: &Data) -> String {
    let body = match data {
        Data::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({}, {SER}(&self.{f}))", string_from(f)))
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Data::TupleStruct(0) | Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::TupleStruct(1) => format!("{SER}(&self.0)"),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n).map(|i| format!("{SER}(&self.{i})")).collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Data::Enum(variants) => {
            assert!(
                !variants.is_empty(),
                "serde shim derive: cannot derive for empty enum `{name}`"
            );
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => {
                        format!("Self::{v} => ::serde::Value::Str({}),", string_from(v))
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            format!("{SER}(__f0)")
                        } else {
                            let items: Vec<String> =
                                binds.iter().map(|b| format!("{SER}({b})")).collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "Self::{v}({}) => ::serde::Value::Map(::std::vec![({}, {payload})]),",
                            binds.join(", "),
                            string_from(v)
                        )
                    }
                    Shape::Named(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| format!("({}, {SER}({f}))", string_from(f)))
                            .collect();
                        format!(
                            "Self::{v} {{ {} }} => ::serde::Value::Map(::std::vec![({}, \
                             ::serde::Value::Map(::std::vec![{}]))]),",
                            fields.join(", "),
                            string_from(v),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn serialize(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn expand_deserialize(name: &str, data: &Data) -> String {
    let body = match data {
        Data::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: {DE}(__value.expect_field(\"{f}\", \"{name}\")?)?"))
                .collect();
            format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(", "))
        }
        Data::TupleStruct(0) | Data::UnitStruct => {
            "{ let _ = __value; ::std::result::Result::Ok(Self) }".to_string()
        }
        Data::TupleStruct(1) => format!("::std::result::Result::Ok(Self({DE}(__value)?))"),
        Data::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n).map(|i| format!("{DE}(&__el[{i}])?")).collect();
            format!(
                "{{ let __el = __value.expect_elements({n}, \"{name}\")?; \
                 ::std::result::Result::Ok(Self({})) }}",
                inits.join(", ")
            )
        }
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    Shape::Unit => format!(
                        "\"{v}\" => {{ \
                         ::serde::Value::expect_unit_payload(__payload, \"{name}::{v}\")?; \
                         ::std::result::Result::Ok(Self::{v}) }}"
                    ),
                    Shape::Tuple(1) => format!(
                        "\"{v}\" => {{ let __p = \
                         ::serde::Value::expect_some_payload(__payload, \"{name}::{v}\")?; \
                         ::std::result::Result::Ok(Self::{v}({DE}(__p)?)) }}"
                    ),
                    Shape::Tuple(n) => {
                        let inits: Vec<String> =
                            (0..*n).map(|i| format!("{DE}(&__el[{i}])?")).collect();
                        format!(
                            "\"{v}\" => {{ let __p = \
                             ::serde::Value::expect_some_payload(__payload, \"{name}::{v}\")?; \
                             let __el = __p.expect_elements({n}, \"{name}::{v}\")?; \
                             ::std::result::Result::Ok(Self::{v}({})) }}",
                            inits.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("{f}: {DE}(__p.expect_field(\"{f}\", \"{name}::{v}\")?)?")
                            })
                            .collect();
                        format!(
                            "\"{v}\" => {{ let __p = \
                             ::serde::Value::expect_some_payload(__payload, \"{name}::{v}\")?; \
                             ::std::result::Result::Ok(Self::{v} {{ {} }}) }}",
                            inits.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "{{ let (__variant, __payload) = __value.expect_variant(\"{name}\")?; \
                 match __variant {{ {} __other => ::std::result::Result::Err(\
                 ::serde::Error::msg(::std::format!(\
                 \"unknown variant `{{}}` for {name}\", __other))) }} }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn deserialize(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}
