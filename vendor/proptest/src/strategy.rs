//! The [`Strategy`] trait and the built-in strategies the suite uses:
//! integer/float ranges, tuples, `Just`, `prop_map`, `prop_flat_map`.

use std::ops::Range;

use crate::rng::TestRng;

/// A recipe for generating values of [`Strategy::Value`].
///
/// The real crate builds shrinkable value trees; this shim samples directly
/// (no shrinking), which keeps the trait object-safe to implement and the
/// call sites source-compatible.
pub trait Strategy {
    /// Type of value the strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Derive a second strategy from each produced value and sample it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy (`s.prop_map(f)`).
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// Dependent strategy (`s.prop_flat_map(f)`).
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty integer range strategy {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty float range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty float range strategy");
        self.start + (rng.next_unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.5f64..4.0).sample(&mut rng);
            assert!((-2.5..4.0).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = (0usize..5).prop_flat_map(|n| (Just(n), 0usize..10).prop_map(|(n, x)| n * 100 + x));
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v / 100 < 5 && v % 100 < 10);
        }
    }
}
