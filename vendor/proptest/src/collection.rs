//! Collection strategies: `prop::collection::vec`.

use std::ops::Range;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Length specification for [`vec()`]: an exact length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {}..{}", r.start, r.end);
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.next_below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = vec(0usize..4, 2..9);
        for _ in 0..300 {
            let v = s.sample(&mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
        let exact = vec(0usize..4, 5);
        assert_eq!(exact.sample(&mut rng).len(), 5);
    }
}
