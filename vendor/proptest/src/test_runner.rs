//! Case runner and configuration for the `proptest!` macro.

use crate::rng::{seed_for, TestRng};

/// Marker returned by `prop_assume!` when a sampled case does not satisfy
/// the test's preconditions; the runner discards the case and draws again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reject;

/// Runner configuration (`ProptestConfig` under the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl Config {
    /// Configuration running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Type-inference helper used by the `proptest!` expansion: forces the test
/// body closure to `Result<(), Reject>` so `prop_assume!`'s early return
/// resolves without annotations at the call site.
pub fn run_case<F: FnOnce() -> Result<(), Reject>>(case: F) -> Result<(), Reject> {
    case()
}

/// Drive one property: draw cases from `case` until `config.cases` have
/// been accepted, discarding rejected draws (with a runaway guard mirroring
/// the real crate's `max_global_rejects`).
pub fn run_cases<F>(name: &str, config: &Config, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), Reject>,
{
    let mut rng = TestRng::seed_from_u64(seed_for(name));
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let max_rejects = 1024 + config.cases * 16;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(Reject) => {
                rejected += 1;
                assert!(
                    rejected < max_rejects,
                    "property `{name}`: too many rejected cases \
                     ({rejected} rejects for {accepted} accepted)"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0;
        run_cases("counting", &Config::with_cases(17), |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    fn rejected_cases_are_redrawn() {
        let mut draws = 0;
        run_cases("rejecting", &Config::with_cases(5), |rng| {
            draws += 1;
            if rng.next_u64() % 2 == 0 {
                Err(Reject)
            } else {
                Ok(())
            }
        });
        assert!(draws >= 5);
    }

    #[test]
    #[should_panic(expected = "too many rejected cases")]
    fn runaway_rejection_panics() {
        run_cases("hopeless", &Config::with_cases(1), |_| Err(Reject));
    }
}
