//! The `proptest!` family of macros.

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` that samples the strategies and runs the body for
/// the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                $crate::test_runner::run_cases(stringify!($name), &__config, |__rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strategy), __rng);
                    )+
                    $crate::test_runner::run_case(move || {
                        $body
                        ::std::result::Result::Ok(())
                    })
                });
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )+
        }
    };
}

/// Assert a boolean condition inside a property; supports an optional
/// custom format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Discard the current case unless a precondition holds; the runner draws
/// a replacement case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}
