//! Offline stand-in for crates.io `proptest`.
//!
//! Implements the subset of proptest the CACE test suite uses — the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, integer
//! and float range strategies, tuple strategies, `prop::collection::vec`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros — over a deterministic splitmix64 generator seeded
//! from the test name, so runs are reproducible in CI.
//!
//! Differences from the real crate (acceptable for an offline container):
//! no shrinking on failure, no persisted failure regressions, and
//! assertion failures panic immediately instead of being routed through a
//! `TestCaseError`. When network access is available, delete the
//! `vendor/proptest` path dependency from the root `Cargo.toml`; the same
//! test code builds against the real crate unchanged.

pub mod collection;
pub mod rng;
pub mod strategy;
pub mod test_runner;

mod macros;

/// Alias module so `prop::collection::vec(..)` resolves as it does under
/// the real crate's prelude.
pub mod prop {
    pub use crate::collection;
}

/// The subset of `proptest::prelude` the workspace uses.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}
