//! Deterministic pseudo-random source for strategy sampling.

/// Splitmix64 generator. Small state, full 64-bit output, and good enough
/// statistical quality for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator (0 is remapped so the stream is never degenerate).
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// FNV-1a hash of a test name, used to derive a stable per-test seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::seed_from_u64(42);
        let mut b = TestRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_draws_stay_in_range() {
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.next_unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
