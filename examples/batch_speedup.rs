//! Sequential vs. parallel batch recognition on the fig 9 (CASAS-style)
//! workload: 12 test sessions decoded by one trained C2 engine.
//!
//! ```text
//! cargo run --release --example batch_speedup
//! ```
//!
//! Prints per-mode wall time and the resulting speedup. On a single-core
//! host the two are expected to tie (the rayon fan-out degenerates to the
//! sequential loop); with N cores the batch path approaches min(N, 12)×.

use std::time::Instant;

use cace::behavior::session::train_test_split;
use cace::behavior::{generate_casas_dataset, CasasConfig};
use cace::core::{CaceConfig, CaceEngine};

fn main() {
    let cfg = CasasConfig {
        pairs: 8,
        sessions_per_pair: 2,
        ticks: 250,
        ..CasasConfig::default()
    };
    let sessions = generate_casas_dataset(&cfg, 9001);
    let (train, mut test) = train_test_split(sessions, 0.8);
    // Fix the eval batch at 12 sessions (recycle if the split is short).
    while test.len() < 12 {
        let recycled = test[test.len() % 3].clone();
        test.push(recycled);
    }
    test.truncate(12);

    println!(
        "training C2 engine on {} CASAS-style sessions ...",
        train.len()
    );
    let engine = CaceEngine::train(&train, &CaceConfig::default()).expect("training succeeds");

    // Warm-up decode so neither mode pays first-touch costs.
    engine.recognize(&test[0]).expect("warm-up succeeds");

    let t0 = Instant::now();
    let sequential: Vec<_> = test
        .iter()
        .map(|s| engine.recognize(s).expect("recognition succeeds"))
        .collect();
    let sequential_secs = t0.elapsed().as_secs_f64();

    let report = engine
        .recognize_batch_report(&test)
        .expect("batch succeeds");

    for (i, (seq, par)) in sequential.iter().zip(&report.recognitions).enumerate() {
        assert_eq!(
            seq.macros, par.macros,
            "session {i}: batch must match sequential"
        );
    }

    println!("sessions:            {}", test.len());
    println!("workers:             {}", report.workers);
    println!("sequential loop:     {sequential_secs:.3} s");
    println!("parallel batch:      {:.3} s", report.wall_seconds);
    println!(
        "speedup:             {:.2}x",
        sequential_secs / report.wall_seconds.max(1e-12)
    );
    println!(
        "batch throughput:    {:.2} sessions/s",
        report.sessions_per_second()
    );
    println!("predictions:         identical (checked bit-for-bit)");
}
