//! Morning routines across five homes: the paper's primary deployment
//! scenario, including the modality ablations of Fig 8(a).
//!
//! Run with: `cargo run --release --example morning_routines`

use cace::behavior::session::train_test_split;
use cace::behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
use cace::core::{CaceConfig, CaceEngine};
use cace::model::StateMask;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grammar = cace_grammar();
    println!(
        "{:<8} {:>10} {:>18} {:>20}",
        "home", "overall", "without gestural", "without sublocation"
    );

    for home in 1..=5u32 {
        let sessions = generate_cace_dataset(
            &grammar,
            1,
            4,
            &SessionConfig::standard().with_ticks(200).with_home(home),
            1000 + u64::from(home),
        );
        let (train, test) = train_test_split(sessions, 0.75);

        let mut row = Vec::new();
        for mask in [
            StateMask::FULL,
            StateMask::NO_GESTURAL,
            StateMask::NO_LOCATION,
        ] {
            let engine = CaceEngine::train(&train, &CaceConfig::default().with_mask(mask))?;
            let mut correct = 0.0;
            let mut total = 0.0;
            for session in &test {
                let rec = engine.recognize(session)?;
                correct += rec.accuracy(session) * session.len() as f64 * 2.0;
                total += session.len() as f64 * 2.0;
            }
            row.push(100.0 * correct / total);
        }
        println!(
            "home-{:<3} {:>9.1}% {:>17.1}% {:>19.1}%",
            home, row[0], row[1], row[2]
        );
    }
    println!(
        "\nThe full configuration should dominate, with the gestural ablation\n\
         costing a few points and the sub-location ablation costing the most\n\
         (the shape of the paper's Fig 8a)."
    );
    Ok(())
}
