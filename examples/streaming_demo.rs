//! Streaming recognition demo: per-tick latency, the lag/accuracy
//! trade-off, and multi-home throughput through the `StreamRouter`.
//!
//! ```text
//! cargo run --release --example streaming_demo
//! ```
//!
//! Three experiments against one trained C2 engine:
//!
//! 1. **Single stream** — one home's session pushed tick by tick with a
//!    10-tick lag; reports mean/p95/max per-tick latency and checks the
//!    emitted-decision schedule.
//! 2. **Lag sweep** — accuracy at lags 0/2/5/10/20/∞ vs. the batch
//!    decode (∞ is asserted bit-identical to `recognize`).
//! 3. **Router throughput** — N concurrent homes streaming in lockstep
//!    rounds over all cores; reports aggregate ticks/second.

use std::time::Instant;

use cace::behavior::session::train_test_split;
use cace::behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
use cace::core::{stream_session, CaceConfig, CaceEngine, Lag, StreamRouter};

fn main() {
    let grammar = cace_grammar();
    let sessions = generate_cace_dataset(
        &grammar,
        1,
        10,
        &SessionConfig::standard().with_ticks(250),
        20260727,
    );
    let (train, test) = train_test_split(sessions, 0.8);
    println!("training C2 engine on {} sessions ...", train.len());
    let engine = CaceEngine::train(&train, &CaceConfig::default()).expect("training succeeds");
    let session = &test[0];
    let batch = engine.recognize(session).expect("batch recognition");

    // ---- 1. single-stream per-tick latency ----
    let lag = 10;
    let mut stream = engine.stream(Lag::Fixed(lag));
    let mut latencies_us = Vec::with_capacity(session.len());
    let mut decisions = 0usize;
    for tick in &session.ticks {
        let t0 = Instant::now();
        let emitted = stream.push(&tick.observed).expect("push succeeds");
        latencies_us.push(t0.elapsed().as_secs_f64() * 1e6);
        decisions += usize::from(emitted.is_some());
    }
    let streamed = stream.finish().expect("finish succeeds");
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = latencies_us.iter().sum::<f64>() / latencies_us.len() as f64;
    let p95 = latencies_us[(latencies_us.len() * 95) / 100];
    let max = latencies_us.last().copied().unwrap_or(0.0);
    println!("\n-- single stream (lag {lag}) --");
    println!("ticks pushed:        {}", session.len());
    println!("decisions emitted:   {decisions} (+{lag} resolved at finish)");
    println!("per-tick latency:    mean {mean:.1} us, p95 {p95:.1} us, max {max:.1} us");
    println!(
        "stream accuracy:     {:.1}% (batch {:.1}%)",
        100.0 * streamed.accuracy(session),
        100.0 * batch.accuracy(session)
    );

    // ---- 2. lag sweep: accuracy as decisions are allowed to ripen ----
    println!("\n-- lag sweep (accuracy vs batch) --");
    println!("{:<12} {:>10} {:>12}", "lag", "acc", "delta");
    for lag in [
        Lag::Fixed(0),
        Lag::Fixed(2),
        Lag::Fixed(5),
        Lag::Fixed(10),
        Lag::Fixed(20),
        Lag::Unbounded,
    ] {
        let (_, rec) = stream_session(&engine, session, lag).expect("stream succeeds");
        let acc = rec.accuracy(session);
        let delta = acc - batch.accuracy(session);
        let label = match lag {
            Lag::Fixed(l) => format!("{l}"),
            Lag::Unbounded => "unbounded".to_string(),
        };
        println!("{label:<12} {:>9.1}% {delta:>+11.3}", 100.0 * acc);
        if lag.is_unbounded() {
            assert_eq!(rec.macros, batch.macros, "unbounded must match batch");
        }
    }
    println!("(unbounded lag checked bit-identical to CaceEngine::recognize)");

    // ---- 3. multi-home throughput through the router ----
    let homes = 16usize;
    let per_home: Vec<_> = (0..homes)
        .map(|h| {
            let cfg = SessionConfig::standard()
                .with_ticks(120)
                .with_home(h as u32 + 50);
            generate_cace_dataset(&grammar, 1, 1, &cfg, 777 + h as u64)
                .pop()
                .expect("one session")
        })
        .collect();
    let mut router = StreamRouter::with_homes(&engine, homes, Lag::Fixed(lag));
    let rounds = per_home.iter().map(|s| s.len()).max().unwrap_or(0);
    let mut total_ticks = 0usize;
    let t0 = Instant::now();
    for t in 0..rounds {
        let inputs: Vec<_> = per_home
            .iter()
            .map(|s| s.ticks.get(t).map(|tick| &tick.observed))
            .collect();
        total_ticks += inputs.iter().flatten().count();
        router.push_round(&inputs).expect("round succeeds");
    }
    assert!(
        router.quarantined().is_empty(),
        "no home should fault on clean data"
    );
    let finished = router.finish();
    let wall = t0.elapsed().as_secs_f64();
    let mean_acc: f64 = finished
        .iter()
        .zip(&per_home)
        .map(|((_, rec), session)| {
            rec.as_ref()
                .expect("healthy home finishes")
                .accuracy(session)
        })
        .sum::<f64>()
        / homes as f64;
    println!("\n-- router throughput ({homes} concurrent homes) --");
    println!("rounds:              {rounds}");
    println!("total ticks routed:  {total_ticks}");
    println!("wall:                {wall:.3} s");
    println!(
        "throughput:          {:.0} ticks/s",
        total_ticks as f64 / wall.max(1e-12)
    );
    println!("mean accuracy:       {:.1}%", 100.0 * mean_acc);
}
