//! Failure injection: degrade the sensors (IMU dropouts, unreliable PIR,
//! noisy beacons) and watch the coupled model hold up better than the
//! uncoupled one — the robustness motivation of the paper's §II.
//!
//! Run with: `cargo run --release --example failure_injection`

use cace::behavior::session::train_test_split;
use cace::behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
use cace::core::{CaceConfig, CaceEngine, Strategy};
use cace::sensing::NoiseConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grammar = cace_grammar();

    println!(
        "{:<22} {:>14} {:>14}",
        "sensor condition", "C2 (coupled)", "NCR (solo)"
    );
    for (name, noise) in [
        ("default noise", NoiseConfig::default()),
        ("degraded sensors", NoiseConfig::degraded()),
    ] {
        // Train on clean data, test under the given condition — models are
        // deployed once but sensors degrade in the field.
        let train_sessions = generate_cace_dataset(
            &grammar,
            1,
            4,
            &SessionConfig::standard().with_ticks(180),
            77,
        );
        let (train, _) = train_test_split(train_sessions, 0.99);
        let test_sessions = generate_cace_dataset(
            &grammar,
            1,
            2,
            &SessionConfig::standard().with_ticks(180).with_noise(noise),
            78,
        );

        let mut row = Vec::new();
        for strategy in [Strategy::CorrelationConstraint, Strategy::NaiveCorrelation] {
            let engine = CaceEngine::train(&train, &CaceConfig::default().with_strategy(strategy))?;
            let mut acc = 0.0;
            for session in &test_sessions {
                acc += engine.recognize(session)?.accuracy(session);
            }
            row.push(100.0 * acc / test_sessions.len() as f64);
        }
        println!("{:<22} {:>13.1}% {:>13.1}%", name, row[0], row[1]);
    }
    println!(
        "\nUnder degradation the inter-user coupling supplies the context the\n\
         failed sensors no longer can — the gap between the columns should\n\
         widen on the degraded row."
    );
    Ok(())
}
