//! Failure injection: degrade the deployment and watch the engine hold
//! up — the robustness motivation of the paper's §II, in two flavours:
//!
//! 1. **Sensor degradation** (IMU dropouts, unreliable PIR, noisy
//!    beacons): the coupled model holds up better than the uncoupled one.
//! 2. **Concept drift**: the household's *habits* change mid-deployment
//!    (the grammar itself mutates). A frozen model decays; a fleet with
//!    online adaptation — drift capture → incremental EM → hot model
//!    swap — recovers most of the lost accuracy without retraining.
//!
//! Run with: `cargo run --release --example failure_injection`

use std::sync::Arc;

use cace::behavior::session::train_test_split;
use cace::behavior::{cace_grammar, drifted_cace_grammar, generate_cace_dataset, SessionConfig};
use cace::core::{
    AdaptationPolicy, CaceConfig, CaceEngine, Lag, ModelRecord, ShardedRouter, Strategy,
};
use cace::sensing::NoiseConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grammar = cace_grammar();

    println!(
        "{:<22} {:>14} {:>14}",
        "sensor condition", "C2 (coupled)", "NCR (solo)"
    );
    for (name, noise) in [
        ("default noise", NoiseConfig::default()),
        ("degraded sensors", NoiseConfig::degraded()),
    ] {
        // Train on clean data, test under the given condition — models are
        // deployed once but sensors degrade in the field.
        let train_sessions = generate_cace_dataset(
            &grammar,
            1,
            4,
            &SessionConfig::standard().with_ticks(180),
            77,
        );
        let (train, _) = train_test_split(train_sessions, 0.99);
        let test_sessions = generate_cace_dataset(
            &grammar,
            1,
            2,
            &SessionConfig::standard().with_ticks(180).with_noise(noise),
            78,
        );

        let mut row = Vec::new();
        for strategy in [Strategy::CorrelationConstraint, Strategy::NaiveCorrelation] {
            let engine = CaceEngine::train(&train, &CaceConfig::default().with_strategy(strategy))?;
            let mut acc = 0.0;
            for session in &test_sessions {
                acc += engine.recognize(session)?.accuracy(session);
            }
            row.push(100.0 * acc / test_sessions.len() as f64);
        }
        println!("{:<22} {:>13.1}% {:>13.1}%", name, row[0], row[1]);
    }
    println!(
        "\nUnder degradation the inter-user coupling supplies the context the\n\
         failed sensors no longer can — the gap between the columns should\n\
         widen on the degraded row."
    );

    // ── Concept drift: the habits themselves change ─────────────────────
    // Train once on the original routine, then let the household drift:
    // same activities, same sensors, different postures, durations and
    // transition habits. A frozen snapshot decays. A fleet with online
    // adaptation captures the drifted windows, re-runs the M-step in the
    // background and hot-swaps the new generation into the live streams.
    println!("\n== concept drift: the household changes its habits ==");
    let drifted = drifted_cace_grammar();
    let train_sessions = generate_cace_dataset(
        &grammar,
        1,
        4,
        &SessionConfig::standard().with_ticks(180),
        77,
    );
    let (train, _) = train_test_split(train_sessions, 0.99);
    let engine = Arc::new(CaceEngine::train(&train, &CaceConfig::default())?);

    let adapt_sessions = generate_cace_dataset(
        &drifted,
        1,
        4,
        &SessionConfig::standard().with_ticks(150),
        79,
    );
    let eval_sessions = generate_cace_dataset(
        &drifted,
        1,
        2,
        &SessionConfig::standard().with_ticks(150),
        80,
    );
    let score = |engine: &CaceEngine| -> Result<f64, Box<dyn std::error::Error>> {
        let mut acc = 0.0;
        for session in &eval_sessions {
            acc += engine.recognize(session)?.accuracy(session);
        }
        Ok(100.0 * acc / eval_sessions.len() as f64)
    };
    let frozen = score(&engine)?;

    // Serve the drifted streams through the router with adaptation on.
    let mut router = ShardedRouter::new();
    router.register_model("cace", Arc::clone(&engine))?;
    router.enable_adaptation(
        "cace",
        AdaptationPolicy {
            window_ticks: 25,
            min_windows: 4,
            laplace: 0.5,
        },
    )?;
    for id in 0..adapt_sessions.len() as u64 {
        router.add_home(id, "cace", Lag::Fixed(5))?;
    }
    let rounds = adapt_sessions
        .iter()
        .map(|s| s.ticks.len())
        .max()
        .unwrap_or(0);
    let push_range = |router: &mut ShardedRouter,
                      from: usize,
                      to: usize|
     -> Result<(), Box<dyn std::error::Error>> {
        for t in from..to {
            let round: Vec<_> = adapt_sessions
                .iter()
                .enumerate()
                .filter_map(|(id, s)| s.ticks.get(t).map(|tick| (id as u64, &tick.observed)))
                .collect();
            router.push_round(&round)?;
        }
        Ok(())
    };
    // First half of the day: capture drift windows under the frozen model,
    // publish generation 1 and hot-swap it into the still-live streams.
    push_range(&mut router, 0, rounds / 2)?;
    router
        .adapt_model("cace")?
        .expect("half a day across four homes exceeds min_windows");
    // Second half: decode under generation 1, adapt once more — posteriors
    // under the refreshed tables yield sharper counts than the first pass.
    push_range(&mut router, rounds / 2, rounds)?;
    let generation = router
        .adapt_model("cace")?
        .expect("the second half-day exceeds min_windows again");

    // The published generation is an ordinary versioned model record: pull
    // it back out and score it on held-out drifted sessions.
    let record = ModelRecord::from_snapshot_str(&router.export_model("cace", generation)?)?;
    let adapted = score(&record.engine)?;

    println!(
        "{:<32} {:>13.1}%",
        "frozen snapshot on drifted data", frozen
    );
    println!(
        "{:<32} {:>13.1}%   (generation {generation}, {} live hot swap(s))",
        "adapted fleet on drifted data",
        adapted,
        router.stats().swaps()
    );
    println!(
        "\nThe adapted generation re-estimates emission and transition habits\n\
         from the drifted stream windows (incremental EM), so the second row\n\
         should recover accuracy the frozen snapshot lost."
    );
    Ok(())
}
