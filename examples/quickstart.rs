//! Quickstart: train the full CACE pipeline on simulated smart-home
//! sessions and recognize a held-out morning.
//!
//! Run with: `cargo run --release --example quickstart`

use cace::behavior::session::train_test_split;
use cace::behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
use cace::core::{CaceConfig, CaceEngine};
use cace::eval::ConfusionMatrix;
use cace::model::MacroActivity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate one smart home: five mornings of two-resident routines.
    let grammar = cace_grammar();
    let sessions = generate_cace_dataset(
        &grammar,
        /* homes */ 1,
        /* sessions per home */ 5,
        &SessionConfig::standard().with_ticks(250),
        /* seed */ 20160627,
    );
    let (train, test) = train_test_split(sessions, 0.8);
    println!(
        "training on {} sessions, testing on {} session(s)",
        train.len(),
        test.len()
    );

    // 2. Train the engine: classifiers, rule miners, constraint miner, HDBN.
    let engine = CaceEngine::train(&train, &CaceConfig::default())?;
    println!(
        "mined {} positive rules and {} exclusivity rules; examples:",
        engine.rules().rules().len(),
        engine.rules().negatives().len()
    );
    for rule in engine.rules().top(5) {
        println!("  {}", engine.rules().render_rule(rule));
    }

    // 3. Recognize the held-out session.
    let mut confusion = ConfusionMatrix::new(engine.n_macro());
    for session in &test {
        let recognition = engine.recognize(session)?;
        for u in 0..2 {
            confusion.record_all(&session.labels_of(u), &recognition.macros[u]);
        }
        println!(
            "session in home {}: accuracy {:.1} %, joint state space ≈ {:.0} \
             states/tick, {} rule firings, {:.3} s",
            session.home_id,
            100.0 * recognition.accuracy(session),
            recognition.mean_joint_size,
            recognition.rules_fired,
            recognition.wall_seconds,
        );
    }

    // 4. Per-activity report (the paper's Fig 10(b) format).
    println!("\nper-activity metrics:");
    println!(
        "{:<16} {:>8} {:>10} {:>8} {:>8}",
        "activity", "FP rate", "precision", "recall", "F1"
    );
    for activity in MacroActivity::ALL {
        let m = confusion.class_metrics(activity.index());
        if m.support == 0 {
            continue;
        }
        println!(
            "{:<16} {:>8.3} {:>10.3} {:>8.3} {:>8.3}",
            activity.label(),
            m.fp_rate,
            m.precision,
            m.recall,
            m.f_measure
        );
    }
    println!("overall accuracy: {:.1} %", 100.0 * confusion.accuracy());
    Ok(())
}
