//! CASAS-style evaluation: 15 scripted activities, several joint, ambient
//! motion sensors only — the paper's second dataset (Fig 9).
//!
//! Run with: `cargo run --release --example casas_multi_resident`

use cace::behavior::session::train_test_split;
use cace::behavior::{generate_casas_dataset, CasasConfig};
use cace::core::{CaceConfig, CaceEngine};
use cace::eval::ConfusionMatrix;
use cace::model::CasasActivity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = CasasConfig {
        pairs: 6,
        sessions_per_pair: 2,
        ticks: 200,
        ..CasasConfig::default()
    };
    let sessions = generate_casas_dataset(&cfg, 9);
    let (train, test) = train_test_split(sessions, 0.75);
    println!(
        "CASAS-style corpus: {} training / {} test sessions, {} activities",
        train.len(),
        test.len(),
        train[0].n_activities
    );

    let engine = CaceEngine::train(&train, &CaceConfig::default())?;
    let mut confusion = ConfusionMatrix::new(engine.n_macro());
    let mut shared_correct = 0usize;
    let mut shared_total = 0usize;
    for session in &test {
        let rec = engine.recognize(session)?;
        for u in 0..2 {
            confusion.record_all(&session.labels_of(u), &rec.macros[u]);
        }
        // Shared-activity accuracy (paper: 99.3 % on Move Furniture / Play
        // Checkers).
        for (t, tick) in session.ticks.iter().enumerate() {
            if tick.labels[0] == tick.labels[1]
                && CasasActivity::from_index(tick.labels[0]).is_some_and(|a| a.is_joint())
            {
                shared_total += 2;
                for u in 0..2 {
                    if rec.macros[u][t] == tick.labels[u] {
                        shared_correct += 1;
                    }
                }
            }
        }
    }

    println!(
        "\n{:<26} {:>8} {:>10} {:>8} {:>8}",
        "activity", "FP rate", "precision", "recall", "F1"
    );
    for activity in CasasActivity::ALL {
        let m = confusion.class_metrics(activity.index());
        if m.support == 0 {
            continue;
        }
        println!(
            "{:>2} {:<23} {:>8.3} {:>10.3} {:>8.3} {:>8.3}",
            activity.paper_number(),
            activity.label(),
            m.fp_rate,
            m.precision,
            m.recall,
            m.f_measure
        );
    }
    println!("\noverall accuracy: {:.1} %", 100.0 * confusion.accuracy());
    if shared_total > 0 {
        println!(
            "shared (joint) activity accuracy: {:.1} % over {} user-ticks",
            100.0 * shared_correct as f64 / shared_total as f64,
            shared_total
        );
    }
    Ok(())
}
