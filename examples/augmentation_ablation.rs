//! Augmentation ablation: how much do the coupled-HDBN's individual
//! augmentations contribute?
//!
//! Sweeps the inter-user coupling weight (Augmentation 3) and the
//! hierarchical `P(micro | macro)` weight (Augmentation 2) of the C2
//! configuration — the design-choice ablation called out in DESIGN.md §6.
//!
//! Run with: `cargo run --release --example augmentation_ablation`

use cace::behavior::session::train_test_split;
use cace::behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
use cace::core::{CaceConfig, CaceEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grammar = cace_grammar();
    let sessions = generate_cace_dataset(
        &grammar,
        1,
        6,
        &SessionConfig::standard().with_ticks(250),
        60646,
    );
    let (train, test) = train_test_split(sessions, 0.8);

    let evaluate = |coupling: f64, hierarchy: f64| -> Result<f64, cace::model::ModelError> {
        let config = CaceConfig {
            coupling_weight: coupling,
            hierarchy_weight: hierarchy,
            ..CaceConfig::default()
        };
        let engine = CaceEngine::train(&train, &config)?;
        let recognitions = engine.recognize_batch(&test)?;
        let acc: f64 = recognitions
            .iter()
            .zip(&test)
            .map(|(rec, session)| rec.accuracy(session))
            .sum();
        Ok(100.0 * acc / test.len() as f64)
    };

    println!("Augmentation 3 — inter-user coupling weight sweep (hierarchy fixed at 1):");
    println!("{:<10} {:>10}", "coupling", "accuracy");
    for coupling in [0.0, 0.25, 0.5, 1.0, 2.0] {
        println!("{:<10.2} {:>9.1}%", coupling, evaluate(coupling, 1.0)?);
    }

    println!("\nAugmentation 2 — hierarchy weight sweep (coupling fixed at 1):");
    println!("{:<10} {:>10}", "hierarchy", "accuracy");
    for hierarchy in [0.0, 0.25, 0.5, 1.0, 2.0] {
        println!("{:<10.2} {:>9.1}%", hierarchy, evaluate(1.0, hierarchy)?);
    }

    println!(
        "\nExpected shape: accuracy degrades toward weight 0 on both axes —\n\
         the paper's claim that both the hierarchy and the behavioral\n\
         coupling carry recognition signal."
    );
    Ok(())
}
