//! Pruning explorer: watch the correlation miner shrink the joint state
//! space tick by tick, compare the four strategies of Fig 11, and sweep
//! the decoder's frontier beam on top (latency vs macro accuracy per
//! strategy — the two pruning levers compose).
//!
//! Run with: `cargo run --release --example pruning_explorer`

use cace::behavior::session::train_test_split;
use cace::behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
use cace::core::{CaceConfig, CaceEngine, DecoderConfig, Strategy};
use cace::eval::mean_duration_error;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grammar = cace_grammar();
    let sessions = generate_cace_dataset(
        &grammar,
        1,
        4,
        &SessionConfig::standard().with_ticks(200),
        31415,
    );
    let (train, test) = train_test_split(sessions, 0.75);
    let session = &test[0];

    println!(
        "{:<5} {:>10} {:>16} {:>16} {:>14} {:>10}",
        "strat", "accuracy", "states explored", "transition ops", "duration err", "wall (s)"
    );
    let mut ops = Vec::new();
    for strategy in Strategy::ALL {
        let engine = CaceEngine::train(&train, &CaceConfig::default().with_strategy(strategy))?;
        let rec = engine.recognize(session)?;
        let dur: f64 = (0..2)
            .map(|u| mean_duration_error(&session.labels_of(u), &rec.macros[u], 5))
            .sum::<f64>()
            / 2.0;
        println!(
            "{:<5} {:>9.1}% {:>16} {:>16} {:>13.1}% {:>10.4}",
            strategy.label(),
            100.0 * rec.accuracy(session),
            rec.states_explored,
            rec.transition_ops,
            100.0 * dur,
            rec.wall_seconds
        );
        ops.push((strategy, rec.transition_ops));
    }

    let ncs = ops
        .iter()
        .find(|(s, _)| *s == Strategy::NaiveConstraint)
        .unwrap()
        .1;
    let c2 = ops
        .iter()
        .find(|(s, _)| *s == Strategy::CorrelationConstraint)
        .unwrap()
        .1;
    println!(
        "\nstate-space pruning reduced the coupled model's transition work by \
         {:.1}× (paper: 16×)",
        ncs as f64 / c2.max(1) as f64
    );

    // Second lever: beam-prune the decoder *frontier* on top of the mined
    // candidate pruning. `TopK(k)` keeps the k best trellis states per
    // tick; `k >=` the strategy's frontier bound never prunes (== exact).
    println!(
        "\n{:<5} {:>12} {:>10} {:>8} {:>16} {:>10}",
        "strat", "beam", "accuracy", "Δacc", "transition ops", "wall (s)"
    );
    for strategy in Strategy::ALL {
        let engine = CaceEngine::train(&train, &CaceConfig::default().with_strategy(strategy))?;
        let bound = engine.frontier_bound();
        let exact = engine.recognize(session)?;
        let exact_acc = exact.accuracy(session);
        println!(
            "{:<5} {:>12} {:>9.1}% {:>8} {:>16} {:>10.4}",
            strategy.label(),
            "exact",
            100.0 * exact_acc,
            "-",
            exact.transition_ops,
            exact.wall_seconds
        );
        for divisor in [8usize, 32, 128] {
            let k = (bound / divisor).max(1);
            let beamed = engine.with_decoder(DecoderConfig::top_k(k));
            let rec = beamed.recognize(session)?;
            let acc = rec.accuracy(session);
            println!(
                "{:<5} {:>12} {:>9.1}% {:>+7.1}pp {:>16} {:>10.4}",
                strategy.label(),
                format!("TopK({k})"),
                100.0 * acc,
                100.0 * (acc - exact_acc),
                rec.transition_ops,
                rec.wall_seconds
            );
        }
    }
    println!(
        "\n(frontier beams compose with the rule pruning above; \
         `cargo bench -p cace-bench --bench beam_sweep` has the per-tick \
         latency story)"
    );
    Ok(())
}
