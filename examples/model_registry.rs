//! Model registry walkthrough: train once (parallel EM), snapshot to disk,
//! then serve from a *fresh* engine that never saw the training data —
//! verifying that batch and streaming recognition from the reloaded model
//! are bit-identical to the trainer's.
//!
//! This is the production split the paper's pipeline implies (mine + EM
//! offline, recognize online) and the smoke test CI runs: any drift
//! between the trained and reloaded engines exits non-zero.
//!
//! Run with: `cargo run --release --example model_registry`

use std::time::Instant;

use cace::behavior::session::train_test_split;
use cace::behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
use cace::core::{stream_session, CaceConfig, CaceEngine, Lag, Recognition};

fn assert_identical(a: &Recognition, b: &Recognition, label: &str) {
    assert_eq!(a.macros, b.macros, "{label}: decoded macros differ");
    assert_eq!(
        a.states_explored, b.states_explored,
        "{label}: states_explored differ"
    );
    assert_eq!(
        a.transition_ops, b.transition_ops,
        "{label}: transition_ops differ"
    );
    assert_eq!(a.rules_fired, b.rules_fired, "{label}: rules_fired differ");
    assert_eq!(
        a.mean_joint_size.to_bits(),
        b.mean_joint_size.to_bits(),
        "{label}: mean_joint_size differs"
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. train once (the "training cluster") ----
    let grammar = cace_grammar();
    let sessions = generate_cace_dataset(
        &grammar,
        /* homes */ 1,
        /* sessions per home */ 5,
        &SessionConfig::standard().with_ticks(160),
        /* seed */ 20160627,
    );
    let (train, test) = train_test_split(sessions, 0.6);
    let config = CaceConfig {
        run_em: true, // exercise LearnParamsEM's parallel E-step
        ..CaceConfig::default()
    };

    // The vendored rayon reads RAYON_NUM_THREADS per fan-out; train with
    // the 4-worker EM E-step. An optional sequential timing run (for a
    // seq-vs-par headline; `train_persist.rs` benches this properly) is
    // gated behind CACE_REGISTRY_TIMING=1 so the CI smoke step trains once.
    let train_seq = if std::env::var_os("CACE_REGISTRY_TIMING").is_some() {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let t0 = Instant::now();
        let _seq_engine = CaceEngine::train(&train, &config)?;
        Some(t0.elapsed().as_secs_f64())
    } else {
        None
    };

    std::env::set_var("RAYON_NUM_THREADS", "4");
    let t0 = Instant::now();
    let engine = CaceEngine::train(&train, &config)?;
    let train_par = t0.elapsed().as_secs_f64();
    std::env::remove_var("RAYON_NUM_THREADS");

    println!(
        "-- training (mine + forests + EM over {} sessions) --",
        train.len()
    );
    if let Some(seq) = train_seq {
        println!("RAYON_NUM_THREADS=1: {seq:.2} s");
        println!(
            "RAYON_NUM_THREADS=4: {train_par:.2} s  ({:.2}x)",
            seq / train_par.max(1e-9)
        );
    } else {
        println!("RAYON_NUM_THREADS=4: {train_par:.2} s (set CACE_REGISTRY_TIMING=1 for the sequential comparison)");
    }

    // ---- 2. publish to the registry (snapshot to disk) ----
    let path =
        std::env::temp_dir().join(format!("cace_model_registry_{}.cace", std::process::id()));
    let t0 = Instant::now();
    engine.save(&path)?;
    let save_ms = t0.elapsed().as_secs_f64() * 1e3;
    let bytes = std::fs::metadata(&path)?.len();
    println!("\n-- registry publish --");
    println!(
        "snapshot: {} ({:.1} KiB) in {save_ms:.1} ms",
        path.display(),
        bytes as f64 / 1024.0
    );

    // ---- 3. load in a fresh "serving" engine ----
    let t0 = Instant::now();
    let serving = CaceEngine::load(&path)?;
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    std::fs::remove_file(&path).ok();
    println!("reload:   {load_ms:.1} ms");

    // ---- 4. serve: batch + streaming, diffed against the trainer ----
    let trained_batch = engine.recognize_batch(&test)?;
    let served_batch = serving.recognize_batch(&test)?;
    for (i, (a, b)) in trained_batch.iter().zip(&served_batch).enumerate() {
        assert_identical(a, b, &format!("batch session {i}"));
    }
    println!("\n-- serving ({} held-out sessions) --", test.len());
    println!("batch recognize:    bit-identical to trained engine");

    for (i, session) in test.iter().enumerate() {
        let (_, streamed_trained) = stream_session(&engine, session, Lag::Fixed(8))?;
        let (_, streamed_served) = stream_session(&serving, session, Lag::Fixed(8))?;
        assert_identical(
            &streamed_trained,
            &streamed_served,
            &format!("stream session {i}"),
        );
    }
    println!("streaming (lag 8):  bit-identical to trained engine");

    let accuracy: f64 = served_batch
        .iter()
        .zip(&test)
        .map(|(rec, session)| rec.accuracy(session))
        .sum::<f64>()
        / test.len() as f64;
    println!("mean accuracy:      {:.1}%", 100.0 * accuracy);
    println!("\nmodel registry round-trip OK");
    Ok(())
}
