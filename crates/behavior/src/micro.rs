//! Micro-state realization within scheduled macro episodes.
//!
//! Given the joint macro schedule, this module generates each resident's
//! per-tick micro state — sub-location (with venue straddling), posture
//! (via a feasibility-respecting Markov walk), oral gesture (with partner
//! correlation during shared activities), and object touches.

use cace_model::{Gestural, MicroState, Postural, SubLocation};
use cace_sensing::{ObjectKind, UserTickTruth};
use cace_signal::GaussianSampler;

use crate::grammar::Grammar;
use crate::schedule::JointSchedule;

/// Next hop on the shortest feasible postural path from `current` toward
/// `desired` (e.g. lying → sitting → standing → walking).
///
/// Returns `current` when already there.
pub fn postural_step(current: Postural, desired: Postural) -> Postural {
    if current == desired {
        return current;
    }
    // Breadth-first search over the tiny feasibility graph.
    let mut prev: [Option<Postural>; Postural::COUNT] = [None; Postural::COUNT];
    let mut queue = std::collections::VecDeque::new();
    prev[current.index()] = Some(current);
    queue.push_back(current);
    while let Some(node) = queue.pop_front() {
        if node == desired {
            break;
        }
        for &next in node.feasible_successors() {
            if prev[next.index()].is_none() {
                prev[next.index()] = Some(node);
                queue.push_back(next);
            }
        }
    }
    // Walk back from `desired` to the first hop.
    let mut hop = desired;
    loop {
        let parent = prev[hop.index()].expect("postural graph is connected");
        if parent == current {
            return hop;
        }
        hop = parent;
    }
}

#[derive(Debug, Clone, Copy)]
struct UserMicroState {
    location: SubLocation,
    posture: Postural,
    /// The posture the resident is settling into; resampled occasionally so
    /// dwell times look natural while the activity's dominant posture still
    /// dominates the time budget.
    target_posture: Postural,
    gesture: Gestural,
    /// Remaining ticks of a straddle excursion, if any.
    straddle_remaining: usize,
}

/// Generates the micro-level ground truth for a whole schedule.
///
/// The output has one `[UserTickTruth; 2]` entry per tick, aligned with the
/// schedule's labels.
pub fn generate_micro(
    grammar: &Grammar,
    schedule: &JointSchedule,
    rng: &mut GaussianSampler,
) -> Vec<[UserTickTruth; 2]> {
    let ticks = schedule.len();
    let mut states = [
        UserMicroState {
            location: grammar.spec(schedule.labels[0][0]).primary_venue(),
            posture: Postural::Lying,
            target_posture: Postural::Lying,
            gesture: Gestural::Silent,
            straddle_remaining: 0,
        },
        UserMicroState {
            location: grammar.spec(schedule.labels[1][0]).primary_venue(),
            posture: Postural::Lying,
            target_posture: Postural::Lying,
            gesture: Gestural::Silent,
            straddle_remaining: 0,
        },
    ];

    let mut out = Vec::with_capacity(ticks);
    for t in 0..ticks {
        let mut tick: [UserTickTruth; 2] = [
            UserTickTruth::of(MicroState::new(
                states[0].posture,
                states[0].gesture,
                states[0].location,
            )),
            UserTickTruth::of(MicroState::new(
                states[1].posture,
                states[1].gesture,
                states[1].location,
            )),
        ];
        for u in 0..2 {
            let activity = schedule.labels[u][t];
            let spec = grammar.spec(activity);
            let changed = t > 0 && schedule.labels[u][t - 1] != activity;
            let state = &mut states[u];

            // --- location ---
            if changed {
                state.straddle_remaining = 0;
                state.location = spec.primary_venue();
                // Arriving somewhere new means the resident walked there,
                // and will settle into the new activity's dominant posture.
                state.posture = postural_step(state.posture, Postural::Walking);
                let weights: Vec<f64> = spec.postural_weights.iter().map(|&(_, w)| w).collect();
                state.target_posture = spec.postural_weights[rng.weighted_choice(&weights)].0;
            } else if state.straddle_remaining > 0 {
                state.straddle_remaining -= 1;
                if state.straddle_remaining == 0 {
                    state.location = spec.primary_venue();
                    state.posture = postural_step(state.posture, Postural::Walking);
                }
            } else if !spec.straddle_venues.is_empty() && rng.chance(spec.straddle_prob) {
                let venue = spec.straddle_venues[rng.below(spec.straddle_venues.len())];
                state.location = venue;
                state.straddle_remaining = 2 + rng.below(5);
                state.posture = postural_step(state.posture, Postural::Walking);
            } else if spec.venues.len() > 1 && rng.chance(0.03) {
                // Occasional movement between the activity's own venues.
                state.location = spec.venues[rng.below(spec.venues.len())];
            } else {
                // --- posture (only when not forced to walk) ---
                // Resample the target occasionally so dwell times vary.
                if rng.chance(0.15) {
                    let weights: Vec<f64> = spec.postural_weights.iter().map(|&(_, w)| w).collect();
                    state.target_posture = spec.postural_weights[rng.weighted_choice(&weights)].0;
                }
                state.posture = postural_step(state.posture, state.target_posture);
            }

            // --- gesture ---
            let gesture_stays = rng.chance(0.6);
            if !gesture_stays {
                let weights: Vec<f64> = spec.gestural_weights.iter().map(|&(_, w)| w).collect();
                state.gesture = spec.gestural_weights[rng.weighted_choice(&weights)].0;
            }
            if !grammar.has_gestural {
                state.gesture = Gestural::Silent;
            }

            // --- object touch ---
            let object = if !spec.objects.is_empty() && rng.chance(spec.object_touch_prob) {
                Some(spec.objects[rng.below(spec.objects.len())])
            } else {
                None
            };

            tick[u] = UserTickTruth {
                micro: MicroState::new(state.posture, state.gesture, state.location),
                object,
                present: true,
            };
        }

        // Partner gesture correlation: co-located residents in the same
        // shared activity talk to each other.
        if grammar.has_gestural
            && schedule.labels[0][t] == schedule.labels[1][t]
            && grammar.spec(schedule.labels[0][t]).shared
            && tick[0].micro.location.room() == tick[1].micro.location.room()
            && rng.chance(0.25)
        {
            for side in &mut tick {
                let mut m = side.micro;
                m.gestural = Gestural::Talking;
                side.micro = m;
            }
            states[0].gesture = Gestural::Talking;
            states[1].gesture = Gestural::Talking;
        }

        out.push(tick);
    }
    out
}

/// Sanity check: objects touched must belong to the activity being performed.
pub fn objects_consistent(
    grammar: &Grammar,
    schedule: &JointSchedule,
    micro: &[[UserTickTruth; 2]],
) -> bool {
    micro.iter().enumerate().all(|(t, tick)| {
        (0..2).all(|u| match tick[u].object {
            None => true,
            Some(obj) => grammar.spec(schedule.labels[u][t]).objects.contains(&obj),
        })
    })
}

/// Convenience wrapper bundling the object kinds in use at one tick.
pub fn objects_in_use(tick: &[UserTickTruth; 2]) -> Vec<ObjectKind> {
    tick.iter().filter_map(|u| u.object).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::cace_grammar;
    use crate::schedule::generate_schedule;
    use cace_model::MacroActivity;

    fn make(seed: u64, ticks: usize) -> (Grammar, JointSchedule, Vec<[UserTickTruth; 2]>) {
        let g = cace_grammar();
        let mut rng = GaussianSampler::seed_from_u64(seed);
        let s = generate_schedule(&g, ticks, MacroActivity::Sleeping.index(), &mut rng);
        let m = generate_micro(&g, &s, &mut rng);
        (g, s, m)
    }

    #[test]
    fn one_entry_per_tick() {
        let (_, s, m) = make(1, 400);
        assert_eq!(m.len(), s.len());
    }

    #[test]
    fn postural_step_respects_feasibility() {
        // Every hop returned must be a feasible successor.
        for from in Postural::ALL {
            for to in Postural::ALL {
                let hop = postural_step(from, to);
                if from != to {
                    assert!(
                        from.can_transition_to(hop),
                        "{from} -> {hop} infeasible (target {to})"
                    );
                }
            }
        }
        // The canonical chains.
        assert_eq!(
            postural_step(Postural::Lying, Postural::Walking),
            Postural::Sitting
        );
        assert_eq!(
            postural_step(Postural::Sitting, Postural::Walking),
            Postural::Standing
        );
        assert_eq!(
            postural_step(Postural::Standing, Postural::Walking),
            Postural::Walking
        );
    }

    #[test]
    fn consecutive_postures_are_feasible() {
        let (_, _, m) = make(2, 1000);
        for u in 0..2 {
            for w in m.windows(2) {
                let a = w[0][u].micro.postural;
                let b = w[1][u].micro.postural;
                assert!(a.can_transition_to(b), "{a} -> {b} violates feasibility");
            }
        }
    }

    #[test]
    fn locations_match_activity_venues_mostly() {
        let (g, s, m) = make(3, 1000);
        let mut at_venue = 0usize;
        let mut total = 0usize;
        for (t, tick) in m.iter().enumerate() {
            for u in 0..2 {
                let spec = g.spec(s.labels[u][t]);
                total += 1;
                if spec.venues.contains(&tick[u].micro.location)
                    || spec.straddle_venues.contains(&tick[u].micro.location)
                {
                    at_venue += 1;
                }
            }
        }
        let frac = at_venue as f64 / total as f64;
        assert!(frac > 0.95, "venue consistency {frac}");
    }

    #[test]
    fn objects_are_consistent_with_activity() {
        let (g, s, m) = make(4, 1500);
        assert!(objects_consistent(&g, &s, &m));
        let any_object = m.iter().any(|tick| !objects_in_use(tick).is_empty());
        assert!(any_object, "some object touches should occur");
    }

    #[test]
    fn exercising_produces_cycling_at_the_bike() {
        let (_, s, m) = make(5, 3000);
        let ex = MacroActivity::Exercising.index();
        let mut cycling = 0usize;
        let mut total = 0usize;
        for (t, tick) in m.iter().enumerate() {
            for u in 0..2 {
                if s.labels[u][t] == ex {
                    total += 1;
                    if tick[u].micro.postural == Postural::Cycling
                        && tick[u].micro.location == SubLocation::ExerciseBike
                    {
                        cycling += 1;
                    }
                }
            }
        }
        if total > 50 {
            let frac = cycling as f64 / total as f64;
            assert!(frac > 0.4, "cycling-at-bike fraction {frac}");
        }
    }

    #[test]
    fn shared_dining_produces_correlated_talking() {
        let (g, s, m) = make(6, 3000);
        let dining = MacroActivity::Dining.index();
        let mut both_talking = 0usize;
        let mut both_dining = 0usize;
        for (t, tick) in m.iter().enumerate() {
            if s.labels[0][t] == dining && s.labels[1][t] == dining {
                both_dining += 1;
                if tick[0].micro.gestural == Gestural::Talking
                    && tick[1].micro.gestural == Gestural::Talking
                {
                    both_talking += 1;
                }
            }
        }
        let _ = g;
        if both_dining > 50 {
            let frac = both_talking as f64 / both_dining as f64;
            assert!(frac > 0.15, "correlated talking fraction {frac}");
        }
    }

    #[test]
    fn no_gestural_grammar_stays_silent() {
        let mut g = cace_grammar();
        g.has_gestural = false;
        let mut rng = GaussianSampler::seed_from_u64(7);
        let s = generate_schedule(&g, 500, MacroActivity::Sleeping.index(), &mut rng);
        let m = generate_micro(&g, &s, &mut rng);
        assert!(m
            .iter()
            .all(|tick| tick.iter().all(|u| u.micro.gestural == Gestural::Silent)));
    }

    #[test]
    fn determinism() {
        let (_, _, a) = make(8, 300);
        let (_, _, b) = make(8, 300);
        assert_eq!(a, b);
    }
}
