//! Sessions: schedules + micro truth + simulated sensor records.
//!
//! A [`Session`] is the unit of data every downstream experiment consumes —
//! the equivalent of one recorded morning in one smart home of the paper's
//! deployment.

use cace_model::{ModelError, Room};
use cace_sensing::{
    BeaconEstimate, GroundTruthTick, NoiseConfig, ObjectKind, SensorTick, SmartHome, UserTickTruth,
};
use cace_signal::trajectory::ImuSample;
use cace_signal::GaussianSampler;

use crate::grammar::Grammar;
use crate::micro::generate_micro;
use crate::schedule::{generate_schedule, Episode};

/// Per-resident observations for one tick, as seen by the recognizer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UserObservation {
    /// Smartphone IMU frame (`None` = dropped/missing).
    pub phone: Option<Vec<ImuSample>>,
    /// Neck-tag IMU frame (`None` = dropped, or absent in CASAS).
    pub tag: Option<Vec<ImuSample>>,
    /// iBeacon localization (`None` in CASAS, which has no beacons).
    pub beacon: Option<BeaconEstimate>,
}

/// Everything the recognizer can observe at one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedTick {
    /// Room-level PIR firings.
    pub room_motion: [bool; Room::COUNT],
    /// Sub-location-level motion firings (CASAS-style), when available.
    pub subloc_motion: Option<[bool; 14]>,
    /// Per-activity item-sensor firings (CASAS-style; the real dataset
    /// instruments the medicine dispenser, watering can, broom, checkers,
    /// dishes, …). `items[a]` fires while some resident performs activity
    /// `a`; firings are unattributed.
    pub items: Option<Vec<bool>>,
    /// Object-sensor firings.
    pub objects: [bool; ObjectKind::COUNT],
    /// Per-resident wearable channels.
    pub per_user: [UserObservation; 2],
}

impl From<SensorTick> for ObservedTick {
    fn from(tick: SensorTick) -> Self {
        let [w0, w1] = tick.wearables;
        ObservedTick {
            room_motion: tick.ambient.pir,
            subloc_motion: None,
            items: None,
            objects: tick.ambient.objects,
            per_user: [
                UserObservation {
                    phone: w0.phone,
                    tag: w0.tag,
                    beacon: Some(w0.beacon),
                },
                UserObservation {
                    phone: w1.phone,
                    tag: w1.tag,
                    beacon: Some(w1.beacon),
                },
            ],
        }
    }
}

/// One fully labeled tick of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionTick {
    /// Ground-truth micro states and object touches.
    pub truth: [UserTickTruth; 2],
    /// Ground-truth macro-activity ids per resident.
    pub labels: [usize; 2],
    /// The simulated sensor record.
    pub observed: ObservedTick,
}

/// One simulated recording session in one home.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// Which home produced the session (1-based, like the paper's homes).
    pub home_id: u32,
    /// Number of macro activities in the generating grammar.
    pub n_activities: usize,
    /// Whether the gestural modality exists.
    pub has_gestural: bool,
    /// The tick-by-tick record.
    pub ticks: Vec<SessionTick>,
    /// Ground-truth episode decomposition per resident.
    pub episodes: [Vec<Episode>; 2],
}

impl Session {
    /// Number of ticks.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// Whether the session is empty.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Ground-truth macro label sequence of one resident.
    pub fn labels_of(&self, user: usize) -> Vec<usize> {
        self.ticks.iter().map(|t| t.labels[user]).collect()
    }
}

/// Configuration of one simulated session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Session length in 1.5 s ticks.
    pub ticks: usize,
    /// Sensor noise model.
    pub noise: NoiseConfig,
    /// Activity id both residents start in.
    pub start_activity: usize,
    /// Home identifier recorded in the session.
    pub home_id: u32,
}

impl SessionConfig {
    /// The default experimental session: 400 ticks (10 minutes of activity)
    /// with the default noise model.
    pub fn standard() -> Self {
        Self {
            ticks: 400,
            noise: NoiseConfig::default(),
            start_activity: 6,
            home_id: 1,
        }
    }

    /// A tiny session for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            ticks: 80,
            noise: NoiseConfig::default(),
            start_activity: 6,
            home_id: 1,
        }
    }

    /// Builder-style override of the tick count.
    pub fn with_ticks(mut self, ticks: usize) -> Self {
        self.ticks = ticks;
        self
    }

    /// Builder-style override of the noise model.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// Builder-style override of the home id.
    pub fn with_home(mut self, home_id: u32) -> Self {
        self.home_id = home_id;
        self
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// Simulates one session: schedule → micro truth → sensors.
///
/// # Panics
/// Panics if the grammar is invalid or the config's start activity is out of
/// range.
pub fn simulate_session(grammar: &Grammar, config: &SessionConfig, seed: u64) -> Session {
    let mut rng = GaussianSampler::seed_from_u64(seed);
    let schedule = generate_schedule(grammar, config.ticks, config.start_activity, &mut rng);
    let micro = generate_micro(grammar, &schedule, &mut rng);
    let mut home = SmartHome::new(config.noise.clone(), rng.next_u64());

    let ticks = micro
        .iter()
        .enumerate()
        .map(|(t, truth)| {
            let gt = GroundTruthTick { users: *truth };
            let sensors = home.sense_tick(&gt);
            SessionTick {
                truth: *truth,
                labels: [schedule.labels[0][t], schedule.labels[1][t]],
                observed: sensors.into(),
            }
        })
        .collect();

    Session {
        home_id: config.home_id,
        n_activities: grammar.len(),
        has_gestural: grammar.has_gestural,
        ticks,
        episodes: schedule.episodes,
    }
}

/// Generates the CACE-style dataset: `sessions_per_home` sessions in each of
/// `homes` homes (the paper: five homes, one month each).
pub fn generate_cace_dataset(
    grammar: &Grammar,
    homes: u32,
    sessions_per_home: usize,
    config: &SessionConfig,
    seed: u64,
) -> Vec<Session> {
    let mut rng = GaussianSampler::seed_from_u64(seed);
    let mut sessions = Vec::with_capacity(homes as usize * sessions_per_home);
    for home in 1..=homes {
        for _ in 0..sessions_per_home {
            let cfg = config.clone().with_home(home);
            sessions.push(simulate_session(grammar, &cfg, rng.next_u64()));
        }
    }
    sessions
}

/// Splits sessions into (train, test) by session index, guaranteeing both
/// halves are non-empty.
///
/// The rounded split point is clamped to `[1, len − 1]`, so even extreme
/// fractions (e.g. `0.01` over three sessions) leave at least one session
/// on each side.
///
/// # Errors
/// [`ModelError::InvalidConfig`] if `train_fraction` is outside `(0, 1)`
/// (NaN included), and [`ModelError::InsufficientData`] for fewer than two
/// sessions — one session cannot populate both halves, and an empty input
/// cannot populate either.
pub fn try_train_test_split(
    sessions: Vec<Session>,
    train_fraction: f64,
) -> Result<(Vec<Session>, Vec<Session>), ModelError> {
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(ModelError::InvalidConfig(format!(
            "train fraction must be in (0, 1), got {train_fraction}"
        )));
    }
    let n = sessions.len();
    if n < 2 {
        return Err(ModelError::InsufficientData {
            what: "train/test split (both halves must be non-empty)".into(),
            available: n,
            required: 2,
        });
    }
    let n_train = (((n as f64) * train_fraction).round() as usize).clamp(1, n - 1);
    let mut train = sessions;
    let test = train.split_off(n_train);
    Ok((train, test))
}

/// Panicking convenience wrapper around [`try_train_test_split`] for tests,
/// examples, and benches where a bad split is a programming error.
///
/// # Panics
/// Panics with the underlying [`ModelError`] message if `train_fraction`
/// is outside `(0, 1)` or fewer than two sessions were provided.
pub fn train_test_split(
    sessions: Vec<Session>,
    train_fraction: f64,
) -> (Vec<Session>, Vec<Session>) {
    match try_train_test_split(sessions, train_fraction) {
        Ok(split) => split,
        Err(e) => panic!("train_test_split: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::cace_grammar;

    #[test]
    fn session_is_fully_labeled() {
        let g = cace_grammar();
        let s = simulate_session(&g, &SessionConfig::tiny(), 1);
        assert_eq!(s.len(), 80);
        assert_eq!(s.n_activities, 11);
        assert!(s.has_gestural);
        for tick in &s.ticks {
            assert!(tick.labels[0] < 11 && tick.labels[1] < 11);
            assert!(tick.observed.per_user[0].beacon.is_some());
            assert!(tick.observed.subloc_motion.is_none());
        }
        assert_eq!(s.labels_of(0).len(), 80);
    }

    #[test]
    fn sensor_record_tracks_truth() {
        // With noiseless sensors the PIR reading must match the truth.
        let g = cace_grammar();
        let cfg = SessionConfig::tiny().with_noise(NoiseConfig::noiseless());
        let s = simulate_session(&g, &cfg, 2);
        for tick in &s.ticks {
            for u in 0..2 {
                let truth = tick.truth[u].micro;
                if truth.postural.is_moving() {
                    assert!(
                        tick.observed.room_motion[truth.room().index()],
                        "PIR must fire for moving resident"
                    );
                }
            }
        }
    }

    #[test]
    fn dataset_covers_all_homes() {
        let g = cace_grammar();
        let sessions = generate_cace_dataset(&g, 5, 2, &SessionConfig::tiny(), 3);
        assert_eq!(sessions.len(), 10);
        for home in 1..=5u32 {
            assert_eq!(sessions.iter().filter(|s| s.home_id == home).count(), 2);
        }
    }

    #[test]
    fn sessions_differ_across_seeds_and_homes() {
        let g = cace_grammar();
        let sessions = generate_cace_dataset(&g, 2, 1, &SessionConfig::tiny(), 4);
        assert_ne!(
            sessions[0].labels_of(0),
            sessions[1].labels_of(0),
            "independent sessions should differ"
        );
    }

    #[test]
    fn split_fractions() {
        let g = cace_grammar();
        let sessions = generate_cace_dataset(&g, 1, 10, &SessionConfig::tiny(), 5);
        let (train, test) = train_test_split(sessions, 0.7);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn split_rejects_bad_fraction() {
        train_test_split(Vec::new(), 1.5);
    }

    #[test]
    fn split_guarantees_both_halves_nonempty() {
        let g = cace_grammar();
        // Extreme fractions over a small set must still leave ≥ 1 session
        // on each side instead of silently returning an empty half.
        for fraction in [0.01, 0.5, 0.99] {
            let sessions = generate_cace_dataset(&g, 1, 3, &SessionConfig::tiny(), 6);
            let (train, test) = try_train_test_split(sessions, fraction).unwrap();
            assert!(!train.is_empty(), "fraction {fraction}: empty train");
            assert!(!test.is_empty(), "fraction {fraction}: empty test");
            assert_eq!(train.len() + test.len(), 3);
        }
    }

    #[test]
    fn split_rejects_degenerate_inputs_with_clear_errors() {
        let g = cace_grammar();
        // Empty input: previously a cryptic `split_off` index panic.
        assert!(matches!(
            try_train_test_split(Vec::new(), 0.75),
            Err(ModelError::InsufficientData { available: 0, .. })
        ));
        // One session: previously returned an empty test set.
        let one = generate_cace_dataset(&g, 1, 1, &SessionConfig::tiny(), 7);
        assert!(matches!(
            try_train_test_split(one, 0.75),
            Err(ModelError::InsufficientData { available: 1, .. })
        ));
        // Out-of-range and NaN fractions.
        let two = generate_cace_dataset(&g, 1, 2, &SessionConfig::tiny(), 8);
        assert!(matches!(
            try_train_test_split(two.clone(), 0.0),
            Err(ModelError::InvalidConfig(_))
        ));
        assert!(matches!(
            try_train_test_split(two, f64::NAN),
            Err(ModelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn determinism() {
        let g = cace_grammar();
        let a = simulate_session(&g, &SessionConfig::tiny(), 9);
        let b = simulate_session(&g, &SessionConfig::tiny(), 9);
        assert_eq!(a, b);
    }
}
