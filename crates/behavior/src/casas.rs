//! CASAS-shaped multi-resident dataset generation.
//!
//! The paper's second evaluation (Fig 9) uses the CASAS dataset of Singla et
//! al. \[9\]: 26 resident pairs (40 distinct users) performing fifteen
//! scripted activities — several joint — observed through a dense grid of
//! ambient motion sensors and smartphone (postural) readings, with **no
//! gestural modality**. "Each motion sensor firing means the sub-location …
//! is occupied."
//!
//! Substitution: we instantiate the same behavioral engine with a
//! 15-activity grammar on our floor plan, emit *sub-location-level* motion
//! firings (presence-based, unlike the CACE PIRs which are room-level and
//! motion-gated), keep the smartphone channel, and drop the neck tag and
//! iBeacons.

use cace_model::{CasasActivity, Gestural, Postural, SubLocation};
use cace_signal::GaussianSampler;

use crate::grammar::{ActivitySpec, Grammar};
use crate::session::{simulate_session, Session, SessionConfig};

/// Configuration of a CASAS-shaped dataset.
#[derive(Debug, Clone)]
pub struct CasasConfig {
    /// Number of resident pairs (the real dataset has 26).
    pub pairs: u32,
    /// Sessions recorded per pair.
    pub sessions_per_pair: usize,
    /// Ticks per session.
    pub ticks: usize,
    /// Probability an occupied sub-location's motion sensor fires per tick.
    pub fire_probability: f64,
    /// Probability an unoccupied sensor fires per tick.
    pub false_fire_probability: f64,
    /// Probability the in-use activity's item sensor fires per tick.
    pub item_fire_probability: f64,
    /// Probability an idle item sensor fires per tick.
    pub item_false_fire_probability: f64,
}

impl Default for CasasConfig {
    fn default() -> Self {
        Self {
            pairs: 26,
            sessions_per_pair: 1,
            ticks: 300,
            fire_probability: 0.9,
            false_fire_probability: 0.01,
            item_fire_probability: 0.6,
            item_false_fire_probability: 0.005,
        }
    }
}

impl CasasConfig {
    /// A small configuration for fast tests.
    pub fn tiny() -> Self {
        Self {
            pairs: 2,
            sessions_per_pair: 1,
            ticks: 80,
            ..Self::default()
        }
    }
}

/// The fifteen-activity CASAS grammar.
pub fn casas_grammar() -> Grammar {
    use CasasActivity as C;
    use Postural as P;
    use SubLocation as L;

    let venues = |a: C| -> Vec<L> {
        match a {
            C::FillMedicationDispenser => vec![L::Kitchen],
            C::HangUpClothes => vec![L::Closet1, L::Closet2],
            C::MoveFurniture => vec![L::RestOfLivingRoom, L::Couch1],
            C::ReadMagazine => vec![L::Couch2, L::ReadingTable],
            C::WaterPlants => vec![L::Porch, L::RestOfLivingRoom],
            C::SweepFloor => vec![L::Kitchen, L::RestOfLivingRoom, L::Corridor],
            C::PlayCheckers => vec![L::DiningTable],
            C::SetOutIngredients => vec![L::Kitchen],
            C::SetTable => vec![L::DiningTable, L::Kitchen],
            C::PayBills => vec![L::ReadingTable],
            C::GatherFood => vec![L::Kitchen],
            C::RetrieveDishes => vec![L::Kitchen, L::DiningTable],
            C::PackSupplies => vec![L::RestOfBedroom, L::Closet2],
            C::PackPicnicBasket => vec![L::Kitchen, L::DiningTable],
            C::Other => vec![L::Corridor, L::RestOfLivingRoom],
        }
    };
    let postural = |a: C| -> Vec<(P, f64)> {
        match a {
            C::ReadMagazine | C::PlayCheckers | C::PayBills => {
                vec![(P::Sitting, 0.85), (P::Standing, 0.15)]
            }
            C::MoveFurniture | C::SweepFloor => {
                vec![(P::Walking, 0.7), (P::Standing, 0.3)]
            }
            C::Other => vec![(P::Walking, 0.8), (P::Standing, 0.2)],
            _ => vec![(P::Standing, 0.6), (P::Walking, 0.4)],
        }
    };
    let durations = |a: C| -> (usize, usize) {
        match a {
            C::MoveFurniture => (10, 30),
            C::PlayCheckers => (30, 70),
            C::ReadMagazine => (20, 50),
            C::Other => (2, 6),
            _ => (8, 25),
        }
    };

    let activities: Vec<ActivitySpec> = CasasActivity::ALL
        .into_iter()
        .map(|a| {
            let (min_ticks, max_ticks) = durations(a);
            ActivitySpec {
                name: a.label().to_string(),
                venues: venues(a),
                straddle_prob: 0.0,
                straddle_venues: vec![],
                postural_weights: postural(a),
                gestural_weights: vec![(Gestural::Silent, 1.0)],
                min_ticks,
                max_ticks,
                shared: a.is_joint(),
                join_prob: if a.is_joint() { 0.9 } else { 0.0 },
                object_touch_prob: 0.0,
                objects: vec![],
            }
        })
        .collect();

    let n = activities.len();
    let mut w = vec![vec![1.0; n]; n];
    for (i, row) in w.iter_mut().enumerate() {
        row[i] = 0.0;
        row[CasasActivity::Other.index()] = 2.0;
    }
    // The picnic-packing script: gather food → pack supplies → pack basket.
    w[CasasActivity::GatherFood.index()][CasasActivity::PackSupplies.index()] = 4.0;
    w[CasasActivity::PackSupplies.index()][CasasActivity::PackPicnicBasket.index()] = 5.0;
    // Dinner script: set out ingredients → set table → retrieve dishes.
    w[CasasActivity::SetOutIngredients.index()][CasasActivity::SetTable.index()] = 4.0;
    w[CasasActivity::SetTable.index()][CasasActivity::RetrieveDishes.index()] = 3.0;

    let grammar = Grammar {
        activities,
        transition_weights: w,
        filler: CasasActivity::Other.index(),
        has_gestural: false,
    };
    grammar.validate().expect("CASAS grammar must be valid");
    grammar
}

/// Post-processes a session into CASAS form: sub-location motion sensors
/// and per-activity item sensors on, beacons and neck tags off.
fn casasify(mut session: Session, cfg: &CasasConfig, rng: &mut GaussianSampler) -> Session {
    let n_activities = session.n_activities;
    for tick in &mut session.ticks {
        let mut fired = [false; 14];
        for (s, slot) in fired.iter_mut().enumerate() {
            let loc = SubLocation::from_index(s).expect("14 sub-locations");
            let occupied = tick
                .truth
                .iter()
                .any(|u| u.present && u.micro.location == loc);
            *slot = if occupied {
                rng.chance(cfg.fire_probability)
            } else {
                rng.chance(cfg.false_fire_probability)
            };
        }
        tick.observed.subloc_motion = Some(fired);
        let mut items = vec![false; n_activities];
        for (a, slot) in items.iter_mut().enumerate() {
            let active = tick.labels.contains(&a);
            *slot = if active {
                rng.chance(cfg.item_fire_probability)
            } else {
                rng.chance(cfg.item_false_fire_probability)
            };
        }
        tick.observed.items = Some(items);
        for user in &mut tick.observed.per_user {
            user.tag = None;
            user.beacon = None;
        }
    }
    session
}

/// Generates the CASAS-shaped dataset: one or more sessions per resident
/// pair.
pub fn generate_casas_dataset(cfg: &CasasConfig, seed: u64) -> Vec<Session> {
    let grammar = casas_grammar();
    let mut rng = GaussianSampler::seed_from_u64(seed);
    let mut sessions = Vec::with_capacity(cfg.pairs as usize * cfg.sessions_per_pair);
    for pair in 1..=cfg.pairs {
        for _ in 0..cfg.sessions_per_pair {
            let session_cfg = SessionConfig::standard()
                .with_ticks(cfg.ticks)
                .with_home(pair);
            // Start in the filler activity — CASAS scripts begin mid-task,
            // not asleep.
            let session_cfg = SessionConfig {
                start_activity: CasasActivity::Other.index(),
                ..session_cfg
            };
            let session = simulate_session(&grammar, &session_cfg, rng.next_u64());
            sessions.push(casasify(session, cfg, &mut rng));
        }
    }
    sessions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_shape() {
        let g = casas_grammar();
        assert_eq!(g.len(), 15);
        assert!(!g.has_gestural);
        assert!(g.validate().is_ok());
        assert!(g.spec(CasasActivity::PlayCheckers.index()).shared);
        assert!(!g.spec(CasasActivity::SweepFloor.index()).shared);
    }

    #[test]
    fn dataset_has_casas_observation_shape() {
        let sessions = generate_casas_dataset(&CasasConfig::tiny(), 1);
        assert_eq!(sessions.len(), 2);
        for s in &sessions {
            assert_eq!(s.n_activities, 15);
            assert!(!s.has_gestural);
            for tick in &s.ticks {
                assert!(tick.observed.subloc_motion.is_some());
                assert!(tick.observed.per_user[0].tag.is_none());
                assert!(tick.observed.per_user[0].beacon.is_none());
                assert!(
                    tick.observed.per_user[0].phone.is_some()
                        || tick.observed.per_user[1].phone.is_some()
                        || tick.observed.per_user[0].phone.is_none()
                );
            }
        }
    }

    #[test]
    fn motion_sensors_track_occupancy() {
        let mut cfg = CasasConfig::tiny();
        cfg.fire_probability = 1.0;
        cfg.false_fire_probability = 0.0;
        let sessions = generate_casas_dataset(&cfg, 2);
        for s in &sessions {
            for tick in &s.ticks {
                let fired = tick.observed.subloc_motion.unwrap();
                for u in &tick.truth {
                    assert!(
                        fired[u.micro.location.index()],
                        "occupied sub-location must fire"
                    );
                }
                // No spurious firings: every firing has an occupant.
                for (i, &f) in fired.iter().enumerate() {
                    if f {
                        assert!(tick.truth.iter().any(|u| u.micro.location.index() == i));
                    }
                }
            }
        }
    }

    #[test]
    fn joint_activities_are_performed_jointly() {
        let mut cfg = CasasConfig::tiny();
        cfg.ticks = 600;
        cfg.pairs = 4;
        let sessions = generate_casas_dataset(&cfg, 3);
        let checkers = CasasActivity::PlayCheckers.index();
        let mut joint = 0usize;
        let mut solo = 0usize;
        for s in &sessions {
            for tick in &s.ticks {
                match (tick.labels[0] == checkers, tick.labels[1] == checkers) {
                    (true, true) => joint += 1,
                    (true, false) | (false, true) => solo += 1,
                    _ => {}
                }
            }
        }
        if joint + solo > 30 {
            let frac = joint as f64 / (joint + solo) as f64;
            assert!(frac > 0.4, "checkers should be mostly joint: {frac}");
        }
    }

    #[test]
    fn determinism() {
        let a = generate_casas_dataset(&CasasConfig::tiny(), 7);
        let b = generate_casas_dataset(&CasasConfig::tiny(), 7);
        assert_eq!(a, b);
    }
}
