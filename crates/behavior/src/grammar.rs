//! Activity grammars: the stochastic vocabulary a household routine is
//! generated from.
//!
//! A [`Grammar`] holds one [`ActivitySpec`] per macro activity — where it is
//! performed, which postures and gestures it exhibits, how long it lasts,
//! whether residents tend to share it — plus an intra-user next-activity
//! preference matrix. The CACE instantiation ([`cace_grammar`]) encodes the
//! eleven activities of Table III; the CASAS instantiation lives in
//! [`crate::casas`].

use cace_model::{Gestural, MacroActivity, Postural, SubLocation};
use cace_sensing::ObjectKind;

/// Behavioral specification of one macro activity.
#[derive(Debug, Clone)]
pub struct ActivitySpec {
    /// Display name.
    pub name: String,
    /// Venues where the activity is performed; the first is primary.
    pub venues: Vec<SubLocation>,
    /// Per-tick probability of hopping to a straddle venue (the paper's
    /// "watching TV while cooking" pattern).
    pub straddle_prob: f64,
    /// Venues visited during straddles (empty = no straddling).
    pub straddle_venues: Vec<SubLocation>,
    /// Postural distribution while performing the activity.
    pub postural_weights: Vec<(Postural, f64)>,
    /// Oral-gestural distribution while performing the activity.
    pub gestural_weights: Vec<(Gestural, f64)>,
    /// Episode duration bounds in ticks.
    pub min_ticks: usize,
    /// Maximum episode length in ticks.
    pub max_ticks: usize,
    /// Whether residents tend to perform it together.
    pub shared: bool,
    /// Probability the partner joins a shared activity in progress.
    pub join_prob: f64,
    /// Per-tick probability of touching one of the activity's objects.
    pub object_touch_prob: f64,
    /// Objects touched while performing the activity.
    pub objects: Vec<ObjectKind>,
}

impl ActivitySpec {
    /// The primary venue.
    ///
    /// # Panics
    /// Panics if the spec has no venues (invalid grammar).
    pub fn primary_venue(&self) -> SubLocation {
        *self.venues.first().expect("activity must have a venue")
    }

    /// Mean episode duration in ticks.
    pub fn mean_ticks(&self) -> f64 {
        (self.min_ticks + self.max_ticks) as f64 / 2.0
    }
}

/// A complete activity grammar for a household.
#[derive(Debug, Clone)]
pub struct Grammar {
    /// One spec per activity; the activity id is the index.
    pub activities: Vec<ActivitySpec>,
    /// `transition_weights[i][j]`: preference for going from activity `i`
    /// to activity `j` (diagonal is ignored; zero forbids).
    pub transition_weights: Vec<Vec<f64>>,
    /// Index of the filler/transition activity ("Random" in CACE, "Other"
    /// in CASAS).
    pub filler: usize,
    /// Whether the gestural modality exists in this dataset.
    pub has_gestural: bool,
}

impl Grammar {
    /// Number of macro activities.
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// Whether the grammar has no activities (never true for the built-ins).
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }

    /// The spec for an activity id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn spec(&self, id: usize) -> &ActivitySpec {
        &self.activities[id]
    }

    /// Validates internal consistency (weights nonnegative, matrix square,
    /// durations sane, filler in range).
    pub fn validate(&self) -> Result<(), String> {
        if self.activities.is_empty() {
            return Err("grammar has no activities".into());
        }
        if self.filler >= self.activities.len() {
            return Err(format!("filler id {} out of range", self.filler));
        }
        if self.transition_weights.len() != self.activities.len() {
            return Err("transition matrix row count mismatch".into());
        }
        for (i, row) in self.transition_weights.iter().enumerate() {
            if row.len() != self.activities.len() {
                return Err(format!("transition row {i} length mismatch"));
            }
            if row.iter().any(|&w| w < 0.0 || !w.is_finite()) {
                return Err(format!("transition row {i} has invalid weight"));
            }
            let off_diag: f64 = row
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &w)| w)
                .sum();
            if off_diag <= 0.0 {
                return Err(format!("activity {i} has no outgoing transition"));
            }
        }
        for (i, spec) in self.activities.iter().enumerate() {
            if spec.venues.is_empty() {
                return Err(format!("activity {i} ({}) has no venue", spec.name));
            }
            if spec.min_ticks == 0 || spec.max_ticks < spec.min_ticks {
                return Err(format!("activity {i} has invalid duration bounds"));
            }
            if spec.postural_weights.is_empty() || spec.gestural_weights.is_empty() {
                return Err(format!("activity {i} lacks micro distributions"));
            }
        }
        Ok(())
    }
}

/// The CACE grammar: the eleven activities of Table III with the behavioral
/// couplings described throughout the paper.
pub fn cace_grammar() -> Grammar {
    use Gestural as G;
    use MacroActivity as A;
    use Postural as P;
    use SubLocation as L;

    let spec = |a: A| -> ActivitySpec {
        let venues: Vec<L> = SubLocation::venues_of(a).to_vec();
        let (postural, gestural): (Vec<(P, f64)>, Vec<(G, f64)>) = match a {
            A::Exercising => (
                vec![(P::Cycling, 0.75), (P::Standing, 0.15), (P::Walking, 0.10)],
                vec![(G::Silent, 0.8), (G::Talking, 0.1), (G::Yawning, 0.1)],
            ),
            A::PrepareClothes => (
                vec![(P::Standing, 0.6), (P::Walking, 0.4)],
                vec![(G::Silent, 0.85), (G::Talking, 0.1), (G::Yawning, 0.05)],
            ),
            A::Dining => (
                vec![(P::Sitting, 0.9), (P::Standing, 0.1)],
                vec![(G::Eating, 0.6), (G::Talking, 0.3), (G::Silent, 0.1)],
            ),
            A::WatchingTv => (
                vec![(P::Sitting, 0.85), (P::Standing, 0.1), (P::Walking, 0.05)],
                vec![(G::Silent, 0.6), (G::Laughing, 0.2), (G::Talking, 0.2)],
            ),
            A::PrepareFood => (
                vec![(P::Standing, 0.65), (P::Walking, 0.35)],
                vec![(G::Silent, 0.7), (G::Talking, 0.3)],
            ),
            A::Studying => (
                vec![(P::Sitting, 0.92), (P::Standing, 0.08)],
                vec![(G::Silent, 0.9), (G::Yawning, 0.07), (G::Talking, 0.03)],
            ),
            A::Sleeping => (
                vec![(P::Lying, 0.96), (P::Sitting, 0.04)],
                vec![(G::Silent, 0.93), (G::Yawning, 0.07)],
            ),
            A::Bathrooming => (
                vec![(P::Standing, 0.7), (P::Sitting, 0.3)],
                vec![(G::Silent, 0.95), (G::Yawning, 0.05)],
            ),
            A::Cooking => (
                vec![(P::Standing, 0.7), (P::Walking, 0.3)],
                vec![(G::Silent, 0.65), (G::Talking, 0.3), (G::Yawning, 0.05)],
            ),
            A::PastTimes => (
                vec![(P::Sitting, 0.6), (P::Standing, 0.25), (P::Walking, 0.15)],
                vec![(G::Talking, 0.45), (G::Laughing, 0.25), (G::Silent, 0.3)],
            ),
            A::Random => (
                vec![(P::Walking, 0.75), (P::Standing, 0.25)],
                vec![(G::Silent, 0.85), (G::Talking, 0.15)],
            ),
        };
        let (min_ticks, max_ticks) = match a {
            A::Exercising => (20, 60),
            A::PrepareClothes => (6, 16),
            A::Dining => (20, 50),
            A::WatchingTv => (25, 70),
            A::PrepareFood => (10, 25),
            A::Studying => (25, 70),
            A::Sleeping => (40, 120),
            A::Bathrooming => (6, 20),
            A::Cooking => (20, 45),
            A::PastTimes => (20, 60),
            A::Random => (2, 6),
        };
        let (straddle_prob, straddle_venues) = match a {
            // The paper's motivating example: go back and forth between the
            // kitchen and the living room while cooking / watching TV.
            A::Cooking => (0.06, vec![L::Couch1, L::DiningTable]),
            A::WatchingTv => (0.04, vec![L::Kitchen]),
            A::PrepareFood => (0.05, vec![L::DiningTable]),
            _ => (0.0, vec![]),
        };
        let shared = a.is_typically_shared();
        let join_prob = match a {
            A::Dining => 0.85,
            A::Sleeping => 0.7,
            A::PastTimes => 0.6,
            A::WatchingTv => 0.35,
            _ => 0.0,
        };
        ActivitySpec {
            name: a.label().to_string(),
            venues,
            straddle_prob,
            straddle_venues,
            postural_weights: postural,
            gestural_weights: gestural,
            min_ticks,
            max_ticks,
            shared: shared || matches!(a, A::WatchingTv),
            join_prob,
            object_touch_prob: if ObjectKind::used_by(a).is_empty() {
                0.0
            } else {
                0.35
            },
            objects: ObjectKind::used_by(a).to_vec(),
        }
    };

    let activities: Vec<ActivitySpec> = MacroActivity::ALL.into_iter().map(spec).collect();
    let n = activities.len();

    // Morning-routine transition preferences. Encodes intra-user constraints
    // such as "no jogging right after dinner" (Exercising after Dining is
    // heavily dispreferred).
    let mut w = vec![vec![1.0; n]; n];
    let idx = |a: A| a.index();
    for (i, row) in w.iter_mut().enumerate() {
        row[i] = 0.0;
        // Everything flows through Random occasionally.
        row[idx(A::Random)] = 2.0;
    }
    // Sleeping → Bathrooming → Exercising / PrepareFood is the typical chain.
    w[idx(A::Sleeping)][idx(A::Bathrooming)] = 8.0;
    w[idx(A::Sleeping)][idx(A::Exercising)] = 2.0;
    w[idx(A::Bathrooming)][idx(A::PrepareFood)] = 4.0;
    w[idx(A::Bathrooming)][idx(A::Exercising)] = 3.0;
    w[idx(A::Bathrooming)][idx(A::PrepareClothes)] = 3.0;
    w[idx(A::Exercising)][idx(A::Bathrooming)] = 4.0;
    w[idx(A::PrepareFood)][idx(A::Cooking)] = 6.0;
    w[idx(A::Cooking)][idx(A::Dining)] = 8.0;
    w[idx(A::PrepareFood)][idx(A::Dining)] = 3.0;
    w[idx(A::Dining)][idx(A::WatchingTv)] = 4.0;
    w[idx(A::Dining)][idx(A::PastTimes)] = 3.0;
    w[idx(A::Dining)][idx(A::Studying)] = 2.0;
    // Constraint example from the paper: dining is rarely followed by
    // vigorous exercise.
    w[idx(A::Dining)][idx(A::Exercising)] = 0.05;
    w[idx(A::WatchingTv)][idx(A::PastTimes)] = 2.0;
    w[idx(A::Studying)][idx(A::PastTimes)] = 2.0;
    w[idx(A::PastTimes)][idx(A::WatchingTv)] = 2.0;
    // Nobody goes back to sleep mid-morning often.
    for i in 0..n {
        if i != idx(A::Sleeping) {
            w[i][idx(A::Sleeping)] = 0.1;
        }
    }

    let grammar = Grammar {
        activities,
        transition_weights: w,
        filler: idx(A::Random),
        has_gestural: true,
    };
    grammar.validate().expect("built-in grammar must be valid");
    grammar
}

/// The CACE grammar after **concept drift**: the same eleven activities,
/// venue vocabulary, and object vocabulary, but the household's *habits*
/// have shifted — including where activities are habitually performed
/// (meals on the couch, studying at the dining table). Every shift lands
/// in a CPT the HDBN's M-step re-estimates — posture-per-activity,
/// gesture-per-activity, location-per-activity, episode durations
/// (termination probabilities), and next-activity preferences — so a
/// model trained on [`cace_grammar`] data can recover by incremental EM
/// over drifted streams, without retraining classifiers or re-mining the
/// vocabulary. This is the drift scenario the `adaptation` bench and
/// `examples/failure_injection.rs` evaluate.
pub fn drifted_cace_grammar() -> Grammar {
    use Gestural as G;
    use MacroActivity as A;
    use Postural as P;
    use SubLocation as L;

    let mut g = cace_grammar();
    let idx = |a: A| a.index();

    // TV is now watched from a standing desk / treadmill, not the couch,
    // with frequent trips to the kitchen.
    let tv = &mut g.activities[idx(A::WatchingTv)];
    tv.postural_weights = vec![(P::Standing, 0.65), (P::Walking, 0.2), (P::Sitting, 0.15)];
    tv.straddle_prob = 0.3;
    tv.straddle_venues = vec![L::Kitchen, L::DiningTable];
    // Dinners got chattier, noticeably longer, and migrated to the couch
    // in front of the TV — the dining table's location signature no
    // longer identifies the meal.
    let dining = &mut g.activities[idx(A::Dining)];
    dining.gestural_weights = vec![(G::Talking, 0.5), (G::Eating, 0.4), (G::Silent, 0.1)];
    dining.min_ticks = 30;
    dining.max_ticks = 70;
    dining.straddle_prob = 0.45;
    dining.straddle_venues = vec![L::Couch1, L::Couch2];
    // Study sessions moved to a standing desk, shortened, and often happen
    // at the dining table instead of the reading table.
    let studying = &mut g.activities[idx(A::Studying)];
    studying.postural_weights = vec![(P::Standing, 0.55), (P::Sitting, 0.45)];
    studying.min_ticks = 12;
    studying.max_ticks = 35;
    studying.straddle_prob = 0.4;
    studying.straddle_venues = vec![L::DiningTable, L::Couch2];
    // Workouts became short interval sessions.
    let exercising = &mut g.activities[idx(A::Exercising)];
    exercising.min_ticks = 8;
    exercising.max_ticks = 25;
    // The routine reordered: a post-dinner workout is now the habit (the
    // old grammar heavily dispreferred it), at television's expense.
    g.transition_weights[idx(A::Dining)][idx(A::Exercising)] = 4.0;
    g.transition_weights[idx(A::Dining)][idx(A::WatchingTv)] = 1.0;
    g.transition_weights[idx(A::Exercising)][idx(A::WatchingTv)] = 3.0;

    g.validate().expect("drifted grammar must stay valid");
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cace_grammar_is_valid() {
        let g = cace_grammar();
        assert_eq!(g.len(), 11);
        assert!(g.validate().is_ok());
        assert!(g.has_gestural);
        assert_eq!(g.filler, MacroActivity::Random.index());
    }

    #[test]
    fn exercising_is_cycling_on_the_bike() {
        let g = cace_grammar();
        let spec = g.spec(MacroActivity::Exercising.index());
        assert_eq!(spec.primary_venue(), SubLocation::ExerciseBike);
        let top = spec
            .postural_weights
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(top, Postural::Cycling);
    }

    #[test]
    fn dining_is_shared_with_high_join_probability() {
        let g = cace_grammar();
        let spec = g.spec(MacroActivity::Dining.index());
        assert!(spec.shared);
        assert!(spec.join_prob > 0.8);
    }

    #[test]
    fn dining_to_exercising_is_dispreferred() {
        let g = cace_grammar();
        let row = &g.transition_weights[MacroActivity::Dining.index()];
        assert!(row[MacroActivity::Exercising.index()] < 0.1);
        assert!(row[MacroActivity::WatchingTv.index()] > 1.0);
    }

    #[test]
    fn cooking_straddles_into_the_living_room() {
        let g = cace_grammar();
        let spec = g.spec(MacroActivity::Cooking.index());
        assert!(spec.straddle_prob > 0.0);
        assert!(spec.straddle_venues.contains(&SubLocation::Couch1));
    }

    #[test]
    fn drifted_grammar_shares_the_vocabulary_but_not_the_habits() {
        let base = cace_grammar();
        let drifted = drifted_cace_grammar();
        assert!(drifted.validate().is_ok());
        // Same vocabulary: activity count, names, venues, objects.
        assert_eq!(drifted.len(), base.len());
        for (b, d) in base.activities.iter().zip(&drifted.activities) {
            assert_eq!(b.name, d.name);
            assert_eq!(b.venues, d.venues);
            assert_eq!(b.objects, d.objects);
        }
        // Different habits: the post-dinner workout is now preferred...
        let dining = MacroActivity::Dining.index();
        let exercising = MacroActivity::Exercising.index();
        assert!(base.transition_weights[dining][exercising] < 0.1);
        assert!(drifted.transition_weights[dining][exercising] > 1.0);
        // ...and TV is watched on foot.
        let tv = MacroActivity::WatchingTv.index();
        let top = |g: &Grammar| {
            g.spec(tv)
                .postural_weights
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(top(&base), Postural::Sitting);
        assert_eq!(top(&drifted), Postural::Standing);
    }

    #[test]
    fn validation_catches_broken_grammars() {
        let mut g = cace_grammar();
        g.transition_weights[3][5] = -1.0;
        assert!(g.validate().is_err());

        let mut g = cace_grammar();
        g.activities[2].venues.clear();
        assert!(g.validate().is_err());

        let mut g = cace_grammar();
        g.activities[1].max_ticks = 0;
        assert!(g.validate().is_err());

        let mut g = cace_grammar();
        g.filler = 99;
        assert!(g.validate().is_err());
    }
}
