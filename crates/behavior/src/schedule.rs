//! Joint two-resident activity scheduling.
//!
//! The scheduler realizes a coupled semi-Markov process over macro
//! activities. The couplings are the behavioral interactions the paper
//! exploits:
//!
//! * **Join-in**: when a resident finishes an episode while the partner is
//!   in a *shared* activity (dining, sleeping, past times, watching TV),
//!   they join with that activity's `join_prob` — producing the inter-user
//!   correlations the rule miner discovers (Proposition 4).
//! * **Exclusivity**: nobody starts an activity whose primary venue is
//!   exclusive (the bathroom) while the partner occupies it
//!   (Proposition 2).
//! * **Intra-user preference**: next activities are drawn from the
//!   grammar's transition matrix, which encodes constraints such as "no
//!   exercising right after dining" (Proposition 3).

use cace_model::TickIndex;
use cace_model::TimeSpan;
use cace_signal::GaussianSampler;

use crate::grammar::Grammar;

/// One contiguous macro-activity episode of one resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Episode {
    /// Activity id (index into the grammar).
    pub activity: usize,
    /// Tick extent of the episode.
    pub span: TimeSpan,
}

/// The per-tick macro-activity labels and episode lists for both residents.
#[derive(Debug, Clone, PartialEq)]
pub struct JointSchedule {
    /// `labels[u][t]` = activity id of resident `u` at tick `t`.
    pub labels: [Vec<usize>; 2],
    /// Episode decomposition per resident.
    pub episodes: [Vec<Episode>; 2],
}

impl JointSchedule {
    /// Number of ticks scheduled.
    pub fn len(&self) -> usize {
        self.labels[0].len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.labels[0].is_empty()
    }

    /// Fraction of ticks during which both residents perform the same
    /// activity (a coupling diagnostic).
    pub fn shared_fraction(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let same = self.labels[0]
            .iter()
            .zip(&self.labels[1])
            .filter(|(a, b)| a == b)
            .count();
        same as f64 / self.len() as f64
    }
}

#[derive(Debug, Clone, Copy)]
struct UserState {
    activity: usize,
    remaining: usize,
    episode_start: usize,
}

/// Generates a coupled schedule of `ticks` ticks for two residents.
///
/// Both residents start asleep (or in the grammar's first shared activity if
/// no "sleeping-like" long activity exists; for the CACE grammar this is
/// activity 6, *Sleeping*).
///
/// # Panics
/// Panics if the grammar fails validation or `ticks == 0`.
pub fn generate_schedule(
    grammar: &Grammar,
    ticks: usize,
    start_activity: usize,
    rng: &mut GaussianSampler,
) -> JointSchedule {
    grammar.validate().expect("invalid grammar");
    assert!(ticks > 0, "schedule must cover at least one tick");
    assert!(
        start_activity < grammar.len(),
        "start activity out of range"
    );

    let draw_duration = |id: usize, rng: &mut GaussianSampler| -> usize {
        let spec = grammar.spec(id);
        if spec.max_ticks == spec.min_ticks {
            spec.min_ticks
        } else {
            spec.min_ticks + rng.below(spec.max_ticks - spec.min_ticks + 1)
        }
    };

    let mut labels: [Vec<usize>; 2] = [Vec::with_capacity(ticks), Vec::with_capacity(ticks)];
    let mut episodes: [Vec<Episode>; 2] = [Vec::new(), Vec::new()];
    let mut users = [
        UserState {
            activity: start_activity,
            remaining: draw_duration(start_activity, rng),
            episode_start: 0,
        },
        UserState {
            activity: start_activity,
            remaining: draw_duration(start_activity, rng),
            episode_start: 0,
        },
    ];

    for t in 0..ticks {
        for u in 0..2 {
            if users[u].remaining == 0 {
                // Close the finished episode.
                episodes[u].push(Episode {
                    activity: users[u].activity,
                    span: TimeSpan::new(TickIndex(users[u].episode_start), TickIndex(t)),
                });
                let partner = &users[1 - u];
                let next = pick_next(grammar, users[u].activity, partner.activity, rng);
                let mut duration = draw_duration(next, rng);
                // Joining a shared activity aligns the end times so shared
                // episodes overlap heavily (the ≈99.7 % shared-activity
                // accuracy in the paper rests on this temporal alignment).
                if next == partner.activity && grammar.spec(next).shared {
                    let jitter = 1 + rng.below(4);
                    duration = partner.remaining.saturating_add(jitter).max(2);
                }
                users[u] = UserState {
                    activity: next,
                    remaining: duration,
                    episode_start: t,
                };
            }
            labels[u].push(users[u].activity);
            users[u].remaining -= 1;
        }
    }
    for (u, user) in users.iter().enumerate() {
        episodes[u].push(Episode {
            activity: user.activity,
            span: TimeSpan::new(TickIndex(user.episode_start), TickIndex(ticks)),
        });
    }

    JointSchedule { labels, episodes }
}

fn pick_next(
    grammar: &Grammar,
    current: usize,
    partner_activity: usize,
    rng: &mut GaussianSampler,
) -> usize {
    // Coupling 1: join the partner's shared activity.
    let partner_spec = grammar.spec(partner_activity);
    if partner_spec.shared && partner_activity != current && rng.chance(partner_spec.join_prob) {
        return partner_activity;
    }

    // Coupling 2 + intra-user preferences: sample, rejecting exclusive-venue
    // conflicts with the partner.
    let weights = &grammar.transition_weights[current];
    for _attempt in 0..16 {
        let candidate = rng.weighted_choice(weights);
        if candidate == current {
            continue;
        }
        let spec = grammar.spec(candidate);
        let exclusive_conflict = spec.primary_venue().is_exclusive()
            && grammar.spec(partner_activity).primary_venue() == spec.primary_venue();
        if exclusive_conflict {
            continue;
        }
        return candidate;
    }
    grammar.filler
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::cace_grammar;
    use cace_model::MacroActivity;

    fn schedule(seed: u64, ticks: usize) -> JointSchedule {
        let g = cace_grammar();
        let mut rng = GaussianSampler::seed_from_u64(seed);
        generate_schedule(&g, ticks, MacroActivity::Sleeping.index(), &mut rng)
    }

    #[test]
    fn schedule_covers_requested_ticks() {
        let s = schedule(1, 500);
        assert_eq!(s.len(), 500);
        assert_eq!(s.labels[1].len(), 500);
        assert!(!s.is_empty());
    }

    #[test]
    fn episodes_tile_the_session() {
        let s = schedule(2, 800);
        for u in 0..2 {
            assert_eq!(s.episodes[u].first().unwrap().span.start.0, 0);
            assert_eq!(s.episodes[u].last().unwrap().span.end.0, 800);
            for w in s.episodes[u].windows(2) {
                assert_eq!(w[0].span.end, w[1].span.start, "episodes must tile");
            }
            // Labels agree with episodes.
            for ep in &s.episodes[u] {
                for t in ep.span.iter() {
                    assert_eq!(s.labels[u][t.0], ep.activity);
                }
            }
        }
    }

    #[test]
    fn residents_share_activities_substantially() {
        // The join-in coupling should yield a large same-activity fraction.
        let mut total = 0.0;
        for seed in 0..5 {
            total += schedule(seed, 1000).shared_fraction();
        }
        let avg = total / 5.0;
        assert!(avg > 0.3, "shared fraction too low: {avg}");
        assert!(avg < 0.95, "shared fraction suspiciously high: {avg}");
    }

    #[test]
    fn bathroom_is_never_shared() {
        let bathrooming = MacroActivity::Bathrooming.index();
        for seed in 0..10 {
            let s = schedule(seed, 1000);
            let overlap = s.labels[0]
                .iter()
                .zip(&s.labels[1])
                .filter(|(a, b)| **a == bathrooming && **b == bathrooming)
                .count();
            assert_eq!(overlap, 0, "seed {seed}: concurrent bathrooming");
        }
    }

    #[test]
    fn dining_after_dining_not_exercising() {
        // Aggregate statistic: transitions Dining → Exercising must be rare.
        let dining = MacroActivity::Dining.index();
        let exercising = MacroActivity::Exercising.index();
        let mut dining_exits = 0usize;
        let mut to_exercise = 0usize;
        for seed in 0..20 {
            let s = schedule(seed, 1500);
            for u in 0..2 {
                for w in s.episodes[u].windows(2) {
                    if w[0].activity == dining {
                        dining_exits += 1;
                        if w[1].activity == exercising {
                            to_exercise += 1;
                        }
                    }
                }
            }
        }
        assert!(dining_exits > 10, "need data: {dining_exits}");
        let rate = to_exercise as f64 / dining_exits as f64;
        assert!(rate < 0.08, "Dining→Exercising rate {rate}");
    }

    #[test]
    fn all_activities_eventually_occur() {
        let mut seen = vec![false; 11];
        for seed in 0..20 {
            let s = schedule(seed, 1500);
            for u in 0..2 {
                for ep in &s.episodes[u] {
                    seen[ep.activity] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "coverage: {seen:?}");
    }

    #[test]
    fn determinism() {
        assert_eq!(schedule(7, 300), schedule(7, 300));
    }

    #[test]
    #[should_panic(expected = "at least one tick")]
    fn zero_ticks_rejected() {
        let g = cace_grammar();
        let mut rng = GaussianSampler::seed_from_u64(0);
        generate_schedule(&g, 0, 0, &mut rng);
    }
}
