//! # cace-behavior
//!
//! Multi-inhabitant behavioral routine simulation.
//!
//! The paper evaluates on two datasets: (i) one month of naturalistic
//! morning-routine data from five two-resident PogoPlug smart homes, and
//! (ii) the CASAS multi-resident ADL dataset (26 pairs, 15 activities,
//! motion sensors only). Neither dataset ships with this reproduction, so
//! this crate generates behaviorally equivalent traces: a stochastic
//! *activity grammar* drives a joint two-resident scheduler whose couplings
//! (dining together, exclusive bathroom, join-in leisure) are exactly the
//! correlations and constraints the CACE miners are designed to discover.
//!
//! The output of a simulation is a [`Session`]: per-tick ground truth
//! (micro + macro states for both residents) plus the full sensor record
//! from [`cace_sensing`].
//!
//! ```
//! use cace_behavior::{cace_grammar, SessionConfig, simulate_session};
//!
//! let session = simulate_session(&cace_grammar(), &SessionConfig::tiny(), 42);
//! assert!(session.ticks.len() >= 60);
//! assert_eq!(session.n_activities, 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod casas;
pub mod grammar;
pub mod micro;
pub mod schedule;
pub mod session;

pub use casas::{casas_grammar, generate_casas_dataset, CasasConfig};
pub use grammar::{cace_grammar, drifted_cace_grammar, ActivitySpec, Grammar};
pub use schedule::{Episode, JointSchedule};
pub use session::{
    generate_cace_dataset, simulate_session, train_test_split, try_train_test_split, ObservedTick,
    Session, SessionConfig, SessionTick, UserObservation,
};
