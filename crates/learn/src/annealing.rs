//! Deterministic annealing clustering (Rose, 1998), used by the paper
//! (citing Muncaster & Ma \[8\]) to discover the representative low-level
//! observation states whose Gaussians parameterize the HDBN emissions.
//!
//! The algorithm performs soft (Gibbs) assignments
//! `p(c | x) ∝ w_c · exp(−‖x − μ_c‖² / T)` and anneals the temperature `T`
//! downward; at high `T` all centers coincide (one effective cluster) and
//! clusters split as `T` cools, avoiding poor local minima of plain k-means.

use cace_model::ModelError;
use cace_signal::GaussianSampler;

use crate::gaussian::DiagonalGaussian;

/// Annealing schedule and cluster-count configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealingConfig {
    /// Number of clusters to produce.
    pub k: usize,
    /// Initial temperature as a multiple of the data variance.
    pub initial_temperature_scale: f64,
    /// Multiplicative cooling factor per phase (in `(0, 1)`).
    pub cooling: f64,
    /// Final temperature (stop annealing when reached).
    pub final_temperature: f64,
    /// Soft-assignment iterations per temperature phase.
    pub iterations_per_phase: usize,
}

impl Default for AnnealingConfig {
    fn default() -> Self {
        Self {
            k: 8,
            initial_temperature_scale: 2.0,
            cooling: 0.6,
            final_temperature: 1e-3,
            iterations_per_phase: 8,
        }
    }
}

/// The result of deterministic-annealing clustering.
#[derive(Debug, Clone)]
pub struct DeterministicAnnealing {
    centers: Vec<Vec<f64>>,
    /// Per-cluster Gaussians fitted to the final hard assignment.
    gaussians: Vec<DiagonalGaussian>,
    assignments: Vec<usize>,
}

impl DeterministicAnnealing {
    /// Clusters `samples` into `config.k` groups.
    ///
    /// # Errors
    /// Returns [`ModelError::InsufficientData`] if there are fewer samples
    /// than clusters and [`ModelError::InvalidConfig`] for bad schedules.
    pub fn fit(
        samples: &[Vec<f64>],
        config: &AnnealingConfig,
        seed: u64,
    ) -> Result<Self, ModelError> {
        if config.k == 0 || !(0.0..1.0).contains(&config.cooling) {
            return Err(ModelError::InvalidConfig(
                "annealing needs k ≥ 1 and cooling in (0,1)".into(),
            ));
        }
        if samples.len() < config.k {
            return Err(ModelError::InsufficientData {
                what: "annealing clustering".into(),
                available: samples.len(),
                required: config.k,
            });
        }
        let d = samples[0].len();
        if samples.iter().any(|s| s.len() != d) {
            return Err(ModelError::InvalidConfig("ragged sample rows".into()));
        }

        let n = samples.len() as f64;
        let mut rng = GaussianSampler::seed_from_u64(seed);

        // Global mean and variance set the temperature scale.
        let mut global_mean = vec![0.0; d];
        for s in samples {
            for (m, v) in global_mean.iter_mut().zip(s) {
                *m += v / n;
            }
        }
        let variance: f64 = samples
            .iter()
            .map(|s| {
                s.iter()
                    .zip(&global_mean)
                    .map(|(a, b)| (a - b).powi(2))
                    .sum::<f64>()
            })
            .sum::<f64>()
            / n;

        // All centers start at the global mean plus a tiny symmetric-
        // breaking perturbation.
        let mut centers: Vec<Vec<f64>> = (0..config.k)
            .map(|_| {
                global_mean
                    .iter()
                    .map(|m| m + rng.normal(0.0, 1e-3 * (variance.sqrt() + 1e-9)))
                    .collect()
            })
            .collect();

        let mut temperature =
            (variance * config.initial_temperature_scale).max(config.final_temperature);
        let mut responsibilities = vec![vec![0.0; config.k]; samples.len()];

        loop {
            for _ in 0..config.iterations_per_phase {
                // E step: Gibbs responsibilities.
                for (i, s) in samples.iter().enumerate() {
                    let mut log_w: Vec<f64> = centers
                        .iter()
                        .map(|c| {
                            -s.iter().zip(c).map(|(a, b)| (a - b).powi(2)).sum::<f64>()
                                / temperature
                        })
                        .collect();
                    let max = log_w.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let mut total = 0.0;
                    for w in &mut log_w {
                        *w = (*w - max).exp();
                        total += *w;
                    }
                    for (r, w) in responsibilities[i].iter_mut().zip(&log_w) {
                        *r = w / total;
                    }
                }
                // M step: weighted means.
                for (c, center) in centers.iter_mut().enumerate() {
                    let mut weight = 0.0;
                    let mut acc = vec![0.0; d];
                    for (i, s) in samples.iter().enumerate() {
                        let r = responsibilities[i][c];
                        weight += r;
                        for (a, v) in acc.iter_mut().zip(s) {
                            *a += r * v;
                        }
                    }
                    if weight > 1e-12 {
                        for (slot, a) in center.iter_mut().zip(acc) {
                            *slot = a / weight;
                        }
                    } else {
                        // Dead cluster: restart at a random sample.
                        *center = samples[rng.below(samples.len())].clone();
                    }
                }
            }
            if temperature <= config.final_temperature {
                break;
            }
            temperature = (temperature * config.cooling).max(config.final_temperature);
            // Re-perturb to let coincident centers split as T cools.
            for center in &mut centers {
                for v in center.iter_mut() {
                    *v += rng.normal(0.0, 1e-4 * (variance.sqrt() + 1e-9));
                }
            }
        }

        // Final hard assignment + per-cluster Gaussians.
        let assignments: Vec<usize> = samples
            .iter()
            .map(|s| {
                centers
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        let da: f64 = s.iter().zip(a.1).map(|(x, c)| (x - c).powi(2)).sum();
                        let db: f64 = s.iter().zip(b.1).map(|(x, c)| (x - c).powi(2)).sum();
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .map(|(i, _)| i)
                    .expect("k ≥ 1")
            })
            .collect();

        let gaussians = (0..config.k)
            .map(|c| {
                let members: Vec<&[f64]> = samples
                    .iter()
                    .zip(&assignments)
                    .filter(|&(_, &a)| a == c)
                    .map(|(s, _)| s.as_slice())
                    .collect();
                if members.is_empty() {
                    DiagonalGaussian::from_params(centers[c].clone(), vec![1.0; d])
                } else {
                    DiagonalGaussian::fit(&members).expect("nonempty cluster")
                }
            })
            .collect();

        Ok(Self {
            centers,
            gaussians,
            assignments,
        })
    }

    /// The cluster centers.
    pub fn centers(&self) -> &[Vec<f64>] {
        &self.centers
    }

    /// Per-cluster fitted Gaussians (HDBN emission parameters).
    pub fn gaussians(&self) -> &[DiagonalGaussian] {
        &self.gaussians
    }

    /// Final hard assignment of each training sample.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Nearest cluster of a new sample.
    pub fn assign(&self, x: &[f64]) -> usize {
        self.centers
            .iter()
            .enumerate()
            .min_by(|a, b| {
                let da: f64 = x.iter().zip(a.1).map(|(p, c)| (p - c).powi(2)).sum();
                let db: f64 = x.iter().zip(b.1).map(|(p, c)| (p - c).powi(2)).sum();
                da.partial_cmp(&db).expect("finite distances")
            })
            .map(|(i, _)| i)
            .expect("k ≥ 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs(seed: u64, per_blob: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = GaussianSampler::seed_from_u64(seed);
        let centers = [(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)];
        let mut xs = Vec::new();
        let mut truth = Vec::new();
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..per_blob {
                xs.push(vec![rng.normal(cx, 0.5), rng.normal(cy, 0.5)]);
                truth.push(c);
            }
        }
        (xs, truth)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (xs, truth) = three_blobs(1, 60);
        let config = AnnealingConfig {
            k: 3,
            ..AnnealingConfig::default()
        };
        let da = DeterministicAnnealing::fit(&xs, &config, 2).unwrap();
        // Clustering is label-invariant: check that same-truth pairs share a
        // cluster and different-truth pairs do not (sampled).
        let a = da.assignments();
        let mut agree = 0;
        let mut total = 0;
        for i in (0..xs.len()).step_by(7) {
            for j in (i + 1..xs.len()).step_by(11) {
                total += 1;
                let same_truth = truth[i] == truth[j];
                let same_cluster = a[i] == a[j];
                if same_truth == same_cluster {
                    agree += 1;
                }
            }
        }
        let rate = agree as f64 / total as f64;
        assert!(rate > 0.95, "pair agreement {rate}");
    }

    #[test]
    fn centers_land_near_blob_means() {
        let (xs, _) = three_blobs(3, 80);
        let config = AnnealingConfig {
            k: 3,
            ..AnnealingConfig::default()
        };
        let da = DeterministicAnnealing::fit(&xs, &config, 4).unwrap();
        let expected = [(0.0, 0.0), (8.0, 0.0), (0.0, 8.0)];
        for &(ex, ey) in &expected {
            let nearest = da
                .centers()
                .iter()
                .map(|c| ((c[0] - ex).powi(2) + (c[1] - ey).powi(2)).sqrt())
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 1.0, "no center near ({ex},{ey}): {nearest}");
        }
    }

    #[test]
    fn gaussians_cover_their_clusters() {
        let (xs, _) = three_blobs(5, 50);
        let config = AnnealingConfig {
            k: 3,
            ..AnnealingConfig::default()
        };
        let da = DeterministicAnnealing::fit(&xs, &config, 6).unwrap();
        // A point at a blob center should score best under its own Gaussian.
        let own = da.assign(&[8.0, 0.0]);
        let lp_own = da.gaussians()[own].log_pdf(&[8.0, 0.0]);
        for (c, g) in da.gaussians().iter().enumerate() {
            if c != own {
                assert!(lp_own >= g.log_pdf(&[8.0, 0.0]), "cluster {c} outranks own");
            }
        }
    }

    #[test]
    fn assignment_is_consistent_with_assign() {
        let (xs, _) = three_blobs(7, 30);
        let config = AnnealingConfig {
            k: 3,
            ..AnnealingConfig::default()
        };
        let da = DeterministicAnnealing::fit(&xs, &config, 8).unwrap();
        for (s, &a) in xs.iter().zip(da.assignments()) {
            assert_eq!(da.assign(s), a);
        }
    }

    #[test]
    fn rejects_bad_config_and_data() {
        let xs = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            DeterministicAnnealing::fit(
                &xs,
                &AnnealingConfig {
                    k: 0,
                    ..AnnealingConfig::default()
                },
                1
            ),
            Err(ModelError::InvalidConfig(_))
        ));
        assert!(matches!(
            DeterministicAnnealing::fit(
                &xs,
                &AnnealingConfig {
                    k: 5,
                    ..AnnealingConfig::default()
                },
                1
            ),
            Err(ModelError::InsufficientData { .. })
        ));
        assert!(matches!(
            DeterministicAnnealing::fit(
                &xs,
                &AnnealingConfig {
                    cooling: 1.5,
                    k: 1,
                    ..AnnealingConfig::default()
                },
                1
            ),
            Err(ModelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn determinism() {
        let (xs, _) = three_blobs(9, 40);
        let config = AnnealingConfig {
            k: 3,
            ..AnnealingConfig::default()
        };
        let a = DeterministicAnnealing::fit(&xs, &config, 10).unwrap();
        let b = DeterministicAnnealing::fit(&xs, &config, 10).unwrap();
        assert_eq!(a.assignments(), b.assignments());
    }
}
