//! # cace-learn
//!
//! Learning substrate for the CACE reproduction.
//!
//! The paper uses (i) WEKA's random forest for micro-activity classification
//! (§VII-E), (ii) deterministic annealing clustering \[8\] to discover the
//! low-level observation states whose Gaussians parameterize the HDBN
//! emissions (Augmentation 4), and (iii) multivariate Gaussian observation
//! densities. All three are implemented here from scratch.
//!
//! ```
//! use cace_learn::{RandomForest, ForestConfig};
//!
//! let xs = vec![vec![0.0, 0.0], vec![0.1, 0.2], vec![5.0, 5.0], vec![4.9, 5.2]];
//! let ys = vec![0, 0, 1, 1];
//! let forest = RandomForest::fit(&xs, &ys, 2, &ForestConfig::default(), 42).unwrap();
//! assert_eq!(forest.predict(&[5.1, 4.8]), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annealing;
pub mod forest;
pub mod gaussian;
pub mod tree;

pub use annealing::{AnnealingConfig, DeterministicAnnealing};
pub use forest::{ForestConfig, RandomForest};
pub use gaussian::DiagonalGaussian;
pub use tree::{DecisionTree, TreeConfig};
