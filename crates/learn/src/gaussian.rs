//! Multivariate Gaussian observation densities.
//!
//! Augmentation 4 of the paper models micro-level observations as
//! multivariate Gaussians `N(o; μ_k, Γ_k)` per low-level state `k`. We use a
//! diagonal covariance with variance flooring — the standard robust choice
//! when the feature dimension (32) approaches the per-cluster sample count.

use cace_model::ModelError;

/// A diagonal-covariance multivariate Gaussian.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagonalGaussian {
    mean: Vec<f64>,
    variance: Vec<f64>,
    /// Cached `-½ Σ log(2π σ²)` normalization term.
    log_norm: f64,
}

impl DiagonalGaussian {
    /// Minimum variance floor applied per dimension.
    pub const VARIANCE_FLOOR: f64 = 1e-4;

    /// Fits mean and per-dimension variance from sample rows.
    ///
    /// # Errors
    /// Returns [`ModelError::InsufficientData`] when `samples` is empty and
    /// [`ModelError::LengthMismatch`] on ragged rows.
    pub fn fit(samples: &[&[f64]]) -> Result<Self, ModelError> {
        let n = samples.len();
        if n == 0 {
            return Err(ModelError::InsufficientData {
                what: "gaussian fit".into(),
                available: 0,
                required: 1,
            });
        }
        let d = samples[0].len();
        if samples.iter().any(|s| s.len() != d) {
            return Err(ModelError::LengthMismatch {
                what: "gaussian sample dimensions".into(),
                left: d,
                right: samples
                    .iter()
                    .map(|s| s.len())
                    .find(|&l| l != d)
                    .unwrap_or(d),
            });
        }
        let mut mean = vec![0.0; d];
        for s in samples {
            for (m, v) in mean.iter_mut().zip(*s) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut variance = vec![0.0; d];
        for s in samples {
            for ((var, m), v) in variance.iter_mut().zip(&mean).zip(*s) {
                *var += (v - m).powi(2);
            }
        }
        for var in &mut variance {
            *var = (*var / n as f64).max(Self::VARIANCE_FLOOR);
        }
        Ok(Self::from_params(mean, variance))
    }

    /// Constructs from explicit parameters (variances floored).
    ///
    /// # Panics
    /// Panics if `mean` and `variance` lengths differ or are empty.
    pub fn from_params(mean: Vec<f64>, mut variance: Vec<f64>) -> Self {
        assert_eq!(
            mean.len(),
            variance.len(),
            "mean/variance dimension mismatch"
        );
        assert!(!mean.is_empty(), "gaussian needs at least one dimension");
        for v in &mut variance {
            *v = v.max(Self::VARIANCE_FLOOR);
        }
        let log_norm = -0.5
            * variance
                .iter()
                .map(|v| (2.0 * std::f64::consts::PI * v).ln())
                .sum::<f64>();
        Self {
            mean,
            variance,
            log_norm,
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The mean vector.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The per-dimension variances.
    pub fn variance(&self) -> &[f64] {
        &self.variance
    }

    /// Log-density at `x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.dim()`.
    pub fn log_pdf(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        let mahalanobis: f64 = x
            .iter()
            .zip(&self.mean)
            .zip(&self.variance)
            .map(|((xi, mi), vi)| (xi - mi).powi(2) / vi)
            .sum();
        self.log_norm - 0.5 * mahalanobis
    }

    /// Squared Euclidean distance from the mean (used by the annealing
    /// clusterer).
    pub fn sq_dist_to_mean(&self, x: &[f64]) -> f64 {
        x.iter().zip(&self.mean).map(|(a, b)| (a - b).powi(2)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_moments() {
        let samples: Vec<Vec<f64>> = vec![
            vec![1.0, 10.0],
            vec![2.0, 12.0],
            vec![3.0, 14.0],
            vec![4.0, 16.0],
        ];
        let refs: Vec<&[f64]> = samples.iter().map(|s| s.as_slice()).collect();
        let g = DiagonalGaussian::fit(&refs).unwrap();
        assert_eq!(g.mean(), &[2.5, 13.0]);
        assert!((g.variance()[0] - 1.25).abs() < 1e-12);
        assert!((g.variance()[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn log_pdf_peaks_at_mean() {
        let samples = [vec![0.0, 0.0], vec![2.0, 2.0]];
        let refs: Vec<&[f64]> = samples.iter().map(|s| s.as_slice()).collect();
        let g = DiagonalGaussian::fit(&refs).unwrap();
        let at_mean = g.log_pdf(&[1.0, 1.0]);
        assert!(at_mean > g.log_pdf(&[3.0, 3.0]));
        assert!(at_mean > g.log_pdf(&[0.0, 2.0]) - 1e-12);
    }

    #[test]
    fn log_pdf_matches_univariate_closed_form() {
        let g = DiagonalGaussian::from_params(vec![0.0], vec![1.0]);
        // Standard normal: log pdf(0) = -0.5 ln(2π).
        let expected = -0.5 * (2.0 * std::f64::consts::PI).ln();
        assert!((g.log_pdf(&[0.0]) - expected).abs() < 1e-12);
        // pdf(1)/pdf(0) = exp(-1/2).
        assert!((g.log_pdf(&[1.0]) - (expected - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn variance_floor_prevents_degeneracy() {
        let samples = [vec![5.0], vec![5.0], vec![5.0]];
        let refs: Vec<&[f64]> = samples.iter().map(|s| s.as_slice()).collect();
        let g = DiagonalGaussian::fit(&refs).unwrap();
        assert!(g.variance()[0] >= DiagonalGaussian::VARIANCE_FLOOR);
        assert!(g.log_pdf(&[5.0]).is_finite());
    }

    #[test]
    fn rejects_empty_and_ragged() {
        assert!(matches!(
            DiagonalGaussian::fit(&[]),
            Err(ModelError::InsufficientData { .. })
        ));
        let a = [1.0, 2.0];
        let b = [1.0];
        assert!(matches!(
            DiagonalGaussian::fit(&[&a, &b]),
            Err(ModelError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn sq_dist() {
        let g = DiagonalGaussian::from_params(vec![1.0, 1.0], vec![1.0, 1.0]);
        assert!((g.sq_dist_to_mean(&[4.0, 5.0]) - 25.0).abs() < 1e-12);
    }
}
