//! CART decision trees with Gini impurity.

use cace_model::ModelError;
use cace_signal::GaussianSampler;
use serde::{Deserialize, Serialize};

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_split: usize,
    /// Number of candidate features per split (`None` = all features).
    pub feature_subsample: Option<usize>,
    /// Number of candidate thresholds per feature (quantile-spaced).
    pub threshold_candidates: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_split: 4,
            feature_subsample: None,
            threshold_candidates: 16,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Class-probability distribution at the leaf.
        dist: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A trained CART classifier.
///
/// Serializable so trained models can be persisted and served without
/// re-training (the `CaceEngine` snapshot embeds its forests).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
    n_features: usize,
}

fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts.iter().map(|c| (c / total).powi(2)).sum::<f64>()
}

impl DecisionTree {
    /// Fits a tree on `xs` (rows of equal length) with labels `ys` in
    /// `0..n_classes`.
    ///
    /// # Errors
    /// Returns [`ModelError::InsufficientData`] when `xs` is empty,
    /// [`ModelError::LengthMismatch`] when `xs` and `ys` disagree, and
    /// [`ModelError::InvalidConfig`] on malformed rows or labels.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[usize],
        n_classes: usize,
        config: &TreeConfig,
        rng: &mut GaussianSampler,
    ) -> Result<Self, ModelError> {
        if xs.is_empty() {
            return Err(ModelError::InsufficientData {
                what: "decision tree training".into(),
                available: 0,
                required: 1,
            });
        }
        if xs.len() != ys.len() {
            return Err(ModelError::LengthMismatch {
                what: "features vs labels".into(),
                left: xs.len(),
                right: ys.len(),
            });
        }
        let n_features = xs[0].len();
        if xs.iter().any(|row| row.len() != n_features) {
            return Err(ModelError::InvalidConfig("ragged feature rows".into()));
        }
        if ys.iter().any(|&y| y >= n_classes) {
            return Err(ModelError::InvalidConfig("label out of range".into()));
        }

        let mut tree = Self {
            nodes: Vec::new(),
            n_classes,
            n_features,
        };
        let indices: Vec<usize> = (0..xs.len()).collect();
        tree.build(xs, ys, indices, 0, config, rng);
        Ok(tree)
    }

    fn leaf(&mut self, ys: &[usize], indices: &[usize]) -> usize {
        let mut dist = vec![0.0; self.n_classes];
        for &i in indices {
            dist[ys[i]] += 1.0;
        }
        let total: f64 = dist.iter().sum();
        if total > 0.0 {
            for d in &mut dist {
                *d /= total;
            }
        }
        self.nodes.push(Node::Leaf { dist });
        self.nodes.len() - 1
    }

    fn build(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[usize],
        indices: Vec<usize>,
        depth: usize,
        config: &TreeConfig,
        rng: &mut GaussianSampler,
    ) -> usize {
        // Stop: depth, size, or purity.
        let first = ys[indices[0]];
        let pure = indices.iter().all(|&i| ys[i] == first);
        if depth >= config.max_depth || indices.len() < config.min_split || pure {
            return self.leaf(ys, &indices);
        }

        let (feature, threshold, gain) = self.best_split(xs, ys, &indices, config, rng);
        if gain <= 1e-12 {
            return self.leaf(ys, &indices);
        }

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| xs[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return self.leaf(ys, &indices);
        }

        // Reserve the split node, then build children.
        self.nodes.push(Node::Leaf { dist: vec![] }); // placeholder
        let me = self.nodes.len() - 1;
        let left = self.build(xs, ys, left_idx, depth + 1, config, rng);
        let right = self.build(xs, ys, right_idx, depth + 1, config, rng);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    fn best_split(
        &self,
        xs: &[Vec<f64>],
        ys: &[usize],
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut GaussianSampler,
    ) -> (usize, f64, f64) {
        let total = indices.len() as f64;
        let mut parent_counts = vec![0.0; self.n_classes];
        for &i in indices {
            parent_counts[ys[i]] += 1.0;
        }
        let parent_gini = gini(&parent_counts, total);

        // Choose candidate features.
        let mut features: Vec<usize> = (0..self.n_features).collect();
        if let Some(m) = config.feature_subsample {
            rng.shuffle(&mut features);
            features.truncate(m.max(1).min(self.n_features));
        }

        let mut best = (0usize, 0.0f64, -1.0f64);
        let mut values: Vec<f64> = Vec::with_capacity(indices.len());
        for &f in &features {
            values.clear();
            values.extend(indices.iter().map(|&i| xs[i][f]));
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            let k = config.threshold_candidates.min(values.len() - 1).max(1);
            for c in 0..k {
                // Quantile-spaced candidate boundaries between distinct values.
                let pos = (c + 1) * (values.len() - 1) / (k + 1).max(1);
                let pos = pos.min(values.len() - 2);
                let threshold = 0.5 * (values[pos] + values[pos + 1]);

                let mut left_counts = vec![0.0; self.n_classes];
                let mut left_n = 0.0;
                for &i in indices {
                    if xs[i][f] <= threshold {
                        left_counts[ys[i]] += 1.0;
                        left_n += 1.0;
                    }
                }
                let right_n = total - left_n;
                if left_n == 0.0 || right_n == 0.0 {
                    continue;
                }
                let right_counts: Vec<f64> = parent_counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(p, l)| p - l)
                    .collect();
                let child = (left_n / total) * gini(&left_counts, left_n)
                    + (right_n / total) * gini(&right_counts, right_n);
                let gain = parent_gini - child;
                if gain > best.2 {
                    best = (f, threshold, gain);
                }
            }
        }
        best
    }

    /// Number of classes the tree predicts over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of input features expected.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of tree nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Class-probability estimate for one sample.
    ///
    /// # Panics
    /// Panics if `x.len()` differs from the training feature count.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_features, "feature count mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { dist } => return dist.clone(),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Most likely class for one sample.
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.predict_proba(x))
    }
}

pub(crate) fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = GaussianSampler::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let centers = [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)];
        for i in 0..n {
            let c = i % 3;
            xs.push(vec![
                rng.normal(centers[c].0, 0.6),
                rng.normal(centers[c].1, 0.6),
            ]);
            ys.push(c);
        }
        (xs, ys)
    }

    #[test]
    fn learns_separable_blobs() {
        let (xs, ys) = blob_data(1, 300);
        let mut rng = GaussianSampler::seed_from_u64(2);
        let tree = DecisionTree::fit(&xs, &ys, 3, &TreeConfig::default(), &mut rng).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| tree.predict(x) == y)
            .count();
        let acc = correct as f64 / xs.len() as f64;
        assert!(acc > 0.95, "training accuracy {acc}");
    }

    #[test]
    fn learns_xor() {
        // XOR needs at least depth 2 — a pure axis-aligned single split fails.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut rng = GaussianSampler::seed_from_u64(3);
        for _ in 0..200 {
            let a = rng.chance(0.5);
            let b = rng.chance(0.5);
            xs.push(vec![
                if a { 1.0 } else { 0.0 } + rng.normal(0.0, 0.05),
                if b { 1.0 } else { 0.0 } + rng.normal(0.0, 0.05),
            ]);
            ys.push(usize::from(a ^ b));
        }
        let tree = DecisionTree::fit(&xs, &ys, 2, &TreeConfig::default(), &mut rng).unwrap();
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| tree.predict(x) == y)
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.95, "XOR accuracy {acc}");
    }

    #[test]
    fn proba_sums_to_one() {
        let (xs, ys) = blob_data(4, 120);
        let mut rng = GaussianSampler::seed_from_u64(5);
        let tree = DecisionTree::fit(&xs, &ys, 3, &TreeConfig::default(), &mut rng).unwrap();
        for x in xs.iter().take(20) {
            let p = tree.predict_proba(x);
            assert_eq!(p.len(), 3);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn depth_limit_is_respected() {
        let (xs, ys) = blob_data(6, 200);
        let mut rng = GaussianSampler::seed_from_u64(7);
        let shallow = DecisionTree::fit(
            &xs,
            &ys,
            3,
            &TreeConfig {
                max_depth: 1,
                ..TreeConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        // Depth 1 means at most 3 nodes (root + 2 leaves).
        assert!(shallow.node_count() <= 3, "nodes {}", shallow.node_count());
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = GaussianSampler::seed_from_u64(8);
        assert!(matches!(
            DecisionTree::fit(&[], &[], 2, &TreeConfig::default(), &mut rng),
            Err(ModelError::InsufficientData { .. })
        ));
        assert!(matches!(
            DecisionTree::fit(&[vec![1.0]], &[0, 1], 2, &TreeConfig::default(), &mut rng),
            Err(ModelError::LengthMismatch { .. })
        ));
        assert!(matches!(
            DecisionTree::fit(&[vec![1.0]], &[5], 2, &TreeConfig::default(), &mut rng),
            Err(ModelError::InvalidConfig(_))
        ));
        assert!(matches!(
            DecisionTree::fit(
                &[vec![1.0], vec![1.0, 2.0]],
                &[0, 1],
                2,
                &TreeConfig::default(),
                &mut rng
            ),
            Err(ModelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn single_class_collapses_to_leaf() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![1, 1, 1];
        let mut rng = GaussianSampler::seed_from_u64(9);
        let tree = DecisionTree::fit(&xs, &ys, 2, &TreeConfig::default(), &mut rng).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[10.0]), 1);
    }

    #[test]
    fn argmax_behavior() {
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
        assert_eq!(argmax(&[]), 0);
    }
}
