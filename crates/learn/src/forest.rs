//! Random forests: bagged CART trees with feature subsampling.
//!
//! This replaces WEKA 3.7.11's random forest used by the paper for both the
//! gestural (95.3 % accuracy) and postural (≈98.6 %) micro classifiers.

use cace_model::ModelError;
use cace_signal::GaussianSampler;
use serde::{Deserialize, Serialize};

use crate::tree::{argmax, DecisionTree, TreeConfig};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration (feature subsample defaults to √d when unset).
    pub tree: TreeConfig,
    /// Bootstrap sample fraction.
    pub bootstrap_fraction: f64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 20,
            tree: TreeConfig {
                max_depth: 12,
                min_split: 4,
                feature_subsample: None,
                threshold_candidates: 12,
            },
            bootstrap_fraction: 1.0,
        }
    }
}

/// A trained random-forest classifier.
///
/// Serializable so trained models can be persisted and served without
/// re-training (the `CaceEngine` snapshot embeds its forests).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Fits a forest on `xs`/`ys` with labels in `0..n_classes`.
    ///
    /// # Errors
    /// Propagates the same input-validation errors as [`DecisionTree::fit`],
    /// plus [`ModelError::InvalidConfig`] for a zero-tree configuration.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[usize],
        n_classes: usize,
        config: &ForestConfig,
        seed: u64,
    ) -> Result<Self, ModelError> {
        if config.n_trees == 0 {
            return Err(ModelError::InvalidConfig(
                "forest needs at least one tree".into(),
            ));
        }
        if xs.is_empty() {
            return Err(ModelError::InsufficientData {
                what: "random forest training".into(),
                available: 0,
                required: 1,
            });
        }
        let n_features = xs[0].len();
        let mut tree_config = config.tree.clone();
        if tree_config.feature_subsample.is_none() {
            // The classic √d default.
            tree_config.feature_subsample =
                Some(((n_features as f64).sqrt().round() as usize).max(1));
        }

        let mut rng = GaussianSampler::seed_from_u64(seed);
        let sample_n = ((xs.len() as f64) * config.bootstrap_fraction)
            .round()
            .max(1.0) as usize;

        let mut trees = Vec::with_capacity(config.n_trees);
        for t in 0..config.n_trees {
            let mut tree_rng = rng.fork(t as u64);
            // Bootstrap resample.
            let mut bx = Vec::with_capacity(sample_n);
            let mut by = Vec::with_capacity(sample_n);
            for _ in 0..sample_n {
                let i = tree_rng.below(xs.len());
                bx.push(xs[i].clone());
                by.push(ys[i]);
            }
            trees.push(DecisionTree::fit(
                &bx,
                &by,
                n_classes,
                &tree_config,
                &mut tree_rng,
            )?);
        }
        Ok(Self { trees, n_classes })
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Averaged class-probability estimate.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_classes];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict_proba(x)) {
                *a += p;
            }
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        acc
    }

    /// Most likely class.
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.predict_proba(x))
    }

    /// Log-probabilities with an ε floor (for use as HDBN emission scores).
    pub fn predict_log_proba(&self, x: &[f64]) -> Vec<f64> {
        self.predict_proba(x)
            .into_iter()
            .map(|p| p.max(1e-6).ln())
            .collect()
    }

    /// Accuracy on a labeled set.
    ///
    /// # Panics
    /// Panics if `xs` and `ys` lengths differ.
    pub fn accuracy(&self, xs: &[Vec<f64>], ys: &[usize]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "features vs labels length mismatch");
        if xs.is_empty() {
            return 0.0;
        }
        let correct = xs
            .iter()
            .zip(ys)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(seed: u64, n: usize, spread: f64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = GaussianSampler::seed_from_u64(seed);
        let centers = [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0), (4.0, 4.0)];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let c = i % 4;
            xs.push(vec![
                rng.normal(centers[c].0, spread),
                rng.normal(centers[c].1, spread),
            ]);
            ys.push(c);
        }
        (xs, ys)
    }

    #[test]
    fn forest_beats_chance_on_noisy_blobs() {
        let (xs, ys) = blob_data(1, 400, 1.2);
        let (tx, ty) = blob_data(2, 200, 1.2);
        let forest = RandomForest::fit(&xs, &ys, 4, &ForestConfig::default(), 3).unwrap();
        let acc = forest.accuracy(&tx, &ty);
        assert!(acc > 0.8, "test accuracy {acc}");
    }

    #[test]
    fn proba_is_normalized() {
        let (xs, ys) = blob_data(4, 200, 0.5);
        let forest = RandomForest::fit(&xs, &ys, 4, &ForestConfig::default(), 5).unwrap();
        let p = forest.predict_proba(&[2.0, 2.0]);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let lp = forest.predict_log_proba(&[2.0, 2.0]);
        assert!(lp.iter().all(|&l| l <= 0.0 && l.is_finite()));
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = blob_data(6, 150, 0.8);
        let a = RandomForest::fit(&xs, &ys, 4, &ForestConfig::default(), 7).unwrap();
        let b = RandomForest::fit(&xs, &ys, 4, &ForestConfig::default(), 7).unwrap();
        for x in xs.iter().take(30) {
            assert_eq!(a.predict_proba(x), b.predict_proba(x));
        }
    }

    #[test]
    fn more_trees_do_not_hurt() {
        let (xs, ys) = blob_data(8, 300, 1.4);
        let (tx, ty) = blob_data(9, 200, 1.4);
        let small = RandomForest::fit(
            &xs,
            &ys,
            4,
            &ForestConfig {
                n_trees: 1,
                ..ForestConfig::default()
            },
            10,
        )
        .unwrap();
        let big = RandomForest::fit(
            &xs,
            &ys,
            4,
            &ForestConfig {
                n_trees: 30,
                ..ForestConfig::default()
            },
            10,
        )
        .unwrap();
        assert!(big.accuracy(&tx, &ty) + 0.05 >= small.accuracy(&tx, &ty));
        assert_eq!(big.n_trees(), 30);
    }

    #[test]
    fn rejects_zero_trees() {
        let (xs, ys) = blob_data(11, 40, 0.5);
        let err = RandomForest::fit(
            &xs,
            &ys,
            4,
            &ForestConfig {
                n_trees: 0,
                ..ForestConfig::default()
            },
            12,
        );
        assert!(matches!(err, Err(ModelError::InvalidConfig(_))));
    }

    #[test]
    fn rejects_empty_data() {
        let err = RandomForest::fit(&[], &[], 2, &ForestConfig::default(), 1);
        assert!(matches!(err, Err(ModelError::InsufficientData { .. })));
    }
}
