//! The 32-feature frame schema.

/// Number of features per frame, matching the paper's "total of 32
/// statistical features".
pub const FEATURE_COUNT: usize = 32;

/// Human-readable names of the 32 features, in vector order.
///
/// Layout:
/// * 0–10: statistics of the acceleration-magnitude stream
///   (mean, variance, std, min, max, range, rms, mad, mean-crossings,
///   skewness, kurtosis)
/// * 11–15: Goertzel power at 1–5 Hz of the (de-meaned) magnitude stream
/// * 16–24: per-axis mean, std, and AC energy (x, y, z)
/// * 25–27: pairwise axis correlations (xy, xz, yz)
/// * 28: signal magnitude area
/// * 29–30: tilt mean and tilt std (gravity-direction features)
/// * 31: dominant Goertzel bin (1–5, as f64; 0 when no energy)
pub fn feature_names() -> [&'static str; FEATURE_COUNT] {
    [
        "mag_mean",
        "mag_variance",
        "mag_std",
        "mag_min",
        "mag_max",
        "mag_range",
        "mag_rms",
        "mag_mad",
        "mag_crossings",
        "mag_skewness",
        "mag_kurtosis",
        "goertzel_1hz",
        "goertzel_2hz",
        "goertzel_3hz",
        "goertzel_4hz",
        "goertzel_5hz",
        "x_mean",
        "x_std",
        "x_energy",
        "y_mean",
        "y_std",
        "y_energy",
        "z_mean",
        "z_std",
        "z_energy",
        "corr_xy",
        "corr_xz",
        "corr_yz",
        "sma",
        "tilt_mean",
        "tilt_std",
        "dominant_bin",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn thirty_two_unique_names() {
        let names = feature_names();
        assert_eq!(names.len(), 32);
        let unique: HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), 32, "names must be unique");
        assert!(names.iter().all(|n| !n.is_empty()));
    }
}
