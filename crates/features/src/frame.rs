//! Frame-level feature extraction.

use cace_sensing::IMU_RATE_HZ;
use cace_signal::goertzel::goertzel_band;
use cace_signal::stats::{
    kurtosis, mean_abs_deviation, mean_crossings, pearson, signal_magnitude_area, skewness, Summary,
};
use cace_signal::trajectory::ImuSample;

use crate::schema::FEATURE_COUNT;

/// The 32-dimensional feature vector of one frame (see
/// [`crate::schema::feature_names`] for the layout).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    values: [f64; FEATURE_COUNT],
}

impl FeatureVector {
    /// Extracts the features of one IMU frame.
    ///
    /// An empty frame yields the all-zero vector (the classifier treats it
    /// as a missing observation).
    pub fn from_frame(frame: &[ImuSample]) -> Self {
        if frame.is_empty() {
            return Self {
                values: [0.0; FEATURE_COUNT],
            };
        }
        let xs: Vec<f64> = frame.iter().map(|s| s.accel.x).collect();
        let ys: Vec<f64> = frame.iter().map(|s| s.accel.y).collect();
        let zs: Vec<f64> = frame.iter().map(|s| s.accel.z).collect();
        let mags: Vec<f64> = frame.iter().map(|s| s.accel.norm()).collect();

        let mag = Summary::of(&mags);
        // De-meaned magnitude for spectral features: removes the gravity DC.
        let ac: Vec<f64> = mags.iter().map(|m| m - mag.mean).collect();
        let band = goertzel_band(&ac, IMU_RATE_HZ);

        let sx = Summary::of(&xs);
        let sy = Summary::of(&ys);
        let sz = Summary::of(&zs);

        // Tilt: angle between the mean acceleration vector and ẑ. Norms are
        // reused from `mags` (computed identically above) rather than
        // re-derived per sample.
        let tilts: Vec<f64> = frame
            .iter()
            .zip(&mags)
            .map(|(s, &n)| {
                if n == 0.0 {
                    0.0
                } else {
                    (s.accel.z / n).clamp(-1.0, 1.0).acos()
                }
            })
            .collect();
        let tilt = Summary::of(&tilts);

        let (dominant_bin, dominant_power) = band
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite powers"))
            .expect("band is nonempty");

        let mut v = [0.0; FEATURE_COUNT];
        v[0] = mag.mean;
        v[1] = mag.variance;
        v[2] = mag.std_dev();
        v[3] = mag.min;
        v[4] = mag.max;
        v[5] = mag.range();
        v[6] = mag.rms;
        v[7] = mean_abs_deviation(&mags);
        v[8] = mean_crossings(&mags) as f64;
        v[9] = skewness(&mags);
        v[10] = kurtosis(&mags);
        v[11..16].copy_from_slice(&band);
        v[16] = sx.mean;
        v[17] = sx.std_dev();
        v[18] = sx.variance;
        v[19] = sy.mean;
        v[20] = sy.std_dev();
        v[21] = sy.variance;
        v[22] = sz.mean;
        v[23] = sz.std_dev();
        v[24] = sz.variance;
        v[25] = pearson(&xs, &ys);
        v[26] = pearson(&xs, &zs);
        v[27] = pearson(&ys, &zs);
        v[28] = signal_magnitude_area(&xs, &ys, &zs);
        v[29] = tilt.mean;
        v[30] = tilt.std_dev();
        v[31] = if dominant_power > 1e-12 {
            (dominant_bin + 1) as f64
        } else {
            0.0
        };
        Self { values: v }
    }

    /// The feature values as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// The feature values as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.values.to_vec()
    }

    /// Whether every component is finite (guards classifier training).
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

impl From<FeatureVector> for Vec<f64> {
    fn from(f: FeatureVector) -> Vec<f64> {
        f.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cace_model::{Gestural, Postural};
    use cace_sensing::{ImuSynthesizer, NoiseConfig};
    use cace_signal::GaussianSampler;

    fn synth_frame(p: Postural, seed: u64) -> Vec<ImuSample> {
        let synth = ImuSynthesizer::new(NoiseConfig::default());
        let mut rng = GaussianSampler::seed_from_u64(seed);
        synth.phone_frame(p, 75, &mut rng)
    }

    #[test]
    fn vector_has_32_finite_components() {
        let f = FeatureVector::from_frame(&synth_frame(Postural::Walking, 1));
        assert_eq!(f.as_slice().len(), FEATURE_COUNT);
        assert!(f.is_finite());
    }

    #[test]
    fn empty_frame_yields_zero_vector() {
        let f = FeatureVector::from_frame(&[]);
        assert!(f.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn walking_and_lying_are_separable() {
        // Key separability sanity check: the std of the magnitude stream
        // must be far larger when walking.
        let walk = FeatureVector::from_frame(&synth_frame(Postural::Walking, 2));
        let lie = FeatureVector::from_frame(&synth_frame(Postural::Lying, 3));
        assert!(
            walk.as_slice()[2] > 3.0 * lie.as_slice()[2],
            "walking std {} vs lying std {}",
            walk.as_slice()[2],
            lie.as_slice()[2]
        );
    }

    #[test]
    fn tilt_separates_sitting_from_standing() {
        // Sitting tilts the pocket phone (profile tilt 0.9 rad) while
        // standing keeps it upright.
        let sit = FeatureVector::from_frame(&synth_frame(Postural::Sitting, 4));
        let stand = FeatureVector::from_frame(&synth_frame(Postural::Standing, 5));
        assert!(
            sit.as_slice()[29] > stand.as_slice()[29] + 0.3,
            "sit tilt {} vs stand tilt {}",
            sit.as_slice()[29],
            stand.as_slice()[29]
        );
    }

    #[test]
    fn dominant_bin_tracks_cadence() {
        // Running (≈2.9 Hz) should have a higher dominant bin than cycling
        // (≈1.4 Hz) in most draws.
        let mut run_higher = 0;
        for seed in 0..10 {
            let run = FeatureVector::from_frame(&synth_frame(Postural::Running, 100 + seed));
            let cyc = FeatureVector::from_frame(&synth_frame(Postural::Cycling, 200 + seed));
            if run.as_slice()[31] >= cyc.as_slice()[31] {
                run_higher += 1;
            }
        }
        assert!(
            run_higher >= 7,
            "running bin should usually dominate: {run_higher}/10"
        );
    }

    #[test]
    fn gestural_frames_extract_too() {
        let synth = ImuSynthesizer::new(NoiseConfig::default());
        let mut rng = GaussianSampler::seed_from_u64(9);
        let frame = synth.tag_frame(Gestural::Laughing, Postural::Sitting, 75, &mut rng);
        let f = FeatureVector::from_frame(&frame);
        assert!(f.is_finite());
        // Laughing is a 5 Hz gesture; spectral energy should concentrate in
        // the upper bins.
        let low = f.as_slice()[11];
        let high = f.as_slice()[15];
        assert!(high > 0.0 && high + low > 0.0);
    }
}
