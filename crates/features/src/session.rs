//! Session-level feature extraction: from simulated sensor records to
//! per-tick, per-user feature vectors.

use cace_behavior::Session;

use crate::frame::FeatureVector;

/// Wearable features of one resident at one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TickFeatures {
    /// Smartphone (postural) features; `None` when the frame was dropped.
    pub phone: Option<FeatureVector>,
    /// Neck-tag (gestural) features; `None` when dropped or absent (CASAS).
    pub tag: Option<FeatureVector>,
}

/// All wearable features of one session, aligned with its ticks.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionFeatures {
    /// `per_tick[t][u]` = features of resident `u` at tick `t`.
    pub per_tick: Vec<[TickFeatures; 2]>,
}

impl SessionFeatures {
    /// Number of ticks.
    pub fn len(&self) -> usize {
        self.per_tick.len()
    }

    /// Whether the extraction is empty.
    pub fn is_empty(&self) -> bool {
        self.per_tick.is_empty()
    }

    /// Fraction of phone frames that were missing (failure injection
    /// diagnostics).
    pub fn phone_dropout_rate(&self) -> f64 {
        if self.per_tick.is_empty() {
            return 0.0;
        }
        let missing = self
            .per_tick
            .iter()
            .flat_map(|t| t.iter())
            .filter(|f| f.phone.is_none())
            .count();
        missing as f64 / (2 * self.per_tick.len()) as f64
    }
}

/// Extracts both residents' wearable features of one observed tick — the
/// unit of work a streaming recognizer performs as each tick arrives.
///
/// [`extract_session`] is exactly this function mapped over a recorded
/// session, so batch and streaming recognition score identical features.
pub fn extract_tick(observed: &cace_behavior::ObservedTick) -> [TickFeatures; 2] {
    let features = |u: usize| -> TickFeatures {
        let obs = &observed.per_user[u];
        TickFeatures {
            phone: obs.phone.as_deref().map(FeatureVector::from_frame),
            tag: obs.tag.as_deref().map(FeatureVector::from_frame),
        }
    };
    [features(0), features(1)]
}

/// Extracts the wearable feature record of a whole session.
pub fn extract_session(session: &Session) -> SessionFeatures {
    let per_tick = session
        .ticks
        .iter()
        .map(|tick| extract_tick(&tick.observed))
        .collect();
    SessionFeatures { per_tick }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cace_behavior::{
        cace_grammar, generate_casas_dataset, simulate_session, CasasConfig, SessionConfig,
    };
    use cace_sensing::NoiseConfig;

    #[test]
    fn extraction_aligns_with_ticks() {
        let g = cace_grammar();
        let s = simulate_session(&g, &SessionConfig::tiny(), 1);
        let f = extract_session(&s);
        assert_eq!(f.len(), s.len());
        assert!(!f.is_empty());
        // Full noise default has no dropout.
        assert_eq!(f.phone_dropout_rate(), 0.0);
        assert!(f.per_tick[0][0].phone.is_some());
        assert!(f.per_tick[0][1].tag.is_some());
    }

    #[test]
    fn casas_sessions_have_no_tag_features() {
        let sessions = generate_casas_dataset(&CasasConfig::tiny(), 2);
        let f = extract_session(&sessions[0]);
        assert!(f
            .per_tick
            .iter()
            .all(|t| t[0].tag.is_none() && t[1].tag.is_none()));
        assert!(f.per_tick.iter().any(|t| t[0].phone.is_some()));
    }

    #[test]
    fn dropout_rate_is_reported() {
        let g = cace_grammar();
        let noise = NoiseConfig {
            imu_dropout: 0.5,
            ..NoiseConfig::default()
        };
        let cfg = SessionConfig::tiny().with_noise(noise);
        let s = simulate_session(&g, &cfg, 3);
        let f = extract_session(&s);
        let rate = f.phone_dropout_rate();
        assert!((rate - 0.5).abs() < 0.15, "dropout rate {rate}");
    }

    #[test]
    fn all_extracted_vectors_are_finite() {
        let g = cace_grammar();
        let s = simulate_session(&g, &SessionConfig::tiny(), 4);
        let f = extract_session(&s);
        for tick in &f.per_tick {
            for user in tick {
                if let Some(v) = &user.phone {
                    assert!(v.is_finite());
                }
                if let Some(v) = &user.tag {
                    assert!(v.is_finite());
                }
            }
        }
    }
}
