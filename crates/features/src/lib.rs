//! # cace-features
//!
//! The "context planar" of the CACE pipeline (Fig 2, step 2): feature
//! extraction over ambient, mobile, and wearable sensor streams.
//!
//! §VII-E of the paper computes **32 statistical features** (mean, variance,
//! standard deviation, extrema, magnitudes, Goertzel coefficients at 1–5 Hz,
//! …) over each 1.5 s frame of the absolute acceleration trajectory, with
//! 50 % overlap between frames. This crate implements that feature schema
//! plus the session-level extraction that turns a simulated
//! [`cace_behavior::Session`] into per-tick feature vectors for the
//! micro-activity classifiers.
//!
//! ```
//! use cace_features::{FeatureVector, FEATURE_COUNT};
//! use cace_sensing::{ImuSynthesizer, NoiseConfig};
//! use cace_model::Postural;
//! use cace_signal::GaussianSampler;
//!
//! let mut rng = GaussianSampler::seed_from_u64(7);
//! let synth = ImuSynthesizer::new(NoiseConfig::default());
//! let frame = synth.phone_frame(Postural::Walking, 75, &mut rng);
//! let features = FeatureVector::from_frame(&frame);
//! assert_eq!(features.as_slice().len(), FEATURE_COUNT);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod schema;
pub mod session;

pub use frame::FeatureVector;
pub use schema::{feature_names, FEATURE_COUNT};
pub use session::{extract_session, extract_tick, SessionFeatures, TickFeatures};
