//! The factorial CRF baseline \[5\], trained with structured-perceptron
//! updates.
//!
//! A factorial CRF over two chains scores a joint labeling with node
//! potentials (weighted emission scores plus per-label biases), within-chain
//! edge potentials, and cross-chain co-temporal potentials. We train the
//! potentials discriminatively with averaged structured-perceptron updates
//! (a standard practical surrogate for full CRF gradient training) and
//! decode exactly with joint Viterbi. Matching Wang et al., the model is fed
//! wearable-only evidence by the evaluation harness.

use cace_model::ModelError;

use crate::chmm::CoupledPath;
use crate::{validate_emissions, EmissionSeq};

/// FCRF training configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FcrfConfig {
    /// Perceptron epochs.
    pub epochs: usize,
    /// Update step size.
    pub learning_rate: f64,
}

impl Default for FcrfConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            learning_rate: 0.1,
        }
    }
}

/// The factorial CRF.
#[derive(Debug, Clone, PartialEq)]
pub struct Fcrf {
    n: usize,
    /// Scale on the emission scores.
    obs_weight: f64,
    /// Per-label node bias.
    bias: Vec<f64>,
    /// Within-chain edge potentials.
    edge: Vec<Vec<f64>>,
    /// Cross-chain co-temporal potentials.
    cross: Vec<Vec<f64>>,
}

impl Fcrf {
    /// An untrained model with zero potentials.
    pub fn new(n_states: usize) -> Self {
        Self {
            n: n_states,
            obs_weight: 1.0,
            bias: vec![0.0; n_states],
            edge: vec![vec![0.0; n_states]; n_states],
            cross: vec![vec![0.0; n_states]; n_states],
        }
    }

    /// Number of per-chain states.
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// Trains on labeled sessions with averaged structured-perceptron
    /// updates.
    ///
    /// `data` pairs each session's per-user emissions with its per-user
    /// gold labels.
    ///
    /// # Errors
    /// Returns shape errors for inconsistent sessions.
    pub fn fit(
        &mut self,
        data: &[([EmissionSeq; 2], [Vec<usize>; 2])],
        config: &FcrfConfig,
    ) -> Result<(), ModelError> {
        if data.is_empty() {
            return Err(ModelError::InsufficientData {
                what: "FCRF training".into(),
                available: 0,
                required: 1,
            });
        }
        for (em, labels) in data {
            for u in 0..2 {
                validate_emissions(&em[u], self.n)?;
                if em[u].len() != labels[u].len() {
                    return Err(ModelError::LengthMismatch {
                        what: "emissions vs labels".into(),
                        left: em[u].len(),
                        right: labels[u].len(),
                    });
                }
                if labels[u].iter().any(|&l| l >= self.n) {
                    return Err(ModelError::InvalidConfig("label out of range".into()));
                }
            }
        }

        let lr = config.learning_rate;
        for _epoch in 0..config.epochs {
            for (em, gold) in data {
                let predicted = self.viterbi(em)?;
                let t_total = em[0].len();
                for t in 0..t_total {
                    for u in 0..2 {
                        let (g, p) = (gold[u][t], predicted.macros[u][t]);
                        if g != p {
                            self.bias[g] += lr;
                            self.bias[p] -= lr;
                        }
                        if t > 0 {
                            let (gp, pp) = (gold[u][t - 1], predicted.macros[u][t - 1]);
                            if (gp, g) != (pp, p) {
                                self.edge[gp][g] += lr;
                                self.edge[pp][p] -= lr;
                            }
                        }
                    }
                    let (g1, g2) = (gold[0][t], gold[1][t]);
                    let (p1, p2) = (predicted.macros[0][t], predicted.macros[1][t]);
                    if (g1, g2) != (p1, p2) {
                        self.cross[g1][g2] += lr;
                        self.cross[p1][p2] -= lr;
                    }
                }
            }
        }
        Ok(())
    }

    /// Exact joint Viterbi decoding.
    ///
    /// # Errors
    /// Returns emission-shape errors from validation.
    pub fn viterbi(&self, emissions: &[EmissionSeq; 2]) -> Result<CoupledPath, ModelError> {
        validate_emissions(&emissions[0], self.n)?;
        validate_emissions(&emissions[1], self.n)?;
        if emissions[0].len() != emissions[1].len() {
            return Err(ModelError::LengthMismatch {
                what: "paired emission sequences".into(),
                left: emissions[0].len(),
                right: emissions[1].len(),
            });
        }
        let (n, t_total) = (self.n, emissions[0].len());
        let nn = n * n;
        let mut states_explored = nn as u64;

        let node = |t: usize, a1: usize, a2: usize| -> f64 {
            self.obs_weight * (emissions[0][t][a1] + emissions[1][t][a2])
                + self.bias[a1]
                + self.bias[a2]
                + self.cross[a1][a2]
        };

        let mut v: Vec<f64> = (0..nn).map(|j| node(0, j / n, j % n)).collect();
        let mut backptrs: Vec<Vec<u32>> = vec![Vec::new()];
        for t in 1..t_total {
            states_explored += nn as u64;
            let mut v_new = vec![f64::NEG_INFINITY; nn];
            let mut back = vec![0u32; nn];
            for a1 in 0..n {
                for a2 in 0..n {
                    let j = a1 * n + a2;
                    let mut best = f64::NEG_INFINITY;
                    let mut best_arg = 0u32;
                    for p1 in 0..n {
                        let e1 = self.edge[p1][a1];
                        for p2 in 0..n {
                            let score = v[p1 * n + p2] + e1 + self.edge[p2][a2];
                            if score > best {
                                best = score;
                                best_arg = (p1 * n + p2) as u32;
                            }
                        }
                    }
                    v_new[j] = best + node(t, a1, a2);
                    back[j] = best_arg;
                }
            }
            v = v_new;
            backptrs.push(back);
        }

        let (mut j, log_prob) = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(i, &s)| (i, s))
            .expect("nonempty trellis");
        let mut macros = [vec![0usize; t_total], vec![0usize; t_total]];
        for t in (0..t_total).rev() {
            macros[0][t] = j / n;
            macros[1][t] = j % n;
            if t > 0 {
                j = backptrs[t][j] as usize;
            }
        }
        Ok(CoupledPath {
            macros,
            log_prob,
            states_explored,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clear(labels: &[usize], n: usize, strength: f64) -> EmissionSeq {
        labels
            .iter()
            .map(|&l| {
                (0..n)
                    .map(|a| if a == l { 0.0 } else { -strength })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn untrained_model_follows_emissions() {
        let fcrf = Fcrf::new(3);
        let labels = vec![0, 1, 2, 1];
        let em = [clear(&labels, 3, 3.0), clear(&labels, 3, 3.0)];
        let path = fcrf.viterbi(&em).unwrap();
        assert_eq!(path.macros[0], labels);
    }

    #[test]
    fn training_learns_persistence() {
        // Gold sequences are persistent; raw emissions carry glitches. After
        // training, the edge potentials should smooth the glitch away.
        let gold = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let mut noisy = clear(&gold, 2, 1.5);
        noisy[2] = vec![-0.4, 0.0]; // glitch toward 1
        let session = (
            [noisy.clone(), clear(&gold, 2, 1.5)],
            [gold.clone(), gold.clone()],
        );
        let mut fcrf = Fcrf::new(2);
        // Before training the glitch wins.
        let before = fcrf.viterbi(&session.0).unwrap();
        assert_eq!(before.macros[0][2], 1);
        fcrf.fit(
            std::slice::from_ref(&session),
            &FcrfConfig {
                epochs: 20,
                learning_rate: 0.05,
            },
        )
        .unwrap();
        let after = fcrf.viterbi(&session.0).unwrap();
        assert_eq!(
            after.macros[0], gold,
            "trained FCRF should smooth the glitch"
        );
    }

    #[test]
    fn cross_potentials_couple_users() {
        // Train on perfectly synchronized users, then give user 2 flat
        // emissions: coupling should copy user 1's labels.
        let mut runs = Vec::new();
        for r in 0..10 {
            for _ in 0..4 {
                runs.push(r % 2);
            }
        }
        let session = (
            [clear(&runs, 2, 2.0), clear(&runs, 2, 2.0)],
            [runs.clone(), runs.clone()],
        );
        let mut fcrf = Fcrf::new(2);
        fcrf.fit(
            &[session],
            &FcrfConfig {
                epochs: 10,
                learning_rate: 0.05,
            },
        )
        .unwrap();
        let labels = vec![0, 0, 0, 0];
        let flat: EmissionSeq = labels.iter().map(|_| vec![0.0, 0.0]).collect();
        let path = fcrf.viterbi(&[clear(&labels, 2, 3.0), flat]).unwrap();
        // Perceptron potentials are coarse; demand a clear majority pull
        // rather than a perfect copy.
        let agree = path.macros[1].iter().filter(|&&a| a == 0).count();
        assert!(
            agree >= 3,
            "cross potential should couple: {:?}",
            path.macros[1]
        );
    }

    #[test]
    fn shape_errors() {
        let mut fcrf = Fcrf::new(2);
        assert!(matches!(
            fcrf.fit(&[], &FcrfConfig::default()),
            Err(ModelError::InsufficientData { .. })
        ));
        let bad = (
            [clear(&[0, 1], 2, 1.0), clear(&[0], 2, 1.0)],
            [vec![0, 1], vec![0]],
        );
        assert!(fcrf.fit(&[bad], &FcrfConfig::default()).is_err());
    }
}
