//! The per-user flat HMM baseline \[9\].

use cace_model::ModelError;
use serde::{Deserialize, Serialize};

use crate::{argmax, validate_emissions, BaselinePath, EmissionSeq};

/// A flat HMM over macro activities.
///
/// Serializable so a trained NH engine can be persisted alongside the
/// hierarchical tables (the `CaceEngine` snapshot embeds one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hmm {
    n: usize,
    log_prior: Vec<f64>,
    log_trans: Vec<Vec<f64>>,
}

impl Hmm {
    /// Fits prior and transition tables from labeled sequences (one `Vec`
    /// per session per user) with Laplace smoothing.
    ///
    /// # Errors
    /// Returns [`ModelError::InsufficientData`] when no labels are given and
    /// [`ModelError::InvalidConfig`] on out-of-range labels.
    pub fn fit(
        sequences: &[Vec<usize>],
        n_states: usize,
        laplace: f64,
    ) -> Result<Self, ModelError> {
        if sequences.iter().map(|s| s.len()).sum::<usize>() == 0 {
            return Err(ModelError::InsufficientData {
                what: "HMM training".into(),
                available: 0,
                required: 1,
            });
        }
        if sequences.iter().flatten().any(|&l| l >= n_states) {
            return Err(ModelError::InvalidConfig("label out of range".into()));
        }
        let mut prior = vec![laplace; n_states];
        let mut trans = vec![vec![laplace; n_states]; n_states];
        for seq in sequences {
            if let Some(&first) = seq.first() {
                prior[first] += 1.0;
            }
            for w in seq.windows(2) {
                trans[w[0]][w[1]] += 1.0;
            }
        }
        let prior_total: f64 = prior.iter().sum();
        let log_prior = prior.iter().map(|&p| (p / prior_total).ln()).collect();
        let log_trans = trans
            .iter()
            .map(|row| {
                let total: f64 = row.iter().sum();
                row.iter().map(|&c| (c / total).ln()).collect()
            })
            .collect();
        Ok(Self {
            n: n_states,
            log_prior,
            log_trans,
        })
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// Viterbi decoding over an emission sequence.
    ///
    /// # Errors
    /// Returns emission-shape errors from validation.
    pub fn viterbi(&self, emissions: &EmissionSeq) -> Result<BaselinePath, ModelError> {
        validate_emissions(emissions, self.n)?;
        let t_total = emissions.len();
        let mut v: Vec<f64> = (0..self.n)
            .map(|a| self.log_prior[a] + emissions[0][a])
            .collect();
        let mut backptrs: Vec<Vec<u32>> = vec![Vec::new()];
        let mut states_explored = self.n as u64;

        for row in emissions.iter().skip(1) {
            let mut v_new = vec![f64::NEG_INFINITY; self.n];
            let mut back = vec![0u32; self.n];
            states_explored += self.n as u64;
            for a in 0..self.n {
                let mut best = f64::NEG_INFINITY;
                let mut best_arg = 0u32;
                for ap in 0..self.n {
                    let s = v[ap] + self.log_trans[ap][a];
                    if s > best {
                        best = s;
                        best_arg = ap as u32;
                    }
                }
                v_new[a] = best + row[a];
                back[a] = best_arg;
            }
            v = v_new;
            backptrs.push(back);
        }

        let mut a = argmax(&v);
        let log_prob = v[a];
        let mut macros = vec![0usize; t_total];
        for t in (0..t_total).rev() {
            macros[t] = a;
            if t > 0 {
                a = backptrs[t][a] as usize;
            }
        }
        Ok(BaselinePath {
            macros,
            log_prob,
            states_explored,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clear_emissions(labels: &[usize], n: usize, strength: f64) -> EmissionSeq {
        labels
            .iter()
            .map(|&l| {
                (0..n)
                    .map(|a| if a == l { 0.0 } else { -strength })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn learns_persistence_and_decodes() {
        let train = vec![vec![0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0]];
        let hmm = Hmm::fit(&train, 2, 0.1).unwrap();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let path = hmm.viterbi(&clear_emissions(&labels, 2, 5.0)).unwrap();
        assert_eq!(path.macros, labels);
        assert!(path.log_prob.is_finite());
        assert_eq!(path.states_explored, 12);
    }

    #[test]
    fn smooths_noisy_emissions() {
        let train = vec![vec![0; 20], vec![1; 20], vec![0, 1], vec![1, 0]];
        let hmm = Hmm::fit(&train, 2, 0.1).unwrap();
        let mut em = clear_emissions(&[0, 0, 0, 0, 0, 0, 0], 2, 2.0);
        em[3] = vec![-0.4, 0.0]; // weak glitch toward state 1
        let path = hmm.viterbi(&em).unwrap();
        assert_eq!(path.macros, vec![0; 7], "persistence should absorb glitch");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            Hmm::fit(&[], 3, 0.1),
            Err(ModelError::InsufficientData { .. })
        ));
        assert!(matches!(
            Hmm::fit(&[vec![5]], 3, 0.1),
            Err(ModelError::InvalidConfig(_))
        ));
        let hmm = Hmm::fit(&[vec![0, 1, 2]], 3, 0.1).unwrap();
        assert!(hmm.viterbi(&Vec::new()).is_err());
        assert!(hmm.viterbi(&vec![vec![0.0; 2]]).is_err());
    }

    #[test]
    fn transition_matrix_is_row_normalized_in_log_space() {
        let hmm = Hmm::fit(&[vec![0, 1, 0, 1, 1]], 2, 0.5).unwrap();
        for row in &hmm.log_trans {
            let mass: f64 = row.iter().map(|l| l.exp()).sum();
            assert!((mass - 1.0).abs() < 1e-9);
        }
    }
}
