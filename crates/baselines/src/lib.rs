//! # cace-baselines
//!
//! The three comparator models of the paper's Fig 10:
//!
//! * [`Hmm`] — the per-user HMM of Singla et al. \[9\]: one flat macro-state
//!   chain per resident, no coupling, no hierarchy ("built an individual
//!   HMM model for each user").
//! * [`CoupledHmm`] — the CHMM of Roy et al. \[4\]: two flat macro chains with
//!   inter-user transition coupling over ambient + postural evidence.
//! * [`Fcrf`] — the factorial CRF of Wang et al. \[5\]: two coupled chains
//!   trained discriminatively (structured-perceptron updates over node,
//!   within-chain, and cross-chain potentials), relying on wearable
//!   evidence only.
//!
//! All three operate on per-tick macro-activity emission scores
//! (`log P(observations_t | activity)` per user), so the *modality*
//! differences between the baselines are expressed by what the caller puts
//! into those scores — exactly how the original systems differed.
//!
//! ```
//! use cace_baselines::Hmm;
//!
//! // Two activities, mostly self-transitioning.
//! let labels = vec![vec![0, 0, 0, 1, 1, 1, 0, 0, 1, 1]];
//! let hmm = Hmm::fit(&labels, 2, 0.5).unwrap();
//! // Clear per-tick evidence for activity 1, one glitchy tick in the middle.
//! let emissions: Vec<Vec<f64>> = (0..5)
//!     .map(|t| if t == 2 { vec![-0.4, -1.0] } else { vec![-3.0, -0.1] })
//!     .collect();
//! let path = hmm.viterbi(&emissions).unwrap();
//! assert_eq!(path.macros, vec![1, 1, 1, 1, 1], "persistence absorbs the glitch");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chmm;
pub mod fcrf;
pub mod hmm;

pub use chmm::CoupledHmm;
pub use fcrf::{Fcrf, FcrfConfig};
pub use hmm::Hmm;

/// Per-user emission matrix: `emissions[t][a] = log P(obs_t | activity a)`.
pub type EmissionSeq = Vec<Vec<f64>>;

/// Decoded output of a baseline with its work accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselinePath {
    /// Macro activity per tick.
    pub macros: Vec<usize>,
    /// Log-score of the decoded path.
    pub log_prob: f64,
    /// Σ_t states instantiated (overhead metric).
    pub states_explored: u64,
}

pub(crate) fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

pub(crate) fn validate_emissions(
    emissions: &EmissionSeq,
    n_states: usize,
) -> Result<(), cace_model::ModelError> {
    if emissions.is_empty() {
        return Err(cace_model::ModelError::InsufficientData {
            what: "baseline decoding".into(),
            available: 0,
            required: 1,
        });
    }
    for (t, row) in emissions.iter().enumerate() {
        if row.len() != n_states {
            return Err(cace_model::ModelError::LengthMismatch {
                what: format!("emission row at tick {t}"),
                left: row.len(),
                right: n_states,
            });
        }
    }
    Ok(())
}
