//! The coupled HMM baseline \[4\]: two flat macro chains with cross-chain
//! transition coupling.

use cace_model::ModelError;

use crate::{validate_emissions, EmissionSeq};

/// Jointly decoded output for both residents.
#[derive(Debug, Clone, PartialEq)]
pub struct CoupledPath {
    /// Macro activity per user per tick.
    pub macros: [Vec<usize>; 2],
    /// Log-score of the decoded joint path.
    pub log_prob: f64,
    /// Σ_t joint states instantiated.
    pub states_explored: u64,
}

/// A two-chain coupled HMM: `P(a_t | a_{t−1}, partner_{t−1})` factorized as
/// intra-chain transition × cross-chain influence.
#[derive(Debug, Clone, PartialEq)]
pub struct CoupledHmm {
    n: usize,
    log_prior: Vec<f64>,
    log_intra: Vec<Vec<f64>>,
    /// `log P(a_t | partner_{t−1})` cross-chain factor.
    log_cross: Vec<Vec<f64>>,
}

impl CoupledHmm {
    /// Fits from paired label sequences (`labels[s][u][t]`).
    ///
    /// # Errors
    /// Returns [`ModelError::InsufficientData`] with no data,
    /// [`ModelError::LengthMismatch`] when the two users' sequences differ
    /// in length, and [`ModelError::InvalidConfig`] on bad labels.
    pub fn fit(
        sequences: &[[Vec<usize>; 2]],
        n_states: usize,
        laplace: f64,
    ) -> Result<Self, ModelError> {
        let total: usize = sequences.iter().map(|s| s[0].len()).sum();
        if total == 0 {
            return Err(ModelError::InsufficientData {
                what: "CHMM training".into(),
                available: 0,
                required: 1,
            });
        }
        for s in sequences {
            if s[0].len() != s[1].len() {
                return Err(ModelError::LengthMismatch {
                    what: "paired label sequences".into(),
                    left: s[0].len(),
                    right: s[1].len(),
                });
            }
            if s.iter().flatten().any(|&l| l >= n_states) {
                return Err(ModelError::InvalidConfig("label out of range".into()));
            }
        }

        let mut prior = vec![laplace; n_states];
        let mut intra = vec![vec![laplace; n_states]; n_states];
        let mut cross = vec![vec![laplace; n_states]; n_states];
        for s in sequences {
            for u in 0..2 {
                if let Some(&first) = s[u].first() {
                    prior[first] += 1.0;
                }
                for t in 1..s[u].len() {
                    intra[s[u][t - 1]][s[u][t]] += 1.0;
                    cross[s[1 - u][t - 1]][s[u][t]] += 1.0;
                }
            }
        }
        let norm = |rows: Vec<Vec<f64>>| -> Vec<Vec<f64>> {
            rows.into_iter()
                .map(|row| {
                    let total: f64 = row.iter().sum();
                    row.iter().map(|&c| (c / total).ln()).collect()
                })
                .collect()
        };
        let prior_total: f64 = prior.iter().sum();
        Ok(Self {
            n: n_states,
            log_prior: prior.iter().map(|&p| (p / prior_total).ln()).collect(),
            log_intra: norm(intra),
            log_cross: norm(cross),
        })
    }

    /// Number of per-chain states.
    pub fn n_states(&self) -> usize {
        self.n
    }

    /// Joint Viterbi over both chains.
    ///
    /// # Errors
    /// Returns emission-shape errors from validation.
    pub fn viterbi(&self, emissions: &[EmissionSeq; 2]) -> Result<CoupledPath, ModelError> {
        validate_emissions(&emissions[0], self.n)?;
        validate_emissions(&emissions[1], self.n)?;
        if emissions[0].len() != emissions[1].len() {
            return Err(ModelError::LengthMismatch {
                what: "paired emission sequences".into(),
                left: emissions[0].len(),
                right: emissions[1].len(),
            });
        }
        let t_total = emissions[0].len();
        let n = self.n;
        let nn = n * n;
        let mut states_explored = nn as u64;

        // V[a1 * n + a2].
        let mut v: Vec<f64> = (0..nn)
            .map(|j| {
                let (a1, a2) = (j / n, j % n);
                self.log_prior[a1] + self.log_prior[a2] + emissions[0][0][a1] + emissions[1][0][a2]
            })
            .collect();
        let mut backptrs: Vec<Vec<u32>> = vec![Vec::new()];

        for t in 1..t_total {
            states_explored += nn as u64;
            let mut v_new = vec![f64::NEG_INFINITY; nn];
            let mut back = vec![0u32; nn];
            for a1 in 0..n {
                for a2 in 0..n {
                    let j = a1 * n + a2;
                    let mut best = f64::NEG_INFINITY;
                    let mut best_arg = 0u32;
                    for p1 in 0..n {
                        // Coupled transition: intra each chain + cross from
                        // the partner's previous state.
                        let base1 = self.log_intra[p1][a1];
                        for p2 in 0..n {
                            let score = v[p1 * n + p2]
                                + base1
                                + self.log_intra[p2][a2]
                                + self.log_cross[p2][a1]
                                + self.log_cross[p1][a2];
                            if score > best {
                                best = score;
                                best_arg = (p1 * n + p2) as u32;
                            }
                        }
                    }
                    v_new[j] = best + emissions[0][t][a1] + emissions[1][t][a2];
                    back[j] = best_arg;
                }
            }
            v = v_new;
            backptrs.push(back);
        }

        let (mut j, log_prob) = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(i, &s)| (i, s))
            .expect("nonempty trellis");
        let mut macros = [vec![0usize; t_total], vec![0usize; t_total]];
        for t in (0..t_total).rev() {
            macros[0][t] = j / n;
            macros[1][t] = j % n;
            if t > 0 {
                j = backptrs[t][j] as usize;
            }
        }
        Ok(CoupledPath {
            macros,
            log_prob,
            states_explored,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clear(labels: &[usize], n: usize, strength: f64) -> EmissionSeq {
        labels
            .iter()
            .map(|&l| {
                (0..n)
                    .map(|a| if a == l { 0.0 } else { -strength })
                    .collect()
            })
            .collect()
    }

    fn synchronized_training() -> Vec<[Vec<usize>; 2]> {
        // Both users always share the activity, runs of 5.
        let mut seq = Vec::new();
        for r in 0..20 {
            for _ in 0..5 {
                seq.push(r % 2);
            }
        }
        vec![[seq.clone(), seq]]
    }

    #[test]
    fn decodes_clear_joint_sequences() {
        let chmm = CoupledHmm::fit(&synchronized_training(), 2, 0.1).unwrap();
        let labels = vec![0, 0, 0, 1, 1, 1];
        let em = [clear(&labels, 2, 5.0), clear(&labels, 2, 5.0)];
        let path = chmm.viterbi(&em).unwrap();
        assert_eq!(path.macros[0], labels);
        assert_eq!(path.macros[1], labels);
    }

    #[test]
    fn coupling_disambiguates_a_partner() {
        let chmm = CoupledHmm::fit(&synchronized_training(), 2, 0.1).unwrap();
        let labels = vec![0, 0, 0, 0, 0, 0];
        let clear_em = clear(&labels, 2, 5.0);
        // Partner has completely uninformative emissions.
        let flat: EmissionSeq = labels.iter().map(|_| vec![0.0, 0.0]).collect();
        let path = chmm.viterbi(&[clear_em, flat]).unwrap();
        assert_eq!(
            path.macros[1], labels,
            "cross-chain coupling should pull the ambiguous partner"
        );
    }

    #[test]
    fn shape_errors() {
        let chmm = CoupledHmm::fit(&synchronized_training(), 2, 0.1).unwrap();
        let a = clear(&[0, 0], 2, 1.0);
        let b = clear(&[0], 2, 1.0);
        assert!(matches!(
            chmm.viterbi(&[a, b]),
            Err(ModelError::LengthMismatch { .. })
        ));
        assert!(matches!(
            CoupledHmm::fit(&[[vec![0, 1], vec![0]]], 2, 0.1),
            Err(ModelError::LengthMismatch { .. })
        ));
        assert!(matches!(
            CoupledHmm::fit(&[], 2, 0.1),
            Err(ModelError::InsufficientData { .. })
        ));
    }

    #[test]
    fn states_explored_is_quadratic_in_states() {
        let chmm = CoupledHmm::fit(&synchronized_training(), 2, 0.1).unwrap();
        let labels = vec![0; 5];
        let em = [clear(&labels, 2, 1.0), clear(&labels, 2, 1.0)];
        let path = chmm.viterbi(&em).unwrap();
        assert_eq!(path.states_explored, 5 * 4);
    }
}
