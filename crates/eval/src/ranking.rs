//! Ranking metrics: ROC AUC (one-vs-rest) and its support-weighted
//! multi-class aggregate, matching the paper's "weighted ROC" figures.

/// Binary ROC AUC from scores and boolean labels, computed with the
/// rank-statistic (Mann–Whitney) formulation with tie correction.
///
/// Returns 0.5 when either class is absent (no ranking information).
pub fn roc_auc(scores: &[f64], positives: &[bool]) -> f64 {
    assert_eq!(
        scores.len(),
        positives.len(),
        "scores vs labels length mismatch"
    );
    let n_pos = positives.iter().filter(|&&p| p).count();
    let n_neg = positives.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank scores ascending, averaging ranks over ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let pos_rank_sum: f64 = ranks
        .iter()
        .zip(positives)
        .filter(|&(_, &p)| p)
        .map(|(&r, _)| r)
        .sum();
    let u = pos_rank_sum - (n_pos as f64) * (n_pos as f64 + 1.0) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Support-weighted one-vs-rest AUC over `n_classes`.
///
/// `scores[t][c]` is the score of class `c` at sample `t`; `labels[t]` the
/// true class.
pub fn weighted_auc(scores: &[Vec<f64>], labels: &[usize], n_classes: usize) -> f64 {
    assert_eq!(
        scores.len(),
        labels.len(),
        "scores vs labels length mismatch"
    );
    if labels.is_empty() {
        return 0.5;
    }
    let mut total = 0.0;
    let mut weight_sum = 0.0;
    for c in 0..n_classes {
        let support = labels.iter().filter(|&&l| l == c).count();
        if support == 0 {
            continue;
        }
        let class_scores: Vec<f64> = scores.iter().map(|row| row[c]).collect();
        let positives: Vec<bool> = labels.iter().map(|&l| l == c).collect();
        let auc = roc_auc(&class_scores, &positives);
        let w = support as f64 / labels.len() as f64;
        total += w * auc;
        weight_sum += w;
    }
    if weight_sum == 0.0 {
        0.5
    } else {
        total / weight_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_separation_is_zero() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [false, false, true, true];
        assert!(roc_auc(&scores, &labels).abs() < 1e-12);
    }

    #[test]
    fn random_like_ties_are_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_labels_are_half() {
        assert_eq!(roc_auc(&[0.1, 0.2], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[0.1, 0.2], &[false, false]), 0.5);
    }

    #[test]
    fn partial_overlap_matches_hand_computation() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
        // Pairs: (0.8>0.6), (0.8>0.2), (0.4<0.6), (0.4>0.2) → 3/4.
        let scores = [0.8, 0.4, 0.6, 0.2];
        let labels = [true, true, false, false];
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_auc_aggregates() {
        // Three classes, perfectly ranked.
        let labels = vec![0, 0, 1, 1, 2, 2];
        let scores: Vec<Vec<f64>> = labels
            .iter()
            .map(|&l| (0..3).map(|c| if c == l { 1.0 } else { 0.0 }).collect())
            .collect();
        assert!((weighted_auc(&scores, &labels, 3) - 1.0).abs() < 1e-12);
        assert_eq!(weighted_auc(&[], &[], 3), 0.5);
    }
}
