//! Start/end duration error (§VII-G, Table V).
//!
//! The paper scores how well a recognizer recovers activity *episode
//! boundaries*: for each true episode, find the best-matching predicted
//! episode of the same activity (the best-interval approach of Tapia et
//! al. \[20\]) and charge `(|start offset| + |end offset|) / true length`.
//! Unmatched episodes are charged an error of 1.

use serde::{Deserialize, Serialize};

/// A contiguous run of one activity label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Episode {
    /// Activity id.
    pub activity: usize,
    /// First tick (inclusive).
    pub start: usize,
    /// One past the last tick.
    pub end: usize,
}

impl Episode {
    /// Length in ticks.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the episode is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Ticks shared with another episode.
    pub fn overlap(&self, other: &Episode) -> usize {
        let s = self.start.max(other.start);
        let e = self.end.min(other.end);
        e.saturating_sub(s)
    }
}

/// Decomposes a label sequence into its maximal constant runs.
pub fn episodes_of(labels: &[usize]) -> Vec<Episode> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for t in 1..=labels.len() {
        if t == labels.len() || labels[t] != labels[start] {
            out.push(Episode {
                activity: labels[start],
                start,
                end: t,
            });
            start = t;
        }
    }
    out
}

/// Mean start/end duration error between true and predicted label
/// sequences, restricted to true episodes of at least `min_len` ticks
/// (very short episodes make the normalized error ill-conditioned).
///
/// # Panics
/// Panics if the sequences differ in length.
pub fn mean_duration_error(truth: &[usize], predicted: &[usize], min_len: usize) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "sequence length mismatch");
    let true_eps = episodes_of(truth);
    let pred_eps = episodes_of(predicted);
    let mut total = 0.0;
    let mut counted = 0usize;
    for te in true_eps.iter().filter(|e| e.len() >= min_len) {
        // Best-interval match: same activity, maximum overlap.
        let best = pred_eps
            .iter()
            .filter(|pe| pe.activity == te.activity && pe.overlap(te) > 0)
            .max_by_key(|pe| pe.overlap(te));
        let err = match best {
            None => 1.0,
            Some(pe) => {
                let start_err = te.start.abs_diff(pe.start);
                let end_err = te.end.abs_diff(pe.end);
                ((start_err + end_err) as f64 / te.len() as f64).min(1.0)
            }
        };
        total += err;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_decomposition() {
        let eps = episodes_of(&[0, 0, 1, 1, 1, 0]);
        assert_eq!(
            eps,
            vec![
                Episode {
                    activity: 0,
                    start: 0,
                    end: 2
                },
                Episode {
                    activity: 1,
                    start: 2,
                    end: 5
                },
                Episode {
                    activity: 0,
                    start: 5,
                    end: 6
                },
            ]
        );
        assert!(episodes_of(&[]).is_empty());
    }

    #[test]
    fn paper_cooking_example() {
        // True cooking 5..35 (30 ticks); predicted 10..39.
        // Error = (5 + 4) / 30 = 0.3.
        let mut truth = vec![9usize; 50];
        let mut pred = vec![9usize; 50];
        for t in 5..35 {
            truth[t] = 1;
        }
        for t in 10..39 {
            pred[t] = 1;
        }
        // Only the cooking episode has length ≥ 10.
        let err = mean_duration_error(&truth, &pred, 10);
        // Two long episodes exist in truth: the 9-runs (0..5 is too short,
        // 35..50 is 15 long) and cooking. Compute expected by hand:
        // cooking: 0.3; trailing 9-run 35..50 matched against pred 9-run
        // 39..50 → (4+0)/15 ≈ 0.2667. Mean ≈ 0.28333.
        assert!((err - (0.3 + 4.0 / 15.0) / 2.0).abs() < 1e-9, "err {err}");
    }

    #[test]
    fn perfect_prediction_has_zero_error() {
        let labels = vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 2];
        assert_eq!(mean_duration_error(&labels, &labels, 1), 0.0);
    }

    #[test]
    fn unmatched_episode_costs_one() {
        let truth = vec![1, 1, 1, 1];
        let pred = vec![0, 0, 0, 0];
        assert_eq!(mean_duration_error(&truth, &pred, 1), 1.0);
    }

    #[test]
    fn error_is_capped_at_one() {
        // Tiny true episode vs huge predicted episode of same activity.
        let truth = vec![0, 1, 0, 0, 0, 0, 0, 0];
        let pred = vec![1, 1, 1, 1, 1, 1, 1, 1];
        let err = mean_duration_error(&truth, &pred, 1);
        assert!(err <= 1.0, "err {err}");
    }

    #[test]
    fn min_len_filters_short_episodes() {
        let truth = vec![0, 1, 0, 0, 0, 0];
        let pred = vec![0, 0, 0, 0, 0, 0];
        // The 1-tick episodes are ignored with min_len 2; only the trailing
        // 0-run (ticks 2..6) is scored against the full predicted 0-run
        // (0..6): (2 + 0) / 4 = 0.5 exactly.
        let err = mean_duration_error(&truth, &pred, 2);
        assert!((err - 0.5).abs() < 1e-12, "err {err}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mean_duration_error(&[0], &[0, 1], 1);
    }
}
