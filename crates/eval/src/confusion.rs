//! Confusion matrices and derived per-class metrics.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Per-class metrics in the paper's table format.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// False-positive rate: `FP / (FP + TN)`.
    pub fp_rate: f64,
    /// Precision: `TP / (TP + FP)` (0 when the class is never predicted).
    pub precision: f64,
    /// Recall: `TP / (TP + FN)` (0 when the class never occurs).
    pub recall: f64,
    /// F-measure: harmonic mean of precision and recall.
    pub f_measure: f64,
    /// True occurrences of the class.
    pub support: usize,
}

/// A dense n×n confusion matrix (`rows = truth`, `cols = prediction`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// An empty matrix over `n` classes.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "confusion matrix needs at least one class");
        Self {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n
    }

    /// Records one (truth, prediction) pair.
    ///
    /// # Panics
    /// Panics if either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.n && predicted < self.n, "label out of range");
        self.counts[truth * self.n + predicted] += 1;
    }

    /// Records a whole pair of label sequences.
    ///
    /// # Panics
    /// Panics if the sequences differ in length or contain bad labels.
    pub fn record_all(&mut self, truth: &[usize], predicted: &[usize]) {
        assert_eq!(truth.len(), predicted.len(), "sequence length mismatch");
        for (&t, &p) in truth.iter().zip(predicted) {
            self.record(t, p);
        }
    }

    /// Merges another matrix (same class count) into this one.
    ///
    /// # Panics
    /// Panics on class-count mismatch.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n, other.n, "class count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Raw count at (truth, predicted).
    pub fn count(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.n + predicted]
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Metrics for one class (one-vs-rest).
    pub fn class_metrics(&self, class: usize) -> ClassMetrics {
        let tp = self.count(class, class);
        let fn_: u64 = (0..self.n)
            .filter(|&j| j != class)
            .map(|j| self.count(class, j))
            .sum();
        let fp: u64 = (0..self.n)
            .filter(|&i| i != class)
            .map(|i| self.count(i, class))
            .sum();
        let tn = self.total() - tp - fn_ - fp;
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        let precision = ratio(tp, tp + fp);
        let recall = ratio(tp, tp + fn_);
        let f_measure = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        ClassMetrics {
            fp_rate: ratio(fp, fp + tn),
            precision,
            recall,
            f_measure,
            support: (tp + fn_) as usize,
        }
    }

    /// Support-weighted averages of (fp_rate, precision, recall, f_measure)
    /// — the paper's "Overall" table row.
    pub fn weighted_metrics(&self) -> ClassMetrics {
        let total = self.total() as f64;
        if total == 0.0 {
            return ClassMetrics {
                fp_rate: 0.0,
                precision: 0.0,
                recall: 0.0,
                f_measure: 0.0,
                support: 0,
            };
        }
        let mut acc = ClassMetrics {
            fp_rate: 0.0,
            precision: 0.0,
            recall: 0.0,
            f_measure: 0.0,
            support: self.total() as usize,
        };
        for c in 0..self.n {
            let m = self.class_metrics(c);
            let w = m.support as f64 / total;
            acc.fp_rate += w * m.fp_rate;
            acc.precision += w * m.precision;
            acc.recall += w * m.recall;
            acc.f_measure += w * m.f_measure;
        }
        acc
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "confusion matrix ({} classes, {} samples):",
            self.n,
            self.total()
        )?;
        for i in 0..self.n {
            for j in 0..self.n {
                write!(f, "{:>6}", self.count(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(3);
        // class 0: 8 correct, 2 confused with 1.
        for _ in 0..8 {
            m.record(0, 0);
        }
        for _ in 0..2 {
            m.record(0, 1);
        }
        // class 1: 9 correct, 1 confused with 2.
        for _ in 0..9 {
            m.record(1, 1);
        }
        m.record(1, 2);
        // class 2: 10 correct.
        for _ in 0..10 {
            m.record(2, 2);
        }
        m
    }

    #[test]
    fn accuracy_and_counts() {
        let m = sample_matrix();
        assert_eq!(m.total(), 30);
        assert!((m.accuracy() - 27.0 / 30.0).abs() < 1e-12);
        assert_eq!(m.count(0, 1), 2);
    }

    #[test]
    fn class_metrics_match_hand_computation() {
        let m = sample_matrix();
        let c1 = m.class_metrics(1);
        // TP=9, FN=1, FP=2 (from class 0), TN=18.
        assert!((c1.recall - 0.9).abs() < 1e-12);
        assert!((c1.precision - 9.0 / 11.0).abs() < 1e-12);
        assert!((c1.fp_rate - 2.0 / 20.0).abs() < 1e-12);
        assert_eq!(c1.support, 10);
        let expected_f = 2.0 * (9.0 / 11.0) * 0.9 / ((9.0 / 11.0) + 0.9);
        assert!((c1.f_measure - expected_f).abs() < 1e-12);
    }

    #[test]
    fn perfect_class_has_perfect_metrics() {
        let m = sample_matrix();
        let c2 = m.class_metrics(2);
        assert_eq!(c2.recall, 1.0);
        assert!((c2.precision - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_metrics_are_support_weighted() {
        let m = sample_matrix();
        let w = m.weighted_metrics();
        // All classes have support 10, so this equals the plain mean.
        let mean_recall = (0..3).map(|c| m.class_metrics(c).recall).sum::<f64>() / 3.0;
        assert!((w.recall - mean_recall).abs() < 1e-12);
        assert_eq!(w.support, 30);
    }

    #[test]
    fn record_all_and_merge() {
        let mut a = ConfusionMatrix::new(2);
        a.record_all(&[0, 1, 1], &[0, 1, 0]);
        let mut b = ConfusionMatrix::new(2);
        b.record_all(&[0, 0], &[0, 0]);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert!((a.accuracy() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_metrics_are_zero() {
        let m = ConfusionMatrix::new(4);
        assert_eq!(m.accuracy(), 0.0);
        let c = m.class_metrics(0);
        assert_eq!(c.precision, 0.0);
        assert_eq!(c.recall, 0.0);
        assert_eq!(m.weighted_metrics().f_measure, 0.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_labels_panic() {
        ConfusionMatrix::new(2).record(2, 0);
    }

    #[test]
    fn display_renders_rows() {
        let m = sample_matrix();
        let s = m.to_string();
        assert!(s.contains("3 classes"));
        assert!(s.lines().count() >= 4);
    }
}
