//! # cace-eval
//!
//! Evaluation metrics for the CACE experiments: confusion matrices with the
//! paper's per-activity FP-rate / precision / recall / F-measure tables
//! (Figs 8b, 9, 10b), weighted one-vs-rest ROC/PRC areas, the start/end
//! duration error of §VII-G (Table V), and overhead accounting (Fig 11).
//!
//! ```
//! use cace_eval::ConfusionMatrix;
//!
//! let mut cm = ConfusionMatrix::new(3);
//! cm.record_all(&[0, 0, 1, 2, 2], &[0, 1, 1, 2, 2]);
//! assert_eq!(cm.total(), 5);
//! assert!((cm.accuracy() - 0.8).abs() < 1e-12);
//! let class0 = cm.class_metrics(0);
//! assert!((class0.recall - 0.5).abs() < 1e-12, "one of two zeros was missed");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confusion;
pub mod duration;
pub mod ranking;

pub use confusion::{ClassMetrics, ConfusionMatrix};
pub use duration::{episodes_of, mean_duration_error, Episode};
pub use ranking::{roc_auc, weighted_auc};
