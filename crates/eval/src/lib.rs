//! # cace-eval
//!
//! Evaluation metrics for the CACE experiments: confusion matrices with the
//! paper's per-activity FP-rate / precision / recall / F-measure tables
//! (Figs 8b, 9, 10b), weighted one-vs-rest ROC/PRC areas, the start/end
//! duration error of §VII-G (Table V), and overhead accounting (Fig 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confusion;
pub mod duration;
pub mod ranking;

pub use confusion::{ClassMetrics, ConfusionMatrix};
pub use duration::{episodes_of, mean_duration_error, Episode};
pub use ranking::{roc_auc, weighted_auc};
