//! Shared helpers for the CACE benchmark harnesses.
//!
//! Every bench in `benches/` regenerates one table or figure of the paper's
//! evaluation (§VII). The helpers here build the standard datasets and
//! trained engines so the individual harnesses stay focused on their
//! experiment. Absolute numbers differ from the paper (its substrate was a
//! physical testbed; ours is the simulator documented in `DESIGN.md`) — the
//! *shape* of each result is what the benches reproduce.
//!
//! See `ARCHITECTURE.md` for the full figure/table → bench mapping.
//!
//! ```no_run
//! use cace_bench::{cace_corpus, mean_accuracy, trained};
//! use cace_core::Strategy;
//!
//! let (train, test) = cace_corpus(1, 10, 250, 14000);
//! let engine = trained(&train, Strategy::CorrelationConstraint);
//! assert!(mean_accuracy(&engine, &test) > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cace_behavior::session::train_test_split;
use cace_behavior::{cace_grammar, generate_cace_dataset, Session, SessionConfig};
use cace_core::{CaceConfig, CaceEngine, Strategy};

/// Standard CACE-sim corpus: `sessions` recordings of `ticks` ticks in one
/// home, split 80/20.
pub fn cace_corpus(
    home: u32,
    sessions: usize,
    ticks: usize,
    seed: u64,
) -> (Vec<Session>, Vec<Session>) {
    let grammar = cace_grammar();
    let data = generate_cace_dataset(
        &grammar,
        1,
        sessions,
        &SessionConfig::standard().with_ticks(ticks).with_home(home),
        seed,
    );
    train_test_split(data, 0.8)
}

/// Trains an engine with the given strategy on the standard corpus.
pub fn trained(train: &[Session], strategy: Strategy) -> CaceEngine {
    CaceEngine::train(train, &CaceConfig::default().with_strategy(strategy))
        .expect("training succeeds on simulated data")
}

/// Mean tick-level accuracy of an engine over test sessions.
pub fn mean_accuracy(engine: &CaceEngine, test: &[Session]) -> f64 {
    let recognitions = engine.recognize_batch(test).expect("recognition succeeds");
    let acc: f64 = recognitions
        .iter()
        .zip(test)
        .map(|(rec, session)| rec.accuracy(session))
        .sum();
    acc / test.len().max(1) as f64
}

/// Prints a section header for the table output.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}
