//! Shared helpers for the CACE benchmark harnesses.
//!
//! Every bench in `benches/` regenerates one table or figure of the paper's
//! evaluation (§VII). The helpers here build the standard datasets and
//! trained engines so the individual harnesses stay focused on their
//! experiment. Absolute numbers differ from the paper (its substrate was a
//! physical testbed; ours is the simulator documented in `DESIGN.md`) — the
//! *shape* of each result is what the benches reproduce.
//!
//! See `ARCHITECTURE.md` for the full figure/table → bench mapping.
//!
//! ```no_run
//! use cace_bench::{cace_corpus, mean_accuracy, trained};
//! use cace_core::Strategy;
//!
//! let (train, test) = cace_corpus(1, 10, 250, 14000);
//! let engine = trained(&train, Strategy::CorrelationConstraint);
//! assert!(mean_accuracy(&engine, &test) > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cace_behavior::session::train_test_split;
use cace_behavior::{cace_grammar, generate_cace_dataset, Session, SessionConfig};
use cace_core::{CaceConfig, CaceEngine, Strategy};

/// Standard CACE-sim corpus: `sessions` recordings of `ticks` ticks in one
/// home, split 80/20.
pub fn cace_corpus(
    home: u32,
    sessions: usize,
    ticks: usize,
    seed: u64,
) -> (Vec<Session>, Vec<Session>) {
    let grammar = cace_grammar();
    let data = generate_cace_dataset(
        &grammar,
        1,
        sessions,
        &SessionConfig::standard().with_ticks(ticks).with_home(home),
        seed,
    );
    train_test_split(data, 0.8)
}

/// Trains an engine with the given strategy on the standard corpus.
pub fn trained(train: &[Session], strategy: Strategy) -> CaceEngine {
    CaceEngine::train(train, &CaceConfig::default().with_strategy(strategy))
        .expect("training succeeds on simulated data")
}

/// Mean tick-level accuracy of an engine over test sessions.
pub fn mean_accuracy(engine: &CaceEngine, test: &[Session]) -> f64 {
    let recognitions = engine.recognize_batch(test).expect("recognition succeeds");
    let acc: f64 = recognitions
        .iter()
        .zip(test)
        .map(|(rec, session)| rec.accuracy(session))
        .sum();
    acc / test.len().max(1) as f64
}

/// Prints a section header for the table output.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Nearest-rank percentile of an ascending-sorted sample (Hyndman–Fan
/// definition 1): the `p`-quantile is the `⌈p·N⌉`-th smallest sample,
/// clamped into the observed range. Unlike the rounded-index form this
/// always returns an *actual observed* value (never an interpolation)
/// and is exact at the conventional p50/p99 reporting points: for
/// N = 18 rounds, p99 is the maximum, not the second-largest.
///
/// # Panics
/// Panics on an empty sample.
pub fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Machine-readable perf records: the `BENCH_PR10.json` trajectory file.
///
/// Each bench that measures a serving-relevant number appends
/// [`PerfRecord`](perf::PerfRecord)s keyed by a stable `id`; re-running a bench overwrites
/// its own records and leaves the others, so the file accumulates one
/// up-to-date row per measurement across harnesses (`score_tables`,
/// `beam_sweep`, `f32_lane`, `router_scale`, `fleet_batch`,
/// `kernel_parity`, `adaptation`). CI's `--quick` smoke refreshes it on
/// every run. The PR 5/6/7/8/9 files (`BENCH_PR5.json` …
/// `BENCH_PR9.json`) are kept as historical baselines; when
/// `BENCH_PR10.json` does not exist yet, [`emit`](perf::emit) seeds it
/// from the PR 9 file so still-valid records carry forward.
pub mod perf {
    use std::path::PathBuf;

    /// One measurement row of `BENCH_PR10.json`.
    #[derive(Debug, Clone)]
    pub struct PerfRecord {
        /// Stable record key, e.g. `score_tables/c2_batch_decode`.
        pub id: String,
        /// Steady-state per-tick latency in nanoseconds.
        pub per_tick_ns: f64,
        /// Speedup over the naive-scoring reference on the same workload
        /// (`None` when the record has no naive counterpart).
        pub speedup_vs_naive: Option<f64>,
        /// Heap allocations per warmed tick (`None` when not measured).
        pub allocs_per_tick: Option<f64>,
        /// Sustained serving throughput in home-ticks per second (`None`
        /// outside the `router_scale` fleet records).
        pub homes_per_s: Option<f64>,
        /// Free-form context (workload, beam, accuracy delta, ...).
        pub note: String,
    }

    impl PerfRecord {
        fn to_value(&self) -> serde::Value {
            let mut fields = vec![
                ("id".to_string(), serde::Value::Str(self.id.clone())),
                (
                    "per_tick_ns".to_string(),
                    serde::Value::Float(self.per_tick_ns),
                ),
            ];
            if let Some(s) = self.speedup_vs_naive {
                fields.push(("speedup_vs_naive".to_string(), serde::Value::Float(s)));
            }
            if let Some(a) = self.allocs_per_tick {
                fields.push(("allocs_per_tick".to_string(), serde::Value::Float(a)));
            }
            if let Some(h) = self.homes_per_s {
                fields.push(("homes_per_s".to_string(), serde::Value::Float(h)));
            }
            fields.push(("note".to_string(), serde::Value::Str(self.note.clone())));
            serde::Value::Map(fields)
        }
    }

    /// The perf-record file at the workspace root.
    pub fn record_path() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_PR10.json")
    }

    /// Guard on a record batch about to be emitted: a pruning beam must
    /// never be *slower* than the exact decode of the same workload — the
    /// whole point of pruning is trading accuracy for latency. PR 5's
    /// `score_tables/c2_stream_push_topk_8th` row violated this (a
    /// `TopK(1800)` beam on C2's 14 400-state frontier keeps the beam so
    /// wide the pruned kernel, which cannot use the dense kernel's
    /// run-max memoization, does strictly more work than exact); this
    /// assertion makes any such row a bench failure instead of a silent
    /// entry in the trajectory file.
    ///
    /// # Panics
    /// Panics if either id is missing from `records`, or if the pruned
    /// row's `per_tick_ns` exceeds the exact row's.
    pub fn assert_pruned_not_slower(records: &[PerfRecord], exact_id: &str, pruned_id: &str) {
        let find = |id: &str| {
            records
                .iter()
                .find(|r| r.id == id)
                .unwrap_or_else(|| panic!("perf: no record with id {id}"))
        };
        let exact = find(exact_id);
        let pruned = find(pruned_id);
        assert!(
            pruned.per_tick_ns <= exact.per_tick_ns,
            "perf: pruned record {} ({:.0} ns/tick) is slower than exact record {} \
             ({:.0} ns/tick) — the beam is too wide to pay for losing the dense \
             kernel's memoizations",
            pruned.id,
            pruned.per_tick_ns,
            exact.id,
            exact.per_tick_ns,
        );
    }

    /// `per_tick_ns` of a record in the frozen PR 5 trajectory file
    /// (`BENCH_PR5.json`) — the historical baseline acceptance gates
    /// compare against (e.g. the f32 lane's "≥2x faster than the f64
    /// exact path" contract is measured against the exact path *as it
    /// stood when the lane was specified*, so later exact-lane speedups
    /// don't move the goalposts). Returns `None` if the file or id is
    /// missing.
    pub fn baseline_pr5(id: &str) -> Option<f64> {
        baseline_from("BENCH_PR5.json", id)
    }

    /// `per_tick_ns` of a record in the frozen PR 7 trajectory file
    /// (`BENCH_PR7.json`) — the pre-refactor kernel records the
    /// `kernel_parity` bench gates the generic trellis engine against.
    /// Returns `None` if the file or id is missing.
    pub fn baseline_pr7(id: &str) -> Option<f64> {
        baseline_from("BENCH_PR7.json", id)
    }

    /// `homes_per_s` of a record in the frozen PR 9 trajectory file
    /// (`BENCH_PR9.json`) — the serving-throughput baseline the PR 10
    /// fleet-batching gate compares against (the gate is pinned to the
    /// throughput *as it stood when batching was specified*, so later
    /// scalar-path speedups don't move the goalposts). Returns `None` if
    /// the file, id, or field is missing.
    pub fn baseline_homes_per_s_pr9(id: &str) -> Option<f64> {
        field_from("BENCH_PR9.json", id, "homes_per_s")
    }

    fn baseline_from(file: &str, id: &str) -> Option<f64> {
        field_from(file, id, "per_tick_ns")
    }

    fn field_from(file: &str, id: &str, field: &str) -> Option<f64> {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(file);
        let text = std::fs::read_to_string(path).ok()?;
        let serde::Value::Map(fields) = serde::json::value_from_str(&text).ok()? else {
            return None;
        };
        let records = fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
            ("records", serde::Value::Seq(rs)) => Some(rs),
            _ => None,
        })?;
        records.iter().find_map(|r| {
            let serde::Value::Map(fs) = r else {
                return None;
            };
            let rid = fs.iter().find_map(|(k, v)| match (k.as_str(), v) {
                ("id", serde::Value::Str(s)) => Some(s.as_str()),
                _ => None,
            })?;
            if rid != id {
                return None;
            }
            fs.iter().find_map(|(k, v)| match (k.as_str(), v) {
                (k, serde::Value::Float(f)) if k == field => Some(*f),
                _ => None,
            })
        })
    }

    fn record_id(value: &serde::Value) -> Option<&str> {
        let serde::Value::Map(fields) = value else {
            return None;
        };
        fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
            ("id", serde::Value::Str(s)) => Some(s.as_str()),
            _ => None,
        })
    }

    /// Merges `records` into `BENCH_PR10.json`: existing rows with the same
    /// `id` are replaced, everything else is preserved. When the PR 10 file
    /// does not exist yet, the merge starts from the frozen `BENCH_PR9.json`
    /// so the prior trajectory's record ids carry forward. Prints the file
    /// path so bench logs point at the artifact.
    pub fn emit(records: &[PerfRecord]) {
        let path = record_path();
        let seed = path.with_file_name("BENCH_PR9.json");
        let source = if path.exists() { &path } else { &seed };
        let mut kept: Vec<serde::Value> = Vec::new();
        if let Ok(text) = std::fs::read_to_string(source) {
            if let Ok(serde::Value::Map(fields)) = serde::json::value_from_str(&text) {
                for (key, value) in fields {
                    if key == "records" {
                        if let serde::Value::Seq(existing) = value {
                            kept.extend(existing.into_iter().filter(|r| {
                                record_id(r)
                                    .map(|id| records.iter().all(|n| n.id != id))
                                    .unwrap_or(false)
                            }));
                        }
                    }
                }
            }
        }
        kept.extend(records.iter().map(PerfRecord::to_value));
        let doc = serde::Value::Map(vec![("records".to_string(), serde::Value::Seq(kept))]);
        let text = serde::json::value_to_string(&doc);
        if let Err(e) = std::fs::write(&path, text + "\n") {
            eprintln!("perf: could not write {}: {e}", path.display());
        } else {
            println!("perf: {} record(s) → {}", records.len(), path.display());
        }
    }
}
