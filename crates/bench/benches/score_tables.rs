//! **Score tables** — dense precomputed scoring + trellis arena vs the
//! naive per-edge scorer (PR 5's headline claim).
//!
//! The fig9 (CASAS-style) C2 workload is the serving hot path: this bench
//! decodes its engine-prepared state spaces twice — once through the
//! production table-scored, arena-backed decoder and once through the
//! naive reference (`cace_testkit::naive`, the pre-table implementation
//! with per-edge `transition_score` calls and per-column `Vec`s) — and
//! reports the per-tick speedup (**target ≥2×**), the steady-state
//! streaming push latency per beam, and the heap allocations per warmed
//! push (**target 0**). Everything lands in `BENCH_PR6.json` as
//! machine-readable perf records alongside the `beam_sweep` rows.
//!
//! The pruned streaming row uses `TopK(56)` — the width `beam_sweep`
//! found to hold C2 accuracy within 0 pp of exact. PR 5 measured
//! `TopK(bound/8)` = `TopK(1800)` here, which is *slower* than exact (the
//! pruned kernel forgoes the dense kernel's run-max memoization, and a
//! 1800-wide frontier doesn't shrink the work enough to pay for that);
//! [`perf::assert_pruned_not_slower`] now guards the emitted records
//! against that class of regression.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cace_behavior::session::train_test_split;
use cace_behavior::{generate_casas_dataset, CasasConfig};
use cace_bench::perf::{self, PerfRecord};
use cace_bench::{header, trained};
use cace_core::{DecoderConfig, Strategy};
use cace_hdbn::{CoupledHdbn, Lag, OnlineCoupledViterbi, TickInput};
use cace_testkit::naive::naive_coupled_viterbi;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

// ---------------------------------------------------------------------
// Allocation counting (benches run single-threaded, atomics suffice).
// ---------------------------------------------------------------------

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

struct CountingAlloc;

impl CountingAlloc {
    fn record() {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    f();
    COUNTING.store(false, Ordering::Relaxed);
    ALLOCS.load(Ordering::Relaxed)
}

/// Best-of-`repeats` per-tick wall time of `f` over a `ticks`-long decode.
fn best_per_tick_ns(ticks: usize, repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() / ticks as f64);
    }
    best * 1e9
}

fn bench(c: &mut Criterion) {
    // The fig9 (CASAS-style) C2 workload, engine-prepared once.
    let cfg = CasasConfig {
        pairs: 4,
        sessions_per_pair: 2,
        ticks: 200,
        ..CasasConfig::default()
    };
    let sessions = generate_casas_dataset(&cfg, 9002);
    let (train, test) = train_test_split(sessions, 0.8);
    let engine = trained(&train, Strategy::CorrelationConstraint);
    let session = &test[0];
    let inputs: Vec<TickInput> = engine.tick_inputs(session);
    let params = Arc::clone(engine.hdbn_params());
    let n_ticks = inputs.len();

    // ---------- Batch decode: dense tables + arena vs naive ----------
    let table_decoder = CoupledHdbn::from_shared(Arc::clone(&params));
    let table_path = table_decoder.viterbi(&inputs).expect("table decode");
    let (naive_macros, naive_lp) = naive_coupled_viterbi(&params, &inputs);
    assert_eq!(
        table_path.macros, naive_macros,
        "table and naive decoders must agree before being compared"
    );
    assert_eq!(table_path.log_prob.to_bits(), naive_lp.to_bits());

    let repeats = 5;
    let table_ns = best_per_tick_ns(n_ticks, repeats, || {
        black_box(table_decoder.viterbi(black_box(&inputs)).expect("decode"));
    });
    let naive_ns = best_per_tick_ns(n_ticks, repeats, || {
        black_box(naive_coupled_viterbi(
            black_box(&params),
            black_box(&inputs),
        ));
    });
    let speedup = naive_ns / table_ns.max(1e-9);

    header("Score tables — C2 batch decode on the fig9 (CASAS-style) workload");
    println!(
        "{n_ticks} ticks/session, {} joint states bound",
        engine.frontier_bound()
    );
    println!("naive scoring : {naive_ns:>10.0} ns/tick");
    println!("dense tables  : {table_ns:>10.0} ns/tick");
    println!(
        "→ {speedup:.2}x per-tick speedup over naive scoring (target ≥2x), bit-identical output"
    );

    // ---------- Streaming: warmed push latency + allocations ----------
    header("Score tables — steady-state streaming push (hdbn coupled frontier)");
    println!("{:>10} {:>12} {:>14}", "beam", "ns/tick", "allocs/tick");
    let mut stream_records = Vec::new();
    for (tag, decoder) in [
        ("exact", DecoderConfig::exact()),
        // beam_sweep's accuracy-holding width — NOT a bound/8 divisor; see
        // the module docs for why the wide beam is a pessimization.
        ("topk_56", DecoderConfig::top_k(56)),
    ] {
        let model = CoupledHdbn::from_shared(Arc::clone(&params)).with_decoder(decoder);
        let mut online = OnlineCoupledViterbi::new(model, Lag::Fixed(10));
        online.reserve_ticks(4 * n_ticks + 1024);
        for tick in &inputs {
            online.push(tick).expect("warmup push");
        }
        // Measured window: one more pass over the session, warmed.
        let t0 = Instant::now();
        for tick in &inputs {
            black_box(online.push(black_box(tick)).expect("push"));
        }
        let push_ns = t0.elapsed().as_secs_f64() / n_ticks as f64 * 1e9;
        let allocs = count_allocs(|| {
            for tick in &inputs {
                black_box(online.push(black_box(tick)).expect("push"));
            }
        });
        let allocs_per_tick = allocs as f64 / n_ticks as f64;
        println!("{tag:>10} {push_ns:>12.0} {allocs_per_tick:>14.3}");
        stream_records.push(PerfRecord {
            id: format!("score_tables/c2_stream_push_{tag}"),
            per_tick_ns: push_ns,
            speedup_vs_naive: None,
            allocs_per_tick: Some(allocs_per_tick),
            homes_per_s: None,
            note: format!("fig9 C2 warmed OnlineCoupledViterbi push, {tag} beam, lag 10"),
        });
    }

    // ---------- Perf records ----------
    let mut records = vec![PerfRecord {
        id: "score_tables/c2_batch_decode".to_string(),
        per_tick_ns: table_ns,
        speedup_vs_naive: Some(speedup),
        allocs_per_tick: None,
        homes_per_s: None,
        note: format!(
            "fig9 C2 exact coupled decode, dense tables+arena vs naive per-edge scoring \
             ({naive_ns:.0} ns/tick naive); target >=2x"
        ),
    }];
    records.extend(stream_records);
    perf::assert_pruned_not_slower(
        &records,
        "score_tables/c2_stream_push_exact",
        "score_tables/c2_stream_push_topk_56",
    );
    perf::emit(&records);

    // ---------- Criterion targets ----------
    let mut next = 0usize;
    c.bench_function("score_tables/c2_batch_decode_tables", |b| {
        b.iter(|| black_box(table_decoder.viterbi(black_box(&inputs)).expect("decode")))
    });
    c.bench_function("score_tables/c2_batch_decode_naive", |b| {
        b.iter(|| {
            black_box(naive_coupled_viterbi(
                black_box(&params),
                black_box(&inputs),
            ))
        })
    });
    let model = CoupledHdbn::from_shared(Arc::clone(&params));
    let mut online = OnlineCoupledViterbi::new(model, Lag::Fixed(10));
    for tick in &inputs {
        online.push(tick).expect("warmup");
    }
    c.bench_function("score_tables/c2_stream_push_exact", |b| {
        b.iter(|| {
            let tick = &inputs[next % n_ticks];
            next += 1;
            black_box(online.push(black_box(tick)).expect("push"))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
