//! **Fig 10(b) / Fig 8(b)** — CACE dataset per-activity FP rate, precision,
//! recall, and F-measure, plus the shared-activity accuracy highlight.
//!
//! The paper: overall FP 1.5 %, precision 97.3 %, recall 95.1 %, F 96.8 %;
//! ≈99.7 % on shared activities (sleeping, dining, past times).

use cace_bench::{cace_corpus, header, trained};
use cace_core::Strategy;
use cace_eval::{weighted_auc, ConfusionMatrix};
use cace_model::MacroActivity;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (train, test) = cace_corpus(1, 7, 300, 11001);
    let engine = trained(&train, Strategy::CorrelationConstraint);

    let mut confusion = ConfusionMatrix::new(engine.n_macro());
    let mut shared_correct = 0usize;
    let mut shared_total = 0usize;
    // One-hot "scores" from the decoded labels give a conservative AUC
    // estimate for the weighted-ROC row.
    let mut scores: Vec<Vec<f64>> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    let recs = engine.recognize_batch(&test).unwrap();
    for (session, rec) in test.iter().zip(&recs) {
        for u in 0..2 {
            confusion.record_all(&session.labels_of(u), &rec.macros[u]);
            for (t, tick) in session.ticks.iter().enumerate() {
                let mut row = vec![0.0; engine.n_macro()];
                row[rec.macros[u][t]] = 1.0;
                scores.push(row);
                labels.push(tick.labels[u]);
            }
        }
        for (t, tick) in session.ticks.iter().enumerate() {
            if tick.labels[0] == tick.labels[1]
                && MacroActivity::from_index(tick.labels[0])
                    .is_some_and(|a| a.is_typically_shared())
            {
                for u in 0..2 {
                    shared_total += 1;
                    if rec.macros[u][t] == tick.labels[u] {
                        shared_correct += 1;
                    }
                }
            }
        }
    }

    header("Fig 10(b) — CACE per-activity metrics (C2 strategy)");
    println!(
        "{:<18} {:>8} {:>10} {:>8} {:>8}",
        "activity", "FP rate", "precision", "recall", "F1"
    );
    for activity in MacroActivity::ALL {
        let m = confusion.class_metrics(activity.index());
        if m.support == 0 {
            continue;
        }
        println!(
            "{:>2} {:<15} {:>8.3} {:>10.3} {:>8.3} {:>8.3}",
            activity.paper_number(),
            activity.label(),
            m.fp_rate,
            m.precision,
            m.recall,
            m.f_measure
        );
    }
    let overall = confusion.weighted_metrics();
    println!(
        "overall: accuracy {:.1} %  FP {:.3}  precision {:.3}  recall {:.3}  F {:.3}",
        100.0 * confusion.accuracy(),
        overall.fp_rate,
        overall.precision,
        overall.recall,
        overall.f_measure
    );
    println!(
        "weighted ROC AUC (one-hot decode): {:.3}   (paper: 0.977)",
        weighted_auc(&scores, &labels, engine.n_macro())
    );
    if shared_total > 0 {
        println!(
            "shared-activity accuracy: {:.1} % over {} user-ticks (paper: ≈99.7 %)",
            100.0 * shared_correct as f64 / shared_total as f64,
            shared_total
        );
    }
    println!("(paper overall: FP 1.5 %, P 97.3 %, R 95.1 %, F 96.8 %)");

    let session = &test[0];
    c.bench_function("fig10b/c2_recognition", |b| {
        b.iter(|| {
            black_box(
                engine
                    .recognize(black_box(session))
                    .unwrap()
                    .states_explored,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
