//! **Training & persistence** — the train-once/serve-many pipeline costs:
//! EM throughput with the E-step fanned across cores (sequential vs
//! `RAYON_NUM_THREADS=4`) and engine-snapshot save/load latency.
//!
//! The paper trains offline and never revisits the cost; serving millions
//! of homes does — retraining on fresh data is gated by `LearnParamsEM`
//! (forward–backward over every sequence per iteration, the slowest
//! training stage), and model rollout is gated by snapshot round-trip
//! latency. Expected shape: the E-step scales ~linearly with cores until
//! the per-sequence grain runs out (the fan-out unit is one session), and
//! the snapshot round-trip stays in the low milliseconds — far below a
//! training run — so "publish to registry, reload in N serving processes"
//! is effectively free.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use cace_bench::{cace_corpus, header};
use cace_core::{CaceConfig, CaceEngine};
use cace_hdbn::{
    e_step, fit_em_shared, EmConfig, HdbnConfig, HdbnParams, MicroCandidate, SingleHdbn, TickInput,
};
use criterion::{criterion_group, criterion_main, Criterion};

/// EM tick inputs synthesized from ground truth: 8 candidates per user per
/// tick, the true micro tuple favored — the same shape `CaceEngine::train`
/// feeds `LearnParamsEM`, without depending on engine-internal preparers.
fn em_inputs(sessions: &[cace_behavior::Session]) -> Vec<Vec<TickInput>> {
    sessions
        .iter()
        .map(|session| {
            session
                .ticks
                .iter()
                .map(|tick| {
                    let cands = |u: usize| -> Vec<MicroCandidate> {
                        let truth = tick.truth[u].micro;
                        (0..8)
                            .map(|k| MicroCandidate {
                                postural: (truth.postural.index() + k) % 6,
                                gestural: Some((truth.gestural.index() + k) % 5),
                                location: (truth.location.index() + k) % 14,
                                obs_loglik: -(k as f64) * 1.5,
                            })
                            .collect()
                    };
                    TickInput {
                        candidates: [cands(0), cands(1)],
                        macro_candidates: [None, None],
                        macro_bonus: Vec::new(),
                    }
                })
                .collect()
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let (train, test) = cace_corpus(1, 8, 120, 15003);
    let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
    let params = Arc::new(
        HdbnParams::new(engine.stats().clone(), HdbnConfig::default())
            .expect("trained stats are valid"),
    );
    let inputs = em_inputs(&train);
    let model = SingleHdbn::from_shared(Arc::clone(&params));

    header("Training & persistence — parallel EM + snapshot round-trip");
    println!(
        "corpus: {} sessions x 120 ticks = {} EM sequences (2 chains each)",
        train.len(),
        inputs.len()
    );

    // One-shot wall-clock headline for a full 3-iteration EM run per
    // worker count (criterion's own loop would thrash the env var).
    for workers in ["1", "4"] {
        std::env::set_var("RAYON_NUM_THREADS", workers);
        let t0 = Instant::now();
        let outcome = fit_em_shared(
            Arc::clone(&params),
            &inputs,
            &EmConfig {
                max_iters: 3,
                tol: 0.0,
                laplace: 0.5,
            },
        )
        .unwrap();
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "fit_em (3 iters) RAYON_NUM_THREADS={workers}: {wall:.3} s (final ll {:.1})",
            outcome.log_likelihoods.last().unwrap()
        );
        black_box(outcome);
    }

    // Criterion targets: one E-step pass, sequential vs 4 workers.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    c.bench_function("train_persist/e_step_seq1", |b| {
        b.iter(|| e_step(black_box(&model), black_box(&inputs)).unwrap())
    });
    std::env::set_var("RAYON_NUM_THREADS", "4");
    c.bench_function("train_persist/e_step_par4", |b| {
        b.iter(|| e_step(black_box(&model), black_box(&inputs)).unwrap())
    });
    std::env::remove_var("RAYON_NUM_THREADS");

    // Snapshot save/load latency (string round-trip; the fs layer adds
    // only the read/write syscalls).
    let snapshot = engine.to_snapshot_string();
    println!("snapshot size: {:.1} KiB", snapshot.len() as f64 / 1024.0);
    c.bench_function("train_persist/snapshot_save", |b| {
        b.iter(|| black_box(engine.to_snapshot_string()))
    });
    c.bench_function("train_persist/snapshot_load", |b| {
        b.iter(|| CaceEngine::from_snapshot_str(black_box(&snapshot)).unwrap())
    });

    let reloaded = CaceEngine::from_snapshot_str(&snapshot).unwrap();
    let a = engine.recognize(&test[0]).unwrap();
    let b = reloaded.recognize(&test[0]).unwrap();
    assert_eq!(a.macros, b.macros, "reloaded engine must serve identically");
    println!("reload verified: recognize output identical to trained engine");
}

criterion_group!(benches, bench);
criterion_main!(benches);
