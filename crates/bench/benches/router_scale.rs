//! **router_scale** — the PR 7 serving-tier headline: sustained fleet
//! throughput of the [`ShardedRouter`] as the home count sweeps 10²–10⁵.
//!
//! Every home is a fixed-lag stream over the tiny CACE-sim model; each
//! round delivers one tick to every home through `push_round`, so one
//! "home-tick" is one full online decode step behind the router's shard
//! fan-out. Two serving modes are measured at each fleet size:
//!
//! * **uncapped** — every home keeps its decoder live (the memory-rich
//!   deployment: fleet-size × live trellis state resident);
//! * **capped** — an LRU live cap far below the fleet size, so the router
//!   continuously parks cold homes to snapshot bytes and rehydrates them
//!   on their next tick (the million-home deployment shape: resident state
//!   bounded by the cap, not the fleet).
//!
//! The PR 7 acceptance gate is asserted where it is measured: at every
//! swept size the capped router's decision stream must be **bit-identical**
//! to the uncapped one (the cap may only move state, never change
//! answers), and at ≥10⁴ homes the cap (256 live decoders fleet-wide) must
//! actually churn — parks and rehydrations both observed — since this
//! round-robin drive is the cap's worst case: every home is equally hot,
//! so every push beyond the cap is a full snapshot-bytes park/rehydrate
//! cycle. Throughput lands in `BENCH_PR10.json` as `router_scale/*` records
//! carrying the `homes_per_s` claim field plus p50/p99 per-home push
//! latency (the capped rows price that worst case; a production fleet
//! parks *cold* homes, so its cost sits between the two rows). CI's
//! `--quick` smoke re-runs the sweep at 10²–10⁴ and re-asserts the gates;
//! 10⁵ runs in the full mode only, on shortened rounds.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use cace_behavior::{ObservedTick, Session};
use cace_bench::perf::{self, PerfRecord};
use cace_bench::{header, nearest_rank};
use cace_core::{CaceEngine, HomeRound, Lag, ShardedRouter, Strategy, StreamDecision};
use cace_testkit::{engine, tiny_corpus};
use criterion::{criterion_group, criterion_main, Criterion};

const MODEL: &str = "cace";
const LAG: Lag = Lag::Fixed(6);
/// Measured rounds per fleet size (after a 2-round warmup); the 10⁵ point
/// shortens the drive so the full sweep stays in single-digit minutes.
fn rounds_for(size: usize) -> usize {
    if size >= 100_000 {
        5
    } else {
        18
    }
}
/// Per-shard live cap in capped mode: 8 shards × 32 = 256 live decoders
/// regardless of fleet size — "well below" every swept home count.
const LIVE_CAP: usize = 32;

struct FleetRun {
    homes_per_s: f64,
    p50_push_ns: f64,
    p99_push_ns: f64,
    parks: u64,
    rehydrations: u64,
    decisions: Vec<(u64, Vec<StreamDecision>)>,
}

/// Builds a `size`-home router over `sessions` (home `i` replays session
/// `i % len`), delivers `rounds_for(size)` interleaved rounds, and reports
/// sustained throughput plus per-home push-latency percentiles (each
/// sample is one round's wall time divided by the homes it served).
fn run_fleet(
    engine: &Arc<CaceEngine>,
    sessions: &[Session],
    size: usize,
    live_cap: Option<usize>,
    binary_parking: bool,
) -> FleetRun {
    let mut router = ShardedRouter::new();
    if let Some(cap) = live_cap {
        router = router.with_live_cap(cap);
    }
    // Binary parking is the router default now; the JSON arm of the
    // park-thrash codec comparison opts out explicitly.
    if binary_parking {
        router = router.with_binary_parking();
    } else {
        router = router.with_json_parking();
    }
    router
        .register_model(MODEL, Arc::clone(engine))
        .expect("fresh registry");
    for id in 0..size as u64 {
        router.add_home(id, MODEL, LAG).expect("distinct ids");
    }

    let rounds = rounds_for(size);
    let mut decisions: Vec<(u64, Vec<StreamDecision>)> =
        (0..size as u64).map(|id| (id, Vec::new())).collect();
    let mut per_push_ns: Vec<f64> = Vec::with_capacity(rounds);
    let mut total_pushes = 0u64;
    let mut total_seconds = 0.0f64;
    let warmup = 2;
    for t in 0..warmup + rounds {
        let round: Vec<(u64, &ObservedTick)> = (0..size as u64)
            .map(|id| {
                let session = &sessions[id as usize % sessions.len()];
                (id, &session.ticks[t % session.len()].observed)
            })
            .collect();
        let t0 = Instant::now();
        let outcomes = black_box(router.push_round(black_box(&round)).expect("routed fleet"));
        let elapsed = t0.elapsed().as_secs_f64();
        for (pos, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                HomeRound::Advanced(Some(d)) => decisions[pos].1.push(d),
                HomeRound::Advanced(None) => {}
                other => panic!("home {pos}: fleet round failed: {other:?}"),
            }
        }
        if t >= warmup {
            per_push_ns.push(elapsed / size as f64 * 1e9);
            total_pushes += size as u64;
            total_seconds += elapsed;
        }
    }
    let stats = router.stats();
    assert_eq!(stats.quarantined_homes(), 0, "no home may fault at scale");
    per_push_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    // Nearest-rank percentiles (see `cace_bench::nearest_rank`): the
    // ⌈p·N⌉-th smallest round latency, an actual observed sample. The
    // previous `round((N-1)·p)` indexing drifted off the conventional
    // rank on short sweeps — p50 of 18 rounds landed on the 10th
    // smallest sample instead of the 9th.
    let pct = |p: f64| nearest_rank(&per_push_ns, p);
    FleetRun {
        homes_per_s: total_pushes as f64 / total_seconds.max(1e-12),
        p50_push_ns: pct(0.50),
        p99_push_ns: pct(0.99),
        parks: stats.parks(),
        rehydrations: stats.rehydrations(),
        decisions,
    }
}

fn bench(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick");
    let (train, test) = tiny_corpus(6, 60, 4117);
    let engine = Arc::new(engine(&train, Strategy::CorrelationConstraint));

    let sizes: &[usize] = if quick {
        &[100, 1_000, 10_000]
    } else {
        &[100, 1_000, 10_000, 100_000]
    };

    header("router_scale — sharded serving tier, fleet sweep (1 tick/home/round)");
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>12} {:>9} {:>11}",
        "homes", "mode", "homes/s", "p50 ns/push", "p99 ns/push", "parks", "rehydrates"
    );

    let mut records = Vec::new();
    let mut gate_identity_checked = false;
    for &size in sizes {
        let uncapped = run_fleet(&engine, &test, size, None, true);
        let capped = run_fleet(&engine, &test, size, Some(LIVE_CAP), true);
        for (mode, run) in [("uncapped", &uncapped), ("capped", &capped)] {
            println!(
                "{size:>8} {mode:>9} {:>12.0} {:>12.0} {:>12.0} {:>9} {:>11}",
                run.homes_per_s, run.p50_push_ns, run.p99_push_ns, run.parks, run.rehydrations
            );
        }
        // The cap may move state between live and parked, never change
        // answers: bit-identical decision streams at every size.
        assert_eq!(
            capped.decisions, uncapped.decisions,
            "{size} homes: LRU cap changed the decision stream"
        );
        if size >= 10_000 {
            gate_identity_checked = true;
            assert!(
                capped.parks > 0 && capped.rehydrations > 0,
                "{size} homes with a {LIVE_CAP}/shard cap must park and rehydrate"
            );
        }
        assert!(
            capped.homes_per_s.is_finite() && capped.homes_per_s > 0.0,
            "{size} homes: degenerate throughput measurement"
        );
        let id_size = if size >= 1_000 {
            format!("{}k", size / 1_000)
        } else {
            size.to_string()
        };
        records.push(PerfRecord {
            id: format!("router_scale/fleet_{id_size}_capped"),
            per_tick_ns: capped.p50_push_ns,
            speedup_vs_naive: None,
            allocs_per_tick: None,
            homes_per_s: Some(capped.homes_per_s),
            note: format!(
                "{size} homes, 8 shards, LRU cap {LIVE_CAP}/shard, lag 6, tiny C2 model: \
                 p99 {:.0} ns/push, {} parks / {} rehydrations over {} rounds (worst-case \
                 round-robin churn); decisions bit-identical to uncapped ({:.0} homes/s)",
                capped.p99_push_ns,
                capped.parks,
                capped.rehydrations,
                rounds_for(size),
                uncapped.homes_per_s
            ),
        });
        records.push(PerfRecord {
            id: format!("router_scale/fleet_{id_size}_uncapped"),
            per_tick_ns: uncapped.p50_push_ns,
            speedup_vs_naive: None,
            allocs_per_tick: None,
            homes_per_s: Some(uncapped.homes_per_s),
            note: format!(
                "{size} homes, 8 shards, no live cap, lag 6, tiny C2 model: \
                 p99 {:.0} ns/push",
                uncapped.p99_push_ns
            ),
        });
    }
    assert!(
        gate_identity_checked,
        "the sweep must include the 10^4-home acceptance point"
    );

    // Park-thrash codec row: the same worst-case churn fleet (10⁴ homes,
    // 256 live fleet-wide, so ~97% of pushes pay a full park/rehydrate
    // cycle), parked as JSON vs the binary snapshot kind. The codec may
    // only change bytes and speed, never answers — decision streams must
    // be bit-identical across all three runs.
    let thrash_size = 10_000usize;
    let json = run_fleet(&engine, &test, thrash_size, Some(LIVE_CAP), false);
    let bin = run_fleet(&engine, &test, thrash_size, Some(LIVE_CAP), true);
    assert_eq!(
        bin.decisions, json.decisions,
        "binary parking changed the decision stream"
    );
    assert!(
        bin.parks > 0 && bin.rehydrations > 0,
        "thrash row must actually churn"
    );
    println!();
    println!(
        "park-thrash codec ({thrash_size} homes, cap {LIVE_CAP}/shard):          json {:.0} homes/s (p50 {:.0} ns/push) vs bin {:.0} homes/s (p50 {:.0} ns/push)",
        json.homes_per_s, json.p50_push_ns, bin.homes_per_s, bin.p50_push_ns
    );
    records.push(PerfRecord {
        id: "router_scale/thrash_10k_json".into(),
        per_tick_ns: json.p50_push_ns,
        speedup_vs_naive: None,
        allocs_per_tick: None,
        homes_per_s: Some(json.homes_per_s),
        note: format!(
            "{thrash_size} homes, cap {LIVE_CAP}/shard, JSON parking: p99 {:.0} ns/push,              {} parks / {} rehydrations",
            json.p99_push_ns, json.parks, json.rehydrations
        ),
    });
    records.push(PerfRecord {
        id: "router_scale/thrash_10k_bin".into(),
        per_tick_ns: bin.p50_push_ns,
        speedup_vs_naive: None,
        allocs_per_tick: None,
        homes_per_s: Some(bin.homes_per_s),
        note: format!(
            "{thrash_size} homes, cap {LIVE_CAP}/shard, binary (kind=stream-bin) parking:              p99 {:.0} ns/push, {} parks / {} rehydrations; decisions bit-identical to the              JSON row ({:.0} homes/s)",
            bin.p99_push_ns, bin.parks, bin.rehydrations, json.homes_per_s
        ),
    });
    perf::emit(&records);

    // Criterion target on the smallest fleet so `--quick`/`--test` runs
    // keep a conventional timed entry point.
    c.bench_function("router_scale/round_100_homes_capped", |b| {
        let mut router = ShardedRouter::new().with_live_cap(LIVE_CAP);
        router
            .register_model(MODEL, Arc::clone(&engine))
            .expect("fresh registry");
        for id in 0..100u64 {
            router.add_home(id, MODEL, LAG).expect("distinct ids");
        }
        let mut t = 0usize;
        b.iter(|| {
            let round: Vec<(u64, &ObservedTick)> = (0..100u64)
                .map(|id| {
                    let session = &test[id as usize % test.len()];
                    (id, &session.ticks[t % session.len()].observed)
                })
                .collect();
            t += 1;
            black_box(router.push_round(black_box(&round)).expect("routed fleet"))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
