//! **Beam sweep** — frontier-pruned decoding: per-tick latency vs macro
//! accuracy, per strategy and per beam width.
//!
//! The coupled decoder is the serving hot path; CACE's correlation rules
//! prune the *candidate* space, and the decoder beam
//! ([`cace_core::DecoderConfig`]) prunes the *frontier* on top. This bench
//! quantifies the second lever: a sweep table over NH/NCR/NCS/C2 on the
//! CACE simulator, the headline C2 speedup-vs-accuracy claim on the fig9
//! (CASAS-style) workload — the target shape is **≥3× per-tick speedup at
//! a beam whose macro accuracy stays within 1 point of exact** — and
//! criterion targets for the steady-state streaming push at each width.

use cace_behavior::session::train_test_split;
use cace_behavior::{generate_casas_dataset, CasasConfig, Session};
use cace_bench::perf::{self, PerfRecord};
use cace_bench::{cace_corpus, header, trained};
use cace_core::{CaceEngine, DecoderConfig, Lag, Strategy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// Mean accuracy and total recognize wall-time of an engine over test
/// sessions.
fn measure(engine: &CaceEngine, test: &[Session]) -> (f64, f64, u64) {
    let mut acc = 0.0;
    let mut wall = 0.0;
    let mut ops = 0u64;
    for session in test {
        let rec = engine.recognize(session).expect("recognition succeeds");
        acc += rec.accuracy(session);
        wall += rec.wall_seconds;
        ops += rec.transition_ops;
    }
    (acc / test.len().max(1) as f64, wall, ops)
}

/// The sweep widths, as divisors of the strategy's frontier bound.
const DIVISORS: [usize; 4] = [4, 16, 64, 256];

fn sweep_table(label: &str, engines: &[(Strategy, CaceEngine)], test: &[Session]) {
    header(&format!("Beam sweep — {label}"));
    println!(
        "{:<6} {:>12} {:>9} {:>8} {:>14} {:>10} {:>9}",
        "strat", "beam", "acc", "Δacc", "trans ops", "wall (s)", "speedup"
    );
    for (strategy, exact_engine) in engines {
        let bound = exact_engine.frontier_bound();
        let (exact_acc, exact_wall, exact_ops) = measure(exact_engine, test);
        println!(
            "{:<6} {:>12} {:>8.1}% {:>8} {:>14} {:>10.3} {:>9}",
            strategy.label(),
            "exact",
            100.0 * exact_acc,
            "-",
            exact_ops,
            exact_wall,
            "1.00x"
        );
        for &divisor in &DIVISORS {
            let k = (bound / divisor).max(1);
            let engine = exact_engine.with_decoder(DecoderConfig::top_k(k));
            let (acc, wall, ops) = measure(&engine, test);
            println!(
                "{:<6} {:>12} {:>8.1}% {:>+7.1}pp {:>14} {:>10.3} {:>8.2}x",
                strategy.label(),
                format!("TopK({k})"),
                100.0 * acc,
                100.0 * (acc - exact_acc),
                ops,
                wall,
                exact_wall / wall.max(1e-12)
            );
        }
    }
}

/// Mean per-tick streaming push latency (seconds) over one session.
fn per_tick_latency(engine: &CaceEngine, session: &Session, repeats: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let mut stream = engine.stream(Lag::Fixed(10));
        let t0 = Instant::now();
        for tick in &session.ticks {
            black_box(stream.push(black_box(&tick.observed)).expect("push"));
        }
        let per_tick = t0.elapsed().as_secs_f64() / session.len() as f64;
        best = best.min(per_tick);
    }
    best
}

fn bench(c: &mut Criterion) {
    // ---------- Sweep across all four strategies (CACE sim) ----------
    let (train, test) = cace_corpus(1, 8, 200, 14003);
    let engines: Vec<(Strategy, CaceEngine)> = Strategy::ALL
        .into_iter()
        .map(|s| (s, trained(&train, s)))
        .collect();
    sweep_table("NH/NCR/NCS/C2 on the CACE simulator", &engines, &test);

    // ---------- Headline claim: C2 per-tick speedup on fig9 ----------
    let cfg = CasasConfig {
        pairs: 8,
        sessions_per_pair: 2,
        ticks: 250,
        ..CasasConfig::default()
    };
    let sessions = generate_casas_dataset(&cfg, 9001);
    let (c_train, c_test) = train_test_split(sessions, 0.8);
    let exact_engine = trained(&c_train, Strategy::CorrelationConstraint);
    let bound = exact_engine.frontier_bound();
    let session = &c_test[0];
    let (exact_acc, _, _) = measure(&exact_engine, &c_test);
    let exact_tick = per_tick_latency(&exact_engine, session, 3);

    header("C2 per-tick speedup on the fig9 (CASAS-style) workload");
    println!(
        "frontier bound {bound} joint states; exact: {:.1} µs/tick, {:.1}% macro accuracy",
        1e6 * exact_tick,
        100.0 * exact_acc
    );
    println!(
        "{:>12} {:>12} {:>9} {:>8} {:>9}",
        "beam", "µs/tick", "acc", "Δacc", "speedup"
    );
    let mut claim: Option<(usize, f64, f64)> = None;
    for &divisor in &DIVISORS {
        let k = (bound / divisor).max(1);
        let engine = exact_engine.with_decoder(DecoderConfig::top_k(k));
        let (acc, _, _) = measure(&engine, &c_test);
        let tick_s = per_tick_latency(&engine, session, 3);
        let speedup = exact_tick / tick_s.max(1e-12);
        println!(
            "{:>12} {:>12.1} {:>8.1}% {:>+7.1}pp {:>8.2}x",
            format!("TopK({k})"),
            1e6 * tick_s,
            100.0 * acc,
            100.0 * (acc - exact_acc),
            speedup
        );
        // The widest beam whose accuracy holds within 1 point of exact.
        if acc >= exact_acc - 0.01 && claim.map(|(_, _, s)| speedup > s).unwrap_or(true) {
            claim = Some((k, acc, speedup));
        }
    }
    match claim {
        Some((k, acc, speedup)) => println!(
            "→ TopK({k}): {speedup:.2}x per-tick speedup at {:.1}% accuracy \
             ({:+.2}pp vs exact; target ≥3x within 1pp)",
            100.0 * acc,
            100.0 * (acc - exact_acc)
        ),
        None => println!("→ no swept beam held accuracy within 1pp of exact"),
    }

    // Machine-readable perf records for the trajectory file, alongside
    // the score_tables rows.
    let mut records = vec![PerfRecord {
        id: "beam_sweep/c2_stream_push_exact".to_string(),
        per_tick_ns: 1e9 * exact_tick,
        speedup_vs_naive: None,
        allocs_per_tick: None,
        homes_per_s: None,
        note: format!(
            "fig9 C2 streaming push, exact beam, lag 10; {:.1}% macro accuracy",
            100.0 * exact_acc
        ),
    }];
    if let Some((k, acc, speedup)) = claim {
        records.push(PerfRecord {
            id: "beam_sweep/c2_stream_push_best_beam".to_string(),
            per_tick_ns: 1e9 * exact_tick / speedup.max(1e-12),
            speedup_vs_naive: None,
            allocs_per_tick: None,
            homes_per_s: None,
            note: format!(
                "fig9 C2 streaming push, TopK({k}): {speedup:.2}x vs exact at {:.1}% \
                 accuracy ({:+.2}pp)",
                100.0 * acc,
                100.0 * (acc - exact_acc)
            ),
        });
    }
    if records.len() > 1 {
        perf::assert_pruned_not_slower(
            &records,
            "beam_sweep/c2_stream_push_exact",
            "beam_sweep/c2_stream_push_best_beam",
        );
    }
    perf::emit(&records);

    // ---------- Criterion targets: steady-state streaming push ----------
    for (tag, decoder) in [
        ("exact", DecoderConfig::exact()),
        ("topk_eighth", DecoderConfig::top_k((bound / 8).max(1))),
        ("topk_64th", DecoderConfig::top_k((bound / 64).max(1))),
    ] {
        let engine = exact_engine.with_decoder(decoder);
        let mut stream = engine.stream(Lag::Fixed(10));
        // Warm one full session so sampling starts in steady state (the
        // window is bounded, so repeated pushes measure the amortized
        // frontier step, not the cold start).
        for tick in &session.ticks {
            black_box(stream.push(&tick.observed).unwrap());
        }
        let mut next = 0usize;
        c.bench_function(&format!("beam_sweep/stream_push_c2_{tag}"), |b| {
            b.iter(|| {
                let tick = &session.ticks[next % session.len()];
                next += 1;
                black_box(stream.push(black_box(&tick.observed)).unwrap())
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
