//! **adaptation** — the PR 9 headline: online adaptation under concept
//! drift. A fleet is trained on the original CACE grammar, then served
//! drifted-household streams ([`drifted_cace_grammar`]: meals on the
//! couch, standing TV, reordered evenings). Two deployments are compared
//! on held-out drifted sessions:
//!
//! * **frozen** — the as-trained snapshot keeps serving unchanged;
//! * **adapted** — live streams buffer drift windows, the router pools
//!   them into a [`DriftAccumulator`] E-step, a background MAP M-step
//!   publishes a new generation, and the fleet hot-swaps it at decision
//!   boundaries (twice: mid-stream and end-of-stream).
//!
//! The acceptance gate is asserted where it is measured: the adapted
//! generation must recover macro accuracy over the frozen snapshot on
//! the drifted eval set. The result lands in `BENCH_PR9.json` as the
//! `adaptation/drift_recovery` row whose note carries the frozen/adapted
//! accuracy claim; `adaptation/reestimate_step` prices the background
//! M-step itself. CI's `--quick` smoke re-runs the scenario on the same
//! workload and re-asserts the gate.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use cace_behavior::session::train_test_split;
use cace_behavior::{
    cace_grammar, drifted_cace_grammar, generate_cace_dataset, ObservedTick, Session, SessionConfig,
};
use cace_bench::header;
use cace_bench::perf::{self, PerfRecord};
use cace_core::{
    stream_shared, AdaptationPolicy, CaceConfig, CaceEngine, Lag, ModelRecord, ShardedRouter,
};
use cace_hdbn::{DriftAccumulator, SingleHdbn};
use criterion::{criterion_group, criterion_main, Criterion};

const MODEL: &str = "cace";
const POLICY: AdaptationPolicy = AdaptationPolicy {
    window_ticks: 25,
    min_windows: 4,
    laplace: 0.5,
};

fn mean_accuracy(engine: &CaceEngine, sessions: &[Session]) -> f64 {
    let mut acc = 0.0;
    for session in sessions {
        acc += engine
            .recognize(session)
            .expect("eval session decodes")
            .accuracy(session);
    }
    100.0 * acc / sessions.len().max(1) as f64
}

struct DriftRun {
    frozen_pct: f64,
    adapted_pct: f64,
    generation: usize,
    live_swaps: u64,
    adapt_seconds: f64,
    captured_ticks: u64,
}

/// Trains on the clean grammar, streams `adapt_sessions` drifted homes
/// through an adapting router (publish + hot-swap at half-time, publish
/// again at end-of-stream), and scores frozen vs final-generation
/// accuracy on held-out drifted sessions.
fn run_drift_scenario(adapt_homes: usize, ticks: usize) -> DriftRun {
    let clean = cace_grammar();
    let drifted = drifted_cace_grammar();
    let train_sessions =
        generate_cace_dataset(&clean, 1, 4, &SessionConfig::standard().with_ticks(180), 77);
    let (train, _) = train_test_split(train_sessions, 0.99);
    let engine = Arc::new(
        CaceEngine::train(&train, &CaceConfig::default()).expect("clean-grammar training"),
    );
    let adapt_sessions = generate_cace_dataset(
        &drifted,
        1,
        adapt_homes,
        &SessionConfig::standard().with_ticks(ticks),
        79,
    );
    let eval_sessions = generate_cace_dataset(
        &drifted,
        1,
        2,
        &SessionConfig::standard().with_ticks(ticks),
        80,
    );

    let frozen_pct = mean_accuracy(&engine, &eval_sessions);

    let mut router = ShardedRouter::new();
    router
        .register_model(MODEL, Arc::clone(&engine))
        .expect("fresh registry");
    router
        .enable_adaptation(MODEL, POLICY)
        .expect("valid policy");
    for id in 0..adapt_sessions.len() as u64 {
        router
            .add_home(id, MODEL, Lag::Fixed(5))
            .expect("distinct ids");
    }
    let rounds = adapt_sessions.iter().map(Session::len).max().unwrap_or(0);
    let mut captured_ticks = 0u64;
    let mut push_range = |router: &mut ShardedRouter, from: usize, to: usize| {
        for t in from..to {
            let round: Vec<(u64, &ObservedTick)> = adapt_sessions
                .iter()
                .enumerate()
                .filter_map(|(id, s)| s.ticks.get(t).map(|tick| (id as u64, &tick.observed)))
                .collect();
            captured_ticks += round.len() as u64;
            black_box(router.push_round(black_box(&round)).expect("drifted fleet"));
        }
    };

    push_range(&mut router, 0, rounds / 2);
    let t0 = Instant::now();
    router
        .adapt_model(MODEL)
        .expect("re-estimation succeeds")
        .expect("half the drifted day exceeds min_windows");
    let mut adapt_seconds = t0.elapsed().as_secs_f64();
    push_range(&mut router, rounds / 2, rounds);
    let t0 = Instant::now();
    let generation = router
        .adapt_model(MODEL)
        .expect("re-estimation succeeds")
        .expect("the second half-day exceeds min_windows again");
    adapt_seconds += t0.elapsed().as_secs_f64();

    let live_swaps = router.stats().swaps();
    let record = ModelRecord::from_snapshot_str(
        &router
            .export_model(MODEL, generation)
            .expect("published generation exports"),
    )
    .expect("model record parses");
    let adapted_pct = mean_accuracy(&record.engine, &eval_sessions);
    for (_, result) in router.finish() {
        result.expect("drained fleet");
    }

    DriftRun {
        frozen_pct,
        adapted_pct,
        generation,
        live_swaps,
        adapt_seconds,
        captured_ticks,
    }
}

fn bench(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick");
    // The gate is a model-quality claim, not a throughput claim — the
    // quick smoke runs the identical workload so CI asserts the same
    // recovery CI's full run does.
    let _ = quick;
    let run = run_drift_scenario(4, 150);

    header("adaptation — concept drift: frozen snapshot vs adapting fleet");
    println!(
        "{:<34} {:>10}",
        "frozen snapshot (drifted eval)",
        format!("{:.1}%", run.frozen_pct)
    );
    println!(
        "{:<34} {:>10}   generation {}, {} live hot swap(s), {:.0} ms re-estimation",
        "adapted fleet (drifted eval)",
        format!("{:.1}%", run.adapted_pct),
        run.generation,
        run.live_swaps,
        run.adapt_seconds * 1e3,
    );

    // The acceptance gate: adaptation must actually recover accuracy.
    assert!(
        run.adapted_pct > run.frozen_pct,
        "adapted generation ({:.1}%) must beat the frozen snapshot ({:.1}%) on drifted data",
        run.adapted_pct,
        run.frozen_pct
    );
    assert!(
        run.live_swaps > 0,
        "the mid-stream publish must hot-swap live homes"
    );
    assert!(
        run.generation >= 2,
        "both publishes must land as generations"
    );

    let records = vec![PerfRecord {
        id: "adaptation/drift_recovery".into(),
        per_tick_ns: run.adapt_seconds / run.captured_ticks.max(1) as f64 * 1e9,
        speedup_vs_naive: None,
        allocs_per_tick: None,
        homes_per_s: None,
        note: format!(
            "concept drift (drifted_cace_grammar), 4 homes x 150 ticks adaptation stream, \
             2 eval sessions: frozen {:.1}% -> adapted {:.1}% macro accuracy \
             (recovered +{:.1} pp; generation {}, {} live hot swaps; re-estimation \
             amortizes to the quoted ns per captured tick)",
            run.frozen_pct,
            run.adapted_pct,
            run.adapted_pct - run.frozen_pct,
            run.generation,
            run.live_swaps,
        ),
    }];
    perf::emit(&records);

    // Criterion target pricing the background M-step alone: drift windows
    // captured from a live stream, pooled once, re-estimated into fresh
    // tables per iteration.
    let (train, test) = {
        let sessions = generate_cace_dataset(
            &cace_grammar(),
            1,
            4,
            &SessionConfig::tiny().with_ticks(80),
            31,
        );
        train_test_split(sessions, 0.75)
    };
    let engine =
        Arc::new(CaceEngine::train(&train, &CaceConfig::default()).expect("tiny-corpus training"));
    let params = Arc::clone(engine.hdbn_params());
    let model = SingleHdbn::from_shared(Arc::clone(&params)).with_decoder(engine.config().decoder);
    let mut stream = stream_shared(&engine, Lag::Fixed(5));
    stream.capture_drift(POLICY.window_ticks);
    for session in &test {
        for tick in &session.ticks {
            stream.push(&tick.observed).expect("stream advances");
        }
    }
    let mut acc = DriftAccumulator::new(&params);
    for window in stream.take_drift_windows() {
        acc.observe(&model, &window).expect("window observes");
    }
    assert!(acc.windows() > 0, "the timed M-step needs pooled evidence");
    c.bench_function("adaptation/reestimate_step", |b| {
        b.iter(|| {
            black_box(
                acc.reestimate(black_box(&params), 0.5)
                    .expect("valid tables"),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
