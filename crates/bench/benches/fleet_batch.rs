//! **fleet_batch** — the PR 10 headline: fleet-batched trellis stepping.
//!
//! The same 1 000-home uncapped fleet as `router_scale`'s `fleet_1k`
//! point is driven twice over identical tick streams:
//!
//! * **batched** — every home of a round receives the *same* observation
//!   reference, so each shard groups its homes into `(model, tick)`
//!   cohorts and advances each cohort through one fused kernel pass: the
//!   observation is featurized once per cohort and the model tables
//!   stream through cache once per trellis destination instead of once
//!   per home.
//! * **scalar** — every home receives its own clone of the observation:
//!   identical bytes, distinct identity, so cohort formation finds
//!   nothing to fuse and the identical workload runs down the proven
//!   per-home path.
//!
//! The PR 10 acceptance gates are asserted where they are measured: the
//! two decision streams must be **bit-identical**, the batched run must
//! actually batch (and the scalar run must not), and the batched
//! throughput must clear **≥1.5×** the frozen PR 9
//! `router_scale/fleet_1k_uncapped` record — the serving-tier headline
//! as it stood before batching existed. Results land in
//! `BENCH_PR10.json` as `fleet_batch/*` records; the batched row's note
//! carries the claim against the frozen baseline.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use cace_behavior::{ObservedTick, Session};
use cace_bench::perf::{self, PerfRecord};
use cace_bench::{header, nearest_rank};
use cace_core::{CaceEngine, HomeRound, Lag, ShardedRouter, Strategy, StreamDecision};
use cace_testkit::{engine, tiny_corpus};
use criterion::{criterion_group, criterion_main, Criterion};

const MODEL: &str = "cace";
const LAG: Lag = Lag::Fixed(6);
const FLEET: usize = 1_000;

struct FleetRun {
    homes_per_s: f64,
    p50_push_ns: f64,
    p99_push_ns: f64,
    batched_pushes: u64,
    fallback_pushes: u64,
    decisions: Vec<(u64, Vec<StreamDecision>)>,
}

/// Drives the 1k-home uncapped fleet for `rounds` measured rounds (after
/// a 2-round warmup, which also absorbs the first-tick pushes no kernel
/// can batch). With `shared_tick`, homes replaying the same session
/// share one observation reference per round — the cohort former fuses
/// them; without it, each home gets a pre-round clone of its
/// observation, so the same decode work runs scalar. Tick cloning
/// happens outside the timed region either way.
fn run_fleet(
    engine: &Arc<CaceEngine>,
    sessions: &[Session],
    rounds: usize,
    shared_tick: bool,
) -> FleetRun {
    let mut router = ShardedRouter::new();
    router
        .register_model(MODEL, Arc::clone(engine))
        .expect("fresh registry");
    for id in 0..FLEET as u64 {
        router.add_home(id, MODEL, LAG).expect("distinct ids");
    }

    let mut decisions: Vec<(u64, Vec<StreamDecision>)> =
        (0..FLEET as u64).map(|id| (id, Vec::new())).collect();
    let mut per_push_ns: Vec<f64> = Vec::with_capacity(rounds);
    let mut total_pushes = 0u64;
    let mut total_seconds = 0.0f64;
    let warmup = 2;
    for t in 0..warmup + rounds {
        let tick_of = |id: u64| -> &ObservedTick {
            let session = &sessions[id as usize % sessions.len()];
            &session.ticks[t % session.len()].observed
        };
        let owned: Vec<ObservedTick> = if shared_tick {
            Vec::new()
        } else {
            (0..FLEET as u64).map(|id| tick_of(id).clone()).collect()
        };
        let round: Vec<(u64, &ObservedTick)> = (0..FLEET as u64)
            .map(|id| {
                if shared_tick {
                    (id, tick_of(id))
                } else {
                    (id, &owned[id as usize])
                }
            })
            .collect();
        let t0 = Instant::now();
        let outcomes = black_box(router.push_round(black_box(&round)).expect("routed fleet"));
        let elapsed = t0.elapsed().as_secs_f64();
        for (pos, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                HomeRound::Advanced(Some(d)) => decisions[pos].1.push(d),
                HomeRound::Advanced(None) => {}
                other => panic!("home {pos}: fleet round failed: {other:?}"),
            }
        }
        if t >= warmup {
            per_push_ns.push(elapsed / FLEET as f64 * 1e9);
            total_pushes += FLEET as u64;
            total_seconds += elapsed;
        }
    }
    let stats = router.stats();
    assert_eq!(stats.quarantined_homes(), 0, "no home may fault at scale");
    assert_eq!(
        stats.pushes(),
        stats.batched_pushes() + stats.fallback_pushes(),
        "every push is either batched or fallback, exactly once"
    );
    per_push_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    FleetRun {
        homes_per_s: total_pushes as f64 / total_seconds.max(1e-12),
        p50_push_ns: nearest_rank(&per_push_ns, 0.50),
        p99_push_ns: nearest_rank(&per_push_ns, 0.99),
        batched_pushes: stats.batched_pushes(),
        fallback_pushes: stats.fallback_pushes(),
        decisions,
    }
}

fn bench(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick");
    let (train, test) = tiny_corpus(6, 60, 4117);
    let engine = Arc::new(engine(&train, Strategy::CorrelationConstraint));
    let rounds = if quick { 8 } else { 18 };

    header("fleet_batch — fused cohort stepping vs scalar pushes (1k homes, uncapped)");
    let batched = run_fleet(&engine, &test, rounds, true);
    let scalar = run_fleet(&engine, &test, rounds, false);

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "mode", "homes/s", "p50 ns/push", "p99 ns/push", "batched", "fallback"
    );
    for (mode, run) in [("batched", &batched), ("scalar", &scalar)] {
        println!(
            "{mode:>8} {:>12.0} {:>12.0} {:>12.0} {:>10} {:>10}",
            run.homes_per_s,
            run.p50_push_ns,
            run.p99_push_ns,
            run.batched_pushes,
            run.fallback_pushes
        );
    }

    // Gate 1: batching may only move work, never answers.
    assert_eq!(
        batched.decisions, scalar.decisions,
        "fused cohorts changed the decision stream"
    );
    // Gate 2: the comparison is real — the batched run fused cohorts,
    // the scalar run never did.
    assert!(
        batched.batched_pushes > 0,
        "a uniform uncapped fleet must form cohorts"
    );
    assert_eq!(
        scalar.batched_pushes, 0,
        "per-home observation clones must not form cohorts"
    );
    // Gate 3: ≥1.5× the frozen PR 9 serving headline on this workload.
    let base = perf::baseline_homes_per_s_pr9("router_scale/fleet_1k_uncapped")
        .expect("frozen BENCH_PR9.json carries router_scale/fleet_1k_uncapped homes_per_s");
    let claim = batched.homes_per_s / base;
    let vs_scalar = batched.homes_per_s / scalar.homes_per_s;
    println!(
        "\nfleet-batch claim: {:.0} homes/s = {claim:.2}x the frozen PR 9 \
         fleet_1k_uncapped record ({base:.0} homes/s); {vs_scalar:.2}x this run's scalar path",
        batched.homes_per_s
    );
    assert!(
        claim >= 1.5,
        "PR 10 gate: batched fleet throughput {:.0} homes/s is only {claim:.2}x the \
         frozen PR 9 fleet_1k_uncapped baseline ({base:.0} homes/s); the gate needs 1.5x",
        batched.homes_per_s
    );

    perf::emit(&[
        PerfRecord {
            id: "fleet_batch/fleet_1k_uncapped_batched".into(),
            per_tick_ns: batched.p50_push_ns,
            speedup_vs_naive: Some(vs_scalar),
            allocs_per_tick: None,
            homes_per_s: Some(batched.homes_per_s),
            note: format!(
                "1000 homes, 8 shards, no live cap, lag 6, tiny C2 model, shared-tick \
                 rounds fused into (model, tick) cohorts: p99 {:.0} ns/push, {} batched / \
                 {} fallback pushes; decisions bit-identical to the scalar path; claim \
                 {claim:.2}x >= 1.5x the frozen PR 9 router_scale/fleet_1k_uncapped \
                 record ({base:.0} homes/s)",
                batched.p99_push_ns, batched.batched_pushes, batched.fallback_pushes
            ),
        },
        PerfRecord {
            id: "fleet_batch/fleet_1k_uncapped_scalar".into(),
            per_tick_ns: scalar.p50_push_ns,
            speedup_vs_naive: None,
            allocs_per_tick: None,
            homes_per_s: Some(scalar.homes_per_s),
            note: format!(
                "same fleet, per-home observation clones (distinct tick identity) so no \
                 cohort forms: p99 {:.0} ns/push, {} fallback pushes — the scalar \
                 reference the batched row is measured against",
                scalar.p99_push_ns, scalar.fallback_pushes
            ),
        },
    ]);

    // Criterion target so `--quick`/`--test` runs keep a conventional
    // timed entry point on the fused path.
    c.bench_function("fleet_batch/round_1k_homes_batched", |b| {
        let mut router = ShardedRouter::new();
        router
            .register_model(MODEL, Arc::clone(&engine))
            .expect("fresh registry");
        for id in 0..FLEET as u64 {
            router.add_home(id, MODEL, LAG).expect("distinct ids");
        }
        let mut t = 0usize;
        b.iter(|| {
            let round: Vec<(u64, &ObservedTick)> = (0..FLEET as u64)
                .map(|id| {
                    let session = &test[id as usize % test.len()];
                    (id, &session.ticks[t % session.len()].observed)
                })
                .collect();
            t += 1;
            black_box(router.push_round(black_box(&round)).expect("routed fleet"))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
