//! **Table IV** — some generated rules with confidence.
//!
//! Mines the association-rule set on the CACE-sim training corpus with the
//! paper's thresholds (minSup 4 %, minConf 99 %), prints the strongest
//! rules in Table IV style, and times the Apriori pass.

use cace_bench::{cace_corpus, header};
use cace_core::transactions::corpus;
use cace_mining::rules::mine_negative_rules;
use cace_mining::{mine_rules, AprioriConfig, AtomSpace};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (train, _) = cace_corpus(1, 6, 300, 4001);
    let space = AtomSpace::cace();
    let txns = corpus(&space, &train);
    let config = AprioriConfig {
        max_itemset: 3,
        ..AprioriConfig::paper_default()
    };

    let mut rules = mine_rules(&txns, &space, &config);
    rules.set_negatives(mine_negative_rules(&txns, &space, config.min_support * 0.5));

    header("Table IV — generated rules with confidence (top 12 of each kind)");
    println!(
        "corpus: {} transactions; mined {} positive rules, {} negative rules",
        txns.len(),
        rules.rules().len(),
        rules.negatives().len()
    );
    for rule in rules.top(12) {
        println!("  {}", rules.render_rule(rule));
    }
    for neg in rules.negatives().iter().take(12) {
        println!("  {}", rules.render_negative(neg));
    }
    println!(
        "(paper: 58 unified rules on the CACE dataset; e.g. \
         U1(t): (cycling ∨ sitting) ∧ SR1 ⇒ U1(t): exercising; (1))"
    );

    c.bench_function("table4/apriori_mining", |b| {
        b.iter(|| {
            let mined = mine_rules(black_box(&txns), &space, &config);
            black_box(mined.rules().len())
        })
    });
    c.bench_function("table4/negative_mining", |b| {
        b.iter(|| black_box(mine_negative_rules(black_box(&txns), &space, 0.02).len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
