//! **Fig 12** — incremental performance vs training sample size, with and
//! without the Base-application initial rules.
//!
//! The paper's shape: accuracy climbs from ≈83 % at a 30 % sample to ≈95 %
//! at 100 %, model-building overhead grows with sample size, and the
//! user-provided initial rules improve both curves early on.

use cace_behavior::session::train_test_split;
use cace_behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
use cace_bench::header;
use cace_core::{CaceConfig, CaceEngine};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn bench(c: &mut Criterion) {
    let grammar = cace_grammar();
    let data = generate_cace_dataset(
        &grammar,
        1,
        11,
        &SessionConfig::standard().with_ticks(250),
        14001,
    );
    let (train_full, test) = train_test_split(data, 0.9);

    header("Fig 12 — accuracy & overhead vs sample size");
    println!(
        "{:<12} {:>14} {:>14} {:>16} {:>16}",
        "sample", "acc (no init)", "acc (init)", "build s (no)", "build s (init)"
    );
    for percent in [10usize, 30, 50, 70, 90, 100] {
        let n = (train_full.len() * percent).div_ceil(100).max(1);
        let slice = &train_full[..n];
        let mut row = Vec::new();
        for use_initial in [false, true] {
            let config = CaceConfig {
                use_initial_rules: use_initial,
                ..CaceConfig::default()
            };
            let start = Instant::now();
            let engine = CaceEngine::train(slice, &config).unwrap();
            let build = start.elapsed().as_secs_f64();
            let acc: f64 = engine
                .recognize_batch(&test)
                .unwrap()
                .iter()
                .zip(&test)
                .map(|(rec, session)| rec.accuracy(session))
                .sum();
            row.push((100.0 * acc / test.len() as f64, build));
        }
        println!(
            "{:>3}% ({:>2})   {:>13.1}% {:>13.1}% {:>16.2} {:>16.2}",
            percent, n, row[0].0, row[1].0, row[0].1, row[1].1
        );
    }
    println!(
        "(paper: ≈83 % at 30 % sample rising to ≈95 %; initial rules lift the \
         low-sample end of both curves)"
    );

    // Criterion target: model building at a mid-size sample.
    let slice = &train_full[..train_full.len() / 2];
    c.bench_function("fig12/train_half_sample", |b| {
        b.iter(|| {
            let engine = CaceEngine::train(black_box(slice), &CaceConfig::default()).unwrap();
            black_box(engine.rules().len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
