//! **Fig 9** — CASAS dataset per-activity classification table.
//!
//! The paper reports 94.5 % overall (FP 1.4 %, precision 96.5 %, recall
//! 94.5 %) and 99.3 % on shared activities such as Move Furniture and Play
//! Checkers. Our CASAS substitute is a generator with the same schema (see
//! DESIGN.md): 15 activities, ambient motion + item sensors, no gestural
//! modality.

use cace_behavior::session::train_test_split;
use cace_behavior::{generate_casas_dataset, CasasConfig};
use cace_bench::header;
use cace_core::{CaceConfig, CaceEngine};
use cace_eval::ConfusionMatrix;
use cace_model::CasasActivity;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = CasasConfig {
        pairs: 8,
        sessions_per_pair: 2,
        ticks: 250,
        ..CasasConfig::default()
    };
    let sessions = generate_casas_dataset(&cfg, 9001);
    let (train, test) = train_test_split(sessions, 0.8);
    let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();

    let mut confusion = ConfusionMatrix::new(engine.n_macro());
    let mut shared_correct = 0usize;
    let mut shared_total = 0usize;
    let recs = engine.recognize_batch(&test).unwrap();
    for (session, rec) in test.iter().zip(&recs) {
        for u in 0..2 {
            confusion.record_all(&session.labels_of(u), &rec.macros[u]);
        }
        for (t, tick) in session.ticks.iter().enumerate() {
            if tick.labels[0] == tick.labels[1]
                && CasasActivity::from_index(tick.labels[0]).is_some_and(|a| a.is_joint())
            {
                for u in 0..2 {
                    shared_total += 1;
                    if rec.macros[u][t] == tick.labels[u] {
                        shared_correct += 1;
                    }
                }
            }
        }
    }

    header("Fig 9 — CASAS-style per-activity table");
    println!(
        "{:<27} {:>8} {:>10} {:>8} {:>8}",
        "activity", "FP rate", "precision", "recall", "F1"
    );
    for activity in CasasActivity::ALL {
        let m = confusion.class_metrics(activity.index());
        if m.support == 0 {
            continue;
        }
        println!(
            "{:>2} {:<24} {:>8.3} {:>10.3} {:>8.3} {:>8.3}",
            activity.paper_number(),
            activity.label(),
            m.fp_rate,
            m.precision,
            m.recall,
            m.f_measure
        );
    }
    let overall = confusion.weighted_metrics();
    println!(
        "overall: accuracy {:.1} %  FP {:.3}  precision {:.3}  recall {:.3}   \
         (paper: 94.5 %, FP 1.4 %, P 96.5 %, R 94.5 %)",
        100.0 * confusion.accuracy(),
        overall.fp_rate,
        overall.precision,
        overall.recall
    );
    if shared_total > 0 {
        println!(
            "shared-activity accuracy: {:.1} % over {} user-ticks (paper: 99.3 %)",
            100.0 * shared_correct as f64 / shared_total as f64,
            shared_total
        );
    }

    let session = &test[0];
    c.bench_function("fig9/casas_recognition", |b| {
        b.iter(|| {
            black_box(
                engine
                    .recognize(black_box(session))
                    .unwrap()
                    .states_explored,
            )
        })
    });
    c.bench_function("fig9/sequential_eval", |b| {
        b.iter(|| {
            black_box(&test)
                .iter()
                .map(|s| engine.recognize(s).unwrap().states_explored)
                .sum::<u64>()
        })
    });
    c.bench_function("fig9/batch_eval", |b| {
        b.iter(|| black_box(engine.recognize_batch(black_box(&test)).unwrap().len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
