//! **Fig 11(a, b)** — accuracy and computational overhead of the four
//! pruning strategies NH, NCR, NCS, C2.
//!
//! The paper's headline: the full coupled model (NCS) is accurate but costs
//! 15.96 s; adding the correlation miner (C2) keeps the accuracy and cuts
//! the overhead 16-fold (0.96 s). NH and NCR are cheap-ish but far less
//! accurate.

use cace_bench::{cace_corpus, header, trained};
use cace_core::Strategy;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (train, test) = cace_corpus(1, 7, 300, 12001);

    header("Fig 11 — pruning strategies: accuracy and overhead");
    println!(
        "{:<5} {:>10} {:>16} {:>16} {:>10}",
        "strat", "accuracy", "states explored", "transition ops", "wall (s)"
    );
    let mut rows = Vec::new();
    for strategy in Strategy::ALL {
        let engine = trained(&train, strategy);
        let mut acc = 0.0;
        let mut states = 0u64;
        let mut ops = 0u64;
        let mut wall = 0.0;
        for session in &test {
            let rec = engine.recognize(session).unwrap();
            acc += rec.accuracy(session);
            states += rec.states_explored;
            ops += rec.transition_ops;
            wall += rec.wall_seconds;
        }
        acc /= test.len() as f64;
        println!(
            "{:<5} {:>9.1}% {:>16} {:>16} {:>10.3}",
            strategy.label(),
            100.0 * acc,
            states,
            ops,
            wall
        );
        rows.push((strategy, engine, ops, wall));
    }

    let ncs = rows
        .iter()
        .find(|r| r.0 == Strategy::NaiveConstraint)
        .unwrap();
    let c2 = rows
        .iter()
        .find(|r| r.0 == Strategy::CorrelationConstraint)
        .unwrap();
    println!(
        "\nNCS → C2 overhead reduction: {:.1}× by transition ops, {:.1}× by wall \
         clock (paper: 16×: 15.96 s → 0.96 s)",
        ncs.2 as f64 / c2.2.max(1) as f64,
        ncs.3 / c2.3.max(1e-9)
    );
    println!("(paper accuracies: NH 76.2 %, NCR 73 %, NCS ≈98 %, C2 95.1 %)");

    let session = &test[0];
    for (strategy, engine, _, _) in &rows {
        c.bench_function(&format!("fig11/recognize_{}", strategy.label()), |b| {
            b.iter(|| {
                black_box(
                    engine
                        .recognize(black_box(session))
                        .unwrap()
                        .states_explored,
                )
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
