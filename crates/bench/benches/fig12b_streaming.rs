//! **Fig 12 (streaming companion)** — run-time recognition as data
//! arrives: per-tick latency of the online fixed-lag decoder, the
//! lag/accuracy trade-off, and multi-home router throughput.
//!
//! The paper evaluates CACE offline on complete sessions but pitches it as
//! run-time middleware; this bench covers that gap. The expected shape:
//! accuracy climbs with the smoothing lag and reaches the batch decode by
//! a lag of ~10 ticks, while per-tick cost stays flat (the frontier does
//! `O(|S1||S2|(|S1|+|S2|))` work per tick regardless of stream length).

use cace_behavior::ObservedTick;
use cace_bench::{cace_corpus, header};
use cace_core::{stream_session, CaceConfig, CaceEngine, Lag, StreamRouter};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn bench(c: &mut Criterion) {
    let (train, test) = cace_corpus(1, 10, 250, 14002);
    let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
    let session = &test[0];
    let batch = engine.recognize(session).unwrap();
    let batch_acc = batch.accuracy(session);

    header("Fig 12b — streaming recognition (lag sweep)");
    println!(
        "{:<12} {:>10} {:>12} {:>14}",
        "lag", "acc", "vs batch", "decisions"
    );
    for lag in [
        Lag::Fixed(0),
        Lag::Fixed(2),
        Lag::Fixed(5),
        Lag::Fixed(10),
        Lag::Fixed(20),
        Lag::Unbounded,
    ] {
        let (decisions, rec) = stream_session(&engine, session, lag).unwrap();
        let acc = rec.accuracy(session);
        let label = match lag {
            Lag::Fixed(l) => format!("{l}"),
            Lag::Unbounded => "unbounded".into(),
        };
        println!(
            "{label:<12} {:>9.1}% {:>+11.3} {:>14}",
            100.0 * acc,
            acc - batch_acc,
            decisions.len()
        );
        if lag.is_unbounded() {
            assert_eq!(rec.macros, batch.macros, "unbounded must equal batch");
        }
    }
    println!("(paper anchor: Fig 12's incremental story — performance as data arrives)");

    // Multi-home throughput snapshot.
    let homes = 8usize;
    let mut router = StreamRouter::with_homes(&engine, homes, Lag::Fixed(10));
    let rounds = session.len();
    let t0 = Instant::now();
    for t in 0..rounds {
        let inputs: Vec<Option<&ObservedTick>> = vec![Some(&session.ticks[t].observed); homes];
        router.push_round(&inputs).unwrap();
    }
    for (_, result) in router.finish() {
        result.unwrap();
    }
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "router: {homes} homes x {rounds} ticks in {wall:.3} s = {:.0} ticks/s",
        (homes * rounds) as f64 / wall.max(1e-12)
    );

    // Criterion target: steady-state per-tick push cost (bounded window,
    // so repeated pushes measure the amortized frontier step).
    let mut stream = engine.stream(Lag::Fixed(10));
    let mut next = 0usize;
    c.bench_function("fig12b/stream_push_c2_lag10", |b| {
        b.iter(|| {
            let tick = &session.ticks[next % session.len()];
            next += 1;
            black_box(stream.push(black_box(&tick.observed)).unwrap())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
