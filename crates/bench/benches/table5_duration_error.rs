//! **Table V** — start/end duration error of the four strategies.
//!
//! The paper: NH 16.9 %, NCR 20.6 %, NCS 7.72 %, C2 8.1 % — the coupled
//! hierarchical strategies recover episode boundaries far better.

use cace_bench::{cace_corpus, header, trained};
use cace_core::Strategy;
use cace_eval::mean_duration_error;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Minimum true-episode length (ticks) scored, to keep the normalized error
/// well-conditioned (the paper's example episodes are multi-minute).
const MIN_EPISODE: usize = 8;

fn bench(c: &mut Criterion) {
    let (train, test) = cace_corpus(1, 7, 300, 13001);

    header("Table V — start/end duration error");
    println!("{:<5} {:>15}", "strat", "duration error");
    let mut kept = None;
    for strategy in Strategy::ALL {
        let engine = trained(&train, strategy);
        let mut err = 0.0;
        let mut n = 0usize;
        for session in &test {
            let rec = engine.recognize(session).unwrap();
            for u in 0..2 {
                err += mean_duration_error(&session.labels_of(u), &rec.macros[u], MIN_EPISODE);
                n += 1;
            }
        }
        println!("{:<5} {:>14.1}%", strategy.label(), 100.0 * err / n as f64);
        if strategy == Strategy::CorrelationConstraint {
            kept = Some(engine);
        }
    }
    println!("(paper: NH 16.9 %, NCR 20.6 %, NCS 7.72 %, C2 8.1 %)");

    let engine = kept.unwrap();
    let session = &test[0];
    let rec = engine.recognize(session).unwrap();
    c.bench_function("table5/duration_error_scoring", |b| {
        b.iter(|| {
            black_box(mean_duration_error(
                black_box(&session.labels_of(0)),
                black_box(&rec.macros[0]),
                MIN_EPISODE,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
