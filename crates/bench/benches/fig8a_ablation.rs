//! **Fig 8(a)** — per-home accuracy: overall vs without-gestural vs
//! without-sub-location.
//!
//! The paper's shape: removing the gestural stream costs a few points
//! (95.1 % → 89.7 %), removing sub-location context costs the most
//! (→ 80.5 %).

use cace_behavior::session::train_test_split;
use cace_behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
use cace_bench::header;
use cace_core::{CaceConfig, CaceEngine};
use cace_model::StateMask;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let grammar = cace_grammar();
    header("Fig 8(a) — per-home accuracy under modality ablations");
    println!(
        "{:<8} {:>10} {:>18} {:>21}",
        "home", "overall", "without gestural", "without sublocation"
    );

    let mut means = [0.0f64; 3];
    let mut kept_engine = None;
    let mut kept_session = None;
    for home in 1..=5u32 {
        let sessions = generate_cace_dataset(
            &grammar,
            1,
            5,
            &SessionConfig::standard().with_ticks(250).with_home(home),
            8000 + u64::from(home),
        );
        let (train, test) = train_test_split(sessions, 0.8);
        let mut row = [0.0f64; 3];
        for (i, mask) in [
            StateMask::FULL,
            StateMask::NO_GESTURAL,
            StateMask::NO_LOCATION,
        ]
        .into_iter()
        .enumerate()
        {
            let engine = CaceEngine::train(&train, &CaceConfig::default().with_mask(mask)).unwrap();
            let mut acc = 0.0;
            for session in &test {
                acc += engine.recognize(session).unwrap().accuracy(session);
            }
            row[i] = 100.0 * acc / test.len() as f64;
            means[i] += row[i] / 5.0;
            if home == 1 && i == 0 {
                kept_engine = Some(engine);
                kept_session = Some(test[0].clone());
            }
        }
        println!(
            "home-{:<3} {:>9.1}% {:>17.1}% {:>20.1}%",
            home, row[0], row[1], row[2]
        );
    }
    println!(
        "mean     {:>9.1}% {:>17.1}% {:>20.1}%   (paper: 95.1 / 89.7 / 80.5)",
        means[0], means[1], means[2]
    );

    let engine = kept_engine.unwrap();
    let session = kept_session.unwrap();
    c.bench_function("fig8a/full_recognition", |b| {
        b.iter(|| {
            black_box(
                engine
                    .recognize(black_box(&session))
                    .unwrap()
                    .states_explored,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
