//! **f32 lane** — the `Precision::Fast32` scoring lane vs the exact `f64`
//! lane (PR 6's headline claim).
//!
//! The fig9 (CASAS-style) C2 workload again: this bench decodes the
//! engine-prepared state spaces through both precision lanes and reports
//! per-tick latency for the batch decode and the warmed streaming push,
//! plus the tolerance half of the contract — per-tick macro argmax
//! agreement (**target ≥99%**) and macro-averaged accuracy (**target
//! within 0.1 pp**) over the full test split.
//!
//! The latency acceptance gate — **f32 ≥2× faster per tick than the f64
//! exact path** — is asserted against the exact path as it stood when the
//! lane was specified: the frozen `score_tables/c2_batch_decode` record
//! of `BENCH_PR5.json` (~408 µs/tick). This PR's column-major SIMD kernel
//! rewrite sped up *both* lanes (the exact f64 decode itself roughly
//! halved), so the same-build f64-vs-f32 ratio is smaller than the lane's
//! gain over the baseline; both ratios are printed and recorded, and the
//! same-build ratio is additionally asserted to be a strict improvement
//! (f32 faster than f64 in the same binary). All tolerance bounds are
//! *asserted*, not just printed, and land in `BENCH_PR6.json` in the
//! record notes; `tests/precision_lane.rs` checks the same contract on a
//! smaller corpus in the regular test suite.
//!
//! The `f32` mirror tables are built lazily on first fast-lane use
//! ([`cace_hdbn::HdbnParams::tables_f32`]); the one-time build cost is
//! measured here and reported so the serving docs can quote it.

use std::sync::Arc;
use std::time::Instant;

use cace_behavior::session::train_test_split;
use cace_behavior::{generate_casas_dataset, CasasConfig};
use cace_bench::perf::{self, PerfRecord};
use cace_bench::{header, trained};
use cace_core::{DecoderConfig, Lag, Recognition, Strategy};
use cace_hdbn::{CoupledHdbn, OnlineCoupledViterbi, TickInput};
use cace_testkit::{macro_accuracy, tick_agreement};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Best-of-`repeats` per-tick wall time of `f` over a `ticks`-long decode.
fn best_per_tick_ns(ticks: usize, repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() / ticks as f64);
    }
    best * 1e9
}

/// Warmed steady-state streaming push latency (ns/tick) for one decoder.
fn stream_push_ns(decoder: &CoupledHdbn, inputs: &[TickInput]) -> f64 {
    let mut online = OnlineCoupledViterbi::new(decoder.clone(), Lag::Fixed(10));
    online.reserve_ticks(2 * inputs.len() + 1024);
    for tick in inputs {
        online.push(tick).expect("warmup push");
    }
    let t0 = Instant::now();
    for tick in inputs {
        black_box(online.push(black_box(tick)).expect("push"));
    }
    t0.elapsed().as_secs_f64() / inputs.len() as f64 * 1e9
}

fn bench(c: &mut Criterion) {
    // The fig9 (CASAS-style) C2 workload, engine-prepared once — same
    // corpus shape and seed as the `score_tables` bench so the lanes are
    // measured on the exact workload the f64 rows were.
    let cfg = CasasConfig {
        pairs: 4,
        sessions_per_pair: 2,
        ticks: 200,
        ..CasasConfig::default()
    };
    let sessions = generate_casas_dataset(&cfg, 9002);
    let (train, test) = train_test_split(sessions, 0.8);
    let engine = trained(&train, Strategy::CorrelationConstraint);
    let session = &test[0];
    let inputs: Vec<TickInput> = engine.tick_inputs(session);
    let n_ticks = inputs.len();
    let params = Arc::clone(engine.hdbn_params());

    // One-time f32 mirror build cost (lazy, amortized over the model's
    // lifetime — never on the per-tick path).
    let t0 = Instant::now();
    black_box(params.tables_f32());
    let mirror_us = 1e6 * t0.elapsed().as_secs_f64();

    let exact_decoder = CoupledHdbn::from_shared(Arc::clone(&params));
    let fast_decoder =
        CoupledHdbn::from_shared(Arc::clone(&params)).with_decoder(DecoderConfig::exact().fast32());
    let exact_path = exact_decoder.viterbi(&inputs).expect("f64 decode");
    let fast_path = fast_decoder.viterbi(&inputs).expect("f32 decode");
    assert_eq!(exact_path.macros[0].len(), fast_path.macros[0].len());

    let repeats = 5;
    let exact_ns = best_per_tick_ns(n_ticks, repeats, || {
        black_box(exact_decoder.viterbi(black_box(&inputs)).expect("decode"));
    });
    let fast_ns = best_per_tick_ns(n_ticks, repeats, || {
        black_box(fast_decoder.viterbi(black_box(&inputs)).expect("decode"));
    });
    let speedup = exact_ns / fast_ns.max(1e-9);

    let exact_push_ns = stream_push_ns(&exact_decoder, &inputs);
    let fast_push_ns = stream_push_ns(&fast_decoder, &inputs);
    let push_speedup = exact_push_ns / fast_push_ns.max(1e-9);

    // The frozen PR 5 exact-path record this lane's ≥2x gate is measured
    // against (the exact decode as it stood when the lane was specified).
    let pr5_exact_ns = perf::baseline_pr5("score_tables/c2_batch_decode")
        .expect("BENCH_PR5.json score_tables/c2_batch_decode baseline");
    let speedup_vs_pr5 = pr5_exact_ns / fast_ns.max(1e-9);

    // ---------- Tolerance half: agreement + accuracy on the test split --
    let fast_engine = engine.with_decoder(DecoderConfig::exact().fast32());
    let truth: Vec<[Vec<usize>; 2]> = test
        .iter()
        .map(|s| [s.labels_of(0), s.labels_of(1)])
        .collect();
    let exact_recs: Vec<Recognition> = test
        .iter()
        .map(|s| engine.recognize(s).expect("f64 recognize"))
        .collect();
    let fast_recs: Vec<Recognition> = test
        .iter()
        .map(|s| fast_engine.recognize(s).expect("f32 recognize"))
        .collect();
    let mut agree_num = 0.0;
    let mut agree_den = 0.0;
    for (e, f) in exact_recs.iter().zip(&fast_recs) {
        let ticks = (e.macros[0].len() + e.macros[1].len()) as f64;
        agree_num += tick_agreement(e, f) * ticks;
        agree_den += ticks;
    }
    let agreement = agree_num / agree_den.max(1.0);
    let paths = |recs: &[Recognition]| -> Vec<[Vec<usize>; 2]> {
        recs.iter().map(|r| r.macros.clone()).collect()
    };
    let acc_exact = macro_accuracy(&truth, &paths(&exact_recs));
    let acc_fast = macro_accuracy(&truth, &paths(&fast_recs));

    header("f32 lane — C2 batch decode + streaming push, f64 exact vs f32 fast");
    println!(
        "{n_ticks} ticks/session, {} joint states bound; f32 mirror built once in {mirror_us:.0} µs",
        engine.frontier_bound()
    );
    println!(
        "{:<20} {:>12} {:>12} {:>9}",
        "path", "f64 ns/tick", "f32 ns/tick", "speedup"
    );
    println!(
        "{:<20} {exact_ns:>12.0} {fast_ns:>12.0} {speedup:>8.2}x",
        "batch decode"
    );
    println!(
        "{:<20} {exact_push_ns:>12.0} {fast_push_ns:>12.0} {push_speedup:>8.2}x",
        "stream push (lag 10)"
    );
    println!(
        "vs frozen PR 5 exact baseline ({pr5_exact_ns:.0} ns/tick): f32 batch decode \
         {speedup_vs_pr5:.2}x (gate ≥2x); same-build f64 exact is itself {:.2}x over that baseline",
        pr5_exact_ns / exact_ns.max(1e-9),
    );
    println!(
        "per-tick argmax agreement {:.2}% (target ≥99%); macro accuracy f64 {:.1}% vs \
         f32 {:.1}% ({:+.2} pp, target within 0.1 pp)",
        100.0 * agreement,
        100.0 * acc_exact,
        100.0 * acc_fast,
        100.0 * (acc_fast - acc_exact),
    );

    // The PR 6 acceptance contract, enforced where it is measured: ≥2x
    // over the frozen PR 5 exact path, and strictly faster than the
    // same-build f64 lane (the lane must pay for itself in any binary).
    assert!(
        speedup_vs_pr5 >= 2.0,
        "f32 lane batch decode {fast_ns:.0} ns/tick is only {speedup_vs_pr5:.2}x over the \
         frozen PR 5 exact baseline ({pr5_exact_ns:.0} ns/tick), below the 2x gate"
    );
    assert!(
        fast_ns < exact_ns,
        "f32 lane batch decode {fast_ns:.0} ns/tick is not faster than the same-build \
         f64 exact lane ({exact_ns:.0} ns/tick)"
    );
    assert!(
        agreement >= 0.99,
        "f32 lane per-tick agreement {agreement:.4} < 0.99"
    );
    assert!(
        (acc_fast - acc_exact).abs() <= 0.001,
        "f32 lane macro accuracy {acc_fast:.4} drifts more than 0.1pp from f64 {acc_exact:.4}"
    );

    perf::emit(&[
        PerfRecord {
            id: "f32_lane/c2_batch_decode_f64".to_string(),
            per_tick_ns: exact_ns,
            speedup_vs_naive: None,
            allocs_per_tick: None,
            homes_per_s: None,
            note: format!(
                "fig9 C2 exact coupled decode, f64 lane ({:.2}x over its frozen PR 5 record \
                 from the column-major kernel rewrite); {:.1}% macro accuracy",
                pr5_exact_ns / exact_ns.max(1e-9),
                100.0 * acc_exact
            ),
        },
        PerfRecord {
            id: "f32_lane/c2_batch_decode_f32".to_string(),
            per_tick_ns: fast_ns,
            speedup_vs_naive: None,
            allocs_per_tick: None,
            homes_per_s: None,
            note: format!(
                "fig9 C2 exact coupled decode, f32 lane: {speedup_vs_pr5:.2}x vs the frozen \
                 PR 5 exact baseline ({pr5_exact_ns:.0} ns/tick), {speedup:.2}x vs same-build \
                 f64, at {:.2}% per-tick agreement, {:.1}% macro accuracy ({:+.2}pp); \
                 mirror build {mirror_us:.0} µs",
                100.0 * agreement,
                100.0 * acc_fast,
                100.0 * (acc_fast - acc_exact),
            ),
        },
        PerfRecord {
            id: "f32_lane/c2_stream_push_f32".to_string(),
            per_tick_ns: fast_push_ns,
            speedup_vs_naive: None,
            allocs_per_tick: None,
            homes_per_s: None,
            note: format!(
                "fig9 C2 warmed OnlineCoupledViterbi push, f32 lane, exact beam, lag 10: \
                 {push_speedup:.2}x vs f64 ({exact_push_ns:.0} ns/tick)"
            ),
        },
    ]);

    // ---------- Criterion targets ----------
    c.bench_function("f32_lane/c2_batch_decode_f64", |b| {
        b.iter(|| black_box(exact_decoder.viterbi(black_box(&inputs)).expect("decode")))
    });
    c.bench_function("f32_lane/c2_batch_decode_f32", |b| {
        b.iter(|| black_box(fast_decoder.viterbi(black_box(&inputs)).expect("decode")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
