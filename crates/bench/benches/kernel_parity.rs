//! **Kernel parity** — the generic trellis engine vs the retired
//! per-family kernels (PR 8's refactor gate).
//!
//! The trait-parameterized engine (`cace_hdbn::trellis`) replaced the
//! per-family copies of the dense/pruned step kernels and the online
//! window machinery. Bit-identity is guarded by the equivalence suites;
//! this bench guards *latency*: it re-measures the three hot-path rows
//! whose pre-refactor numbers are frozen in `BENCH_PR7.json` — the
//! warmed C2 streaming push with the exact and `TopK(56)` beams
//! (`score_tables/c2_stream_push_*`) and the f32-lane batch decode
//! (`f32_lane/c2_batch_decode_f32`) — on the identical fig9 workload,
//! and asserts each is within **5%** of its frozen record. Results land
//! in `BENCH_PR9.json` as `kernel_parity/*` rows whose notes cite the
//! baseline they were gated against.
//!
//! Under `--quick` (the CI smoke) the measurement is shortened and the
//! gate is relaxed to a catastrophic-regression bound (4× the frozen
//! record) so shared-runner noise can't flake the pipeline; the strict
//! 5% gate runs in the full local bench.

use std::sync::Arc;
use std::time::Instant;

use cace_behavior::session::train_test_split;
use cace_behavior::{generate_casas_dataset, CasasConfig};
use cace_bench::perf::{self, PerfRecord};
use cace_bench::{header, trained};
use cace_core::Strategy;
use cace_hdbn::{CoupledHdbn, DecoderConfig, Lag, OnlineCoupledViterbi, TickInput};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Best-of-`repeats` per-tick wall time of `f` over a `ticks`-long decode.
fn best_per_tick_ns(ticks: usize, repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() / ticks as f64);
    }
    best * 1e9
}

/// Warmed steady-state streaming push latency (ns/tick), best of `repeats`
/// measured passes over the session.
fn stream_push_ns(decoder: &CoupledHdbn, inputs: &[TickInput], repeats: usize) -> f64 {
    let mut online = OnlineCoupledViterbi::new(decoder.clone(), Lag::Fixed(10));
    online.reserve_ticks((repeats + 2) * inputs.len() + 1024);
    for tick in inputs {
        online.push(tick).expect("warmup push");
    }
    best_per_tick_ns(inputs.len(), repeats, || {
        for tick in inputs {
            black_box(online.push(black_box(tick)).expect("push"));
        }
    })
}

fn bench(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick");
    // The fig9 (CASAS-style) C2 workload — corpus shape and seed identical
    // to the `score_tables` / `f32_lane` benches that produced the frozen
    // PR 7 rows, so the comparison is like-for-like.
    let cfg = CasasConfig {
        pairs: 4,
        sessions_per_pair: 2,
        ticks: 200,
        ..CasasConfig::default()
    };
    let sessions = generate_casas_dataset(&cfg, 9002);
    let (train, test) = train_test_split(sessions, 0.8);
    let engine = trained(&train, Strategy::CorrelationConstraint);
    let inputs: Vec<TickInput> = engine.tick_inputs(&test[0]);
    let n_ticks = inputs.len();
    let params = Arc::clone(engine.hdbn_params());
    black_box(params.tables_f32()); // amortized mirror build off the clock

    let repeats = if quick { 2 } else { 7 };
    let (tolerance, gate) = if quick {
        (4.0, "4x (quick)")
    } else {
        (1.05, "5%")
    };

    let exact_push = stream_push_ns(
        &CoupledHdbn::from_shared(Arc::clone(&params)),
        &inputs,
        repeats,
    );
    let topk_push = stream_push_ns(
        &CoupledHdbn::from_shared(Arc::clone(&params)).with_decoder(DecoderConfig::top_k(56)),
        &inputs,
        repeats,
    );
    let fast_decoder =
        CoupledHdbn::from_shared(Arc::clone(&params)).with_decoder(DecoderConfig::exact().fast32());
    let f32_batch = best_per_tick_ns(n_ticks, repeats, || {
        black_box(fast_decoder.viterbi(black_box(&inputs)).expect("decode"));
    });

    header("kernel_parity — generic trellis engine vs frozen pre-refactor records");
    println!(
        "{:>28} {:>12} {:>12} {:>8}  gate ≤{gate}",
        "row", "PR7 ns/tick", "now ns/tick", "ratio"
    );
    let mut records = Vec::new();
    for (short, baseline_id, now_ns) in [
        (
            "stream_push_exact",
            "score_tables/c2_stream_push_exact",
            exact_push,
        ),
        (
            "stream_push_topk_56",
            "score_tables/c2_stream_push_topk_56",
            topk_push,
        ),
        (
            "batch_decode_f32",
            "f32_lane/c2_batch_decode_f32",
            f32_batch,
        ),
    ] {
        let pr7_ns = perf::baseline_pr7(baseline_id)
            .unwrap_or_else(|| panic!("BENCH_PR7.json is missing the {baseline_id} record"));
        let ratio = now_ns / pr7_ns;
        println!("{short:>28} {pr7_ns:>12.0} {now_ns:>12.0} {ratio:>8.3}");
        assert!(
            now_ns <= pr7_ns * tolerance,
            "kernel_parity/{short}: {now_ns:.0} ns/tick exceeds the frozen PR 7 record \
             {pr7_ns:.0} ns/tick by more than {gate} — the generic engine must not \
             regress the kernels it replaced",
        );
        records.push(PerfRecord {
            id: format!("kernel_parity/{short}"),
            per_tick_ns: now_ns,
            speedup_vs_naive: None,
            allocs_per_tick: None,
            homes_per_s: None,
            note: format!(
                "generic trellis engine on the fig9 C2 workload; frozen PR 7 record \
                 {baseline_id} = {pr7_ns:.0} ns/tick, ratio {ratio:.3} (gate ≤{gate})"
            ),
        });
    }
    perf::emit(&records);

    // Conventional timed entry point for `--quick`/`--test` runs.
    let model = CoupledHdbn::from_shared(Arc::clone(&params));
    let mut online = OnlineCoupledViterbi::new(model, Lag::Fixed(10));
    for tick in &inputs {
        online.push(tick).expect("warmup");
    }
    let mut next = 0usize;
    c.bench_function("kernel_parity/c2_stream_push_exact", |b| {
        b.iter(|| {
            let tick = &inputs[next % n_ticks];
            next += 1;
            black_box(online.push(black_box(tick)).expect("push"))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
