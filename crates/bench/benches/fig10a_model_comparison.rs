//! **Fig 10(a)** — per-activity accuracy of HMM vs FCRF vs CHMM vs CHDBN.
//!
//! The paper's shape: CHDBN wins on every activity, ≈20 points over HMM,
//! ≈8 over FCRF, ≈5 over CHMM.

use cace_baselines::{CoupledHmm, Fcrf, FcrfConfig, Hmm};
use cace_bench::{cace_corpus, header};
use cace_core::classifiers::{extract_all, MicroClassifiers};
use cace_core::{CaceConfig, CaceEngine};
use cace_features::extract_session;
use cace_model::MacroActivity;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

type Emissions = [Vec<Vec<f64>>; 2];

fn emissions(clf: &MicroClassifiers, session: &cace_behavior::Session, use_tag: bool) -> Emissions {
    let features = extract_session(session);
    let mut out: Emissions = [Vec::new(), Vec::new()];
    for u in 0..2 {
        for t in 0..session.len() {
            let f = &features.per_tick[t][u];
            out[u].push(clf.macro_log_proba(
                f.phone.as_ref().map(|v| v.as_slice()),
                f.tag.as_ref().filter(|_| use_tag).map(|v| v.as_slice()),
            ));
        }
    }
    out
}

fn bench(c: &mut Criterion) {
    let (train, test) = cace_corpus(1, 7, 300, 10001);
    let n_macro = 11usize;

    // Shared classifier head for the emission-based baselines.
    let features = extract_all(&train);
    let clf = MicroClassifiers::train(&train, &features, n_macro, 2, 17).unwrap();

    // Models.
    let chdbn = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
    let label_seqs: Vec<Vec<usize>> = train
        .iter()
        .flat_map(|s| [s.labels_of(0), s.labels_of(1)])
        .collect();
    let hmm = Hmm::fit(&label_seqs, n_macro, 0.5).unwrap();
    let paired: Vec<[Vec<usize>; 2]> = train
        .iter()
        .map(|s| [s.labels_of(0), s.labels_of(1)])
        .collect();
    let chmm = CoupledHmm::fit(&paired, n_macro, 0.5).unwrap();
    let mut fcrf = Fcrf::new(n_macro);
    let fcrf_data: Vec<_> = train
        .iter()
        .map(|s| (emissions(&clf, s, true), [s.labels_of(0), s.labels_of(1)]))
        .collect();
    fcrf.fit(
        &fcrf_data,
        &FcrfConfig {
            epochs: 4,
            learning_rate: 0.05,
        },
    )
    .unwrap();

    // Per-activity accuracy: correct ticks / true ticks of the activity.
    let mut correct = vec![[0usize; 4]; n_macro];
    let mut total = vec![0usize; n_macro];
    for session in &test {
        let em = emissions(&clf, session, true);
        let decoded: [[Vec<usize>; 2]; 4] = [
            {
                let r = chdbn.recognize(session).unwrap();
                r.macros
            },
            [
                hmm.viterbi(&em[0]).unwrap().macros,
                hmm.viterbi(&em[1]).unwrap().macros,
            ],
            chmm.viterbi(&em).unwrap().macros,
            fcrf.viterbi(&em).unwrap().macros,
        ];
        for u in 0..2 {
            for (t, tick) in session.ticks.iter().enumerate() {
                let truth = tick.labels[u];
                total[truth] += 1;
                for (m, path) in decoded.iter().enumerate() {
                    if path[u][t] == truth {
                        correct[truth][m] += 1;
                    }
                }
            }
        }
    }

    header("Fig 10(a) — per-activity accuracy (%): CHDBN vs HMM vs CHMM vs FCRF");
    println!(
        "{:<18} {:>7} {:>7} {:>7} {:>7}",
        "activity", "CHDBN", "HMM", "CHMM", "FCRF"
    );
    let mut overall = [0.0f64; 4];
    let grand_total: usize = total.iter().sum();
    for activity in MacroActivity::ALL {
        let a = activity.index();
        if total[a] == 0 {
            continue;
        }
        let accs: Vec<f64> = (0..4)
            .map(|m| 100.0 * correct[a][m] as f64 / total[a] as f64)
            .collect();
        for m in 0..4 {
            overall[m] += 100.0 * correct[a][m] as f64 / grand_total as f64;
        }
        println!(
            "{:>2} {:<15} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
            activity.paper_number(),
            activity.label(),
            accs[0],
            accs[1],
            accs[2],
            accs[3]
        );
    }
    // Column order in `decoded`: CHDBN, HMM, CHMM, FCRF.
    println!(
        "overall            {:>6.1} {:>6.1} {:>6.1} {:>6.1}   \
         (paper: CHDBN > CHMM > FCRF > HMM, ≈95/90/87/75)",
        overall[0], overall[1], overall[2], overall[3]
    );

    let session = &test[0];
    c.bench_function("fig10a/chdbn_recognition", |b| {
        b.iter(|| black_box(chdbn.recognize(black_box(session)).unwrap().states_explored))
    });
    let em = emissions(&clf, session, true);
    c.bench_function("fig10a/chmm_decode", |b| {
        b.iter(|| black_box(chmm.viterbi(black_box(&em)).unwrap().states_explored))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
