//! **§VII-E micro-level accuracies** — gestural 95.3 % (FP 1.8 %) and
//! postural ≈98.6 % (FP 0.6 %) in the paper.
//!
//! Trains the random-forest micro classifiers on held-in sessions, reports
//! held-out accuracy and FP rate per modality, and times frame
//! classification.

use cace_bench::{cace_corpus, header};
use cace_core::classifiers::{extract_all, MicroClassifiers};
use cace_eval::ConfusionMatrix;
use cace_model::{Gestural, Postural};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let (train, test) = cace_corpus(1, 6, 300, 5001);
    let train_features = extract_all(&train);
    let clf = MicroClassifiers::train(&train, &train_features, 11, 1, 7).unwrap();

    let test_features = extract_all(&test);
    let mut postural = ConfusionMatrix::new(Postural::COUNT);
    let mut gestural = ConfusionMatrix::new(Gestural::COUNT);
    for (session, features) in test.iter().zip(&test_features) {
        for (t, tick) in session.ticks.iter().enumerate() {
            for u in 0..2 {
                let f = &features.per_tick[t][u];
                if let Some(phone) = &f.phone {
                    let lp = clf.postural_log_proba(Some(phone.as_slice()));
                    let pred = lp
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .unwrap()
                        .0;
                    postural.record(tick.truth[u].micro.postural.index(), pred);
                }
                if let Some(tag) = &f.tag {
                    let lp = clf.gestural_log_proba(Some(tag.as_slice()));
                    let pred = lp
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .unwrap()
                        .0;
                    gestural.record(tick.truth[u].micro.gestural.index(), pred);
                }
            }
        }
    }

    header("§VII-E — micro-level classification (held-out)");
    let pm = postural.weighted_metrics();
    let gm = gestural.weighted_metrics();
    println!(
        "postural: accuracy {:.1} %  FP rate {:.1} %   (paper: ≈98.6 %, FP 0.6 %)",
        100.0 * postural.accuracy(),
        100.0 * pm.fp_rate
    );
    println!(
        "gestural: accuracy {:.1} %  FP rate {:.1} %   (paper: 95.3 %, FP 1.8 %)",
        100.0 * gestural.accuracy(),
        100.0 * gm.fp_rate
    );

    let sample = test_features[0].per_tick[10][0].phone.clone().unwrap();
    c.bench_function("micro/postural_frame_classification", |b| {
        b.iter(|| black_box(clf.postural_log_proba(Some(black_box(sample.as_slice())))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
