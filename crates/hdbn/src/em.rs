//! Expectation–Maximization training of the HDBN parameters
//! (`LearnParamsEM` in the paper's Fig 5 pseudocode).
//!
//! E-step: forward–backward over each training sequence's single-user chain
//! collects expected sufficient statistics — fanned out across cores with
//! one [`ExpectedCounts`] accumulator per sequence and an input-order
//! merge-reduce ([`e_step`]), so the parallel counts are **bit-identical**
//! to a sequential pass regardless of `RAYON_NUM_THREADS`. M-step: rebuild
//! the [`cace_mining::HierarchicalStats`] tables from the expected counts
//! with Laplace smoothing. Iterates until the log-likelihood improvement
//! falls below tolerance.
//!
//! The parameters are shared by [`Arc`] across iterations: each E-step
//! wraps the current `HdbnParams` without copying the CPT tables (the same
//! per-call deep clone batch recognition eliminated), and only the M-step
//! allocates a fresh table set.

use std::sync::Arc;

use cace_mining::HierarchicalStats;
use cace_model::ModelError;
use rayon::prelude::*;

use crate::input::TickInput;
use crate::params::{HdbnConfig, HdbnParams};
use crate::single::{ExpectedCounts, SingleHdbn};

/// EM schedule.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EmConfig {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Relative log-likelihood improvement below which EM stops.
    pub tol: f64,
    /// Laplace pseudo-count used in the M-step.
    pub laplace: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            max_iters: 10,
            tol: 1e-4,
            laplace: 0.5,
        }
    }
}

/// The result of an EM run.
#[derive(Debug, Clone)]
pub struct EmOutcome {
    /// Re-estimated parameters.
    pub params: HdbnParams,
    /// Log-likelihood after each iteration (monotone up to xi
    /// approximation and smoothing).
    pub log_likelihoods: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
}

/// One parallel E-step: expected sufficient statistics of every training
/// sequence under `model`, fanned out across cores.
///
/// Each sequence gets its own zeroed [`ExpectedCounts`] (both users' chains
/// contribute), and the per-sequence accumulators are merged in input
/// order. The summation tree is therefore fixed by the *data*, not by the
/// worker count: running under `RAYON_NUM_THREADS=1` and
/// `RAYON_NUM_THREADS=4` produces bit-identical counts
/// (`tests/em_training.rs` asserts this).
///
/// # Errors
/// Propagates per-sequence inference failures (first failing sequence in
/// input order).
pub fn e_step(
    model: &SingleHdbn,
    sequences: &[Vec<TickInput>],
) -> Result<ExpectedCounts, ModelError> {
    let stats = &model.params().stats;
    let (nm, np, ng, nl) = (
        stats.n_macro,
        stats.n_postural,
        stats.n_gestural,
        stats.n_location,
    );
    let per_sequence: Vec<ExpectedCounts> = sequences
        .par_iter()
        .map(|seq| {
            let mut counts = ExpectedCounts::zeros(nm, np, ng, nl);
            for user in 0..2 {
                model.accumulate_counts(seq, user, &mut counts)?;
            }
            Ok(counts)
        })
        .collect::<Result<Vec<_>, ModelError>>()?;
    let mut total = ExpectedCounts::zeros(nm, np, ng, nl);
    for counts in &per_sequence {
        total.merge(counts);
    }
    Ok(total)
}

/// Runs EM from initial parameters over per-user training sequences.
///
/// Each element of `sequences` is one session's tick inputs; both users'
/// chains contribute counts (the coupled co-occurrence table is kept from
/// the initial statistics — EM refines the per-chain hierarchical tables,
/// matching the paper's training split between the constraint miner and
/// `LearnParamsEM`). The E-step fans sequences across cores via [`e_step`].
///
/// # Errors
/// Propagates inference errors and invalid re-estimated tables.
pub fn fit_em(
    initial: HdbnParams,
    sequences: &[Vec<TickInput>],
    config: &EmConfig,
) -> Result<EmOutcome, ModelError> {
    fit_em_shared(Arc::new(initial), sequences, config)
}

/// [`fit_em`] over already-`Arc`-shared initial parameters (e.g. a trained
/// engine's tables), avoiding the up-front CPT copy entirely.
///
/// # Errors
/// Same conditions as [`fit_em`].
pub fn fit_em_shared(
    initial: Arc<HdbnParams>,
    sequences: &[Vec<TickInput>],
    config: &EmConfig,
) -> Result<EmOutcome, ModelError> {
    if sequences.is_empty() {
        return Err(ModelError::InsufficientData {
            what: "EM training".into(),
            available: 0,
            required: 1,
        });
    }
    let hdbn_config: HdbnConfig = initial.config.clone();
    let base = initial.stats.clone();
    let mut params = initial;
    let mut log_likelihoods = Vec::new();

    for iter in 0..config.max_iters {
        // The model aliases the current parameters; no table copy happens
        // between iterations.
        let model = SingleHdbn::from_shared(Arc::clone(&params));
        let counts = e_step(&model, sequences)?;
        drop(model);
        log_likelihoods.push(counts.log_likelihood);

        params = Arc::new(HdbnParams::new(
            m_step(&base, &counts, config.laplace),
            hdbn_config.clone(),
        )?);

        if iter > 0 {
            let prev = log_likelihoods[iter - 1];
            let cur = log_likelihoods[iter];
            let rel = (cur - prev).abs() / prev.abs().max(1.0);
            if rel < config.tol {
                break;
            }
        }
    }
    let iterations = log_likelihoods.len();
    Ok(EmOutcome {
        // The M-step's Arc is never shared further, so this unwraps
        // without copying; the fallback clone only fires for a zero-
        // iteration schedule returning the caller's shared initial tables.
        params: Arc::try_unwrap(params).unwrap_or_else(|shared| (*shared).clone()),
        log_likelihoods,
        iterations,
    })
}

/// Incremental drift statistics harvested from live streams: the online
/// half of EM, decoupled from any one stream's lifetime.
///
/// A serving tier cannot afford a batch EM pass over historical sessions,
/// but it decodes every tick anyway — so each home buffers its prepared
/// tick inputs into fixed-size windows, and a `DriftAccumulator` folds
/// those windows into one [`ExpectedCounts`] via the same
/// forward–backward E-step batch EM uses
/// ([`SingleHdbn::accumulate_counts`]). Accumulators from homes sharing a
/// model id [`merge`](Self::merge) associatively in a caller-fixed order
/// (the counts are sums), and [`reestimate`](Self::reestimate) runs one
/// M-step over the pooled counts to produce fresh [`HdbnParams`] — the
/// candidate for a hot swap into the fleet's live decoders.
///
/// The accumulator never touches a decoder frontier: observation is
/// read-only with respect to serving, so a fleet that adapts decodes
/// bit-identically to one that doesn't until the moment a re-estimated
/// model is actually swapped in.
#[derive(Debug, Clone)]
pub struct DriftAccumulator {
    counts: ExpectedCounts,
    windows: u64,
    ticks: u64,
}

impl DriftAccumulator {
    /// An empty accumulator sized for `params`' vocabularies.
    pub fn new(params: &HdbnParams) -> Self {
        let s = &params.stats;
        Self {
            counts: ExpectedCounts::zeros(s.n_macro, s.n_postural, s.n_gestural, s.n_location),
            windows: 0,
            ticks: 0,
        }
    }

    /// Folds one decoded stream window (both users' chains) into the
    /// counts. `model` must wrap the same parameters the window was
    /// decoded under; an empty window is a no-op.
    ///
    /// # Errors
    /// Propagates [`SingleHdbn::accumulate_counts`] validation failures
    /// (e.g. a window whose candidate ids do not fit the model); the
    /// accumulator is left unchanged in that case.
    pub fn observe(&mut self, model: &SingleHdbn, window: &[TickInput]) -> Result<(), ModelError> {
        if window.is_empty() {
            return Ok(());
        }
        let s = &model.params().stats;
        let mut counts = ExpectedCounts::zeros(s.n_macro, s.n_postural, s.n_gestural, s.n_location);
        for user in 0..2 {
            model.accumulate_counts(window, user, &mut counts)?;
        }
        self.counts.merge(&counts);
        self.windows += 1;
        self.ticks += window.len() as u64;
        Ok(())
    }

    /// Adds another accumulator's counts (e.g. a different home of the
    /// same model id). Order-sensitive only at the bit level, like every
    /// float sum — callers that need determinism merge in a fixed order.
    pub fn merge(&mut self, other: &DriftAccumulator) {
        self.counts.merge(&other.counts);
        self.windows += other.windows;
        self.ticks += other.ticks;
    }

    /// Windows folded in so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Ticks folded in so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The pooled expected counts.
    pub fn counts(&self) -> &ExpectedCounts {
        &self.counts
    }

    /// One MAP M-step over the pooled counts: re-estimated parameters
    /// carrying `base`'s structural config and coupled co-occurrence table
    /// (the split batch EM uses — drift EM refines the per-chain
    /// hierarchical tables, the constraint miner's inter-user table stays).
    ///
    /// Unlike batch EM's uniform-Laplace M-step, smoothing here is
    /// anchored at `base`: each table row gets `strength` pseudo-counts
    /// distributed according to the base distribution. A row the drift
    /// windows never visited therefore stays exactly at base instead of
    /// collapsing toward uniform — essential when adapting from a few
    /// hundred live ticks that exercise only part of the vocabulary —
    /// while well-observed rows converge to the drifted empirical
    /// distribution.
    ///
    /// # Errors
    /// Propagates invalid re-estimated tables.
    pub fn reestimate(&self, base: &HdbnParams, strength: f64) -> Result<HdbnParams, ModelError> {
        HdbnParams::new(
            m_step_map(&base.stats, &self.counts, strength),
            base.config.clone(),
        )
    }
}

/// M-step: expected counts → smoothed, normalized tables.
fn m_step(base: &HierarchicalStats, counts: &ExpectedCounts, laplace: f64) -> HierarchicalStats {
    let smooth_rows = |rows: &[Vec<f64>]| -> Vec<Vec<f64>> {
        rows.iter()
            .map(|row| {
                let total: f64 = row.iter().sum::<f64>() + laplace * row.len() as f64;
                row.iter().map(|&c| (c + laplace) / total).collect()
            })
            .collect()
    };
    let prior_total: f64 = counts.prior.iter().sum::<f64>() + laplace * counts.prior.len() as f64;
    let macro_prior: Vec<f64> = counts
        .prior
        .iter()
        .map(|&c| (c + laplace) / prior_total)
        .collect();
    let end_prob: Vec<f64> = counts
        .end
        .iter()
        .zip(&counts.cont)
        .map(|(&e, &c)| ((e + laplace) / (e + c + 2.0 * laplace)).clamp(1e-6, 1.0 - 1e-6))
        .collect();

    HierarchicalStats {
        n_macro: base.n_macro,
        n_postural: base.n_postural,
        n_gestural: base.n_gestural,
        n_location: base.n_location,
        macro_prior,
        intra_trans: smooth_rows(&counts.trans),
        inter_cooc: base.inter_cooc.clone(), // coupled table kept fixed
        end_prob,
        postural_given_macro: smooth_rows(&counts.post),
        gestural_given_macro: smooth_rows(&counts.gest),
        location_given_macro: smooth_rows(&counts.loc),
        postural_trans: smooth_rows(&counts.post_trans),
    }
}

/// MAP M-step for [`DriftAccumulator::reestimate`]: per-row Dirichlet
/// prior centered at `base` with total pseudo-count `strength`, so
/// unobserved rows reproduce the base tables exactly and observed rows
/// interpolate between base and the empirical drift distribution.
fn m_step_map(
    base: &HierarchicalStats,
    counts: &ExpectedCounts,
    strength: f64,
) -> HierarchicalStats {
    let map_rows = |base_rows: &[Vec<f64>], count_rows: &[Vec<f64>]| -> Vec<Vec<f64>> {
        base_rows
            .iter()
            .zip(count_rows)
            .map(|(base_row, row)| {
                let total: f64 = row.iter().sum::<f64>() + strength;
                base_row
                    .iter()
                    .zip(row)
                    .map(|(&p, &c)| (c + strength * p) / total)
                    .collect()
            })
            .collect()
    };
    let prior_total: f64 = counts.prior.iter().sum::<f64>() + strength;
    let macro_prior: Vec<f64> = base
        .macro_prior
        .iter()
        .zip(&counts.prior)
        .map(|(&p, &c)| (c + strength * p) / prior_total)
        .collect();
    let end_prob: Vec<f64> = base
        .end_prob
        .iter()
        .zip(counts.end.iter().zip(&counts.cont))
        .map(|(&p, (&e, &c))| ((e + strength * p) / (e + c + strength)).clamp(1e-6, 1.0 - 1e-6))
        .collect();

    HierarchicalStats {
        n_macro: base.n_macro,
        n_postural: base.n_postural,
        n_gestural: base.n_gestural,
        n_location: base.n_location,
        macro_prior,
        intra_trans: map_rows(&base.intra_trans, &counts.trans),
        inter_cooc: base.inter_cooc.clone(), // coupled table kept fixed
        end_prob,
        postural_given_macro: map_rows(&base.postural_given_macro, &counts.post),
        gestural_given_macro: map_rows(&base.gestural_given_macro, &counts.gest),
        location_given_macro: map_rows(&base.location_given_macro, &counts.loc),
        postural_trans: map_rows(&base.postural_trans, &counts.post_trans),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::MicroCandidate;
    use cace_mining::constraint::{ConstraintMiner, LabeledSequence};

    /// Ground-truth world: activity k ↔ posture/location k, runs of 10.
    fn world_sequence(seed_shift: usize, ticks: usize) -> Vec<TickInput> {
        (0..ticks)
            .map(|t| {
                let m = ((t + seed_shift) / 10) % 2;
                let cands = |fav: usize| -> Vec<MicroCandidate> {
                    (0..2)
                        .map(|p| MicroCandidate {
                            postural: p,
                            gestural: Some(0),
                            location: p,
                            obs_loglik: if p == fav { 0.0 } else { -4.0 },
                        })
                        .collect()
                };
                TickInput {
                    candidates: [cands(m), cands(m)],
                    macro_candidates: [None, None],
                    macro_bonus: Vec::new(),
                }
            })
            .collect()
    }

    /// Deliberately weak initial statistics: heavily smoothed, but with the
    /// faint correct correlation (activity k ↔ posture k) EM needs to break
    /// the label symmetry.
    fn weak_initial() -> HdbnParams {
        let seq = LabeledSequence {
            macros: [vec![0, 0, 0, 1, 1, 1], vec![1, 1, 1, 0, 0, 0]],
            posturals: [vec![0, 0, 0, 1, 1, 1], vec![1, 1, 1, 0, 0, 0]],
            gesturals: [vec![0; 6], vec![0; 6]],
            locations: [vec![0, 0, 0, 1, 1, 1], vec![1, 1, 1, 0, 0, 0]],
        };
        let stats = ConstraintMiner {
            laplace: 5.0, // heavy smoothing → nearly uniform
            n_macro: 2,
            n_postural: 2,
            n_gestural: 2,
            n_location: 2,
        }
        .mine(&[seq])
        .unwrap();
        HdbnParams::new(stats, HdbnConfig::uncoupled()).unwrap()
    }

    #[test]
    fn em_improves_log_likelihood() {
        let sequences = vec![world_sequence(0, 60), world_sequence(5, 60)];
        let outcome = fit_em(
            weak_initial(),
            &sequences,
            &EmConfig {
                max_iters: 5,
                tol: 0.0,
                laplace: 0.2,
            },
        )
        .unwrap();
        assert_eq!(outcome.iterations, 5);
        let first = outcome.log_likelihoods.first().copied().unwrap();
        let last = outcome.log_likelihoods.last().copied().unwrap();
        assert!(
            last > first,
            "EM should improve log-likelihood: {first} → {last} ({:?})",
            outcome.log_likelihoods
        );
    }

    #[test]
    fn em_sharpens_the_hierarchy() {
        let sequences = vec![world_sequence(0, 100)];
        let outcome = fit_em(weak_initial(), &sequences, &EmConfig::default()).unwrap();
        let stats = &outcome.params.stats;
        // After EM, some activity should be strongly associated with
        // posture 0 and the other with posture 1 (labels may swap).
        let peak0 = stats.postural_given_macro[0][0].max(stats.postural_given_macro[0][1]);
        let peak1 = stats.postural_given_macro[1][0].max(stats.postural_given_macro[1][1]);
        assert!(
            peak0 > 0.75,
            "activity 0 posture CPT not sharpened: {peak0}"
        );
        assert!(
            peak1 > 0.75,
            "activity 1 posture CPT not sharpened: {peak1}"
        );
        assert!(stats.validate().is_ok());
    }

    #[test]
    fn em_converges_early_with_loose_tolerance() {
        let sequences = vec![world_sequence(0, 40)];
        let outcome = fit_em(
            weak_initial(),
            &sequences,
            &EmConfig {
                max_iters: 20,
                tol: 0.5,
                laplace: 0.5,
            },
        )
        .unwrap();
        assert!(outcome.iterations < 20, "loose tol should stop early");
    }

    #[test]
    fn drift_accumulator_windows_match_one_batch_e_step() {
        let initial = Arc::new(weak_initial());
        let model = SingleHdbn::from_shared(Arc::clone(&initial));
        let seq = world_sequence(0, 60);

        // Batch: the whole sequence as one E-step input.
        let batch = e_step(&model, std::slice::from_ref(&seq)).unwrap();

        // Incremental: same ticks fed as windowed chunks. The counts are
        // not expected to be bit-identical to the batch pass (each window
        // runs its own forward–backward), but the pooled statistics must
        // land on the same structure and drive the M-step the same way.
        let mut acc = DriftAccumulator::new(&initial);
        for window in seq.chunks(20) {
            acc.observe(&model, window).unwrap();
        }
        assert_eq!(acc.windows(), 3);
        assert_eq!(acc.ticks(), 60);
        let total: f64 = acc.counts().prior.iter().sum();
        assert!(total > 0.0);

        let from_batch = HdbnParams::new(
            super::m_step(&initial.stats, &batch, 0.5),
            initial.config.clone(),
        )
        .unwrap();
        let from_drift = acc.reestimate(&initial, 0.5).unwrap();
        // Both re-estimates sharpen the same activity↔posture association.
        for a in 0..2 {
            let b_peak = from_batch.stats.postural_given_macro[a]
                .iter()
                .cloned()
                .fold(0.0, f64::max);
            let d_peak = from_drift.stats.postural_given_macro[a]
                .iter()
                .cloned()
                .fold(0.0, f64::max);
            assert!(
                (b_peak - d_peak).abs() < 0.1,
                "activity {a}: {b_peak} vs {d_peak}"
            );
        }
        // The coupled table is carried over untouched, per the EM split.
        assert_eq!(from_drift.stats.inter_cooc, initial.stats.inter_cooc);
    }

    #[test]
    fn reestimate_is_anchored_at_the_base_tables() {
        let initial = Arc::new(weak_initial());
        let model = SingleHdbn::from_shared(Arc::clone(&initial));

        // No evidence → MAP re-estimation reproduces base exactly (up to
        // end-prob clamping); an unobserved vocabulary must not drift
        // toward uniform.
        let empty = DriftAccumulator::new(&initial);
        let kept = empty.reestimate(&initial, 0.5).unwrap();
        assert_eq!(kept.stats.macro_prior, initial.stats.macro_prior);
        assert_eq!(kept.stats.intra_trans, initial.stats.intra_trans);
        assert_eq!(
            kept.stats.postural_given_macro,
            initial.stats.postural_given_macro
        );
        assert_eq!(
            kept.stats.location_given_macro,
            initial.stats.location_given_macro
        );

        // With evidence, observed rows move while the anchor keeps every
        // probability strictly positive.
        let mut acc = DriftAccumulator::new(&initial);
        acc.observe(&model, &world_sequence(0, 60)).unwrap();
        let moved = acc.reestimate(&initial, 0.5).unwrap();
        assert_ne!(
            moved.stats.postural_given_macro,
            initial.stats.postural_given_macro
        );
        for row in &moved.stats.postural_given_macro {
            assert!(row.iter().all(|&p| p > 0.0));
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn drift_accumulators_merge_like_one_pooled_accumulator() {
        let initial = Arc::new(weak_initial());
        let model = SingleHdbn::from_shared(Arc::clone(&initial));
        let (w1, w2) = (world_sequence(0, 30), world_sequence(5, 30));

        let mut pooled = DriftAccumulator::new(&initial);
        pooled.observe(&model, &w1).unwrap();
        pooled.observe(&model, &w2).unwrap();

        let mut home_a = DriftAccumulator::new(&initial);
        home_a.observe(&model, &w1).unwrap();
        let mut home_b = DriftAccumulator::new(&initial);
        home_b.observe(&model, &w2).unwrap();
        home_a.merge(&home_b);

        assert_eq!(home_a.windows(), pooled.windows());
        assert_eq!(home_a.ticks(), pooled.ticks());
        // Same windows in the same order → bit-identical pooled counts.
        assert_eq!(home_a.counts().prior, pooled.counts().prior);
        assert_eq!(home_a.counts().trans, pooled.counts().trans);
        assert_eq!(home_a.counts().post, pooled.counts().post);
        // Empty windows are no-ops.
        home_a.observe(&model, &[]).unwrap();
        assert_eq!(home_a.windows(), pooled.windows());
    }

    #[test]
    fn em_rejects_empty_training_set() {
        assert!(matches!(
            fit_em(weak_initial(), &[], &EmConfig::default()),
            Err(ModelError::InsufficientData { .. })
        ));
    }
}
