//! Expectation–Maximization training of the HDBN parameters
//! (`LearnParamsEM` in the paper's Fig 5 pseudocode).
//!
//! E-step: forward–backward over each training sequence's single-user chain
//! collects expected sufficient statistics — fanned out across cores with
//! one [`ExpectedCounts`] accumulator per sequence and an input-order
//! merge-reduce ([`e_step`]), so the parallel counts are **bit-identical**
//! to a sequential pass regardless of `RAYON_NUM_THREADS`. M-step: rebuild
//! the [`cace_mining::HierarchicalStats`] tables from the expected counts
//! with Laplace smoothing. Iterates until the log-likelihood improvement
//! falls below tolerance.
//!
//! The parameters are shared by [`Arc`] across iterations: each E-step
//! wraps the current `HdbnParams` without copying the CPT tables (the same
//! per-call deep clone batch recognition eliminated), and only the M-step
//! allocates a fresh table set.

use std::sync::Arc;

use cace_mining::HierarchicalStats;
use cace_model::ModelError;
use rayon::prelude::*;

use crate::input::TickInput;
use crate::params::{HdbnConfig, HdbnParams};
use crate::single::{ExpectedCounts, SingleHdbn};

/// EM schedule.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EmConfig {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Relative log-likelihood improvement below which EM stops.
    pub tol: f64,
    /// Laplace pseudo-count used in the M-step.
    pub laplace: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            max_iters: 10,
            tol: 1e-4,
            laplace: 0.5,
        }
    }
}

/// The result of an EM run.
#[derive(Debug, Clone)]
pub struct EmOutcome {
    /// Re-estimated parameters.
    pub params: HdbnParams,
    /// Log-likelihood after each iteration (monotone up to xi
    /// approximation and smoothing).
    pub log_likelihoods: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
}

/// One parallel E-step: expected sufficient statistics of every training
/// sequence under `model`, fanned out across cores.
///
/// Each sequence gets its own zeroed [`ExpectedCounts`] (both users' chains
/// contribute), and the per-sequence accumulators are merged in input
/// order. The summation tree is therefore fixed by the *data*, not by the
/// worker count: running under `RAYON_NUM_THREADS=1` and
/// `RAYON_NUM_THREADS=4` produces bit-identical counts
/// (`tests/em_training.rs` asserts this).
///
/// # Errors
/// Propagates per-sequence inference failures (first failing sequence in
/// input order).
pub fn e_step(
    model: &SingleHdbn,
    sequences: &[Vec<TickInput>],
) -> Result<ExpectedCounts, ModelError> {
    let stats = &model.params().stats;
    let (nm, np, ng, nl) = (
        stats.n_macro,
        stats.n_postural,
        stats.n_gestural,
        stats.n_location,
    );
    let per_sequence: Vec<ExpectedCounts> = sequences
        .par_iter()
        .map(|seq| {
            let mut counts = ExpectedCounts::zeros(nm, np, ng, nl);
            for user in 0..2 {
                model.accumulate_counts(seq, user, &mut counts)?;
            }
            Ok(counts)
        })
        .collect::<Result<Vec<_>, ModelError>>()?;
    let mut total = ExpectedCounts::zeros(nm, np, ng, nl);
    for counts in &per_sequence {
        total.merge(counts);
    }
    Ok(total)
}

/// Runs EM from initial parameters over per-user training sequences.
///
/// Each element of `sequences` is one session's tick inputs; both users'
/// chains contribute counts (the coupled co-occurrence table is kept from
/// the initial statistics — EM refines the per-chain hierarchical tables,
/// matching the paper's training split between the constraint miner and
/// `LearnParamsEM`). The E-step fans sequences across cores via [`e_step`].
///
/// # Errors
/// Propagates inference errors and invalid re-estimated tables.
pub fn fit_em(
    initial: HdbnParams,
    sequences: &[Vec<TickInput>],
    config: &EmConfig,
) -> Result<EmOutcome, ModelError> {
    fit_em_shared(Arc::new(initial), sequences, config)
}

/// [`fit_em`] over already-`Arc`-shared initial parameters (e.g. a trained
/// engine's tables), avoiding the up-front CPT copy entirely.
///
/// # Errors
/// Same conditions as [`fit_em`].
pub fn fit_em_shared(
    initial: Arc<HdbnParams>,
    sequences: &[Vec<TickInput>],
    config: &EmConfig,
) -> Result<EmOutcome, ModelError> {
    if sequences.is_empty() {
        return Err(ModelError::InsufficientData {
            what: "EM training".into(),
            available: 0,
            required: 1,
        });
    }
    let hdbn_config: HdbnConfig = initial.config.clone();
    let base = initial.stats.clone();
    let mut params = initial;
    let mut log_likelihoods = Vec::new();

    for iter in 0..config.max_iters {
        // The model aliases the current parameters; no table copy happens
        // between iterations.
        let model = SingleHdbn::from_shared(Arc::clone(&params));
        let counts = e_step(&model, sequences)?;
        drop(model);
        log_likelihoods.push(counts.log_likelihood);

        params = Arc::new(HdbnParams::new(
            m_step(&base, &counts, config.laplace),
            hdbn_config.clone(),
        )?);

        if iter > 0 {
            let prev = log_likelihoods[iter - 1];
            let cur = log_likelihoods[iter];
            let rel = (cur - prev).abs() / prev.abs().max(1.0);
            if rel < config.tol {
                break;
            }
        }
    }
    let iterations = log_likelihoods.len();
    Ok(EmOutcome {
        // The M-step's Arc is never shared further, so this unwraps
        // without copying; the fallback clone only fires for a zero-
        // iteration schedule returning the caller's shared initial tables.
        params: Arc::try_unwrap(params).unwrap_or_else(|shared| (*shared).clone()),
        log_likelihoods,
        iterations,
    })
}

/// M-step: expected counts → smoothed, normalized tables.
fn m_step(base: &HierarchicalStats, counts: &ExpectedCounts, laplace: f64) -> HierarchicalStats {
    let smooth_rows = |rows: &[Vec<f64>]| -> Vec<Vec<f64>> {
        rows.iter()
            .map(|row| {
                let total: f64 = row.iter().sum::<f64>() + laplace * row.len() as f64;
                row.iter().map(|&c| (c + laplace) / total).collect()
            })
            .collect()
    };
    let prior_total: f64 = counts.prior.iter().sum::<f64>() + laplace * counts.prior.len() as f64;
    let macro_prior: Vec<f64> = counts
        .prior
        .iter()
        .map(|&c| (c + laplace) / prior_total)
        .collect();
    let end_prob: Vec<f64> = counts
        .end
        .iter()
        .zip(&counts.cont)
        .map(|(&e, &c)| ((e + laplace) / (e + c + 2.0 * laplace)).clamp(1e-6, 1.0 - 1e-6))
        .collect();

    HierarchicalStats {
        n_macro: base.n_macro,
        n_postural: base.n_postural,
        n_gestural: base.n_gestural,
        n_location: base.n_location,
        macro_prior,
        intra_trans: smooth_rows(&counts.trans),
        inter_cooc: base.inter_cooc.clone(), // coupled table kept fixed
        end_prob,
        postural_given_macro: smooth_rows(&counts.post),
        gestural_given_macro: smooth_rows(&counts.gest),
        location_given_macro: smooth_rows(&counts.loc),
        postural_trans: smooth_rows(&counts.post_trans),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::MicroCandidate;
    use cace_mining::constraint::{ConstraintMiner, LabeledSequence};

    /// Ground-truth world: activity k ↔ posture/location k, runs of 10.
    fn world_sequence(seed_shift: usize, ticks: usize) -> Vec<TickInput> {
        (0..ticks)
            .map(|t| {
                let m = ((t + seed_shift) / 10) % 2;
                let cands = |fav: usize| -> Vec<MicroCandidate> {
                    (0..2)
                        .map(|p| MicroCandidate {
                            postural: p,
                            gestural: Some(0),
                            location: p,
                            obs_loglik: if p == fav { 0.0 } else { -4.0 },
                        })
                        .collect()
                };
                TickInput {
                    candidates: [cands(m), cands(m)],
                    macro_candidates: [None, None],
                    macro_bonus: Vec::new(),
                }
            })
            .collect()
    }

    /// Deliberately weak initial statistics: heavily smoothed, but with the
    /// faint correct correlation (activity k ↔ posture k) EM needs to break
    /// the label symmetry.
    fn weak_initial() -> HdbnParams {
        let seq = LabeledSequence {
            macros: [vec![0, 0, 0, 1, 1, 1], vec![1, 1, 1, 0, 0, 0]],
            posturals: [vec![0, 0, 0, 1, 1, 1], vec![1, 1, 1, 0, 0, 0]],
            gesturals: [vec![0; 6], vec![0; 6]],
            locations: [vec![0, 0, 0, 1, 1, 1], vec![1, 1, 1, 0, 0, 0]],
        };
        let stats = ConstraintMiner {
            laplace: 5.0, // heavy smoothing → nearly uniform
            n_macro: 2,
            n_postural: 2,
            n_gestural: 2,
            n_location: 2,
        }
        .mine(&[seq])
        .unwrap();
        HdbnParams::new(stats, HdbnConfig::uncoupled()).unwrap()
    }

    #[test]
    fn em_improves_log_likelihood() {
        let sequences = vec![world_sequence(0, 60), world_sequence(5, 60)];
        let outcome = fit_em(
            weak_initial(),
            &sequences,
            &EmConfig {
                max_iters: 5,
                tol: 0.0,
                laplace: 0.2,
            },
        )
        .unwrap();
        assert_eq!(outcome.iterations, 5);
        let first = outcome.log_likelihoods.first().copied().unwrap();
        let last = outcome.log_likelihoods.last().copied().unwrap();
        assert!(
            last > first,
            "EM should improve log-likelihood: {first} → {last} ({:?})",
            outcome.log_likelihoods
        );
    }

    #[test]
    fn em_sharpens_the_hierarchy() {
        let sequences = vec![world_sequence(0, 100)];
        let outcome = fit_em(weak_initial(), &sequences, &EmConfig::default()).unwrap();
        let stats = &outcome.params.stats;
        // After EM, some activity should be strongly associated with
        // posture 0 and the other with posture 1 (labels may swap).
        let peak0 = stats.postural_given_macro[0][0].max(stats.postural_given_macro[0][1]);
        let peak1 = stats.postural_given_macro[1][0].max(stats.postural_given_macro[1][1]);
        assert!(
            peak0 > 0.75,
            "activity 0 posture CPT not sharpened: {peak0}"
        );
        assert!(
            peak1 > 0.75,
            "activity 1 posture CPT not sharpened: {peak1}"
        );
        assert!(stats.validate().is_ok());
    }

    #[test]
    fn em_converges_early_with_loose_tolerance() {
        let sequences = vec![world_sequence(0, 40)];
        let outcome = fit_em(
            weak_initial(),
            &sequences,
            &EmConfig {
                max_iters: 20,
                tol: 0.5,
                laplace: 0.5,
            },
        )
        .unwrap();
        assert!(outcome.iterations < 20, "loose tol should stop early");
    }

    #[test]
    fn em_rejects_empty_training_set() {
        assert!(matches!(
            fit_em(weak_initial(), &[], &EmConfig::default()),
            Err(ModelError::InsufficientData { .. })
        ));
    }
}
