//! Compact binary codec for parked decoder state.
//!
//! The JSON parked-stream payload is self-describing and diffable, but a
//! serving tier that parks and rehydrates thousands of homes per second
//! pays for every quote and decimal digit. This module provides the
//! length-prefixed little-endian binary alternative: floats as raw IEEE
//! bits (bit-exact by construction, including `±inf` trellis scores),
//! integers as LEB128 varints (state ids and lengths are small — one
//! byte almost always), vectors as a varint length prefix followed by
//! elements. No field names, no self-description —
//! the envelope's version token *is* the schema version, and the
//! checksummed snapshot header detects corruption before decode.
//!
//! Decoding is **panic-free and allocation-bounded on malformed input**:
//! every length prefix is checked against the bytes actually remaining
//! before any buffer is reserved, and every read past the end surfaces as
//! [`ModelError::Persistence`]. (Structural validation against a model —
//! index bounds, cursor invariants — still happens at resume, exactly as
//! for JSON payloads; this layer only guarantees the bytes parse.)
//!
//! The [`ByteWriter`]/[`ByteReader`] primitives and the codecs for the
//! crate-public config types ([`Lag`], [`Beam`], [`DecoderConfig`],
//! [`MicroCandidate`]) are public so `cace-core` can embed the parked
//! decoder payloads written here inside its own stream envelope.

use cace_model::ModelError;

use crate::beam::{Beam, DecoderConfig};
use crate::input::MicroCandidate;
use crate::online::Lag;
use crate::park::{ParkedChain, ParkedChainEntry, ParkedCoupled, ParkedJointEntry, ParkedSlice};
use crate::scalar::Precision;

fn decode_err(what: impl Into<String>) -> ModelError {
    ModelError::Persistence { what: what.into() }
}

/// Little-endian binary payload writer. Append-only; finish with
/// [`into_bytes`](Self::into_bytes).
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn write_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a bool as one byte (`0`/`1`).
    pub fn write_bool(&mut self, x: bool) {
        self.write_u8(u8::from(x));
    }

    /// Appends a `u32` as a LEB128 varint.
    pub fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    /// Appends a `u64` as a LEB128 varint (1 byte per 7 value bits, low
    /// bits first — small ids and lengths cost one byte).
    pub fn write_u64(&mut self, mut x: u64) {
        while x >= 0x80 {
            self.buf.push((x as u8) | 0x80);
            x >>= 7;
        }
        self.buf.push(x as u8);
    }

    /// Appends a `usize` as a `u64` varint (the format is 64-bit
    /// regardless of host width).
    pub fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    /// Appends an `f64` as its raw IEEE bits, fixed-width little-endian —
    /// bit-exact round-trip, non-finite values included.
    pub fn write_f64(&mut self, x: f64) {
        self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }

    /// Appends an `f32` as its raw IEEE bits, fixed-width little-endian.
    pub fn write_f32(&mut self, x: f32) {
        self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
    }

    /// Appends an `Option<usize>` as a presence byte plus the value.
    pub fn write_opt_usize(&mut self, x: Option<usize>) {
        match x {
            None => self.write_u8(0),
            Some(v) => {
                self.write_u8(1);
                self.write_usize(v);
            }
        }
    }

    /// Appends a slice as a `u64` length prefix followed by elements.
    pub fn write_seq<T>(&mut self, items: &[T], mut write: impl FnMut(&mut Self, &T)) {
        self.write_u64(items.len() as u64);
        for item in items {
            write(self, item);
        }
    }
}

/// Bounds-checked reader over a binary payload produced by
/// [`ByteWriter`]. Every read returns [`ModelError::Persistence`] on
/// truncated input instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over the whole payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ModelError> {
        if self.remaining() < n {
            return Err(decode_err(format!(
                "binary payload truncated: need {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(bytes)
    }

    /// Fails unless every payload byte was consumed — trailing garbage is
    /// corruption, not padding.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] when bytes remain.
    pub fn expect_end(&self) -> Result<(), ModelError> {
        if self.remaining() != 0 {
            return Err(decode_err(format!(
                "binary payload has {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on truncated input.
    pub fn read_u8(&mut self) -> Result<u8, ModelError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte, rejecting anything but `0`/`1`.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on truncation or a non-bool byte.
    pub fn read_bool(&mut self) -> Result<bool, ModelError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(decode_err(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a `u32` varint.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on truncation or a value that does not
    /// fit 32 bits.
    pub fn read_u32(&mut self) -> Result<u32, ModelError> {
        u32::try_from(self.read_u64()?)
            .map_err(|_| decode_err("u32 field exceeds 32 bits".to_string()))
    }

    /// Reads a LEB128 `u64` varint.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on truncated or overlong input.
    pub fn read_u64(&mut self) -> Result<u64, ModelError> {
        let mut x = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.read_u8()?;
            if shift == 63 && b > 1 {
                return Err(decode_err("varint exceeds 64 bits".to_string()));
            }
            x |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(x);
            }
            shift += 7;
        }
    }

    /// Reads a `u64` and narrows it to the host's `usize`.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on truncation or a value exceeding the
    /// host's address width.
    pub fn read_usize(&mut self) -> Result<usize, ModelError> {
        usize::try_from(self.read_u64()?)
            .map_err(|_| decode_err("usize field exceeds host width".to_string()))
    }

    /// Reads an `f64` from fixed-width raw IEEE bits.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on truncated input.
    pub fn read_f64(&mut self) -> Result<f64, ModelError> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8"),
        )))
    }

    /// Reads an `f32` from fixed-width raw IEEE bits.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on truncated input.
    pub fn read_f32(&mut self) -> Result<f32, ModelError> {
        Ok(f32::from_bits(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4"),
        )))
    }

    /// Reads an `Option<usize>` (presence byte + value).
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on truncation or a malformed presence
    /// byte.
    pub fn read_opt_usize(&mut self) -> Result<Option<usize>, ModelError> {
        Ok(match self.read_bool()? {
            false => None,
            true => Some(self.read_usize()?),
        })
    }

    /// Reads a length-prefixed sequence. `elem_min_bytes` is the smallest
    /// possible encoding of one element; the declared length is checked
    /// against the bytes actually remaining **before** any allocation, so
    /// a tampered length prefix cannot request an absurd reservation.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on truncation, an impossible length,
    /// or an element decode failure.
    pub fn read_seq<T>(
        &mut self,
        elem_min_bytes: usize,
        mut read: impl FnMut(&mut Self) -> Result<T, ModelError>,
    ) -> Result<Vec<T>, ModelError> {
        let len = self.read_usize()?;
        let floor = len.checked_mul(elem_min_bytes.max(1));
        if floor.is_none_or(|f| f > self.remaining()) {
            return Err(decode_err(format!(
                "binary payload declares {len} elements but only {} bytes remain",
                self.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(read(self)?);
        }
        Ok(out)
    }
}

/// Encodes a [`Lag`].
pub fn write_lag(w: &mut ByteWriter, lag: Lag) {
    match lag {
        Lag::Unbounded => w.write_u8(0),
        Lag::Fixed(l) => {
            w.write_u8(1);
            w.write_usize(l);
        }
    }
}

/// Decodes a [`Lag`].
///
/// # Errors
/// [`ModelError::Persistence`] on truncation or an unknown tag.
pub fn read_lag(r: &mut ByteReader<'_>) -> Result<Lag, ModelError> {
    match r.read_u8()? {
        0 => Ok(Lag::Unbounded),
        1 => Ok(Lag::Fixed(r.read_usize()?)),
        t => Err(decode_err(format!("unknown lag tag {t}"))),
    }
}

/// Encodes a [`Precision`].
pub fn write_precision(w: &mut ByteWriter, p: Precision) {
    w.write_u8(match p {
        Precision::Exact64 => 0,
        Precision::Fast32 => 1,
    });
}

/// Decodes a [`Precision`].
///
/// # Errors
/// [`ModelError::Persistence`] on truncation or an unknown tag.
pub fn read_precision(r: &mut ByteReader<'_>) -> Result<Precision, ModelError> {
    match r.read_u8()? {
        0 => Ok(Precision::Exact64),
        1 => Ok(Precision::Fast32),
        t => Err(decode_err(format!("unknown precision tag {t}"))),
    }
}

/// Encodes a [`Beam`].
pub fn write_beam(w: &mut ByteWriter, beam: Beam) {
    match beam {
        Beam::Exact => w.write_u8(0),
        Beam::TopK(k) => {
            w.write_u8(1);
            w.write_usize(k);
        }
        Beam::LogThreshold(d) => {
            w.write_u8(2);
            w.write_f64(d);
        }
    }
}

/// Decodes a [`Beam`].
///
/// # Errors
/// [`ModelError::Persistence`] on truncation or an unknown tag.
pub fn read_beam(r: &mut ByteReader<'_>) -> Result<Beam, ModelError> {
    match r.read_u8()? {
        0 => Ok(Beam::Exact),
        1 => Ok(Beam::TopK(r.read_usize()?)),
        2 => Ok(Beam::LogThreshold(r.read_f64()?)),
        t => Err(decode_err(format!("unknown beam tag {t}"))),
    }
}

/// Encodes a [`DecoderConfig`].
pub fn write_decoder(w: &mut ByteWriter, d: DecoderConfig) {
    write_beam(w, d.beam);
    write_precision(w, d.precision);
}

/// Decodes a [`DecoderConfig`].
///
/// # Errors
/// [`ModelError::Persistence`] on truncation or an unknown tag.
pub fn read_decoder(r: &mut ByteReader<'_>) -> Result<DecoderConfig, ModelError> {
    Ok(DecoderConfig {
        beam: read_beam(r)?,
        precision: read_precision(r)?,
    })
}

/// Encodes a [`MicroCandidate`].
pub fn write_cand(w: &mut ByteWriter, c: &MicroCandidate) {
    w.write_usize(c.postural);
    w.write_opt_usize(c.gestural);
    w.write_usize(c.location);
    w.write_f64(c.obs_loglik);
}

/// Decodes a [`MicroCandidate`].
///
/// # Errors
/// [`ModelError::Persistence`] on truncated input.
pub fn read_cand(r: &mut ByteReader<'_>) -> Result<MicroCandidate, ModelError> {
    Ok(MicroCandidate {
        postural: r.read_usize()?,
        gestural: r.read_opt_usize()?,
        location: r.read_usize()?,
        obs_loglik: r.read_f64()?,
    })
}

fn write_slice(w: &mut ByteWriter, s: &ParkedSlice) {
    w.write_seq(&s.activities, |w, &x| w.write_usize(x));
    w.write_seq(&s.cands, |w, &x| w.write_usize(x));
    w.write_seq(&s.pairs, |w, &x| w.write_u32(x));
    w.write_seq(&s.emissions, |w, &x| w.write_f64(x));
    w.write_seq(&s.uniq_pairs, |w, &x| w.write_u32(x));
    w.write_seq(&s.slots, |w, &x| w.write_u32(x));
    w.write_seq(&s.runs, |w, &(a, s, e)| {
        w.write_u32(a);
        w.write_u32(s);
        w.write_u32(e);
    });
}

fn read_slice(r: &mut ByteReader<'_>) -> Result<ParkedSlice, ModelError> {
    Ok(ParkedSlice {
        activities: r.read_seq(1, ByteReader::read_usize)?,
        cands: r.read_seq(1, ByteReader::read_usize)?,
        pairs: r.read_seq(1, ByteReader::read_u32)?,
        emissions: r.read_seq(8, ByteReader::read_f64)?,
        uniq_pairs: r.read_seq(1, ByteReader::read_u32)?,
        slots: r.read_seq(1, ByteReader::read_u32)?,
        runs: r.read_seq(3, |r| Ok((r.read_u32()?, r.read_u32()?, r.read_u32()?)))?,
    })
}

impl ParkedCoupled {
    /// Appends this checkpoint's binary encoding to `w`.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.write_seq(&self.v, |w, &x| w.write_f64(x));
        w.write_seq(&self.v32, |w, &x| w.write_f32(x));
        w.write_seq(&self.window, |w, e| {
            write_slice(w, &e.s1);
            write_slice(w, &e.s2);
            w.write_seq(&e.back, |w, &x| w.write_u32(x));
            for cands in &e.cands {
                w.write_seq(cands, write_cand);
            }
        });
        w.write_usize(self.base);
        w.write_usize(self.pushed);
        for emitted in &self.emitted_macros {
            w.write_seq(emitted, |w, &x| w.write_usize(x));
        }
        for emitted in &self.emitted_micros {
            w.write_seq(emitted, write_cand);
        }
        w.write_u64(self.states_explored);
        w.write_u64(self.transition_ops);
        w.write_bool(self.pruned);
        w.write_seq(&self.keep, |w, &x| w.write_u32(x));
    }

    /// Decodes a checkpoint written by [`encode_into`](Self::encode_into).
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on malformed bytes. (Structural
    /// validation against a model still happens at resume.)
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, ModelError> {
        Ok(Self {
            v: r.read_seq(8, ByteReader::read_f64)?,
            v32: r.read_seq(4, ByteReader::read_f32)?,
            window: r.read_seq(1, |r| {
                Ok(ParkedJointEntry {
                    s1: read_slice(r)?,
                    s2: read_slice(r)?,
                    back: r.read_seq(1, ByteReader::read_u32)?,
                    cands: [r.read_seq(11, read_cand)?, r.read_seq(11, read_cand)?],
                })
            })?,
            base: r.read_usize()?,
            pushed: r.read_usize()?,
            emitted_macros: [
                r.read_seq(1, ByteReader::read_usize)?,
                r.read_seq(1, ByteReader::read_usize)?,
            ],
            emitted_micros: [r.read_seq(11, read_cand)?, r.read_seq(11, read_cand)?],
            states_explored: r.read_u64()?,
            transition_ops: r.read_u64()?,
            pruned: r.read_bool()?,
            keep: r.read_seq(1, ByteReader::read_u32)?,
        })
    }
}

impl ParkedChain {
    /// Appends this checkpoint's binary encoding to `w`.
    pub fn encode_into(&self, w: &mut ByteWriter) {
        w.write_seq(&self.v, |w, &x| w.write_f64(x));
        w.write_seq(&self.v32, |w, &x| w.write_f32(x));
        w.write_seq(&self.window, |w, e| {
            write_slice(w, &e.slice);
            w.write_seq(&e.back, |w, &x| w.write_u32(x));
            w.write_seq(&e.cands, write_cand);
        });
        w.write_usize(self.base);
        w.write_usize(self.pushed);
        w.write_seq(&self.emitted_macros, |w, &x| w.write_usize(x));
        w.write_seq(&self.emitted_micros, write_cand);
        w.write_u64(self.states_explored);
        w.write_u64(self.transition_ops);
        w.write_bool(self.pruned);
        w.write_seq(&self.keep, |w, &x| w.write_u32(x));
    }

    /// Decodes a checkpoint written by [`encode_into`](Self::encode_into).
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on malformed bytes.
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<Self, ModelError> {
        Ok(Self {
            v: r.read_seq(8, ByteReader::read_f64)?,
            v32: r.read_seq(4, ByteReader::read_f32)?,
            window: r.read_seq(1, |r| {
                Ok(ParkedChainEntry {
                    slice: read_slice(r)?,
                    back: r.read_seq(1, ByteReader::read_u32)?,
                    cands: r.read_seq(11, read_cand)?,
                })
            })?,
            base: r.read_usize()?,
            pushed: r.read_usize()?,
            emitted_macros: r.read_seq(1, ByteReader::read_usize)?,
            emitted_micros: r.read_seq(11, read_cand)?,
            states_explored: r.read_u64()?,
            transition_ops: r.read_u64()?,
            pruned: r.read_bool()?,
            keep: r.read_seq(1, ByteReader::read_u32)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut w = ByteWriter::new();
        w.write_u8(7);
        w.write_bool(true);
        w.write_u32(0xdead_beef);
        w.write_u64(u64::MAX);
        w.write_usize(42);
        w.write_f64(f64::NEG_INFINITY);
        w.write_f64(-0.0);
        w.write_f32(f32::INFINITY);
        w.write_opt_usize(None);
        w.write_opt_usize(Some(9));
        w.write_seq(&[1u32, 2, 3], |w, &x| w.write_u32(x));
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert!(r.read_bool().unwrap());
        assert_eq!(r.read_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.read_u64().unwrap(), u64::MAX);
        assert_eq!(r.read_usize().unwrap(), 42);
        assert_eq!(r.read_f64().unwrap(), f64::NEG_INFINITY);
        assert_eq!(r.read_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.read_f32().unwrap(), f32::INFINITY);
        assert_eq!(r.read_opt_usize().unwrap(), None);
        assert_eq!(r.read_opt_usize().unwrap(), Some(9));
        assert_eq!(r.read_seq(1, ByteReader::read_u32).unwrap(), vec![1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_and_bad_tags_error_instead_of_panicking() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.read_f64().is_err());
        let mut r = ByteReader::new(&[0x80]);
        assert!(r.read_u64().is_err());
        let mut r = ByteReader::new(&[9]);
        assert!(r.read_bool().is_err());
        // A length prefix claiming more elements than bytes remain is
        // rejected before any allocation.
        let mut w = ByteWriter::new();
        w.write_u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.read_seq(8, ByteReader::read_f64).is_err());
        // An overlong varint is malformed, not silently wrapped.
        let mut r = ByteReader::new(&[0xff; 10]);
        assert!(r.read_u64().is_err());
        // Trailing bytes are corruption.
        let r = ByteReader::new(&[0]);
        assert!(r.expect_end().is_err());
        // Unknown enum tags.
        assert!(read_lag(&mut ByteReader::new(&[7])).is_err());
        assert!(read_beam(&mut ByteReader::new(&[7])).is_err());
        assert!(read_precision(&mut ByteReader::new(&[7])).is_err());
    }

    #[test]
    fn config_enums_round_trip() {
        let lags = [Lag::Unbounded, Lag::Fixed(5)];
        let beams = [Beam::Exact, Beam::TopK(56), Beam::LogThreshold(-3.5)];
        for &lag in &lags {
            for &beam in &beams {
                for precision in [Precision::Exact64, Precision::Fast32] {
                    let mut w = ByteWriter::new();
                    write_lag(&mut w, lag);
                    write_decoder(&mut w, DecoderConfig { beam, precision });
                    write_cand(
                        &mut w,
                        &MicroCandidate {
                            postural: 3,
                            gestural: Some(1),
                            location: 2,
                            obs_loglik: -1.25,
                        },
                    );
                    let bytes = w.into_bytes();
                    let mut r = ByteReader::new(&bytes);
                    assert_eq!(read_lag(&mut r).unwrap(), lag);
                    let d = read_decoder(&mut r).unwrap();
                    assert_eq!(d.beam, beam);
                    assert_eq!(d.precision, precision);
                    let c = read_cand(&mut r).unwrap();
                    assert_eq!((c.postural, c.gestural, c.location), (3, Some(1), 2));
                    assert_eq!(c.obs_loglik.to_bits(), (-1.25f64).to_bits());
                    r.expect_end().unwrap();
                }
            }
        }
    }
}
