//! Beam pruning of decoder frontiers.
//!
//! Every decoder in this crate — the batch Viterbi in [`crate::viterbi`]
//! and [`crate::single`], the online fixed-lag frontiers in
//! [`crate::online`], and the forward filtering behind
//! [`crate::SingleHdbn::forward_backward`] — advances a *frontier*: one
//! score per reachable state at the current tick. The exact recursion
//! carries the whole frontier into the next DP step; a [`Beam`] carries
//! only its best part. The next step then evaluates transitions out of the
//! surviving states alone, which is where the per-tick speedup comes from
//! (the coupled joint step drops from `O(|S1||S2|(|S1|+|S2|))` to
//! `O(B(|S1|+|S2|) + G|S1||S2|)` for `B` survivors over `G` distinct
//! chain-1 states).
//!
//! Pruning is a *frontier* restriction, not a rescoring: the scores of the
//! surviving states are untouched, every current-tick state is still
//! instantiated, and backpointers keep their exact-frontier coordinates —
//! so the decoded path of a pruned run is always a legal path of the exact
//! model, and its log-likelihood is a lower bound on the exact one.
//!
//! When a beam keeps the entire frontier (e.g. [`Beam::TopK`] with
//! `k >= |frontier|`), selection reports "no pruning" and the decoders run
//! the exact dense kernel, making the output — accounting included —
//! bit-identical to [`Beam::Exact`]. `tests/beam_differential.rs` holds
//! the decoders to that contract.

use serde::{Deserialize, Serialize};

use crate::scalar::{Precision, Scalar};

/// Frontier-pruning policy of a decoder.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Beam {
    /// No pruning: the full frontier survives every tick. Bit-identical to
    /// the historical (pre-beam) decoders, and the default everywhere.
    #[default]
    Exact,
    /// Keep the `k` best-scoring frontier states each tick (ties broken
    /// toward the lower state index, so survivor sets are reproducible).
    /// `TopK(0)` is clamped to 1; `k >= |frontier|` degrades to `Exact`.
    TopK(usize),
    /// Keep every state within `d` log-units of the per-tick best score
    /// (`d < 0` is clamped to 0, which keeps the argmax alone plus exact
    /// ties). The survivor count adapts to how peaked the frontier is.
    LogThreshold(f64),
}

impl Beam {
    /// Whether this beam never prunes.
    pub fn is_exact(&self) -> bool {
        matches!(self, Beam::Exact)
    }

    /// Whether this beam can never prune a frontier of at most
    /// `frontier_bound` states — true for [`Beam::Exact`], a
    /// [`Beam::TopK`] at or above the bound, and an infinite
    /// [`Beam::LogThreshold`]. Degenerate beams run the exact kernels on
    /// every tick, so callers may treat them as exact wholesale (e.g. for
    /// accounting conventions).
    pub fn never_prunes(&self, frontier_bound: usize) -> bool {
        match *self {
            Beam::Exact => true,
            Beam::TopK(k) => k.max(1) >= frontier_bound,
            Beam::LogThreshold(d) => d == f64::INFINITY,
        }
    }

    /// Selects the surviving indices of a log-domain frontier into
    /// `scratch`. Returns `true` when pruning is active — `scratch.keep()`
    /// then holds a *strict* subset of indices, sorted ascending — and
    /// `false` when the whole frontier survives (the caller should run its
    /// exact kernel, which is both faster and bit-identical).
    ///
    /// Generic over the scoring lane: in the `f64` lane this is the
    /// historical selection bit for bit; in the `f32` lane the same policy
    /// applies to the f32 frontier.
    pub fn select_log<S: Scalar>(&self, scores: &[S], scratch: &mut BeamScratch) -> bool {
        match *self {
            Beam::Exact => false,
            Beam::TopK(k) => scratch.top_k(scores, k),
            Beam::LogThreshold(d) => {
                let best = max_score(scores);
                scratch.threshold(scores, best - S::from_f64(d.max(0.0)))
            }
        }
    }

    /// [`select_log`](Self::select_log) for a linear-domain frontier
    /// (normalized filtering weights): [`Beam::LogThreshold`] keeps weights
    /// within a factor `e^-d` of the best; [`Beam::TopK`] is unchanged
    /// (rank order is domain-independent).
    pub fn select_linear(&self, weights: &[f64], scratch: &mut BeamScratch) -> bool {
        match *self {
            Beam::Exact => false,
            Beam::TopK(k) => scratch.top_k(weights, k),
            Beam::LogThreshold(d) => {
                let best = max_score(weights);
                scratch.threshold(weights, best * (-d.max(0.0)).exp())
            }
        }
    }
}

/// Decoding-time configuration shared by every decoder in the crate.
///
/// The default is [`Beam::Exact`]; pruned modes trade a bounded amount of
/// path quality for per-tick work proportional to the beam width instead
/// of the full frontier:
///
/// ```
/// use cace_hdbn::{Beam, CoupledHdbn, DecoderConfig, HdbnConfig, HdbnParams};
/// use cace_hdbn::{MicroCandidate, TickInput};
/// # use cace_mining::constraint::{ConstraintMiner, LabeledSequence};
/// # let macros: Vec<usize> = (0..400).map(|i| (i / 10) % 2).collect();
/// # let n = macros.len();
/// # let seq = LabeledSequence {
/// #     macros: [macros.clone(), macros.clone()],
/// #     posturals: [macros.clone(), macros.clone()],
/// #     gesturals: [vec![0; n], vec![0; n]],
/// #     locations: [macros.clone(), macros],
/// # };
/// # let stats = ConstraintMiner {
/// #     laplace: 0.1, n_macro: 2, n_postural: 2, n_gestural: 2, n_location: 2,
/// # }.mine(&[seq]).unwrap();
/// # let params = HdbnParams::new(stats, HdbnConfig::default()).unwrap();
/// # let tick = |m: usize| {
/// #     let cands: Vec<MicroCandidate> = (0..2).map(|p| MicroCandidate {
/// #         postural: p, gestural: Some(0), location: p,
/// #         obs_loglik: if p == m { 0.0 } else { -3.0 },
/// #     }).collect();
/// #     TickInput { candidates: [cands.clone(), cands], macro_candidates: [None, None],
/// #                 macro_bonus: Vec::new() }
/// # };
/// let ticks: Vec<TickInput> = (0..30).map(|t| tick((t / 10) % 2)).collect();
///
/// let exact = CoupledHdbn::new(params.clone()).viterbi(&ticks).unwrap();
/// let pruned = CoupledHdbn::new(params)
///     .with_decoder(DecoderConfig::top_k(4))
///     .viterbi(&ticks)
///     .unwrap();
///
/// // A pruned decode is a legal path of the exact model: never better,
/// // and much cheaper per tick...
/// assert!(pruned.log_prob <= exact.log_prob);
/// assert!(pruned.transition_ops < exact.transition_ops);
/// // ...and on well-separated data it recovers the same activities.
/// assert_eq!(pruned.macros, exact.macros);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DecoderConfig {
    /// Frontier pruning policy.
    pub beam: Beam,
    /// Scoring lane ([`Precision::Exact64`] `f64`, bit-identical to the
    /// historical decoders, or [`Precision::Fast32`] `f32`, ~2x faster per
    /// tick within a measured agreement tolerance). Orthogonal to `beam`:
    /// the two compose.
    pub precision: Precision,
}

impl DecoderConfig {
    /// The exact (unpruned) configuration — same as `Default`.
    pub fn exact() -> Self {
        Self {
            beam: Beam::Exact,
            precision: Precision::Exact64,
        }
    }

    /// A top-`k` beam.
    pub fn top_k(k: usize) -> Self {
        Self {
            beam: Beam::TopK(k),
            ..Self::exact()
        }
    }

    /// A log-threshold beam of width `d`.
    pub fn log_threshold(d: f64) -> Self {
        Self {
            beam: Beam::LogThreshold(d),
            ..Self::exact()
        }
    }

    /// This configuration with an explicit scoring lane.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// This configuration switched to the `f32` fast lane.
    pub fn fast32(self) -> Self {
        self.with_precision(Precision::Fast32)
    }
}

/// Reusable survivor-selection scratch: one allocation for the lifetime of
/// a decode (batch) or a stream (online), reused across ticks.
#[derive(Debug, Clone, Default)]
pub struct BeamScratch {
    /// Work buffer for the partial selection.
    order: Vec<u32>,
    /// Surviving frontier indices of the most recent selection, sorted
    /// ascending.
    keep: Vec<u32>,
}

impl BeamScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The survivors of the most recent successful selection, sorted
    /// ascending.
    pub fn keep(&self) -> &[u32] {
        &self.keep
    }

    /// Overwrites the survivor list — the park/resume state transfer of
    /// the online decoders, which must restore the pending survivor set a
    /// pruned next step will consume. `keep` must be sorted ascending, as
    /// [`Beam::select_log`] leaves it.
    pub fn set_keep(&mut self, keep: &[u32]) {
        self.keep.clear();
        self.keep.extend_from_slice(keep);
    }

    /// Top-`k` selection; returns `false` (nothing pruned) when `k` covers
    /// the whole frontier.
    fn top_k<S: Scalar>(&mut self, scores: &[S], k: usize) -> bool {
        let n = scores.len();
        let k = k.max(1);
        if k >= n {
            return false;
        }
        self.order.clear();
        self.order.extend(0..n as u32);
        // Total order (score desc, index asc): deterministic survivor sets,
        // and nested sets across k for tied scores. A NaN score (degenerate
        // input that slipped past upstream clamps) ranks as -inf — the
        // `Scalar::from_f64` clamp convention applied at selection — so it
        // can never displace a finite survivor and the comparator stays
        // total instead of panicking a serving shard.
        let demote = |s: S| {
            if s.partial_cmp(&s).is_some() {
                s
            } else {
                S::NEG_INFINITY
            }
        };
        let cmp = |a: &u32, b: &u32| {
            demote(scores[*b as usize])
                .partial_cmp(&demote(scores[*a as usize]))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        };
        self.order.select_nth_unstable_by(k - 1, cmp);
        self.keep.clear();
        self.keep.extend_from_slice(&self.order[..k]);
        self.keep.sort_unstable();
        true
    }

    /// Keep every index scoring at least `cut`; returns `false` when all
    /// survive.
    fn threshold<S: Scalar>(&mut self, scores: &[S], cut: S) -> bool {
        self.keep.clear();
        self.keep
            .extend(scores.iter().enumerate().filter_map(|(i, &s)| {
                if s >= cut {
                    Some(i as u32)
                } else {
                    None
                }
            }));
        self.keep.len() < scores.len()
    }
}

fn max_score<S: Scalar>(scores: &[S]) -> S {
    scores
        .iter()
        .copied()
        .fold(S::NEG_INFINITY, |acc, s| if s > acc { s } else { acc })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_never_prunes() {
        let mut scratch = BeamScratch::new();
        assert!(!Beam::Exact.select_log(&[1.0, 2.0, 3.0], &mut scratch));
        assert!(!Beam::Exact.select_linear(&[0.1, 0.9], &mut scratch));
    }

    #[test]
    fn top_k_keeps_best_sorted_ascending() {
        let mut scratch = BeamScratch::new();
        let scores = [0.5, -1.0, 3.0, 2.0, -7.0];
        assert!(Beam::TopK(2).select_log(&scores, &mut scratch));
        assert_eq!(scratch.keep(), &[2, 3]);
        assert!(Beam::TopK(3).select_log(&scores, &mut scratch));
        assert_eq!(scratch.keep(), &[0, 2, 3]);
    }

    #[test]
    fn top_k_demotes_nan_scores_instead_of_panicking() {
        let mut scratch = BeamScratch::new();
        // NaN at a high index must never displace a finite survivor.
        let scores = [f64::NAN, 1.0, f64::NAN, 3.0, 2.0];
        assert!(Beam::TopK(2).select_log(&scores, &mut scratch));
        assert_eq!(scratch.keep(), &[3, 4]);
        // NaN ties break like -inf ties: ascending index, deterministic.
        let all_nan = [f64::NAN; 5];
        assert!(Beam::TopK(3).select_log(&all_nan, &mut scratch));
        assert_eq!(scratch.keep(), &[0, 1, 2]);
        // Same contract on the f32 lane.
        let scores32 = [f32::NAN, 1.0f32, 0.5, f32::NAN];
        assert!(Beam::TopK(2).select_log(&scores32, &mut scratch));
        assert_eq!(scratch.keep(), &[1, 2]);
    }

    #[test]
    fn top_k_covering_the_frontier_degrades_to_exact() {
        let mut scratch = BeamScratch::new();
        assert!(!Beam::TopK(3).select_log(&[1.0, 2.0, 3.0], &mut scratch));
        assert!(!Beam::TopK(100).select_log(&[1.0, 2.0], &mut scratch));
    }

    #[test]
    fn top_k_zero_is_clamped_to_one() {
        let mut scratch = BeamScratch::new();
        assert!(Beam::TopK(0).select_log(&[1.0, 5.0, 2.0], &mut scratch));
        assert_eq!(scratch.keep(), &[1]);
    }

    #[test]
    fn top_k_ties_break_toward_low_indices_and_nest() {
        let mut scratch = BeamScratch::new();
        let scores = [2.0, 2.0, 2.0, 1.0];
        assert!(Beam::TopK(1).select_log(&scores, &mut scratch));
        assert_eq!(scratch.keep(), &[0]);
        assert!(Beam::TopK(2).select_log(&scores, &mut scratch));
        assert_eq!(scratch.keep(), &[0, 1]);
    }

    #[test]
    fn log_threshold_keeps_states_near_the_best() {
        let mut scratch = BeamScratch::new();
        let scores = [0.0, -1.5, -0.5, -10.0];
        assert!(Beam::LogThreshold(1.0).select_log(&scores, &mut scratch));
        assert_eq!(scratch.keep(), &[0, 2]);
        // Wide enough threshold keeps everything → no pruning.
        assert!(!Beam::LogThreshold(100.0).select_log(&scores, &mut scratch));
        // Negative width clamps to 0: argmax (plus exact ties) only.
        assert!(Beam::LogThreshold(-5.0).select_log(&scores, &mut scratch));
        assert_eq!(scratch.keep(), &[0]);
    }

    #[test]
    fn linear_threshold_matches_log_ratio() {
        let mut scratch = BeamScratch::new();
        // Weights e^0, e^-1.5, e^-0.5, e^-10 — same survivors as the
        // log-domain case above under the same width.
        let weights: Vec<f64> = [0.0f64, -1.5, -0.5, -10.0]
            .iter()
            .map(|x| x.exp())
            .collect();
        assert!(Beam::LogThreshold(1.0).select_linear(&weights, &mut scratch));
        assert_eq!(scratch.keep(), &[0, 2]);
    }

    #[test]
    fn all_neg_infinity_frontier_survives_whole() {
        let mut scratch = BeamScratch::new();
        let scores = [f64::NEG_INFINITY, f64::NEG_INFINITY];
        assert!(!Beam::LogThreshold(1.0).select_log(&scores, &mut scratch));
    }

    #[test]
    fn never_prunes_matches_degeneracy() {
        assert!(Beam::Exact.never_prunes(0));
        assert!(Beam::TopK(16).never_prunes(16));
        assert!(Beam::TopK(0).never_prunes(1), "TopK(0) clamps to 1");
        assert!(!Beam::TopK(15).never_prunes(16));
        assert!(Beam::LogThreshold(f64::INFINITY).never_prunes(16));
        assert!(!Beam::LogThreshold(1e6).never_prunes(16));
    }

    #[test]
    fn config_constructors() {
        assert_eq!(DecoderConfig::default(), DecoderConfig::exact());
        assert_eq!(DecoderConfig::top_k(7).beam, Beam::TopK(7));
        assert!(matches!(
            DecoderConfig::log_threshold(2.5).beam,
            Beam::LogThreshold(d) if d == 2.5
        ));
        assert!(Beam::Exact.is_exact());
        assert!(!Beam::TopK(4).is_exact());
        // Every constructor defaults to the exact f64 lane; precision is
        // orthogonal to the beam.
        assert_eq!(DecoderConfig::exact().precision, Precision::Exact64);
        assert_eq!(DecoderConfig::top_k(7).precision, Precision::Exact64);
        let fast = DecoderConfig::top_k(7).fast32();
        assert_eq!(fast.precision, Precision::Fast32);
        assert_eq!(fast.beam, Beam::TopK(7));
        assert_eq!(
            fast.with_precision(Precision::Exact64),
            DecoderConfig::top_k(7)
        );
    }

    #[test]
    fn selection_is_lane_independent() {
        // The same frontier in f32 picks the same survivors as in f64.
        let mut s64 = BeamScratch::new();
        let mut s32 = BeamScratch::new();
        let scores = [0.5f64, -1.0, 3.0, 2.0, -7.0];
        let scores32: Vec<f32> = scores.iter().map(|&x| x as f32).collect();
        for beam in [Beam::TopK(2), Beam::LogThreshold(2.5)] {
            assert!(beam.select_log(&scores, &mut s64));
            assert!(beam.select_log(&scores32, &mut s32));
            assert_eq!(s64.keep(), s32.keep(), "{beam:?}");
        }
    }
}
