//! Single-inhabitant HDBN (paper Eqn 1): one hierarchical chain.
//!
//! Used (a) as the building block EM trains on, and (b) for uncoupled
//! comparisons. States are (macro, micro-candidate) pairs exactly as in the
//! coupled decoder, minus the partner coupling.

use cace_model::ModelError;

use crate::beam::{BeamScratch, DecoderConfig};
use crate::forward::{apply_beam_linear, log_sum_exp, normalize_log};
use crate::input::{MicroCandidate, TickInput};
use crate::params::HdbnParams;

/// A decoded single-chain trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct SinglePath {
    /// Macro activity per tick.
    pub macros: Vec<usize>,
    /// Micro tuple per tick.
    pub micros: Vec<MicroCandidate>,
    /// Log-score of the decoded path.
    pub log_prob: f64,
    /// Σ_t |S(t)| states instantiated.
    pub states_explored: u64,
    /// Σ_t |frontier(t−1)| · |S(t)| transition evaluations performed by
    /// the decoder (the frontier is the beam survivors under a pruned
    /// [`DecoderConfig`], the full previous state set under `Exact`).
    pub transition_ops: u64,
}

/// Posterior marginals from forward–backward.
#[derive(Debug, Clone, PartialEq)]
pub struct Posteriors {
    /// `gamma[t][j]` — posterior of per-tick state `j` (aligned with the
    /// tick's state enumeration).
    pub gamma: Vec<Vec<f64>>,
    /// Sequence log-likelihood.
    pub log_likelihood: f64,
}

/// Expected sufficient statistics for one EM E-step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExpectedCounts {
    /// Expected macro-prior counts.
    pub prior: Vec<f64>,
    /// Expected macro transition counts (including the diagonal).
    pub trans: Vec<Vec<f64>>,
    /// Expected continue events per activity.
    pub cont: Vec<f64>,
    /// Expected end events per activity.
    pub end: Vec<f64>,
    /// Expected postural-given-macro counts.
    pub post: Vec<Vec<f64>>,
    /// Expected gestural-given-macro counts.
    pub gest: Vec<Vec<f64>>,
    /// Expected location-given-macro counts.
    pub loc: Vec<Vec<f64>>,
    /// Expected postural-transition counts.
    pub post_trans: Vec<Vec<f64>>,
    /// Total log-likelihood of the processed sequences.
    pub log_likelihood: f64,
}

impl ExpectedCounts {
    /// Zeroed counts for the given vocabulary sizes.
    pub fn zeros(n_macro: usize, n_post: usize, n_gest: usize, n_loc: usize) -> Self {
        Self {
            prior: vec![0.0; n_macro],
            trans: vec![vec![0.0; n_macro]; n_macro],
            cont: vec![0.0; n_macro],
            end: vec![0.0; n_macro],
            post: vec![vec![0.0; n_post]; n_macro],
            gest: vec![vec![0.0; n_gest]; n_macro],
            loc: vec![vec![0.0; n_loc]; n_macro],
            post_trans: vec![vec![0.0; n_post]; n_post],
            log_likelihood: 0.0,
        }
    }

    /// Adds another accumulator element-wise (the reduce half of the
    /// parallel E-step's map-reduce: per-sequence counts are computed
    /// independently, then merged in input order so the result does not
    /// depend on how many workers ran the map).
    ///
    /// # Panics
    /// Panics if the two accumulators were built for different vocabulary
    /// sizes.
    pub fn merge(&mut self, other: &ExpectedCounts) {
        fn add_vec(acc: &mut [f64], inc: &[f64]) {
            assert_eq!(acc.len(), inc.len(), "expected-count shapes must match");
            for (a, b) in acc.iter_mut().zip(inc) {
                *a += b;
            }
        }
        fn add_rows(acc: &mut [Vec<f64>], inc: &[Vec<f64>]) {
            assert_eq!(acc.len(), inc.len(), "expected-count shapes must match");
            for (a, b) in acc.iter_mut().zip(inc) {
                add_vec(a, b);
            }
        }
        add_vec(&mut self.prior, &other.prior);
        add_rows(&mut self.trans, &other.trans);
        add_vec(&mut self.cont, &other.cont);
        add_vec(&mut self.end, &other.end);
        add_rows(&mut self.post, &other.post);
        add_rows(&mut self.gest, &other.gest);
        add_rows(&mut self.loc, &other.loc);
        add_rows(&mut self.post_trans, &other.post_trans);
        self.log_likelihood += other.log_likelihood;
    }
}

/// The single-chain hierarchical model.
///
/// Parameters are [`Arc`](std::sync::Arc)-shared for the same reason as
/// [`crate::CoupledHdbn`]: batch recognition decodes many sessions against
/// one read-only trained model, with per-call trellis scratch. Decoding
/// and filtering default to the exact recursion;
/// [`with_decoder`](Self::with_decoder) installs a beam.
#[derive(Debug, Clone)]
pub struct SingleHdbn {
    params: std::sync::Arc<HdbnParams>,
    decoder: DecoderConfig,
}

#[derive(Debug, Clone)]
pub(crate) struct Slice {
    pub(crate) activities: Vec<usize>,
    pub(crate) cands: Vec<usize>,
    pub(crate) posturals: Vec<usize>,
    pub(crate) emissions: Vec<f64>,
}

/// Rejects a tick that would empty one user's chain trellis.
pub(crate) fn validate_tick_user(
    tick: &TickInput,
    t: usize,
    user: usize,
) -> Result<(), ModelError> {
    if tick.candidates[user].is_empty()
        || tick.macro_candidates[user]
            .as_ref()
            .is_some_and(|v| v.is_empty())
    {
        return Err(ModelError::EmptyStateSpace { tick: t });
    }
    Ok(())
}

/// First-tick chain frontier: macro prior plus emission per state.
///
/// Shared by the batch decoder and
/// [`crate::online::OnlineSingleViterbi`] so the two stay bit-identical.
pub(crate) fn chain_init(p: &HdbnParams, slice: &Slice) -> Vec<f64> {
    slice
        .activities
        .iter()
        .zip(&slice.emissions)
        .map(|(&a, &e)| p.log_prior[a] + e)
        .collect()
}

/// One single-chain DP step: the new frontier plus, per new state, the
/// backpointer into the previous tick's frontier.
///
/// The single implementation of the recursion, called by both the batch
/// [`SingleHdbn::viterbi`] and the incremental
/// [`crate::online::OnlineSingleViterbi`].
pub(crate) fn chain_step(
    p: &HdbnParams,
    prev: &Slice,
    v: &[f64],
    cur: &Slice,
) -> (Vec<f64>, Vec<u32>) {
    let mut v_new = vec![f64::NEG_INFINITY; cur.activities.len()];
    let mut back = vec![0u32; cur.activities.len()];
    for (j, (&a, &e)) in cur.activities.iter().zip(&cur.emissions).enumerate() {
        let p_new = cur.posturals[j];
        let mut best = f64::NEG_INFINITY;
        let mut best_arg = 0u32;
        for (jp, &ap) in prev.activities.iter().enumerate() {
            let p_prev = prev.posturals[jp];
            let score = v[jp] + p.transition_score(ap, p_prev, a, p_new);
            if score > best {
                best = score;
                best_arg = jp as u32;
            }
        }
        v_new[j] = best + e;
        back[j] = best_arg;
    }
    (v_new, back)
}

/// [`chain_step`] restricted to a pruned previous frontier: only the
/// survivors in `keep` (state indices sorted ascending) may be
/// transitioned out of. Backpointers stay in full-frontier coordinates, so
/// backtracking is oblivious to pruning; the iteration order over
/// survivors matches the dense kernel's ascending order.
pub(crate) fn chain_step_pruned(
    p: &HdbnParams,
    prev: &Slice,
    v: &[f64],
    keep: &[u32],
    cur: &Slice,
) -> (Vec<f64>, Vec<u32>) {
    let mut v_new = vec![f64::NEG_INFINITY; cur.activities.len()];
    let mut back = vec![0u32; cur.activities.len()];
    for (j, (&a, &e)) in cur.activities.iter().zip(&cur.emissions).enumerate() {
        let p_new = cur.posturals[j];
        let mut best = f64::NEG_INFINITY;
        let mut best_arg = 0u32;
        for &jp in keep {
            let jp = jp as usize;
            let score =
                v[jp] + p.transition_score(prev.activities[jp], prev.posturals[jp], a, p_new);
            if score > best {
                best = score;
                best_arg = jp as u32;
            }
        }
        v_new[j] = best + e;
        back[j] = best_arg;
    }
    (v_new, back)
}

impl SingleHdbn {
    /// Wraps parameters (exact decoding).
    pub fn new(params: HdbnParams) -> Self {
        Self {
            params: std::sync::Arc::new(params),
            decoder: DecoderConfig::default(),
        }
    }

    /// Wraps an already-shared parameter set without copying it (exact
    /// decoding).
    pub fn from_shared(params: std::sync::Arc<HdbnParams>) -> Self {
        Self {
            params,
            decoder: DecoderConfig::default(),
        }
    }

    /// Installs a decoding configuration (beam pruning policy). Applies to
    /// [`viterbi`](Self::viterbi) and the forward filtering inside
    /// [`forward_backward`](Self::forward_backward).
    pub fn with_decoder(mut self, decoder: DecoderConfig) -> Self {
        self.decoder = decoder;
        self
    }

    /// The decoding configuration in use.
    pub fn decoder(&self) -> DecoderConfig {
        self.decoder
    }

    /// The parameters in use.
    pub fn params(&self) -> &HdbnParams {
        &self.params
    }

    pub(crate) fn slice(&self, tick: &TickInput, user: usize) -> Slice {
        let macros = tick.macros_for(user, self.params.n_macro());
        let n = macros.len() * tick.candidates[user].len();
        let mut activities = Vec::with_capacity(n);
        let mut cands = Vec::with_capacity(n);
        let mut posturals = Vec::with_capacity(n);
        let mut emissions = Vec::with_capacity(n);
        for &a in &macros {
            for (c, cand) in tick.candidates[user].iter().enumerate() {
                activities.push(a);
                cands.push(c);
                posturals.push(cand.postural);
                emissions.push(
                    cand.obs_loglik
                        + tick.bonus(a)
                        + self.params.hierarchy_score(
                            a,
                            cand.postural,
                            cand.gestural,
                            cand.location,
                        ),
                );
            }
        }
        Slice {
            activities,
            cands,
            posturals,
            emissions,
        }
    }

    fn validate(&self, ticks: &[TickInput], user: usize) -> Result<(), ModelError> {
        if ticks.is_empty() {
            return Err(ModelError::InsufficientData {
                what: "single-chain inference".into(),
                available: 0,
                required: 1,
            });
        }
        for (t, tick) in ticks.iter().enumerate() {
            validate_tick_user(tick, t, user)?;
        }
        Ok(())
    }

    /// Viterbi decoding of one user's chain.
    ///
    /// # Errors
    /// Same conditions as [`crate::CoupledHdbn::viterbi`].
    pub fn viterbi(&self, ticks: &[TickInput], user: usize) -> Result<SinglePath, ModelError> {
        self.validate(ticks, user)?;
        let p = &self.params;
        let mut states_explored = 0u64;

        let mut slices: Vec<Slice> = Vec::with_capacity(ticks.len());
        slices.push(self.slice(&ticks[0], user));
        let mut v = chain_init(p, &slices[0]);
        states_explored += v.len() as u64;

        let beam = self.decoder.beam;
        let mut scratch = BeamScratch::new();
        let mut pruned = beam.select_log(&v, &mut scratch);
        let mut transition_ops = 0u64;

        let mut backptrs: Vec<Vec<u32>> = vec![Vec::new()];
        for tick in ticks.iter().skip(1) {
            let cur = self.slice(tick, user);
            let prev = slices.last().expect("nonempty");
            states_explored += cur.activities.len() as u64;
            let (v_new, back) = if pruned {
                transition_ops += (scratch.keep().len() * cur.activities.len()) as u64;
                chain_step_pruned(p, prev, &v, scratch.keep(), &cur)
            } else {
                transition_ops += (prev.activities.len() * cur.activities.len()) as u64;
                chain_step(p, prev, &v, &cur)
            };
            v = v_new;
            pruned = beam.select_log(&v, &mut scratch);
            backptrs.push(back);
            slices.push(cur);
        }

        let (mut j, log_prob) = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(i, &s)| (i, s))
            .expect("nonempty trellis");

        let t_total = ticks.len();
        let mut macros = vec![0usize; t_total];
        let mut micros = vec![
            MicroCandidate {
                postural: 0,
                gestural: None,
                location: 0,
                obs_loglik: 0.0
            };
            t_total
        ];
        for t in (0..t_total).rev() {
            macros[t] = slices[t].activities[j];
            micros[t] = ticks[t].candidates[user][slices[t].cands[j]];
            if t > 0 {
                j = backptrs[t][j] as usize;
            }
        }
        Ok(SinglePath {
            macros,
            micros,
            log_prob,
            states_explored,
            transition_ops,
        })
    }

    /// Forward–backward posteriors of one user's chain.
    ///
    /// Under a pruned [`DecoderConfig`] the forward *filtering* pass beams
    /// each normalized filtering distribution (see
    /// [`crate::forward::apply_beam_linear`]): pruned states carry zero
    /// mass forward, the recursion skips them, and the backward pass skips
    /// them symmetrically, so posteriors concentrate on the surviving
    /// lattice. [`Beam::Exact`](crate::Beam::Exact) (the default) is
    /// bit-identical to the historical full recursion.
    ///
    /// # Errors
    /// Same conditions as [`viterbi`](Self::viterbi).
    pub fn forward_backward(
        &self,
        ticks: &[TickInput],
        user: usize,
    ) -> Result<Posteriors, ModelError> {
        self.validate(ticks, user)?;
        let p = &self.params;
        let slices: Vec<Slice> = ticks.iter().map(|t| self.slice(t, user)).collect();

        let beam = self.decoder.beam;
        let pruned_mode = !beam.is_exact();
        let mut scratch = BeamScratch::new();

        // Forward (scaled).
        let mut log_z = 0.0;
        let mut alphas: Vec<Vec<f64>> = Vec::with_capacity(ticks.len());
        let mut alpha: Vec<f64> = slices[0]
            .activities
            .iter()
            .zip(&slices[0].emissions)
            .map(|(&a, &e)| p.log_prior[a] + e)
            .collect();
        log_z += normalize_log(&mut alpha);
        if pruned_mode {
            apply_beam_linear(beam, &mut alpha, &mut scratch);
        }
        alphas.push(alpha.clone());

        for t in 1..ticks.len() {
            let cur = &slices[t];
            let prev = &slices[t - 1];
            let mut next = vec![f64::NEG_INFINITY; cur.activities.len()];
            for (j, (&a, &e)) in cur.activities.iter().zip(&cur.emissions).enumerate() {
                let p_new = ticks[t].candidates[user][cur.cands[j]].postural;
                let terms: Vec<f64> = prev
                    .activities
                    .iter()
                    .enumerate()
                    .filter(|&(jp, _)| !pruned_mode || alphas[t - 1][jp] > 0.0)
                    .map(|(jp, &ap)| {
                        let p_prev = ticks[t - 1].candidates[user][prev.cands[jp]].postural;
                        alphas[t - 1][jp].max(1e-300).ln()
                            + p.transition_score(ap, p_prev, a, p_new)
                    })
                    .collect();
                next[j] = log_sum_exp(&terms) + e;
            }
            log_z += normalize_log(&mut next);
            if pruned_mode {
                apply_beam_linear(beam, &mut next, &mut scratch);
            }
            alphas.push(next.clone());
        }

        // Backward (scaled); under a beam, states pruned from the forward
        // lattice are skipped here too (their gamma is zero regardless).
        let mut betas: Vec<Vec<f64>> = vec![Vec::new(); ticks.len()];
        let last = ticks.len() - 1;
        betas[last] = vec![1.0; slices[last].activities.len()];
        for t in (0..last).rev() {
            let cur = &slices[t];
            let nxt = &slices[t + 1];
            let mut beta = vec![f64::NEG_INFINITY; cur.activities.len()];
            for (j, &a) in cur.activities.iter().enumerate() {
                let p_prev = ticks[t].candidates[user][cur.cands[j]].postural;
                let terms: Vec<f64> = nxt
                    .activities
                    .iter()
                    .enumerate()
                    .filter(|&(jn, _)| !pruned_mode || alphas[t + 1][jn] > 0.0)
                    .map(|(jn, &an)| {
                        let p_new = ticks[t + 1].candidates[user][nxt.cands[jn]].postural;
                        betas[t + 1][jn].max(1e-300).ln()
                            + p.transition_score(a, p_prev, an, p_new)
                            + nxt.emissions[jn]
                    })
                    .collect();
                beta[j] = log_sum_exp(&terms);
            }
            normalize_log(&mut beta);
            betas[t] = beta;
        }

        // Gamma.
        let gamma: Vec<Vec<f64>> = alphas
            .iter()
            .zip(&betas)
            .map(|(a, b)| {
                let mut g: Vec<f64> = a.iter().zip(b).map(|(x, y)| x * y).collect();
                let total: f64 = g.iter().sum();
                if total > 0.0 {
                    for v in &mut g {
                        *v /= total;
                    }
                }
                g
            })
            .collect();

        Ok(Posteriors {
            gamma,
            log_likelihood: log_z,
        })
    }

    /// E-step: accumulates expected sufficient statistics of one sequence
    /// into `counts`.
    ///
    /// # Errors
    /// Same conditions as [`viterbi`](Self::viterbi).
    pub fn accumulate_counts(
        &self,
        ticks: &[TickInput],
        user: usize,
        counts: &mut ExpectedCounts,
    ) -> Result<(), ModelError> {
        let posteriors = self.forward_backward(ticks, user)?;
        counts.log_likelihood += posteriors.log_likelihood;
        let slices: Vec<Slice> = ticks.iter().map(|t| self.slice(t, user)).collect();
        let p = &self.params;

        // Unary counts.
        for (t, slice) in slices.iter().enumerate() {
            for (j, &a) in slice.activities.iter().enumerate() {
                let g = posteriors.gamma[t][j];
                if g <= 0.0 {
                    continue;
                }
                let cand = ticks[t].candidates[user][slice.cands[j]];
                if t == 0 {
                    counts.prior[a] += g;
                }
                counts.post[a][cand.postural] += g;
                counts.loc[a][cand.location] += g;
                if let Some(gest) = cand.gestural {
                    counts.gest[a][gest] += g;
                }
            }
        }

        // Pairwise counts via per-tick xi (exact, using scaled alpha/beta).
        // Recompute alpha/beta locally to keep the public Posteriors small.
        let fb = posteriors; // gamma only; xi below approximated from
                             // gamma-consistent local renormalization.
        for t in 1..ticks.len() {
            let prev = &slices[t - 1];
            let cur = &slices[t];
            // xi[jp][j] ∝ gamma_prev[jp] · trans · emission · gamma-consistency.
            let mut xi = vec![0.0; prev.activities.len() * cur.activities.len()];
            let mut total = 0.0;
            for (jp, &ap) in prev.activities.iter().enumerate() {
                let gp = fb.gamma[t - 1][jp];
                if gp <= 0.0 {
                    continue;
                }
                let p_prev = ticks[t - 1].candidates[user][prev.cands[jp]].postural;
                for (j, &a) in cur.activities.iter().enumerate() {
                    let gc = fb.gamma[t][j];
                    if gc <= 0.0 {
                        continue;
                    }
                    let p_new = ticks[t].candidates[user][cur.cands[j]].postural;
                    let w = gp * gc * p.transition_score(ap, p_prev, a, p_new).exp().max(1e-300);
                    xi[jp * cur.activities.len() + j] = w;
                    total += w;
                }
            }
            if total <= 0.0 {
                continue;
            }
            for (jp, &ap) in prev.activities.iter().enumerate() {
                let p_prev = ticks[t - 1].candidates[user][prev.cands[jp]].postural;
                for (j, &a) in cur.activities.iter().enumerate() {
                    let w = xi[jp * cur.activities.len() + j] / total;
                    if w <= 0.0 {
                        continue;
                    }
                    let p_new = ticks[t].candidates[user][cur.cands[j]].postural;
                    counts.trans[ap][a] += w;
                    if ap == a {
                        counts.cont[a] += w;
                        counts.post_trans[p_prev][p_new] += w;
                    } else {
                        counts.end[ap] += w;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{HdbnConfig, HdbnParams};
    use cace_mining::constraint::{ConstraintMiner, LabeledSequence};

    fn toy_params() -> HdbnParams {
        let mut macros = Vec::new();
        for r in 0..40 {
            for _ in 0..10 {
                macros.push(r % 2);
            }
        }
        let n = macros.len();
        let seq = LabeledSequence {
            macros: [macros.clone(), macros.clone()],
            posturals: [macros.clone(), macros.clone()],
            gesturals: [vec![0; n], vec![0; n]],
            locations: [macros.clone(), macros],
        };
        let stats = ConstraintMiner {
            laplace: 0.1,
            n_macro: 2,
            n_postural: 2,
            n_gestural: 2,
            n_location: 2,
        }
        .mine(&[seq])
        .unwrap();
        HdbnParams::new(stats, HdbnConfig::uncoupled()).unwrap()
    }

    fn obs_tick(m: usize, strength: f64) -> TickInput {
        let cands = |fav: usize| -> Vec<MicroCandidate> {
            (0..2)
                .map(|p| MicroCandidate {
                    postural: p,
                    gestural: Some(0),
                    location: p,
                    obs_loglik: if p == fav { 0.0 } else { -strength },
                })
                .collect()
        };
        TickInput {
            candidates: [cands(m), cands(m)],
            macro_candidates: [None, None],
            macro_bonus: Vec::new(),
        }
    }

    #[test]
    fn viterbi_decodes_switches() {
        let model = SingleHdbn::new(toy_params());
        let ticks: Vec<TickInput> = (0..20)
            .map(|t| obs_tick(usize::from(t >= 10), 5.0))
            .collect();
        let path = model.viterbi(&ticks, 0).unwrap();
        assert_eq!(&path.macros[..8], &[0; 8]);
        assert_eq!(&path.macros[12..], &[1; 8]);
        assert!(path.log_prob.is_finite());
    }

    #[test]
    fn forward_backward_is_confident_on_clear_data() {
        let model = SingleHdbn::new(toy_params());
        let ticks: Vec<TickInput> = (0..10).map(|_| obs_tick(0, 6.0)).collect();
        let post = model.forward_backward(&ticks, 0).unwrap();
        // At mid-sequence, posterior mass on (activity 0) states should be
        // near 1. States are enumerated macro-major: activity 0 = first two.
        let mid = &post.gamma[5];
        let mass0: f64 = mid[..2].iter().sum();
        assert!(mass0 > 0.95, "activity-0 mass {mass0}");
        assert!(post.log_likelihood.is_finite());
        // Each gamma row is a distribution.
        for row in &post.gamma {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn viterbi_and_posterior_agree_on_easy_input() {
        let model = SingleHdbn::new(toy_params());
        let ticks: Vec<TickInput> = (0..12)
            .map(|t| obs_tick(usize::from(t >= 6), 6.0))
            .collect();
        let path = model.viterbi(&ticks, 0).unwrap();
        let post = model.forward_backward(&ticks, 0).unwrap();
        for t in [1, 2, 3, 8, 9, 10] {
            let best_state = post.gamma[t]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            // State enumeration is macro-major with 2 candidates each.
            assert_eq!(best_state / 2, path.macros[t], "tick {t}");
        }
    }

    #[test]
    fn counts_accumulate_plausibly() {
        let model = SingleHdbn::new(toy_params());
        let ticks: Vec<TickInput> = (0..30)
            .map(|t| obs_tick(usize::from((t / 10) % 2 == 1), 5.0))
            .collect();
        let mut counts = ExpectedCounts::zeros(2, 2, 2, 2);
        model.accumulate_counts(&ticks, 0, &mut counts).unwrap();
        // Unary mass ≈ number of ticks.
        let unary: f64 = counts.post.iter().flatten().sum();
        assert!((unary - 30.0).abs() < 1e-6, "unary mass {unary}");
        // Posture 0 dominates under activity 0.
        assert!(counts.post[0][0] > 5.0 * counts.post[0][1]);
        // Mostly self-transitions.
        assert!(counts.trans[0][0] > counts.trans[0][1]);
        assert!(counts.log_likelihood.is_finite());
    }

    #[test]
    fn beamed_chain_matches_exact_on_clear_data() {
        use crate::beam::DecoderConfig;
        let ticks: Vec<TickInput> = (0..24)
            .map(|t| obs_tick(usize::from(t >= 12), 5.0))
            .collect();
        let exact = SingleHdbn::new(toy_params()).viterbi(&ticks, 0).unwrap();
        let pruned = SingleHdbn::new(toy_params())
            .with_decoder(DecoderConfig::top_k(1))
            .viterbi(&ticks, 0)
            .unwrap();
        assert_eq!(pruned.macros, exact.macros);
        assert!(pruned.log_prob <= exact.log_prob);
    }

    #[test]
    fn beamed_forward_filtering_stays_confident_and_normalized() {
        use crate::beam::DecoderConfig;
        let model = SingleHdbn::new(toy_params()).with_decoder(DecoderConfig::top_k(2));
        let ticks: Vec<TickInput> = (0..10).map(|_| obs_tick(0, 6.0)).collect();
        let post = model.forward_backward(&ticks, 0).unwrap();
        let mid = &post.gamma[5];
        let mass0: f64 = mid[..2].iter().sum();
        assert!(mass0 > 0.95, "activity-0 mass {mass0}");
        for row in &post.gamma {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert!(post.log_likelihood.is_finite());
    }

    #[test]
    fn errors_on_empty() {
        let model = SingleHdbn::new(toy_params());
        assert!(model.viterbi(&[], 0).is_err());
        let mut tick = obs_tick(0, 1.0);
        tick.candidates[0].clear();
        assert!(matches!(
            model.forward_backward(&[tick], 0),
            Err(ModelError::EmptyStateSpace { tick: 0 })
        ));
    }
}
