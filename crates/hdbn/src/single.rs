//! Single-inhabitant HDBN (paper Eqn 1): one hierarchical chain.
//!
//! Used (a) as the building block EM trains on, and (b) for uncoupled
//! comparisons. States are (macro, micro-candidate) pairs exactly as in the
//! coupled decoder, minus the partner coupling.

use cace_model::ModelError;

use crate::arena::{fill_slice, Slice, StepScratch};
use crate::beam::{BeamScratch, DecoderConfig};
use crate::input::{MicroCandidate, TickInput};
use crate::params::HdbnParams;
use crate::scalar::{self, Precision, Scalar};
use crate::trellis::{self, HierModel};

/// A decoded single-chain trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct SinglePath {
    /// Macro activity per tick.
    pub macros: Vec<usize>,
    /// Micro tuple per tick.
    pub micros: Vec<MicroCandidate>,
    /// Log-score of the decoded path.
    pub log_prob: f64,
    /// Σ_t |S(t)| states instantiated.
    pub states_explored: u64,
    /// Σ_t |frontier(t−1)| · |S(t)| transition evaluations performed by
    /// the decoder (the frontier is the beam survivors under a pruned
    /// [`DecoderConfig`], the full previous state set under `Exact`).
    pub transition_ops: u64,
}

/// Posterior marginals from forward–backward.
#[derive(Debug, Clone, PartialEq)]
pub struct Posteriors {
    /// `gamma[t][j]` — posterior of per-tick state `j` (aligned with the
    /// tick's state enumeration).
    pub gamma: Vec<Vec<f64>>,
    /// Sequence log-likelihood.
    pub log_likelihood: f64,
}

/// Expected sufficient statistics for one EM E-step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExpectedCounts {
    /// Expected macro-prior counts.
    pub prior: Vec<f64>,
    /// Expected macro transition counts (including the diagonal).
    pub trans: Vec<Vec<f64>>,
    /// Expected continue events per activity.
    pub cont: Vec<f64>,
    /// Expected end events per activity.
    pub end: Vec<f64>,
    /// Expected postural-given-macro counts.
    pub post: Vec<Vec<f64>>,
    /// Expected gestural-given-macro counts.
    pub gest: Vec<Vec<f64>>,
    /// Expected location-given-macro counts.
    pub loc: Vec<Vec<f64>>,
    /// Expected postural-transition counts.
    pub post_trans: Vec<Vec<f64>>,
    /// Total log-likelihood of the processed sequences.
    pub log_likelihood: f64,
}

impl ExpectedCounts {
    /// Zeroed counts for the given vocabulary sizes.
    pub fn zeros(n_macro: usize, n_post: usize, n_gest: usize, n_loc: usize) -> Self {
        Self {
            prior: vec![0.0; n_macro],
            trans: vec![vec![0.0; n_macro]; n_macro],
            cont: vec![0.0; n_macro],
            end: vec![0.0; n_macro],
            post: vec![vec![0.0; n_post]; n_macro],
            gest: vec![vec![0.0; n_gest]; n_macro],
            loc: vec![vec![0.0; n_loc]; n_macro],
            post_trans: vec![vec![0.0; n_post]; n_post],
            log_likelihood: 0.0,
        }
    }

    /// Adds another accumulator element-wise (the reduce half of the
    /// parallel E-step's map-reduce: per-sequence counts are computed
    /// independently, then merged in input order so the result does not
    /// depend on how many workers ran the map).
    ///
    /// # Panics
    /// Panics if the two accumulators were built for different vocabulary
    /// sizes.
    pub fn merge(&mut self, other: &ExpectedCounts) {
        fn add_vec(acc: &mut [f64], inc: &[f64]) {
            assert_eq!(acc.len(), inc.len(), "expected-count shapes must match");
            for (a, b) in acc.iter_mut().zip(inc) {
                *a += b;
            }
        }
        fn add_rows(acc: &mut [Vec<f64>], inc: &[Vec<f64>]) {
            assert_eq!(acc.len(), inc.len(), "expected-count shapes must match");
            for (a, b) in acc.iter_mut().zip(inc) {
                add_vec(a, b);
            }
        }
        add_vec(&mut self.prior, &other.prior);
        add_rows(&mut self.trans, &other.trans);
        add_vec(&mut self.cont, &other.cont);
        add_vec(&mut self.end, &other.end);
        add_rows(&mut self.post, &other.post);
        add_rows(&mut self.gest, &other.gest);
        add_rows(&mut self.loc, &other.loc);
        add_rows(&mut self.post_trans, &other.post_trans);
        self.log_likelihood += other.log_likelihood;
    }
}

/// The single-chain hierarchical model.
///
/// Parameters are [`Arc`](std::sync::Arc)-shared for the same reason as
/// [`crate::CoupledHdbn`]: batch recognition decodes many sessions against
/// one read-only trained model, with per-call trellis scratch. Decoding
/// and filtering default to the exact recursion;
/// [`with_decoder`](Self::with_decoder) installs a beam.
#[derive(Debug, Clone)]
pub struct SingleHdbn {
    params: std::sync::Arc<HdbnParams>,
    decoder: DecoderConfig,
}

/// Rejects a tick that would empty one user's chain trellis.
pub(crate) fn validate_tick_user(
    tick: &TickInput,
    t: usize,
    user: usize,
) -> Result<(), ModelError> {
    if tick.candidates[user].is_empty()
        || tick.macro_candidates[user]
            .as_ref()
            .is_some_and(|v| v.is_empty())
    {
        return Err(ModelError::EmptyStateSpace { tick: t });
    }
    Ok(())
}

impl SingleHdbn {
    /// Wraps parameters (exact decoding).
    pub fn new(params: HdbnParams) -> Self {
        Self {
            params: std::sync::Arc::new(params),
            decoder: DecoderConfig::default(),
        }
    }

    /// Wraps an already-shared parameter set without copying it (exact
    /// decoding).
    pub fn from_shared(params: std::sync::Arc<HdbnParams>) -> Self {
        Self {
            params,
            decoder: DecoderConfig::default(),
        }
    }

    /// Installs a decoding configuration (beam pruning policy). Applies to
    /// [`viterbi`](Self::viterbi) and the forward filtering inside
    /// [`forward_backward`](Self::forward_backward).
    pub fn with_decoder(mut self, decoder: DecoderConfig) -> Self {
        self.decoder = decoder;
        self
    }

    /// The decoding configuration in use.
    pub fn decoder(&self) -> DecoderConfig {
        self.decoder
    }

    /// The parameters in use.
    pub fn params(&self) -> &HdbnParams {
        &self.params
    }

    /// The shared parameter handle (for decoder frontiers that outlive a
    /// borrow of `self`).
    pub(crate) fn shared_params(&self) -> std::sync::Arc<HdbnParams> {
        std::sync::Arc::clone(&self.params)
    }

    /// Builds one tick's slice into reused buffers (see
    /// [`crate::arena::fill_slice`]).
    fn slice_into(
        &self,
        tick: &TickInput,
        user: usize,
        macro_ids: &mut Vec<usize>,
        out: &mut Slice,
    ) {
        fill_slice(&self.params, tick, user, macro_ids, out);
    }

    /// Allocating convenience wrapper over [`Self::slice_into`].
    fn slices_of(&self, ticks: &[TickInput], user: usize) -> Vec<Slice> {
        let mut macro_ids = Vec::new();
        ticks
            .iter()
            .map(|t| {
                let mut s = Slice::default();
                self.slice_into(t, user, &mut macro_ids, &mut s);
                s
            })
            .collect()
    }

    fn validate(&self, ticks: &[TickInput], user: usize) -> Result<(), ModelError> {
        if ticks.is_empty() {
            return Err(ModelError::InsufficientData {
                what: "single-chain inference".into(),
                available: 0,
                required: 1,
            });
        }
        for (t, tick) in ticks.iter().enumerate() {
            validate_tick_user(tick, t, user)?;
        }
        Ok(())
    }

    /// Viterbi decoding of one user's chain.
    ///
    /// Dispatches on [`DecoderConfig::precision`]: the default
    /// [`Precision::Exact64`] lane is bit-identical to the historical
    /// decoder, [`Precision::Fast32`] decodes through the `f32` table
    /// mirror.
    ///
    /// # Errors
    /// Same conditions as [`crate::CoupledHdbn::viterbi`].
    pub fn viterbi(&self, ticks: &[TickInput], user: usize) -> Result<SinglePath, ModelError> {
        self.validate(ticks, user)?;
        match self.decoder.precision {
            Precision::Exact64 => self.viterbi_impl::<f64>(ticks, user),
            Precision::Fast32 => self.viterbi_impl::<f32>(ticks, user),
        }
    }

    fn viterbi_impl<S: Scalar>(
        &self,
        ticks: &[TickInput],
        user: usize,
    ) -> Result<SinglePath, ModelError> {
        let p = &self.params;
        let mut states_explored = 0u64;
        let mut step: StepScratch<S> = StepScratch::default();
        let mut beam_scratch = BeamScratch::new();

        let mut slices: Vec<Slice> = Vec::with_capacity(ticks.len());
        {
            let mut s = Slice::default();
            self.slice_into(&ticks[0], user, &mut step.macro_ids, &mut s);
            slices.push(s);
        }
        let model = HierModel::new(p);
        let mut v: Vec<S> = Vec::new();
        trellis::init_into(&model, &slices[0], &mut v);
        states_explored += v.len() as u64;

        let beam = self.decoder.beam;
        let mut pruned = beam.select_log(&v, &mut beam_scratch);
        let mut transition_ops = 0u64;

        let mut backptrs: Vec<Vec<u32>> = vec![Vec::new()];
        for tick in ticks.iter().skip(1) {
            let mut cur = Slice::default();
            self.slice_into(tick, user, &mut step.macro_ids, &mut cur);
            let prev = slices.last().expect("nonempty");
            states_explored += cur.len() as u64;
            let mut back = Vec::new();
            if pruned {
                transition_ops += (beam_scratch.keep().len() * cur.len()) as u64;
                trellis::step_pruned_into(
                    &model,
                    prev,
                    &v,
                    beam_scratch.keep(),
                    &cur,
                    &mut step,
                    &mut back,
                );
            } else {
                transition_ops += (prev.len() * cur.len()) as u64;
                trellis::step_dense_into(&model, prev, &v, &cur, &mut step, &mut back);
            }
            std::mem::swap(&mut v, &mut step.v_next);
            pruned = beam.select_log(&v, &mut beam_scratch);
            backptrs.push(back);
            slices.push(cur);
        }

        let (mut j, best) = scalar::argmax(&v);
        let log_prob = best.to_f64();

        let t_total = ticks.len();
        let mut macros = vec![0usize; t_total];
        let mut micros = vec![
            MicroCandidate {
                postural: 0,
                gestural: None,
                location: 0,
                obs_loglik: 0.0
            };
            t_total
        ];
        for t in (0..t_total).rev() {
            macros[t] = slices[t].activities[j];
            micros[t] = ticks[t].candidates[user][slices[t].cands[j]];
            if t > 0 {
                j = backptrs[t][j] as usize;
            }
        }
        Ok(SinglePath {
            macros,
            micros,
            log_prob,
            states_explored,
            transition_ops,
        })
    }

    /// Forward–backward posteriors of one user's chain.
    ///
    /// Under a pruned [`DecoderConfig`] the forward *filtering* pass beams
    /// each normalized filtering distribution (see
    /// [`crate::forward::apply_beam_linear`]): pruned states carry zero
    /// mass forward, the recursion skips them, and the backward pass skips
    /// them symmetrically, so posteriors concentrate on the surviving
    /// lattice. [`Beam::Exact`](crate::Beam::Exact) (the default) is
    /// bit-identical to the historical full recursion.
    ///
    /// # Errors
    /// Same conditions as [`viterbi`](Self::viterbi).
    pub fn forward_backward(
        &self,
        ticks: &[TickInput],
        user: usize,
    ) -> Result<Posteriors, ModelError> {
        self.validate(ticks, user)?;
        Ok(self.forward_backward_slices(ticks, user).0)
    }

    /// [`forward_backward`](Self::forward_backward) plus the per-tick
    /// slices it scored — the E-step reuses them instead of re-deriving
    /// every emission. Assumes `validate` already passed.
    fn forward_backward_slices(
        &self,
        ticks: &[TickInput],
        user: usize,
    ) -> (Posteriors, Vec<Slice>) {
        let slices = self.slices_of(ticks, user);
        let (gamma, log_z) =
            trellis::forward_backward(&HierModel::new(&self.params), &slices, self.decoder.beam);
        (
            Posteriors {
                gamma,
                log_likelihood: log_z,
            },
            slices,
        )
    }

    /// E-step: accumulates expected sufficient statistics of one sequence
    /// into `counts`.
    ///
    /// # Errors
    /// Same conditions as [`viterbi`](Self::viterbi).
    pub fn accumulate_counts(
        &self,
        ticks: &[TickInput],
        user: usize,
        counts: &mut ExpectedCounts,
    ) -> Result<(), ModelError> {
        self.validate(ticks, user)?;
        // One slice pass serves both the posteriors and the count
        // accumulation below (the batch path used to score every emission
        // twice).
        let (posteriors, slices) = self.forward_backward_slices(ticks, user);
        counts.log_likelihood += posteriors.log_likelihood;
        let t_tables = &self.params.tables;

        // Unary counts.
        for (t, slice) in slices.iter().enumerate() {
            for (j, &a) in slice.activities.iter().enumerate() {
                let g = posteriors.gamma[t][j];
                if g <= 0.0 {
                    continue;
                }
                let cand = ticks[t].candidates[user][slice.cands[j]];
                if t == 0 {
                    counts.prior[a] += g;
                }
                counts.post[a][cand.postural] += g;
                counts.loc[a][cand.location] += g;
                if let Some(gest) = cand.gestural {
                    counts.gest[a][gest] += g;
                }
            }
        }

        // Pairwise counts via per-tick xi (exact, using scaled alpha/beta).
        // Recompute alpha/beta locally to keep the public Posteriors small.
        let fb = posteriors; // gamma only; xi below approximated from
                             // gamma-consistent local renormalization.
        let mut xi: Vec<f64> = Vec::new(); // reused across ticks
        let mut exp_cache: Vec<f64> = Vec::new(); // likewise
        for t in 1..ticks.len() {
            let prev = &slices[t - 1];
            let cur = &slices[t];
            // exp(transition) depends only on the (src, dst) pair ids:
            // one exp per distinct pair of pairs instead of per edge.
            let (dp, dc) = (prev.n_slots(), cur.n_slots());
            exp_cache.clear();
            exp_cache.resize(dp * dc, 0.0);
            for (sp, &src) in prev.uniq_pairs.iter().enumerate() {
                for (sc, &dst) in cur.uniq_pairs.iter().enumerate() {
                    exp_cache[sp * dc + sc] = t_tables.transition(src, dst).exp().max(1e-300);
                }
            }
            // xi[jp][j] ∝ gamma_prev[jp] · trans · emission · gamma-consistency.
            xi.clear();
            xi.resize(prev.len() * cur.len(), 0.0);
            let mut total = 0.0;
            for jp in 0..prev.len() {
                let gp = fb.gamma[t - 1][jp];
                if gp <= 0.0 {
                    continue;
                }
                let erow = &exp_cache[prev.slots[jp] as usize * dc..][..dc];
                for j in 0..cur.len() {
                    let gc = fb.gamma[t][j];
                    if gc <= 0.0 {
                        continue;
                    }
                    let w = gp * gc * erow[cur.slots[j] as usize];
                    xi[jp * cur.len() + j] = w;
                    total += w;
                }
            }
            if total <= 0.0 {
                continue;
            }
            for (jp, &ap) in prev.activities.iter().enumerate() {
                let p_prev = ticks[t - 1].candidates[user][prev.cands[jp]].postural;
                for (j, &a) in cur.activities.iter().enumerate() {
                    let w = xi[jp * cur.len() + j] / total;
                    if w <= 0.0 {
                        continue;
                    }
                    let p_new = ticks[t].candidates[user][cur.cands[j]].postural;
                    counts.trans[ap][a] += w;
                    if ap == a {
                        counts.cont[a] += w;
                        counts.post_trans[p_prev][p_new] += w;
                    } else {
                        counts.end[ap] += w;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{HdbnConfig, HdbnParams};
    use cace_mining::constraint::{ConstraintMiner, LabeledSequence};

    fn toy_params() -> HdbnParams {
        let mut macros = Vec::new();
        for r in 0..40 {
            for _ in 0..10 {
                macros.push(r % 2);
            }
        }
        let n = macros.len();
        let seq = LabeledSequence {
            macros: [macros.clone(), macros.clone()],
            posturals: [macros.clone(), macros.clone()],
            gesturals: [vec![0; n], vec![0; n]],
            locations: [macros.clone(), macros],
        };
        let stats = ConstraintMiner {
            laplace: 0.1,
            n_macro: 2,
            n_postural: 2,
            n_gestural: 2,
            n_location: 2,
        }
        .mine(&[seq])
        .unwrap();
        HdbnParams::new(stats, HdbnConfig::uncoupled()).unwrap()
    }

    fn obs_tick(m: usize, strength: f64) -> TickInput {
        let cands = |fav: usize| -> Vec<MicroCandidate> {
            (0..2)
                .map(|p| MicroCandidate {
                    postural: p,
                    gestural: Some(0),
                    location: p,
                    obs_loglik: if p == fav { 0.0 } else { -strength },
                })
                .collect()
        };
        TickInput {
            candidates: [cands(m), cands(m)],
            macro_candidates: [None, None],
            macro_bonus: Vec::new(),
        }
    }

    #[test]
    fn viterbi_decodes_switches() {
        let model = SingleHdbn::new(toy_params());
        let ticks: Vec<TickInput> = (0..20)
            .map(|t| obs_tick(usize::from(t >= 10), 5.0))
            .collect();
        let path = model.viterbi(&ticks, 0).unwrap();
        assert_eq!(&path.macros[..8], &[0; 8]);
        assert_eq!(&path.macros[12..], &[1; 8]);
        assert!(path.log_prob.is_finite());
    }

    #[test]
    fn forward_backward_is_confident_on_clear_data() {
        let model = SingleHdbn::new(toy_params());
        let ticks: Vec<TickInput> = (0..10).map(|_| obs_tick(0, 6.0)).collect();
        let post = model.forward_backward(&ticks, 0).unwrap();
        // At mid-sequence, posterior mass on (activity 0) states should be
        // near 1. States are enumerated macro-major: activity 0 = first two.
        let mid = &post.gamma[5];
        let mass0: f64 = mid[..2].iter().sum();
        assert!(mass0 > 0.95, "activity-0 mass {mass0}");
        assert!(post.log_likelihood.is_finite());
        // Each gamma row is a distribution.
        for row in &post.gamma {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn viterbi_and_posterior_agree_on_easy_input() {
        let model = SingleHdbn::new(toy_params());
        let ticks: Vec<TickInput> = (0..12)
            .map(|t| obs_tick(usize::from(t >= 6), 6.0))
            .collect();
        let path = model.viterbi(&ticks, 0).unwrap();
        let post = model.forward_backward(&ticks, 0).unwrap();
        for t in [1, 2, 3, 8, 9, 10] {
            let best_state = post.gamma[t]
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            // State enumeration is macro-major with 2 candidates each.
            assert_eq!(best_state / 2, path.macros[t], "tick {t}");
        }
    }

    #[test]
    fn counts_accumulate_plausibly() {
        let model = SingleHdbn::new(toy_params());
        let ticks: Vec<TickInput> = (0..30)
            .map(|t| obs_tick(usize::from((t / 10) % 2 == 1), 5.0))
            .collect();
        let mut counts = ExpectedCounts::zeros(2, 2, 2, 2);
        model.accumulate_counts(&ticks, 0, &mut counts).unwrap();
        // Unary mass ≈ number of ticks.
        let unary: f64 = counts.post.iter().flatten().sum();
        assert!((unary - 30.0).abs() < 1e-6, "unary mass {unary}");
        // Posture 0 dominates under activity 0.
        assert!(counts.post[0][0] > 5.0 * counts.post[0][1]);
        // Mostly self-transitions.
        assert!(counts.trans[0][0] > counts.trans[0][1]);
        assert!(counts.log_likelihood.is_finite());
    }

    #[test]
    fn beamed_chain_matches_exact_on_clear_data() {
        use crate::beam::DecoderConfig;
        let ticks: Vec<TickInput> = (0..24)
            .map(|t| obs_tick(usize::from(t >= 12), 5.0))
            .collect();
        let exact = SingleHdbn::new(toy_params()).viterbi(&ticks, 0).unwrap();
        let pruned = SingleHdbn::new(toy_params())
            .with_decoder(DecoderConfig::top_k(1))
            .viterbi(&ticks, 0)
            .unwrap();
        assert_eq!(pruned.macros, exact.macros);
        assert!(pruned.log_prob <= exact.log_prob);
    }

    #[test]
    fn fast32_lane_matches_exact_chain_decode_on_toy_data() {
        let ticks: Vec<TickInput> = (0..20)
            .map(|t| obs_tick(usize::from(t >= 10), 5.0))
            .collect();
        let exact = SingleHdbn::new(toy_params()).viterbi(&ticks, 0).unwrap();
        let fast = SingleHdbn::new(toy_params())
            .with_decoder(DecoderConfig::exact().fast32())
            .viterbi(&ticks, 0)
            .unwrap();
        assert_eq!(fast.macros, exact.macros);
        assert_eq!(fast.states_explored, exact.states_explored);
        assert!(
            (fast.log_prob - exact.log_prob).abs() <= 1e-3 * exact.log_prob.abs().max(1.0),
            "f32 log-prob {} vs f64 {}",
            fast.log_prob,
            exact.log_prob
        );
    }

    #[test]
    fn beamed_forward_filtering_stays_confident_and_normalized() {
        use crate::beam::DecoderConfig;
        let model = SingleHdbn::new(toy_params()).with_decoder(DecoderConfig::top_k(2));
        let ticks: Vec<TickInput> = (0..10).map(|_| obs_tick(0, 6.0)).collect();
        let post = model.forward_backward(&ticks, 0).unwrap();
        let mid = &post.gamma[5];
        let mass0: f64 = mid[..2].iter().sum();
        assert!(mass0 > 0.95, "activity-0 mass {mass0}");
        for row in &post.gamma {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert!(post.log_likelihood.is_finite());
    }

    #[test]
    fn errors_on_empty() {
        let model = SingleHdbn::new(toy_params());
        assert!(model.viterbi(&[], 0).is_err());
        let mut tick = obs_tick(0, 1.0);
        tick.candidates[0].clear();
        assert!(matches!(
            model.forward_backward(&[tick], 0),
            Err(ModelError::EmptyStateSpace { tick: 0 })
        ));
    }
}
