//! Trellis memory: the unified per-tick state `Slice` and the
//! [`TrellisArena`] that owns all step-kernel scratch.
//!
//! Before this module existed, every decoder had its own slice type and
//! every DP step allocated its fold buffers fresh (`f1_col`/`f2_col` per
//! trellis column, `w`/`w_arg` per tick, a new frontier vector per step).
//! The arena centralizes that memory: **one allocation per decode (batch)
//! or per stream (online), reused across ticks**, so the steady-state hot
//! loop of a warmed online decoder performs zero heap allocations per
//! pushed tick (`tests/alloc_steady_state.rs` counts them). The beam
//! survivor scratch and the pruned-step group buffers of PR 4
//! ([`BeamScratch`], `JointScratch`) live here too, as arena fields.
//!
//! A `Slice` enumerates one chain's per-tick states macro-major —
//! `(activity, micro-candidate)` pairs — and carries, per state, the
//! *compact pair id* `activity * n_postural + postural` that indexes the
//! dense [`ScoreTables`](crate::ScoreTables). The mapping is computed once
//! per tick when the slice is filled; after that, every transition
//! evaluation in every kernel is a flat-array load.

use crate::beam::BeamScratch;
use crate::input::TickInput;
use crate::params::HdbnParams;
use crate::viterbi::JointScratch;

/// One chain's per-tick trellis slice, enumerated macro-major: state `j`
/// is `(activities[j], cands[j])` with dense-table pair id `pairs[j]` and
/// emission score `emissions[j]`.
///
/// The slice also records the tick's *distinct* pair ids
/// (first-occurrence order) and each state's index into them
/// (`slots`). The DP fold into a new state depends on that state only
/// through its pair id, so the kernels compute each fold **once per
/// distinct pair** and fan the result out to every state sharing it —
/// pure memoization, bit-identical to folding per state, and the main
/// per-tick work reduction on top of flat-table scoring (a tick with
/// `m` states over `D` distinct pairs folds `D/m` of the naive work).
#[derive(Debug, Clone, Default)]
pub(crate) struct Slice {
    /// Macro activity of each state.
    pub(crate) activities: Vec<usize>,
    /// Micro-candidate index (into the tick's candidate list) of each
    /// state.
    pub(crate) cands: Vec<usize>,
    /// Compact `(activity, postural)` pair id of each state — the
    /// [`ScoreTables`](crate::ScoreTables) index.
    pub(crate) pairs: Vec<u32>,
    /// Emission score of each state (observation log-lik + macro bonus +
    /// hierarchy factors).
    pub(crate) emissions: Vec<f64>,
    /// Distinct pair ids of this slice, in first-occurrence order.
    pub(crate) uniq_pairs: Vec<u32>,
    /// Per-state index into `uniq_pairs`.
    pub(crate) slots: Vec<u32>,
    /// Contiguous same-activity runs of the (macro-major) state list:
    /// `(activity, start, end)` half-open, ascending, one run per allowed
    /// macro. The fold kernels use these to collapse switch transitions
    /// (postural-independent) to one per-run candidate.
    pub(crate) runs: Vec<(u32, u32, u32)>,
    /// pair id → slot lookup (reset per fill; `u32::MAX` = unseen).
    slot_lookup: Vec<u32>,
}

impl Slice {
    /// Number of states in the slice.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.activities.len()
    }

    /// Number of distinct pair ids in the slice.
    #[inline]
    pub(crate) fn n_slots(&self) -> usize {
        self.uniq_pairs.len()
    }

    /// Rebuilds a slice from its parked columns (the pair→slot lookup is
    /// per-fill scratch, reset by every [`fill_slice`], so it restores
    /// empty).
    pub(crate) fn restored(
        activities: Vec<usize>,
        cands: Vec<usize>,
        pairs: Vec<u32>,
        emissions: Vec<f64>,
        uniq_pairs: Vec<u32>,
        slots: Vec<u32>,
        runs: Vec<(u32, u32, u32)>,
    ) -> Self {
        Self {
            activities,
            cands,
            pairs,
            emissions,
            uniq_pairs,
            slots,
            runs,
            slot_lookup: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.activities.clear();
        self.cands.clear();
        self.pairs.clear();
        self.emissions.clear();
        self.uniq_pairs.clear();
        self.slots.clear();
        self.runs.clear();
    }

    /// Whether two slices enumerate the same *state structure*: equal pair
    /// ids and equal activity runs. Everything else a step kernel reads
    /// from a **source** slice (lengths, slots, distinct pairs) is derived
    /// from those two columns, so structural equality is exactly the
    /// precondition under which a batched kernel may share one transition
    /// lookup across streams (emissions may differ — source emissions are
    /// already folded into the frontier and never re-read).
    pub(crate) fn same_shape(&self, other: &Slice) -> bool {
        self.pairs == other.pairs && self.runs == other.runs
    }
}

/// Fills `out` with one user's trellis slice for a tick, reusing its
/// buffers (and `macro_ids` as the allowed-macro scratch) so a warmed
/// caller allocates nothing.
///
/// This is the single state-enumeration implementation shared by the
/// coupled and single-chain decoders — macro-major, candidates in input
/// order — so all decode paths agree on state indexing, and the compact
/// pair ids are computed exactly once per tick per state.
pub(crate) fn fill_slice(
    p: &HdbnParams,
    input: &TickInput,
    user: usize,
    macro_ids: &mut Vec<usize>,
    out: &mut Slice,
) {
    macro_ids.clear();
    match &input.macro_candidates[user] {
        Some(m) => macro_ids.extend_from_slice(m),
        None => macro_ids.extend(0..p.n_macro()),
    }
    out.clear();
    let t = &p.tables;
    out.slot_lookup.clear();
    out.slot_lookup.resize(t.n_pair(), u32::MAX);
    for &a in macro_ids.iter() {
        let bonus = input.bonus(a);
        let run_start = out.activities.len() as u32;
        for (c, cand) in input.candidates[user].iter().enumerate() {
            let pair = t.pair(a, cand.postural);
            let lk = &mut out.slot_lookup[pair as usize];
            if *lk == u32::MAX {
                *lk = out.uniq_pairs.len() as u32;
                out.uniq_pairs.push(pair);
            }
            out.activities.push(a);
            out.cands.push(c);
            out.pairs.push(pair);
            out.slots.push(*lk);
            out.emissions.push(
                cand.obs_loglik
                    + bonus
                    + t.hierarchy(a, cand.postural, cand.gestural, cand.location),
            );
        }
        out.runs
            .push((a as u32, run_start, out.activities.len() as u32));
    }
}

/// Step-kernel scratch: the fold buffers every DP step writes through,
/// plus the ping-pong frontier the steps emit into. Split from the beam
/// scratch so a caller can hold the beam's survivor list and the step
/// buffers mutably at the same time.
///
/// Generic over the scoring lane `S` (see [`Scalar`](crate::scalar::Scalar)):
/// all score-carrying
/// buffers are `Vec<S>`, so an `f32` decode halves its frontier and fold
/// traffic. Index buffers and the log-sum-exp accumulator (used only by
/// the f64-only inference paths) are lane-independent.
#[derive(Debug, Clone, Default)]
pub struct StepScratch<S> {
    /// Pruned joint-step group buffers (PR 4's `JointScratch`, absorbed).
    pub(crate) joint: JointScratch<S>,
    /// Allowed-macro scratch for [`fill_slice`].
    pub(crate) macro_ids: Vec<usize>,
    /// Pass-1 joint fold `W[slot2, j1p]` (per distinct chain-2 dst pair,
    /// slot-major so pass 2 scans each `slot2` row contiguously) and its
    /// argmax; also the chain kernels' per-distinct-pair fold.
    pub(crate) w: Vec<S>,
    pub(crate) w_arg: Vec<u32>,
    /// Pass-2 joint fold `V''[slot1, slot2]` (per distinct dst pair of
    /// both chains) and its full-frontier backpointer.
    pub(crate) w2: Vec<S>,
    pub(crate) w2_arg: Vec<u32>,
    /// Per-(source, activity-run) maxima of a fold-source vector and
    /// their first argmax — the switch-candidate cache the low-rank fold
    /// uses (one candidate per run instead of one per state).
    pub(crate) run_max: Vec<S>,
    pub(crate) run_arg: Vec<u32>,
    /// Activity runs of a *pruned* survivor list (`(activity, start, end)`
    /// half-open into `keep`), rebuilt per pruned step.
    pub(crate) runs_scratch: Vec<(u32, u32, u32)>,
    /// Ping-pong frontier: kernels write the new frontier here; the caller
    /// swaps it with its live frontier vector.
    pub(crate) v_next: Vec<S>,
    /// Pre-gathered transition column of the dense *chain* kernel: per
    /// distinct dst pair, `gcol[j] = into_row(dst)[prev.pairs[j]]` over
    /// the continue runs, hoisted out of the fold so the inner loop is a
    /// contiguous `frontier + column` lane fold instead of a gather. The
    /// joint kernel reuses the buffer for its converted chain-2 emission
    /// row in the fan-out.
    pub(crate) gcol: Vec<S>,
    /// Transposed joint frontier `V[j2p][j1p]` — the joint kernel's pass-1
    /// accumulation runs contiguously over `j1p`, so the frontier is
    /// transposed once per tick instead of strided per fold.
    pub(crate) vt: Vec<S>,
    /// Transposed pass-1 fold `W[j1p][slot2]` — pass 2 accumulates
    /// contiguously over `slot2`.
    pub(crate) wt: Vec<S>,
    /// Pass-2 per-`slot2` running argmax (`best_j1p`) of the current
    /// `slot1` row.
    pub(crate) acc_arg: Vec<u32>,
    /// Fan-out coupling row of the current chain-1 activity:
    /// `crow[j2] = g(a1, activities2[j2])`, materialized once per chain-1
    /// run so the fan-out inner loop is a single contiguous zip.
    pub(crate) crow: Vec<S>,
    /// Log-sum-exp term accumulator (forward–backward, EM; f64-only
    /// paths).
    pub(crate) terms: Vec<f64>,
}

impl<S> StepScratch<S> {
    /// Swaps the kernel-emitted next frontier (`v_next`) with the
    /// caller's live frontier vector — the ping-pong step every driver
    /// performs after a dense/pruned kernel call.
    pub fn swap_frontier(&mut self, v: &mut Vec<S>) {
        std::mem::swap(&mut self.v_next, v);
    }
}

/// All reusable trellis memory of one decode (batch) or one stream
/// (online): beam survivor scratch plus step-kernel scratch, one set per
/// scoring lane.
///
/// Allocated once, reused across ticks; buffers grow to the high-water
/// frontier size and stay there, so the steady-state per-tick loop is
/// allocation-free. Only the lane a decoder actually runs in ever grows
/// (the other stays four empty vectors).
#[derive(Debug, Clone, Default)]
pub struct TrellisArena {
    /// Beam survivor-selection scratch (kept as its own field so `keep()`
    /// can be borrowed while the step scratch is borrowed mutably).
    pub(crate) beam: BeamScratch,
    /// Fold buffers and ping-pong frontier, exact (`f64`) lane.
    pub(crate) step: StepScratch<f64>,
    /// Fold buffers and ping-pong frontier, fast (`f32`) lane.
    pub(crate) step32: StepScratch<f32>,
}

impl TrellisArena {
    /// An empty arena (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Scratch of one *fleet-batched* step (see
/// [`BatchedTrellis`](crate::trellis::BatchedTrellis)): the stacked
/// home-blocked SoA buffers the batched kernels fold through, plus the
/// per-home output frontiers and backpointer rows they fan out into.
///
/// Layouts are column-major like the unbatched kernels' transposes, with
/// the home index as the innermost (contiguous) dimension: element
/// `[col][home]` lives at `col * B + home`, so one `sweep_*` call over a
/// `B`-long (or `B·k`-long) row advances every stream of the cohort with
/// each transition score loaded exactly once. Buffers grow to the
/// high-water cohort size and stay there — one allocation per router
/// shard, reused every round.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch<S> {
    /// Stacked (and, for the joint kernel, transposed) source frontiers:
    /// chain kernel `vb[jp·B + h]`, joint kernel
    /// `vtb[j2p·(B·k1) + h·k1 + j1p]`.
    pub(crate) vt: Vec<S>,
    /// Pass-1 fold per destination slot, home-blocked
    /// (`w[s·B + h]` / `w[s2·(B·k1) + h·k1 + j1p]`), and its argmax.
    pub(crate) w: Vec<S>,
    pub(crate) w_arg: Vec<u32>,
    /// Joint pass-1 fold transposed for pass 2:
    /// `wt[j1p·(B·d2) + h·d2 + s2]`.
    pub(crate) wt: Vec<S>,
    /// Joint pass-2 fold `w2[s1·(B·d2) + h·d2 + s2]` and its recovered
    /// full-frontier backpointer.
    pub(crate) w2: Vec<S>,
    pub(crate) w2_arg: Vec<u32>,
    /// Home-blocked switch-candidate run caches (same roles as the
    /// unbatched `StepScratch::run_max`/`run_arg`, widened by `B`).
    pub(crate) run_max: Vec<S>,
    pub(crate) run_arg: Vec<u32>,
    /// Joint pass-2 per-`(home, slot2)` running argmax of one `slot1` row.
    pub(crate) acc_arg: Vec<u32>,
    /// One home's pass-2 fold, unstacked (`[d1 × d2]`) for the shared
    /// joint fan-out.
    pub(crate) w2h: Vec<S>,
    pub(crate) w2h_arg: Vec<u32>,
    /// Fan-out rows borrowed by the shared joint fan-out (chain-2
    /// emissions / coupling row), reused across the cohort.
    pub(crate) gcol: Vec<S>,
    pub(crate) crow: Vec<S>,
    /// Per-home next frontiers the batched kernels write (index = cohort
    /// position). The driver swaps each into its stream's live frontier.
    pub v_next: Vec<Vec<S>>,
    /// Per-home backpointer rows the batched kernels write, paired with
    /// [`BatchScratch::v_next`].
    pub back: Vec<Vec<u32>>,
}

impl<S> BatchScratch<S> {
    /// Ensures the per-home output buffers cover a cohort of `b` streams.
    pub(crate) fn ensure_homes(&mut self, b: usize) {
        self.v_next.resize_with(b.max(self.v_next.len()), Vec::new);
        self.back.resize_with(b.max(self.back.len()), Vec::new);
    }
}
