//! Log-space numerical utilities for the forward–backward algorithm.

/// Numerically stable `log Σ exp(xᵢ)`.
///
/// Returns `-∞` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// In-place normalization of log-weights into probabilities.
///
/// Returns the normalizer `log Σ exp`. All-`-∞` input becomes uniform.
pub fn normalize_log(xs: &mut [f64]) -> f64 {
    let z = log_sum_exp(xs);
    if z.is_finite() {
        for x in xs.iter_mut() {
            *x = (*x - z).exp();
        }
    } else if !xs.is_empty() {
        let u = 1.0 / xs.len() as f64;
        for x in xs.iter_mut() {
            *x = u;
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_computation() {
        let xs = [0.0, (2.0f64).ln(), (3.0f64).ln()];
        assert!((log_sum_exp(&xs) - (6.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn is_stable_for_large_magnitudes() {
        let xs = [1000.0, 1000.0];
        assert!((log_sum_exp(&xs) - (1000.0 + (2.0f64).ln())).abs() < 1e-9);
        let xs = [-1000.0, -1000.0];
        assert!((log_sum_exp(&xs) - (-1000.0 + (2.0f64).ln())).abs() < 1e-9);
    }

    #[test]
    fn empty_is_neg_infinity() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn normalize_produces_distribution() {
        let mut xs = [0.0, (3.0f64).ln()];
        let z = normalize_log(&mut xs);
        assert!((xs[0] - 0.25).abs() < 1e-12);
        assert!((xs[1] - 0.75).abs() < 1e-12);
        assert!((z - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn normalize_handles_all_neg_infinity() {
        let mut xs = [f64::NEG_INFINITY, f64::NEG_INFINITY];
        normalize_log(&mut xs);
        assert_eq!(xs, [0.5, 0.5]);
    }
}
