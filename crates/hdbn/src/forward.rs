//! Log-space numerical utilities for the forward–backward algorithm, plus
//! beam pruning of normalized filtering distributions.

use crate::beam::{Beam, BeamScratch};

/// Numerically stable `log Σ exp(xᵢ)`.
///
/// Returns `-∞` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// In-place normalization of log-weights into probabilities.
///
/// Returns the normalizer `log Σ exp`. All-`-∞` input becomes uniform.
pub fn normalize_log(xs: &mut [f64]) -> f64 {
    let z = log_sum_exp(xs);
    if z.is_finite() {
        for x in xs.iter_mut() {
            *x = (*x - z).exp();
        }
    } else if !xs.is_empty() {
        let u = 1.0 / xs.len() as f64;
        for x in xs.iter_mut() {
            *x = u;
        }
    }
    z
}

/// Beams one normalized filtering distribution in place: the states the
/// beam prunes are zeroed and the surviving mass is renormalized to sum to
/// one, so the next filtering step propagates only the surviving lattice.
///
/// Returns `true` when anything was pruned; `false` (distribution
/// untouched) for [`Beam::Exact`] or when the whole frontier survives.
pub fn apply_beam_linear(beam: Beam, weights: &mut [f64], scratch: &mut BeamScratch) -> bool {
    if !beam.select_linear(weights, scratch) {
        return false;
    }
    let keep = scratch.keep();
    let total: f64 = keep.iter().map(|&i| weights[i as usize]).sum();
    let mut next_kept = keep.iter().peekable();
    for (i, w) in weights.iter_mut().enumerate() {
        if next_kept.peek() == Some(&&(i as u32)) {
            next_kept.next();
        } else {
            *w = 0.0;
        }
    }
    if total > 0.0 {
        for &i in keep {
            weights[i as usize] /= total;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_computation() {
        let xs = [0.0, (2.0f64).ln(), (3.0f64).ln()];
        assert!((log_sum_exp(&xs) - (6.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn is_stable_for_large_magnitudes() {
        let xs = [1000.0, 1000.0];
        assert!((log_sum_exp(&xs) - (1000.0 + (2.0f64).ln())).abs() < 1e-9);
        let xs = [-1000.0, -1000.0];
        assert!((log_sum_exp(&xs) - (-1000.0 + (2.0f64).ln())).abs() < 1e-9);
    }

    #[test]
    fn empty_is_neg_infinity() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn normalize_produces_distribution() {
        let mut xs = [0.0, (3.0f64).ln()];
        let z = normalize_log(&mut xs);
        assert!((xs[0] - 0.25).abs() < 1e-12);
        assert!((xs[1] - 0.75).abs() < 1e-12);
        assert!((z - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn normalize_handles_all_neg_infinity() {
        let mut xs = [f64::NEG_INFINITY, f64::NEG_INFINITY];
        normalize_log(&mut xs);
        assert_eq!(xs, [0.5, 0.5]);
    }

    #[test]
    fn beamed_filtering_distribution_renormalizes_survivors() {
        let mut scratch = BeamScratch::new();
        let mut w = [0.5, 0.3, 0.15, 0.05];
        assert!(apply_beam_linear(Beam::TopK(2), &mut w, &mut scratch));
        assert_eq!(w[2], 0.0);
        assert_eq!(w[3], 0.0);
        assert!((w[0] + w[1] - 1.0).abs() < 1e-12);
        assert!((w[0] - 0.5 / 0.8).abs() < 1e-12);
    }

    #[test]
    fn exact_beam_leaves_the_distribution_untouched() {
        let mut scratch = BeamScratch::new();
        let mut w = [0.6, 0.4];
        assert!(!apply_beam_linear(Beam::Exact, &mut w, &mut scratch));
        assert_eq!(w, [0.6, 0.4]);
        // A TopK covering everything is likewise a no-op.
        assert!(!apply_beam_linear(Beam::TopK(5), &mut w, &mut scratch));
        assert_eq!(w, [0.6, 0.4]);
    }
}
