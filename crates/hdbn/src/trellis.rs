//! The generic trellis engine: one trait-parameterized kernel core shared
//! by every decoder family.
//!
//! Historically each decoder family — coupled joint, single chain, and the
//! NH flat product in `cace-core` — carried its own copy of the dense DP
//! step, the pruned step, the first-tick init, and the online
//! window/free-list machinery. This module factors the shared shape out
//! into three axes:
//!
//! * [`StateSpace`] — how one tick enumerates its states: how many, which
//!   *slot* (distinct destination-context id) each belongs to, which
//!   source *pair id* indexes a transition row, the contiguous same-group
//!   runs of the (group-major) state list, and the per-state emission.
//! * [`ScoreModel`] — how scores are looked up: the first-tick init score
//!   and, per destination slot, a [`Dest`] bundle of the continue row
//!   (indexed by source pair id) and, for hierarchical models, the
//!   group-switch row (indexed by source group).
//! * [`Scalar`] — the scoring lane (`f64` exact / `f32` fast), unchanged.
//!
//! [`init_into`], [`step_dense_into`], and [`step_pruned_into`] are the
//! *only* implementations of the chain-shaped recursion; the single-chain
//! decoder instantiates them through [`HierModel`] and the NH decoder
//! through its flat-table model in `cace-core`. The coupled joint step is
//! the one family that keeps a bespoke kernel
//! ([`crate::viterbi`]'s two-pass factored fold over the product space —
//! its `O(|S1||S2|(|S1|+|S2|))` shape cannot be expressed as a single
//! per-destination fold without losing both the complexity bound and
//! bit-identity), so it plugs into the engine one level up, as a
//! [`TrellisFamily`].
//!
//! The online layer is factored the same way: [`OnlineTrellis`] owns the
//! frontier lanes, the bounded backpointer window with its pooled free
//! list, the decision cursor, and the overhead counters — written once —
//! and each family supplies a [`TrellisFamily`] impl that maps a window
//! entry onto the kernels. [`forward_backward`] is the single scaled
//! alpha/beta recursion, parameterized over [`PosteriorModel`].
//!
//! # Bit-identity contract
//!
//! Every kernel here preserves the repo-wide tie-breaking and memoization
//! contracts (see `scalar.rs`): per-destination candidates are visited in
//! ascending source order with strict-`>` first-argmax, same-group runs
//! collapse through `fold_max`/`fold_max_sum` (documented
//! bit-identical to the scalar ascending scan), and the frontier
//! termination argmax is the last-max [`argmax`]. The f64 lane of every
//! instantiation is bit-identical to the per-family kernels it replaced.

use std::collections::VecDeque;

use crate::arena::{StepScratch, TrellisArena};
use crate::beam::{Beam, BeamScratch, DecoderConfig};
use crate::forward::{apply_beam_linear, log_sum_exp, normalize_log};
use crate::online::Lag;
use crate::params::HdbnParams;
use crate::scalar::{self, fold_max, fold_max_sum, Precision, Scalar};

pub use crate::scalar::argmax;

/// One tick's state enumeration, as the generic kernels see it.
///
/// States are indexed `0..len()` in *group-major* order: contiguous
/// same-group runs, ascending. Each state carries a *pair id* (the index
/// of its transition-row context in the score model) and belongs to a
/// *slot* — one of the tick's distinct pair ids — so the per-destination
/// fold can be computed once per slot and fanned out per state.
pub trait StateSpace {
    /// Number of states this tick.
    fn len(&self) -> usize;

    /// Whether the tick has no states (kernels require nonempty spaces).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct destination contexts (slots) this tick.
    fn n_slots(&self) -> usize;

    /// Slot of state `j` (an index into `0..n_slots()`).
    fn slot(&self, j: usize) -> u32;

    /// Pair id of slot `s` — the [`ScoreModel::dest`] lookup key.
    fn slot_pair(&self, s: usize) -> u32;

    /// Pair id of state `j` — its index *inside* a continue row when the
    /// state is a fold source.
    fn pair(&self, j: usize) -> u32;

    /// Group (macro activity) of state `j`.
    fn group_of(&self, j: usize) -> u32;

    /// Contiguous same-group runs `(group, start, end)` (half-open,
    /// ascending) tiling `0..len()`.
    fn runs(&self) -> &[(u32, u32, u32)];

    /// Emission score of state `j`.
    fn emission(&self, j: usize) -> f64;
}

/// The score lookups of one destination slot, in lane `S`.
pub struct Dest<'a, S> {
    /// Destination group — sources in the same group take the `cont` row,
    /// sources in other groups the `switch` row (ignored when the model
    /// has [`ScoreModel::SWITCH`]` == false`).
    pub group: u32,
    /// Continue-transition row, indexed by source pair id.
    pub cont: &'a [S],
    /// Group-switch row, indexed by source group (empty when the model
    /// has no switch structure).
    pub switch: &'a [S],
}

/// Score lookups of one decoder family in lane `S`: the first-tick init
/// score plus the per-destination transition rows.
pub trait ScoreModel<S: Scalar> {
    /// Whether transitions split into same-group *continue* rows and
    /// group-level *switch* constants. When `false`, every source scores
    /// through [`Dest::cont`] and the kernels skip the run-max switch
    /// cache entirely.
    const SWITCH: bool;

    /// Complete first-tick score of a state (prior term plus emission —
    /// the model returns the full `f64` so lanes convert exactly once).
    fn init_score(&self, group: u32, pair: u32, emission: f64) -> f64;

    /// Transition rows into the destination context `pair`.
    fn dest(&self, pair: u32) -> Dest<'_, S>;
}

/// Writes the first-tick frontier of `cur` into `v`.
///
/// The single init implementation behind every family's first push.
pub fn init_into<S: Scalar, Sp: StateSpace, M: ScoreModel<S>>(model: &M, cur: &Sp, v: &mut Vec<S>) {
    v.clear();
    v.reserve(cur.len());
    for j in 0..cur.len() {
        v.push(S::from_f64(model.init_score(
            cur.group_of(j),
            cur.pair(j),
            cur.emission(j),
        )));
    }
}

/// One dense DP step: the new frontier lands in `step.v_next` (the caller
/// swaps — see [`StepScratch::swap_frontier`]) and per-state backpointers
/// into the previous tick's frontier in `back`.
///
/// Two memoizations, both bit-identical to the per-state × per-source
/// scan they replace:
///
/// 1. The fold into a new state depends on it only through its pair id —
///    compute once per distinct pair (slot), fan out.
/// 2. Under [`ScoreModel::SWITCH`], switch transitions are
///    within-group-independent, so a whole same-group run of the previous
///    frontier collapses to one candidate: (run max of `v`, first argmax)
///    plus the switch constant. Within a run, adding the same finite
///    constant preserves strict order and first-argmax; runs are visited
///    in ascending state order, so tie-breaking matches the naive
///    ascending scan.
pub fn step_dense_into<S: Scalar, Sp: StateSpace, M: ScoreModel<S>>(
    model: &M,
    prev: &Sp,
    v: &[S],
    cur: &Sp,
    step: &mut StepScratch<S>,
    back: &mut Vec<u32>,
) {
    let m = cur.len();
    let d = cur.n_slots();
    let StepScratch {
        w,
        w_arg,
        v_next,
        run_max,
        run_arg,
        gcol,
        ..
    } = step;
    let runs = prev.runs();
    if M::SWITCH {
        let n_runs = runs.len();
        run_max.clear();
        run_max.resize(n_runs, S::NEG_INFINITY);
        run_arg.clear();
        run_arg.resize(n_runs, 0);
        for (r, &(_, start, end)) in runs.iter().enumerate() {
            let (best, arg) = fold_max(&v[start as usize..end as usize]);
            run_max[r] = best;
            run_arg[r] = start + arg;
        }
    }
    w.clear();
    w.resize(d, S::NEG_INFINITY);
    w_arg.clear();
    w_arg.resize(d, 0);
    gcol.clear();
    gcol.resize(prev.len(), S::NEG_INFINITY);
    for s in 0..d {
        let dest = model.dest(cur.slot_pair(s));
        let mut best = S::NEG_INFINITY;
        let mut best_arg = 0u32;
        for (r, &(gr, start, end)) in runs.iter().enumerate() {
            if !M::SWITCH || gr == dest.group {
                // Continue run: source-dependent. Gather the transition
                // column once, then lane-fold the contiguous
                // `frontier + column` segment.
                let (start, end) = (start as usize, end as usize);
                for jp in start..end {
                    gcol[jp] = dest.cont[prev.pair(jp) as usize];
                }
                let (score, arg) = fold_max_sum(&v[start..end], &gcol[start..end]);
                if score > best {
                    best = score;
                    best_arg = start as u32 + arg;
                }
            } else {
                let score = run_max[r] + dest.switch[gr as usize];
                if score > best {
                    best = score;
                    best_arg = run_arg[r];
                }
            }
        }
        w[s] = best;
        w_arg[s] = best_arg;
    }
    v_next.clear();
    v_next.resize(m, S::NEG_INFINITY);
    back.clear();
    back.resize(m, 0);
    for j in 0..m {
        let s = cur.slot(j) as usize;
        v_next[j] = w[s] + S::from_f64(cur.emission(j));
        back[j] = w_arg[s];
    }
}

/// One *fleet-batched* dense chain step: advances `B = vs.len()` co-model
/// streams — same score model, structurally identical previous state
/// spaces, same current tick — in one fused pass, with each transition
/// score loaded from the shared tables exactly once and swept across all
/// `B` lanes via the branchless [`Scalar`] sweeps.
///
/// The frontiers are stacked into an SoA matrix with the home index
/// innermost (`vb[jp·B + h]`, column-major like the joint kernel's
/// transpose), so a destination's fold over source `jp` is one contiguous
/// `B`-wide sweep per source instead of `B` separate scalar folds.
/// Candidates are visited in the unbatched kernel's exact order (runs in
/// slice order, sources ascending within a continue run, strict `>`
/// first-win), and the sweeps are elementwise independent, so each home's
/// output in `bs.v_next[h]` / `bs.back[h]` is **bit-identical** to a
/// dedicated [`step_dense_into`] run on that home alone, per lane.
pub fn step_dense_batch_into<S: Scalar, Sp: StateSpace, M: ScoreModel<S>>(
    model: &M,
    prev: &Sp,
    vs: &[&[S]],
    cur: &Sp,
    bs: &mut crate::arena::BatchScratch<S>,
) {
    let b = vs.len();
    let k = prev.len();
    let m = cur.len();
    let d = cur.n_slots();
    bs.ensure_homes(b);
    let runs = prev.runs();

    // Stack the cohort's frontiers home-innermost: vb[jp][h] = V_h[jp].
    let vb = &mut bs.vt;
    vb.clear();
    vb.resize(k * b, S::NEG_INFINITY);
    for (h, v) in vs.iter().enumerate() {
        for (jp, &x) in v.iter().enumerate() {
            vb[jp * b + h] = x;
        }
    }

    // Home-blocked switch-candidate run cache (first-max per run per
    // home; all-`−∞` runs keep the run start, like `fold_max`).
    if M::SWITCH {
        let n_runs = runs.len();
        bs.run_max.clear();
        bs.run_max.resize(n_runs * b, S::NEG_INFINITY);
        bs.run_arg.clear();
        bs.run_arg.resize(n_runs * b, 0);
        for (r, &(_, start, end)) in runs.iter().enumerate() {
            let rm = &mut bs.run_max[r * b..][..b];
            let ra = &mut bs.run_arg[r * b..][..b];
            ra.fill(start);
            for jp in start as usize..end as usize {
                scalar::sweep_max(&vb[jp * b..][..b], jp as u32, rm, ra);
            }
        }
    }

    // Per destination slot: one transition-score load per source, swept
    // across the whole cohort. The flattened ascending sweep over a
    // continue run is bit-identical to the unbatched per-run
    // `fold_max_sum` + cross-run strict-`>` (both keep the first global
    // maximum over the same candidate order and per-candidate sums).
    bs.w.clear();
    bs.w.resize(d * b, S::NEG_INFINITY);
    bs.w_arg.clear();
    bs.w_arg.resize(d * b, 0);
    for s in 0..d {
        let dest = model.dest(cur.slot_pair(s));
        let acc = &mut bs.w[s * b..][..b];
        let acc_arg = &mut bs.w_arg[s * b..][..b];
        for (r, &(gr, start, end)) in runs.iter().enumerate() {
            if !M::SWITCH || gr == dest.group {
                for jp in start as usize..end as usize {
                    let g = dest.cont[prev.pair(jp) as usize];
                    scalar::sweep_add_max(&vb[jp * b..][..b], g, jp as u32, acc, acc_arg);
                }
            } else {
                let sw = dest.switch[gr as usize];
                scalar::sweep_add_max_arg(
                    &bs.run_max[r * b..][..b],
                    sw,
                    &bs.run_arg[r * b..][..b],
                    acc,
                    acc_arg,
                );
            }
        }
    }

    // Per-home fan-out (same addition tree as the unbatched kernel).
    for h in 0..b {
        let v_next = &mut bs.v_next[h];
        let back = &mut bs.back[h];
        v_next.clear();
        v_next.resize(m, S::NEG_INFINITY);
        back.clear();
        back.resize(m, 0);
        for j in 0..m {
            let s = cur.slot(j) as usize;
            v_next[j] = bs.w[s * b + h] + S::from_f64(cur.emission(j));
            back[j] = bs.w_arg[s * b + h];
        }
    }
}

/// [`step_dense_into`] restricted to a pruned previous frontier: only the
/// survivors in `keep` (state indices sorted ascending) may be
/// transitioned out of. Backpointers stay in full-frontier coordinates,
/// so backtracking is oblivious to pruning; the iteration order over
/// survivors matches the dense kernel's ascending order.
pub fn step_pruned_into<S: Scalar, Sp: StateSpace, M: ScoreModel<S>>(
    model: &M,
    prev: &Sp,
    v: &[S],
    keep: &[u32],
    cur: &Sp,
    step: &mut StepScratch<S>,
    back: &mut Vec<u32>,
) {
    let m = cur.len();
    let d = cur.n_slots();
    let StepScratch {
        w,
        w_arg,
        v_next,
        run_max,
        run_arg,
        runs_scratch,
        ..
    } = step;
    // Group runs of the survivor list (`keep` is ascending over a
    // group-major frontier, so same-group survivors are contiguous), then
    // the same two memoizations as the dense kernel. A switch-free model
    // folds every survivor through one pseudo-run.
    runs_scratch.clear();
    if M::SWITCH {
        let mut i = 0usize;
        while i < keep.len() {
            let g = prev.group_of(keep[i] as usize);
            let start = i;
            while i < keep.len() && prev.group_of(keep[i] as usize) == g {
                i += 1;
            }
            runs_scratch.push((g, start as u32, i as u32));
        }
        let n_runs = runs_scratch.len();
        run_max.clear();
        run_max.resize(n_runs, S::NEG_INFINITY);
        run_arg.clear();
        run_arg.resize(n_runs, 0);
        for (r, &(_, start, end)) in runs_scratch.iter().enumerate() {
            let mut best = S::NEG_INFINITY;
            let mut arg = 0u32;
            for &jp in &keep[start as usize..end as usize] {
                let vv = v[jp as usize];
                if vv > best {
                    best = vv;
                    arg = jp;
                }
            }
            run_max[r] = best;
            run_arg[r] = arg;
        }
    } else {
        runs_scratch.push((0, 0, keep.len() as u32));
    }
    w.clear();
    w.resize(d, S::NEG_INFINITY);
    w_arg.clear();
    w_arg.resize(d, 0);
    for s in 0..d {
        let dest = model.dest(cur.slot_pair(s));
        let mut best = S::NEG_INFINITY;
        let mut best_arg = 0u32;
        for (r, &(gr, start, end)) in runs_scratch.iter().enumerate() {
            if !M::SWITCH || gr == dest.group {
                for &jp in &keep[start as usize..end as usize] {
                    let score = v[jp as usize] + dest.cont[prev.pair(jp as usize) as usize];
                    if score > best {
                        best = score;
                        best_arg = jp;
                    }
                }
            } else {
                let score = run_max[r] + dest.switch[gr as usize];
                if score > best {
                    best = score;
                    best_arg = run_arg[r];
                }
            }
        }
        w[s] = best;
        w_arg[s] = best_arg;
    }
    v_next.clear();
    v_next.resize(m, S::NEG_INFINITY);
    back.clear();
    back.resize(m, 0);
    for j in 0..m {
        let s = cur.slot(j) as usize;
        v_next[j] = w[s] + S::from_f64(cur.emission(j));
        back[j] = w_arg[s];
    }
}

/// The hierarchical-chain [`ScoreModel`]: macro prior plus emission at
/// init; dense [`ScoreTables`](crate::ScoreTables) continue rows keyed by
/// `(activity, postural)` pair id, postural-independent switch rows keyed
/// by source activity. The single-chain decoder's trait instantiation
/// (the coupled decoder composes two of these plus the coupling factor in
/// its bespoke joint kernel).
pub struct HierModel<'a> {
    p: &'a HdbnParams,
}

impl<'a> HierModel<'a> {
    /// Wraps a trained parameter set.
    pub fn new(p: &'a HdbnParams) -> Self {
        Self { p }
    }
}

impl<S: Scalar> ScoreModel<S> for HierModel<'_> {
    const SWITCH: bool = true;

    fn init_score(&self, group: u32, _pair: u32, emission: f64) -> f64 {
        self.p.log_prior[group as usize] + emission
    }

    fn dest(&self, pair: u32) -> Dest<'_, S> {
        let t = S::tables(self.p);
        let a = t.activity_of(pair);
        Dest {
            group: a as u32,
            cont: t.into_row(pair),
            switch: t.switch_row(a),
        }
    }
}

/// [`ScoreModel`] extension for posterior inference: the outgoing
/// (source-keyed) transition row the backward recursion scans.
pub trait PosteriorModel: ScoreModel<f64> {
    /// Transition row *out of* source context `pair`, indexed by
    /// destination pair id.
    fn source(&self, pair: u32) -> &[f64];
}

impl PosteriorModel for HierModel<'_> {
    fn source(&self, pair: u32) -> &[f64] {
        <f64 as Scalar>::tables(self.p).from_row(pair)
    }
}

/// Scaled forward–backward over a sequence of state spaces: returns
/// per-tick posterior marginals `gamma[t][j]` and the sequence
/// log-likelihood. The single generic implementation of the alpha/beta
/// recursion (f64 only — posterior mass has no fast lane).
///
/// Under a pruning `beam`, the forward *filtering* distribution is beamed
/// per tick (see [`crate::forward::apply_beam_linear`]): pruned states
/// carry zero mass forward, the recursion skips them, and the backward
/// pass skips them symmetrically. [`Beam::Exact`] is bit-identical to the
/// full recursion.
pub fn forward_backward<Sp: StateSpace, M: PosteriorModel>(
    model: &M,
    spaces: &[Sp],
    beam: Beam,
) -> (Vec<Vec<f64>>, f64) {
    let pruned_mode = !beam.is_exact();
    let mut arena = TrellisArena::new();
    let n_ticks = spaces.len();

    // Forward (scaled). The per-state log-sum-exp accumulation runs
    // through the arena's reused `terms` buffer — no per-state `Vec`.
    let mut log_z = 0.0;
    let mut alphas: Vec<Vec<f64>> = Vec::with_capacity(n_ticks);
    let first = &spaces[0];
    let mut alpha: Vec<f64> = (0..first.len())
        .map(|j| model.init_score(first.group_of(j), first.pair(j), first.emission(j)))
        .collect();
    log_z += normalize_log(&mut alpha);
    if pruned_mode {
        apply_beam_linear(beam, &mut alpha, &mut arena.beam);
    }
    alphas.push(alpha);

    for t in 1..n_ticks {
        let cur = &spaces[t];
        let prev = &spaces[t - 1];
        // The fold into a new state depends on it only through its pair
        // id: one log-sum-exp per distinct pair, fanned out.
        let StepScratch { w, terms, .. } = &mut arena.step;
        w.clear();
        w.resize(cur.n_slots(), f64::NEG_INFINITY);
        for s in 0..cur.n_slots() {
            let row = model.dest(cur.slot_pair(s)).cont;
            terms.clear();
            for jp in 0..prev.len() {
                if pruned_mode && alphas[t - 1][jp] <= 0.0 {
                    continue;
                }
                terms.push(alphas[t - 1][jp].max(1e-300).ln() + row[prev.pair(jp) as usize]);
            }
            w[s] = log_sum_exp(terms);
        }
        let mut next = vec![f64::NEG_INFINITY; cur.len()];
        for j in 0..cur.len() {
            next[j] = w[cur.slot(j) as usize] + cur.emission(j);
        }
        log_z += normalize_log(&mut next);
        if pruned_mode {
            apply_beam_linear(beam, &mut next, &mut arena.beam);
        }
        alphas.push(next);
    }

    // Backward (scaled); under a beam, states pruned from the forward
    // lattice are skipped here too (their gamma is zero regardless).
    let mut betas: Vec<Vec<f64>> = vec![Vec::new(); n_ticks];
    let last = n_ticks - 1;
    betas[last] = vec![1.0; spaces[last].len()];
    for t in (0..last).rev() {
        let cur = &spaces[t];
        let nxt = &spaces[t + 1];
        // Mirror of the forward memoization: beta of a state depends on
        // it only through its (source) pair id.
        let StepScratch { w, terms, .. } = &mut arena.step;
        w.clear();
        w.resize(cur.n_slots(), f64::NEG_INFINITY);
        for s in 0..cur.n_slots() {
            let row = model.source(cur.slot_pair(s));
            terms.clear();
            for jn in 0..nxt.len() {
                if pruned_mode && alphas[t + 1][jn] <= 0.0 {
                    continue;
                }
                terms.push(
                    betas[t + 1][jn].max(1e-300).ln()
                        + row[nxt.pair(jn) as usize]
                        + nxt.emission(jn),
                );
            }
            w[s] = log_sum_exp(terms);
        }
        let mut beta = vec![f64::NEG_INFINITY; cur.len()];
        for j in 0..cur.len() {
            beta[j] = w[cur.slot(j) as usize];
        }
        normalize_log(&mut beta);
        betas[t] = beta;
    }

    // Gamma.
    let gamma: Vec<Vec<f64>> = alphas
        .iter()
        .zip(&betas)
        .map(|(a, b)| {
            let mut g: Vec<f64> = a.iter().zip(b).map(|(x, y)| x * y).collect();
            let total: f64 = g.iter().sum();
            if total > 0.0 {
                for v in &mut g {
                    *v /= total;
                }
            }
            g
        })
        .collect();

    (gamma, log_z)
}

/// One retained tick of an online backpointer window, as the generic
/// online core sees it. Entries are pooled: when the window drops a
/// ripened tick, the entry (buffers and all) goes to the free list and
/// the next push refills it in place.
pub trait TrellisEntry: Default {
    /// Backpointers into the previous tick's frontier (empty for the
    /// first tick of a stream).
    fn back(&self) -> &[u32];
}

/// One decoder family plugged into the online core in lane `S`: how a
/// window entry is initialized and stepped. `step_*` return the
/// transition-op charge of the step (the accounting contract each family
/// already reported before the refactor).
pub trait TrellisFamily<S: Scalar> {
    /// The family's window-entry type.
    type Entry: TrellisEntry;

    /// Initializes the frontier from the stream's first entry (and clears
    /// the entry's backpointers).
    fn init(&self, entry: &mut Self::Entry, v: &mut Vec<S>);

    /// One dense DP step from `prev` into `entry`; the new frontier lands
    /// in `step.v_next`. Returns the transition-op charge.
    fn step_dense(
        &self,
        prev: &Self::Entry,
        v: &[S],
        entry: &mut Self::Entry,
        step: &mut StepScratch<S>,
    ) -> u64;

    /// One beam-pruned DP step (survivors in `keep`, ascending). Returns
    /// the transition-op charge.
    fn step_pruned(
        &self,
        prev: &Self::Entry,
        v: &[S],
        keep: &[u32],
        entry: &mut Self::Entry,
        step: &mut StepScratch<S>,
    ) -> u64;
}

/// Advances (or initializes) a frontier by one DP step in lane `S`, then
/// applies the beam — the single per-[`Precision`] dispatch target behind
/// [`OnlineTrellis::push_entry`].
#[allow(clippy::too_many_arguments)]
fn advance<S: Scalar, F: TrellisFamily<S>>(
    family: &F,
    beam: Beam,
    prev: Option<&F::Entry>,
    entry: &mut F::Entry,
    v: &mut Vec<S>,
    step: &mut StepScratch<S>,
    beam_scratch: &mut BeamScratch,
    pruned: &mut bool,
    transition_ops: &mut u64,
) {
    match prev {
        None => family.init(entry, v),
        Some(prev) => {
            *transition_ops += if *pruned {
                family.step_pruned(prev, v, beam_scratch.keep(), entry, step)
            } else {
                family.step_dense(prev, v, entry, step)
            };
            std::mem::swap(v, &mut step.v_next);
        }
    }
    *pruned = beam.select_log(v, beam_scratch);
}

/// The family-independent half of an online fixed-lag decoder: both
/// frontier lanes, the bounded backpointer window with its pooled free
/// list, the decision cursor (`base`/`pushed`), the overhead counters,
/// and the [`TrellisArena`] scratch. Written once; each public online
/// decoder ([`crate::OnlineCoupledViterbi`],
/// [`crate::OnlineSingleViterbi`], and `cace-core`'s NH frontier) wraps
/// one of these plus its family-specific decision/emission bookkeeping.
#[derive(Debug, Clone)]
pub struct OnlineTrellis<E> {
    lag: Lag,
    /// Live frontier, exact lane (empty under [`Precision::Fast32`]).
    v: Vec<f64>,
    /// Fast-lane frontier (empty under [`Precision::Exact64`]).
    v32: Vec<f32>,
    /// Backpointer window: entries for ticks `base .. pushed`.
    window: VecDeque<E>,
    /// Recycled window entries (see [`TrellisEntry`]).
    free: Vec<E>,
    /// Tick index of `window[0]`.
    base: usize,
    /// Ticks consumed so far.
    pushed: usize,
    states_explored: u64,
    transition_ops: u64,
    /// All step-kernel scratch — beam survivors, fold buffers, ping-pong
    /// frontier — allocated once per stream, reused every push.
    arena: TrellisArena,
    /// Whether the current frontier was restricted (always `false` under
    /// [`Beam::Exact`]).
    pruned: bool,
}

impl<E: TrellisEntry> OnlineTrellis<E> {
    /// An empty stream with the given smoothing lag.
    pub fn new(lag: Lag) -> Self {
        Self {
            lag,
            v: Vec::new(),
            v32: Vec::new(),
            window: VecDeque::new(),
            free: Vec::new(),
            base: 0,
            pushed: 0,
            states_explored: 0,
            transition_ops: 0,
            arena: TrellisArena::new(),
            pruned: false,
        }
    }

    /// Rebuilds a core from parked state; `keep` seeds the pending
    /// beam-survivor set (the free list and arena scratch restore empty —
    /// they only exist to avoid steady-state allocations).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        lag: Lag,
        v: Vec<f64>,
        v32: Vec<f32>,
        window: VecDeque<E>,
        base: usize,
        pushed: usize,
        states_explored: u64,
        transition_ops: u64,
        pruned: bool,
        keep: &[u32],
    ) -> Self {
        let mut arena = TrellisArena::new();
        arena.beam.set_keep(keep);
        Self {
            lag,
            v,
            v32,
            window,
            free: Vec::new(),
            base,
            pushed,
            states_explored,
            transition_ops,
            arena,
            pruned,
        }
    }

    /// Ticks consumed so far.
    pub fn ticks_pushed(&self) -> usize {
        self.pushed
    }

    /// Current backpointer-window length (bounded by `lag + 2` for
    /// [`Lag::Fixed`]).
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Tick index of the oldest retained window entry.
    pub fn base(&self) -> usize {
        self.base
    }

    /// The smoothing lag this stream runs under.
    pub fn lag(&self) -> Lag {
        self.lag
    }

    /// Σ_t |S(t)| states instantiated so far.
    pub fn states_explored(&self) -> u64 {
        self.states_explored
    }

    /// Σ transition evaluations performed so far.
    pub fn transition_ops(&self) -> u64 {
        self.transition_ops
    }

    /// Whether the current frontier was beam-restricted.
    pub fn pruned(&self) -> bool {
        self.pruned
    }

    /// The pending beam-survivor set a pruned next step would consume.
    pub fn keep(&self) -> &[u32] {
        self.arena.beam.keep()
    }

    /// The exact-lane frontier (empty under [`Precision::Fast32`]).
    pub fn frontier(&self) -> &[f64] {
        &self.v
    }

    /// The fast-lane frontier (empty under [`Precision::Exact64`]).
    pub fn frontier32(&self) -> &[f32] {
        &self.v32
    }

    /// The retained window entries, oldest first (for parking).
    pub fn entries(&self) -> impl Iterator<Item = &E> + '_ {
        self.window.iter()
    }

    /// Pops a pooled entry (or a fresh default) for the caller to fill
    /// before [`push_entry`](Self::push_entry).
    pub fn take_entry(&mut self) -> E {
        self.free.pop().unwrap_or_default()
    }

    /// The allowed-macro scratch buffer shared with `fill_slice`-style
    /// entry fills.
    pub fn scratch_macro_ids(&mut self) -> &mut Vec<usize> {
        &mut self.arena.step.macro_ids
    }

    /// Consumes one filled entry, advancing the frontier by one DP step
    /// in the decoder's configured lane (init on the first tick) and
    /// charging `n_states` to the exploration counter. The caller follows
    /// up with [`emit_ready`](Self::emit_ready).
    pub fn push_entry<F>(&mut self, family: &F, decoder: DecoderConfig, mut entry: E, n_states: u64)
    where
        F: TrellisFamily<f64, Entry = E> + TrellisFamily<f32, Entry = E>,
    {
        self.states_explored += n_states;
        let prev = self.window.back();
        match decoder.precision {
            Precision::Exact64 => advance::<f64, F>(
                family,
                decoder.beam,
                prev,
                &mut entry,
                &mut self.v,
                &mut self.arena.step,
                &mut self.arena.beam,
                &mut self.pruned,
                &mut self.transition_ops,
            ),
            Precision::Fast32 => advance::<f32, F>(
                family,
                decoder.beam,
                prev,
                &mut entry,
                &mut self.v32,
                &mut self.arena.step32,
                &mut self.arena.beam,
                &mut self.pruned,
                &mut self.transition_ops,
            ),
        }
        self.window.push_back(entry);
        self.pushed += 1;
    }

    /// The newest retained window entry — the `prev` a batched step folds
    /// out of (`None` before the first push).
    pub fn last_entry(&self) -> Option<&E> {
        self.window.back()
    }

    /// Commits one externally computed DP step (the fleet-batched path):
    /// the caller has already advanced this stream's frontier in place
    /// (via [`BatchLane::frontier_vec`]) and filled `entry`'s
    /// backpointers; this performs the rest of
    /// [`push_entry`](Self::push_entry) in the exact same order —
    /// exploration charge, transition charge, beam selection on the new
    /// frontier, window append, cursor advance — so accounting and
    /// pruning state stay bit-identical to the unbatched push.
    pub fn commit_external_step(
        &mut self,
        entry: E,
        n_states: u64,
        charge: u64,
        decoder: DecoderConfig,
    ) {
        self.states_explored += n_states;
        self.transition_ops += charge;
        self.pruned = match decoder.precision {
            Precision::Exact64 => decoder.beam.select_log(&self.v, &mut self.arena.beam),
            Precision::Fast32 => decoder.beam.select_log(&self.v32, &mut self.arena.beam),
        };
        self.window.push_back(entry);
        self.pushed += 1;
    }

    /// Argmax of the live frontier, in whichever lane the decoder runs.
    ///
    /// # Panics
    /// Panics if no tick was ever pushed (empty frontier).
    pub fn frontier_argmax(&self, precision: Precision) -> (usize, f64) {
        match precision {
            Precision::Exact64 => scalar::argmax(&self.v),
            Precision::Fast32 => {
                let (i, s) = scalar::argmax(&self.v32);
                (i, f64::from(s))
            }
        }
    }

    /// Walks the backpointer window from the current frontier argmax down
    /// to window index `idx`, returning the state index there.
    pub fn state_at(&self, idx: usize, precision: Precision) -> usize {
        let (mut j, _) = self.frontier_argmax(precision);
        for i in (idx + 1..self.window.len()).rev() {
            j = self.window[i].back()[j] as usize;
        }
        j
    }

    /// The fixed-lag ripening schedule, shared by every family: after a
    /// push, if tick `pushed - 1 - lag` has ripened, resolve its smoothed
    /// state, build the family's decision via `decide(entry, state, tick)`,
    /// and drop every no-longer-needed window entry to the free list.
    /// Returns `None` under [`Lag::Unbounded`] or before the horizon
    /// fills. Must be called after at least one
    /// [`push_entry`](Self::push_entry).
    pub fn emit_ready<D>(
        &mut self,
        precision: Precision,
        decide: impl FnOnce(&E, usize, usize) -> D,
    ) -> Option<D> {
        let Lag::Fixed(lag) = self.lag else {
            return None;
        };
        let last = self.pushed - 1;
        if last < lag {
            return None;
        }
        let tick = last - lag;
        let idx = tick - self.base;
        let j = self.state_at(idx, precision);
        let decision = decide(&self.window[idx], j, tick);
        // Entries at or before the emitted tick are never read again —
        // except the newest entry, which the next step needs as `prev`.
        // Dropped entries keep their buffers: they go to the free list and
        // the next push refills them in place.
        while self.base <= tick && self.window.len() > 1 {
            let entry = self.window.pop_front().expect("nonempty window");
            self.free.push(entry);
            self.base += 1;
        }
        Some(decision)
    }

    /// Finalization tail walk, shared by every family: resolves the
    /// uncommitted ticks `committed..pushed` against the final frontier
    /// argmax (newest first, then reversed into place), building each
    /// decision via `decide(entry, state)`. Returns the tail decisions in
    /// tick order plus the final frontier log-score.
    pub fn resolve_tail<D>(
        &self,
        precision: Precision,
        committed: usize,
        mut decide: impl FnMut(&E, usize) -> D,
    ) -> (Vec<D>, f64) {
        let (mut j, log_prob) = self.frontier_argmax(precision);
        let mut tail: Vec<D> = Vec::with_capacity(self.pushed - committed);
        for t in (committed..self.pushed).rev() {
            let idx = t - self.base;
            let entry = &self.window[idx];
            tail.push(decide(entry, j));
            if idx > 0 {
                j = entry.back()[j] as usize;
            }
        }
        tail.reverse();
        (tail, log_prob)
    }
}

/// Shared scratch of a *fleet-batched* stepping pass: one
/// [`BatchScratch`](crate::arena::BatchScratch) per scoring lane, owned
/// by whoever drives cohorts of co-model streams (one per router shard in
/// the serving tier). Allocated once, reused across rounds; only the lane
/// a cohort actually runs in ever grows.
#[derive(Debug, Clone, Default)]
pub struct BatchedTrellis {
    s64: crate::arena::BatchScratch<f64>,
    s32: crate::arena::BatchScratch<f32>,
}

impl BatchedTrellis {
    /// An empty batched-stepping scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Lane selection for the fleet-batched step drivers: maps a [`Scalar`]
/// lane onto its [`BatchedTrellis`] scratch half and its
/// [`OnlineTrellis`] frontier vector, so batch drivers can be written
/// once, generic over the lane.
pub trait BatchLane: Scalar {
    /// This lane's half of the batched scratch.
    #[doc(hidden)]
    fn scratch(bt: &mut BatchedTrellis) -> &mut crate::arena::BatchScratch<Self>;

    /// This lane's live frontier of an online core (read side).
    #[doc(hidden)]
    fn frontier_of<E>(core: &OnlineTrellis<E>) -> &[Self];

    /// This lane's live frontier of an online core (write-back side).
    #[doc(hidden)]
    fn frontier_vec<E>(core: &mut OnlineTrellis<E>) -> &mut Vec<Self>;
}

impl BatchLane for f64 {
    fn scratch(bt: &mut BatchedTrellis) -> &mut crate::arena::BatchScratch<f64> {
        &mut bt.s64
    }

    fn frontier_of<E>(core: &OnlineTrellis<E>) -> &[f64] {
        &core.v
    }

    fn frontier_vec<E>(core: &mut OnlineTrellis<E>) -> &mut Vec<f64> {
        &mut core.v
    }
}

impl BatchLane for f32 {
    fn scratch(bt: &mut BatchedTrellis) -> &mut crate::arena::BatchScratch<f32> {
        &mut bt.s32
    }

    fn frontier_of<E>(core: &OnlineTrellis<E>) -> &[f32] {
        &core.v32
    }

    fn frontier_vec<E>(core: &mut OnlineTrellis<E>) -> &mut Vec<f32> {
        &mut core.v32
    }
}

impl StateSpace for crate::arena::Slice {
    fn len(&self) -> usize {
        self.activities.len()
    }

    fn n_slots(&self) -> usize {
        self.uniq_pairs.len()
    }

    fn slot(&self, j: usize) -> u32 {
        self.slots[j]
    }

    fn slot_pair(&self, s: usize) -> u32 {
        self.uniq_pairs[s]
    }

    fn pair(&self, j: usize) -> u32 {
        self.pairs[j]
    }

    fn group_of(&self, j: usize) -> u32 {
        self.activities[j] as u32
    }

    fn runs(&self) -> &[(u32, u32, u32)] {
        &self.runs
    }

    fn emission(&self, j: usize) -> f64 {
        self.emissions[j]
    }
}
