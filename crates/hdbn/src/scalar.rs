//! Scoring-precision abstraction: the [`Scalar`] trait the step kernels
//! are generic over, plus the fixed-width lane folds they share.
//!
//! Every decode path in this crate advances a trellis frontier with three
//! primitive folds: a plain running max (the same-activity run caches), a
//! `frontier + transition-column` max (the dst-major `into_row` gathers),
//! and an argmax over the final frontier. All three are *selections* —
//! no arithmetic is reassociated — so they can be evaluated in fixed-width
//! chunks without changing a single bit of the exact (`f64`) result, while
//! giving the stable-toolchain autovectorizer a shape it reliably turns
//! into SIMD: explicit 8-wide accumulator arrays over contiguous slices
//! (no nightly `std::simd`).
//!
//! [`Scalar`] is implemented for `f64` (the exact lane — bit-identical to
//! the historical decoders) and `f32` (the fast lane — half the memory
//! traffic and twice the SIMD width, selected per decoder by
//! [`Precision::Fast32`] on [`DecoderConfig`](crate::DecoderConfig)). The
//! f32 lane scores through the lazily built
//! [`ScoreTablesF32`](crate::ScoreTablesF32) mirror; agreement with the
//! exact lane is held to tolerance by `tests/precision_lane.rs` and the
//! `cace-testkit` comparison layer, not to bit-identity.
//!
//! This trait is deliberately small — a `const`, two conversions, and a
//! table accessor — because it is the seam the ROADMAP's generic-trellis
//! refactor will widen: kernels written against `Scalar` today are the
//! kernels a future integer or fixed-point lane drops into.

use std::fmt::Debug;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

use crate::params::HdbnParams;
use crate::tables::ScoreTablesT;

/// Scoring precision of a decoder — which [`Scalar`] lane the step kernels
/// run in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Exact `f64` scoring: bit-identical to the historical decoders and
    /// to the naive reference scorers. The default.
    #[default]
    Exact64,
    /// Reduced-precision `f32` scoring through the lazily built
    /// [`ScoreTablesF32`](crate::ScoreTablesF32) mirror: ~2x faster per
    /// tick (half the table/frontier memory traffic, twice the SIMD
    /// lanes), deterministic, but *not* bit-identical to
    /// [`Precision::Exact64`] — agreement is a measured tolerance
    /// (≥99% of per-tick argmax decisions on the fig9 workload), not an
    /// identity.
    Fast32,
}

/// A trellis score type the step kernels can be instantiated over.
///
/// Implemented for `f64` (exact) and `f32` (fast). The bounds are exactly
/// what the Viterbi recursions need: copyable totally-unordered-free
/// comparison (`PartialOrd` — scores are never NaN), addition for
/// score accumulation, subtraction for log-threshold beams, and a
/// `-∞` identity for max folds.
pub trait Scalar:
    Copy
    + Clone
    + Default
    + Debug
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// The max-fold identity (`-∞`).
    const NEG_INFINITY: Self;

    /// Converts an `f64` score into this lane.
    ///
    /// For `f64` this is the identity (which is what keeps the
    /// [`Precision::Exact64`] kernels bit-identical to the historical
    /// monomorphic ones). For `f32`, finite values are clamped into the
    /// finite `f32` range before the cast, so a legal finite score can
    /// never saturate to an absorbing `±∞` — in particular the log of the
    /// smallest positive subnormal `f64` (≈ −744.44) stays finite.
    fn from_f64(x: f64) -> Self;

    /// Converts a score of this lane back to `f64` (for reported
    /// log-probabilities and cross-lane comparisons).
    fn to_f64(self) -> f64;

    /// This lane's dense score tables of a model: the always-present `f64`
    /// tables for the exact lane, the lazily built mirror
    /// ([`HdbnParams::tables_f32`]) for the fast lane.
    fn tables(p: &HdbnParams) -> &ScoreTablesT<Self>;

    /// Compare-and-select max sweep: `acc[i] = max(acc[i], src[i])` with
    /// `arg[i]` set to the broadcast `j` wherever `src` strictly wins —
    /// the column-major accumulation primitive of the joint kernel's run
    /// caches. Strict `>` keeps the earlier candidate on ties, exactly
    /// like the scalar `if src[i] > acc[i]` scan, so the exact lane stays
    /// bit-identical to the historical kernels.
    ///
    /// Implemented per lane (not generically) so the compare/select can be
    /// phrased as width-matched *integer mask arithmetic* — every store
    /// unconditional — which the stable-toolchain loop vectorizer turns
    /// into packed compare + blend (`cmpnltps`/`maxps` + `andps`/`orps`);
    /// the generic select form scalarizes the float stores into per-lane
    /// branches.
    #[doc(hidden)]
    fn sweep_max(src: &[Self], j: u32, acc: &mut [Self], arg: &mut [u32]);

    /// [`Scalar::sweep_max`] with a broadcast addend:
    /// `acc[i] = max(acc[i], src[i] + g)` — the continue-run shape (one
    /// transition score per source state, swept across a destination row).
    #[doc(hidden)]
    fn sweep_add_max(src: &[Self], g: Self, j: u32, acc: &mut [Self], arg: &mut [u32]);

    /// [`Scalar::sweep_add_max`] taking the winning argmax per element
    /// from `src_arg` instead of a broadcast — the switch-run shape (each
    /// element carries the first-argmax of its cached run maximum).
    #[doc(hidden)]
    fn sweep_add_max_arg(src: &[Self], g: Self, src_arg: &[u32], acc: &mut [Self], arg: &mut [u32]);
}

impl Scalar for f64 {
    const NEG_INFINITY: Self = f64::NEG_INFINITY;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline(always)]
    fn tables(p: &HdbnParams) -> &ScoreTablesT<f64> {
        &p.tables
    }

    // `take ? x : acc` / `take ? j : arg` as bit selects over unconditional
    // stores: vectorizes 2-wide (`addpd`/`cmpnltpd`/`maxpd`, narrowed mask
    // for the u32 args). `#[inline(never)]` keeps each monomorphization a
    // standalone function whose `&[_]`/`&mut [_]` parameters carry noalias
    // guarantees — inlined into the large step kernel the vectorizer loses
    // them and falls back to scalar code.
    #[inline(never)]
    fn sweep_max(src: &[f64], j: u32, acc: &mut [f64], arg: &mut [u32]) {
        for ((&x, a), r) in src.iter().zip(acc.iter_mut()).zip(arg.iter_mut()) {
            let take = x > *a;
            let m = (take as u64).wrapping_neg();
            let m32 = (take as u32).wrapping_neg();
            *r = (j & m32) | (*r & !m32);
            *a = f64::from_bits((x.to_bits() & m) | (a.to_bits() & !m));
        }
    }

    #[inline(never)]
    fn sweep_add_max(src: &[f64], g: f64, j: u32, acc: &mut [f64], arg: &mut [u32]) {
        for ((&v, a), r) in src.iter().zip(acc.iter_mut()).zip(arg.iter_mut()) {
            let x = v + g;
            let take = x > *a;
            let m = (take as u64).wrapping_neg();
            let m32 = (take as u32).wrapping_neg();
            *r = (j & m32) | (*r & !m32);
            *a = f64::from_bits((x.to_bits() & m) | (a.to_bits() & !m));
        }
    }

    #[inline(never)]
    fn sweep_add_max_arg(src: &[f64], g: f64, src_arg: &[u32], acc: &mut [f64], arg: &mut [u32]) {
        for (((&v, &ja), a), r) in src
            .iter()
            .zip(src_arg.iter())
            .zip(acc.iter_mut())
            .zip(arg.iter_mut())
        {
            let x = v + g;
            let take = x > *a;
            let m = (take as u64).wrapping_neg();
            let m32 = (take as u32).wrapping_neg();
            *r = (ja & m32) | (*r & !m32);
            *a = f64::from_bits((x.to_bits() & m) | (a.to_bits() & !m));
        }
    }
}

impl Scalar for f32 {
    const NEG_INFINITY: Self = f32::NEG_INFINITY;

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        // A bare `as` cast saturates finite-but-out-of-range magnitudes to
        // ±∞, which would turn a legal finite score into an absorbing
        // infinity; clamp into the finite f32 range instead. Structural
        // ±∞ (and only those) pass through.
        if x.is_finite() {
            x.clamp(f32::MIN as f64, f32::MAX as f64) as f32
        } else {
            x as f32
        }
    }

    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline(always)]
    fn tables(p: &HdbnParams) -> &ScoreTablesT<f32> {
        p.tables_f32()
    }

    // Same bit-select shape as the f64 lane, u32 masks throughout:
    // vectorizes 4-wide (`addps`/`cmpnltps`/`maxps` + `andps`/`orps` arg
    // blends) — twice the f64 lane's elements per chunk at the same
    // per-chunk instruction count, which is where the fast lane's per-tick
    // speedup comes from.
    #[inline(never)]
    fn sweep_max(src: &[f32], j: u32, acc: &mut [f32], arg: &mut [u32]) {
        for ((&x, a), r) in src.iter().zip(acc.iter_mut()).zip(arg.iter_mut()) {
            let take = x > *a;
            let m = (take as u32).wrapping_neg();
            *r = (j & m) | (*r & !m);
            *a = f32::from_bits((x.to_bits() & m) | (a.to_bits() & !m));
        }
    }

    #[inline(never)]
    fn sweep_add_max(src: &[f32], g: f32, j: u32, acc: &mut [f32], arg: &mut [u32]) {
        for ((&v, a), r) in src.iter().zip(acc.iter_mut()).zip(arg.iter_mut()) {
            let x = v + g;
            let take = x > *a;
            let m = (take as u32).wrapping_neg();
            *r = (j & m) | (*r & !m);
            *a = f32::from_bits((x.to_bits() & m) | (a.to_bits() & !m));
        }
    }

    #[inline(never)]
    fn sweep_add_max_arg(src: &[f32], g: f32, src_arg: &[u32], acc: &mut [f32], arg: &mut [u32]) {
        for (((&v, &ja), a), r) in src
            .iter()
            .zip(src_arg.iter())
            .zip(acc.iter_mut())
            .zip(arg.iter_mut())
        {
            let x = v + g;
            let take = x > *a;
            let m = (take as u32).wrapping_neg();
            *r = (ja & m) | (*r & !m);
            *a = f32::from_bits((x.to_bits() & m) | (a.to_bits() & !m));
        }
    }
}

/// Chunk width of the lane folds: 8 explicit accumulators, wide enough to
/// fill an AVX2 register in f32 and two in f64, and comfortably unrollable
/// on the SSE2 baseline.
const LANES: usize = 8;

/// First-argmax max fold over a contiguous slice, 8-wide.
///
/// Returns `(best, arg)` where `arg` is the *smallest* index attaining
/// `best` (`(S::NEG_INFINITY, 0)` for an empty or all-`-∞` slice) —
/// bit-identical to the scalar `if v[i] > best` scan: per-lane strict `>`
/// keeps the first maximum within a lane, and the cross-lane reduction
/// breaks value ties toward the smaller index.
#[inline]
pub(crate) fn fold_max<S: Scalar>(v: &[S]) -> (S, u32) {
    let chunks = v.len() / LANES;
    let mut best = S::NEG_INFINITY;
    let mut arg = 0u32;
    if chunks > 0 {
        let mut acc = [S::NEG_INFINITY; LANES];
        let mut acc_arg = [0u32; LANES];
        for c in 0..chunks {
            let base = c * LANES;
            let chunk = &v[base..base + LANES];
            for l in 0..LANES {
                if chunk[l] > acc[l] {
                    acc[l] = chunk[l];
                    acc_arg[l] = (base + l) as u32;
                }
            }
        }
        for l in 0..LANES {
            if acc[l] > best || (acc[l] == best && acc_arg[l] < arg) {
                best = acc[l];
                arg = acc_arg[l];
            }
        }
    }
    for (i, &x) in v.iter().enumerate().skip(chunks * LANES) {
        if x > best {
            best = x;
            arg = i as u32;
        }
    }
    (best, arg)
}

/// First-argmax max fold of `a[i] + b[i]` over two equal-length contiguous
/// slices, 8-wide — the `frontier + pre-gathered transition column` shape
/// of the dst-major `into_row` folds. Same tie-breaking contract as
/// [`fold_max`]; per-element sums are unchanged, so the exact lane stays
/// bit-identical to the scalar scan.
#[inline]
pub(crate) fn fold_max_sum<S: Scalar>(a: &[S], b: &[S]) -> (S, u32) {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let chunks = n / LANES;
    let mut best = S::NEG_INFINITY;
    let mut arg = 0u32;
    if chunks > 0 {
        let mut acc = [S::NEG_INFINITY; LANES];
        let mut acc_arg = [0u32; LANES];
        for c in 0..chunks {
            let base = c * LANES;
            let ca = &a[base..base + LANES];
            let cb = &b[base..base + LANES];
            for l in 0..LANES {
                let x = ca[l] + cb[l];
                if x > acc[l] {
                    acc[l] = x;
                    acc_arg[l] = (base + l) as u32;
                }
            }
        }
        for l in 0..LANES {
            if acc[l] > best || (acc[l] == best && acc_arg[l] < arg) {
                best = acc[l];
                arg = acc_arg[l];
            }
        }
    }
    for i in chunks * LANES..n {
        let x = a[i] + b[i];
        if x > best {
            best = x;
            arg = i as u32;
        }
    }
    (best, arg)
}

/// [`Scalar::sweep_max`] as a free function (kernel-side call-site sugar).
#[inline]
pub(crate) fn sweep_max<S: Scalar>(src: &[S], j: u32, acc: &mut [S], arg: &mut [u32]) {
    S::sweep_max(src, j, acc, arg);
}

/// [`Scalar::sweep_add_max`] as a free function.
#[inline]
pub(crate) fn sweep_add_max<S: Scalar>(src: &[S], g: S, j: u32, acc: &mut [S], arg: &mut [u32]) {
    S::sweep_add_max(src, g, j, acc, arg);
}

/// [`Scalar::sweep_add_max_arg`] as a free function.
#[inline]
pub(crate) fn sweep_add_max_arg<S: Scalar>(
    src: &[S],
    g: S,
    src_arg: &[u32],
    acc: &mut [S],
    arg: &mut [u32],
) {
    S::sweep_add_max_arg(src, g, src_arg, acc, arg);
}

/// Last-argmax frontier argmax — the termination rule of every decoder
/// (`Iterator::max_by` keeps the *last* maximum, and the historical
/// decoders terminate through it, so this must too).
///
/// # Panics
/// Panics on an empty frontier (decoders never produce one).
#[inline]
pub fn argmax<S: Scalar>(v: &[S]) -> (usize, S) {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .map(|(i, &s)| (i, s))
        .expect("nonempty trellis")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_fold(v: &[f64]) -> (f64, u32) {
        let mut best = f64::NEG_INFINITY;
        let mut arg = 0u32;
        for (i, &x) in v.iter().enumerate() {
            if x > best {
                best = x;
                arg = i as u32;
            }
        }
        (best, arg)
    }

    #[test]
    fn fold_max_matches_scalar_scan_with_ties_and_remainders() {
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 7) as f64) - 3.0 // few distinct values → many ties
        };
        for len in 0..70 {
            let v: Vec<f64> = (0..len).map(|_| next()).collect();
            if v.is_empty() {
                assert_eq!(fold_max(&v), (f64::NEG_INFINITY, 0));
                continue;
            }
            assert_eq!(fold_max(&v), scalar_fold(&v), "len {len}");
            let w: Vec<f64> = v.iter().map(|&x| -x).collect();
            assert_eq!(fold_max(&w), scalar_fold(&w), "len {len} negated");
        }
    }

    #[test]
    fn fold_max_sum_matches_scalar_scan() {
        let a: Vec<f64> = (0..37).map(|i| ((i * 7) % 5) as f64).collect();
        let b: Vec<f64> = (0..37).map(|i| ((i * 3) % 4) as f64 - 1.0).collect();
        let sums: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        assert_eq!(fold_max_sum(&a, &b), scalar_fold(&sums));
    }

    #[test]
    fn folds_handle_neg_infinity_runs() {
        let v = [f64::NEG_INFINITY; 19];
        assert_eq!(fold_max(&v), (f64::NEG_INFINITY, 0));
        let mut v = vec![f64::NEG_INFINITY; 19];
        v[11] = -2.0;
        assert_eq!(fold_max(&v), (-2.0, 11));
    }

    #[test]
    fn f32_from_f64_clamps_finite_overflow_but_keeps_infinities() {
        // ln of the smallest positive subnormal f64: deeply negative but
        // finite, and comfortably inside f32 range.
        let tiny_log = f64::from_bits(1).ln();
        assert!(tiny_log < -700.0);
        assert!(<f32 as Scalar>::from_f64(tiny_log).is_finite());
        // A finite f64 beyond f32 range clamps instead of saturating.
        assert_eq!(<f32 as Scalar>::from_f64(-1e300), f32::MIN);
        assert_eq!(<f32 as Scalar>::from_f64(1e300), f32::MAX);
        // Structural infinities pass through.
        assert_eq!(
            <f32 as Scalar>::from_f64(f64::NEG_INFINITY),
            f32::NEG_INFINITY
        );
    }

    #[test]
    fn argmax_keeps_the_last_maximum_like_max_by() {
        assert_eq!(argmax(&[1.0f64, 3.0, 3.0, 2.0]), (2, 3.0));
        assert_eq!(argmax(&[5.0f32]), (0, 5.0));
    }
}
