//! HDBN parameters: log-space CPTs assembled from the constraint miner's
//! statistics.

use std::sync::OnceLock;

use cace_mining::HierarchicalStats;
use cace_model::ModelError;
use serde::{Deserialize, Serialize};

use crate::tables::{ScoreTables, ScoreTablesF32};

/// Structural configuration of the coupled model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HdbnConfig {
    /// Weight of the inter-user concurrent coupling factor
    /// (`0` = independent chains, `1` = full co-occurrence CPT).
    pub coupling_weight: f64,
    /// Weight of the hierarchical `P(micro | macro)` factors.
    pub hierarchy_weight: f64,
    /// Extra log-bonus for remaining in the same macro activity, on top of
    /// the mined termination probability (stabilizes segmentation).
    pub persistence_bonus: f64,
}

impl Default for HdbnConfig {
    fn default() -> Self {
        Self {
            coupling_weight: 1.0,
            hierarchy_weight: 1.0,
            persistence_bonus: 0.0,
        }
    }
}

impl HdbnConfig {
    /// A configuration with the inter-user coupling disabled (per-user
    /// hierarchical model only).
    pub fn uncoupled() -> Self {
        Self {
            coupling_weight: 0.0,
            ..Self::default()
        }
    }
}

/// Log-space parameter tables of the (coupled) HDBN.
#[derive(Debug, Clone)]
pub struct HdbnParams {
    /// The mined statistics the tables were built from.
    pub stats: HierarchicalStats,
    /// Model configuration.
    pub config: HdbnConfig,
    /// `log P(macro)` prior (restart distribution, Eqn 12).
    pub log_prior: Vec<f64>,
    /// `log P(macro_t | macro_{t−1})` for macro changes, renormalized over
    /// `j ≠ i`.
    pub log_switch: Vec<Vec<f64>>,
    /// `log P(end | macro)` and `log P(continue | macro)` (Augmentation 1).
    pub log_end: Vec<f64>,
    /// `log (1 − P(end | macro))`.
    pub log_continue: Vec<f64>,
    /// `log P(partner | macro)` concurrent coupling (Augmentation 3),
    /// pre-scaled by `coupling_weight`.
    pub log_cooc: Vec<Vec<f64>>,
    /// `log P(postural | macro)` scaled by `hierarchy_weight`.
    pub log_post: Vec<Vec<f64>>,
    /// `log P(gestural | macro)` scaled by `hierarchy_weight`.
    pub log_gest: Vec<Vec<f64>>,
    /// `log P(location | macro)` scaled by `hierarchy_weight`.
    pub log_loc: Vec<Vec<f64>>,
    /// `log P(p_t | p_{t−1})` micro-level continuation.
    pub log_post_trans: Vec<Vec<f64>>,
    /// Dense precomputed decode-path tables over compact
    /// `(activity, postural)` pair ids — derived from the log tables above
    /// (never persisted; rebuilt by [`HdbnParams::new`] on snapshot load).
    /// Every decoder scores through these; the naive methods below are the
    /// reference definition they are built from.
    pub tables: ScoreTables,
    /// The `f32` mirror of [`Self::tables`], built lazily on the first
    /// `Fast32` decode ([`Self::tables_f32`]) so mining-only callers that
    /// construct params but never decode — and every `Exact64` decode —
    /// pay nothing for it. Like the f64 tables: derived state, never
    /// persisted, rebuilt (on demand) after snapshot load.
    tables_f32: OnceLock<ScoreTablesF32>,
    /// Lazily computed model fingerprint ([`Self::fingerprint`]).
    fingerprint: OnceLock<u64>,
}

/// 64-bit FNV-1a (same constants as the snapshot layer's checksum).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn log_table(rows: &[Vec<f64>], scale: f64) -> Vec<Vec<f64>> {
    rows.iter()
        .map(|r| r.iter().map(|&p| scale * p.max(1e-12).ln()).collect())
        .collect()
}

impl HdbnParams {
    /// Builds log tables from mined statistics.
    ///
    /// # Errors
    /// Propagates [`HierarchicalStats::validate`] failures.
    pub fn new(stats: HierarchicalStats, config: HdbnConfig) -> Result<Self, ModelError> {
        stats.validate()?;
        let n = stats.n_macro;

        let log_prior: Vec<f64> = stats
            .macro_prior
            .iter()
            .map(|&p| p.max(1e-12).ln())
            .collect();

        // Switch table: transition distribution conditioned on leaving state
        // i (diagonal removed, renormalized) — this is the `π_{i→j}` restart
        // table of Eqn 12 informed by the mined intra-user constraints.
        let mut log_switch = vec![vec![f64::NEG_INFINITY; n]; n];
        for i in 0..n {
            let off_mass: f64 = (0..n)
                .filter(|&j| j != i)
                .map(|j| stats.intra_trans[i][j])
                .sum();
            for j in 0..n {
                if j != i && off_mass > 0.0 {
                    log_switch[i][j] = (stats.intra_trans[i][j] / off_mass).max(1e-12).ln();
                }
            }
        }

        // Clamped like every other table: a mined end probability of
        // exactly 0 or 1 must not inject −∞ into the sum-based scores
        // (the pruned-forward and EM xi paths add these terms).
        let log_end: Vec<f64> = stats.end_prob.iter().map(|&p| p.max(1e-12).ln()).collect();
        let log_continue: Vec<f64> = stats
            .end_prob
            .iter()
            .map(|&p| (1.0 - p).max(1e-12).ln())
            .collect();

        let mut out = Self {
            log_prior,
            log_switch,
            log_end,
            log_continue,
            log_cooc: log_table(&stats.inter_cooc, config.coupling_weight),
            log_post: log_table(&stats.postural_given_macro, config.hierarchy_weight),
            log_gest: log_table(&stats.gestural_given_macro, config.hierarchy_weight),
            log_loc: log_table(&stats.location_given_macro, config.hierarchy_weight),
            log_post_trans: log_table(&stats.postural_trans, 1.0),
            stats,
            config,
            tables: ScoreTables::default(),
            tables_f32: OnceLock::new(),
            fingerprint: OnceLock::new(),
        };
        out.tables = ScoreTables::build(&out);
        Ok(out)
    }

    /// Number of macro activities.
    pub fn n_macro(&self) -> usize {
        self.stats.n_macro
    }

    /// The `f32` mirror of the dense score tables, building it on first
    /// use (entry-wise finite-preserving casts of [`Self::tables`] — one
    /// pass over the tables, amortized over every subsequent `Fast32`
    /// decode of this model). Thread-safe: concurrent first callers race
    /// benignly inside the `OnceLock`.
    pub fn tables_f32(&self) -> &ScoreTablesF32 {
        self.tables_f32.get_or_init(|| self.tables.to_f32())
    }

    /// A 64-bit fingerprint identifying this model's parameters: FNV-1a
    /// over the canonical serialized form of `(stats, config)` — exactly
    /// the pair persistence stores, because every log/score table is a
    /// deterministic function of it. Two `HdbnParams` fingerprint equal
    /// iff they decode identically, which is what the hot-swap layer needs
    /// to tell "same model, safe to resume" from "different model,
    /// requires an explicit migration". Computed once and cached.
    pub fn fingerprint(&self) -> u64 {
        *self
            .fingerprint
            .get_or_init(|| fnv1a64(serde::json::value_to_string(&self.serialize()).as_bytes()))
    }

    /// Hierarchical emission score of a micro tuple under a macro activity:
    /// `log P(p|a) + log P(g|a) + log P(l|a)` (Augmentation 2).
    ///
    /// `gestural` is `None` when the modality is absent (CASAS).
    pub fn hierarchy_score(
        &self,
        activity: usize,
        postural: usize,
        gestural: Option<usize>,
        location: usize,
    ) -> f64 {
        let mut score = self.log_post[activity][postural] + self.log_loc[activity][location];
        if let Some(g) = gestural {
            score += self.log_gest[activity][g];
        }
        score
    }

    /// Transition score between consecutive per-user states.
    ///
    /// Same macro: continue (Eqns 11/13) — `log(1−p_end) + log P(p_t|p_{t−1})`
    /// plus the persistence bonus. Different macro: terminate and restart
    /// (Eqns 12/14) — `log p_end + log π_{i→j}` (micro restarts from the
    /// hierarchy prior, which the emission side already scores).
    pub fn transition_score(
        &self,
        prev_activity: usize,
        prev_postural: usize,
        activity: usize,
        postural: usize,
    ) -> f64 {
        if activity == prev_activity {
            self.log_continue[prev_activity]
                + self.log_post_trans[prev_postural][postural]
                + self.config.persistence_bonus
        } else {
            self.log_end[prev_activity] + self.log_switch[prev_activity][activity]
        }
    }

    /// Concurrent inter-user coupling factor (Augmentation 3 / Prop 4).
    pub fn coupling_score(&self, activity_u1: usize, activity_u2: usize) -> f64 {
        self.log_cooc[activity_u1][activity_u2]
    }
}

// The log tables are a pure, deterministic function of (stats, config), so
// persistence stores only those two and rebuilds the tables through
// `HdbnParams::new` on load — the reconstructed tables are bit-identical
// because the float pipeline (`ln`, renormalization) reruns on bit-identical
// inputs.
impl serde::Serialize for HdbnParams {
    fn serialize(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("stats".to_string(), self.stats.serialize()),
            ("config".to_string(), self.config.serialize()),
        ])
    }
}

impl serde::Deserialize for HdbnParams {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let stats = HierarchicalStats::deserialize(value.expect_field("stats", "HdbnParams")?)?;
        let config = HdbnConfig::deserialize(value.expect_field("config", "HdbnParams")?)?;
        Self::new(stats, config)
            .map_err(|e| serde::Error::msg(format!("invalid HdbnParams tables: {e}")))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use cace_mining::constraint::{ConstraintMiner, LabeledSequence};

    pub(crate) fn toy_stats() -> HierarchicalStats {
        // Two activities, strongly self-persistent, always co-occurring.
        let mut macros = Vec::new();
        for r in 0..40 {
            for _ in 0..10 {
                macros.push(r % 2);
            }
        }
        let n = macros.len();
        let seq = LabeledSequence {
            macros: [macros.clone(), macros.clone()],
            posturals: [macros.clone(), macros.clone()],
            gesturals: [vec![0; n], vec![0; n]],
            locations: [macros.clone(), macros],
        };
        let miner = ConstraintMiner {
            laplace: 0.1,
            n_macro: 2,
            n_postural: 2,
            n_gestural: 2,
            n_location: 2,
        };
        miner.mine(&[seq]).unwrap()
    }

    #[test]
    fn params_build_and_tables_are_finite_where_expected() {
        let params = HdbnParams::new(toy_stats(), HdbnConfig::default()).unwrap();
        assert_eq!(params.n_macro(), 2);
        for i in 0..2 {
            assert!(params.log_prior[i].is_finite());
            assert!(params.log_end[i].is_finite());
            assert!(params.log_continue[i].is_finite());
            assert_eq!(params.log_switch[i][i], f64::NEG_INFINITY);
        }
    }

    #[test]
    fn continuation_beats_switching_for_persistent_activities() {
        let params = HdbnParams::new(toy_stats(), HdbnConfig::default()).unwrap();
        let stay = params.transition_score(0, 0, 0, 0);
        let switch = params.transition_score(0, 0, 1, 1);
        assert!(stay > switch, "stay {stay} vs switch {switch}");
    }

    #[test]
    fn coupling_prefers_cooccurring_partners() {
        let params = HdbnParams::new(toy_stats(), HdbnConfig::default()).unwrap();
        assert!(params.coupling_score(0, 0) > params.coupling_score(0, 1));
    }

    #[test]
    fn uncoupled_config_zeroes_coupling() {
        let params = HdbnParams::new(toy_stats(), HdbnConfig::uncoupled()).unwrap();
        assert_eq!(params.coupling_score(0, 1), 0.0);
        assert_eq!(params.coupling_score(0, 0), 0.0);
    }

    #[test]
    fn degenerate_end_probabilities_stay_finite() {
        // A mined end_prob of exactly 0.0 or 1.0 is legal input
        // (`validate` accepts the closed interval); the log tables must
        // clamp rather than store −∞, which would poison every sum-based
        // score downstream (forward filtering, EM xi terms).
        let mut stats = toy_stats();
        stats.end_prob = vec![0.0, 1.0];
        let params = HdbnParams::new(stats, HdbnConfig::default()).unwrap();
        for i in 0..2 {
            assert!(
                params.log_end[i].is_finite(),
                "log_end[{i}] = {}",
                params.log_end[i]
            );
            assert!(
                params.log_continue[i].is_finite(),
                "log_continue[{i}] = {}",
                params.log_continue[i]
            );
        }
        // And the dense tables inherit the clamp: a transition may be −∞
        // only through log_switch's structural zeros (no off-diagonal
        // mass out of an activity), never through a degenerate log_end /
        // log_continue.
        let t = &params.tables;
        let n_post = params.stats.n_postural;
        for src in 0..t.n_pair() as u32 {
            let ap = src as usize / n_post;
            for dst in 0..t.n_pair() as u32 {
                let a = dst as usize / n_post;
                let s = t.transition(src, dst);
                if a == ap {
                    assert!(s.is_finite(), "continue transition({src}, {dst}) = {s}");
                } else {
                    assert_eq!(
                        s.is_finite(),
                        params.log_switch[ap][a].is_finite(),
                        "switch transition({src}, {dst}) = {s} must be −∞ \
                         exactly when log_switch[{ap}][{a}] is"
                    );
                }
            }
        }
    }

    #[test]
    fn f32_mirror_is_lazy_cached_and_matches_entrywise_casts() {
        let params = HdbnParams::new(toy_stats(), HdbnConfig::default()).unwrap();
        let t32 = params.tables_f32();
        let t = &params.tables;
        for src in 0..t.n_pair() as u32 {
            for dst in 0..t.n_pair() as u32 {
                let x = t.transition(src, dst);
                let y = t32.transition(src, dst);
                if x.is_finite() {
                    // Toy scores are far inside f32 range: plain cast.
                    assert_eq!(y, x as f32);
                } else {
                    assert_eq!(y, f32::NEG_INFINITY);
                }
            }
        }
        // The structural −∞ diagonal survives the cast.
        assert_eq!(t32.switch_row(0)[0], f32::NEG_INFINITY);
        // Subsequent calls return the cached build, not a new one.
        assert!(std::ptr::eq(params.tables_f32(), t32));
    }

    #[test]
    fn fingerprint_identifies_the_stats_config_pair() {
        let a = HdbnParams::new(toy_stats(), HdbnConfig::default()).unwrap();
        let b = HdbnParams::new(toy_stats(), HdbnConfig::default()).unwrap();
        // Deterministic across independent builds of the same inputs.
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Cached: repeated calls agree (and a clone carries the cache).
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        // Any stats or config change moves the fingerprint.
        let mut stats = toy_stats();
        stats.end_prob[0] = (stats.end_prob[0] + 0.11).min(0.9);
        let c = HdbnParams::new(stats, HdbnConfig::default()).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = HdbnParams::new(toy_stats(), HdbnConfig::uncoupled()).unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn hierarchy_score_prefers_consistent_micro() {
        let params = HdbnParams::new(toy_stats(), HdbnConfig::default()).unwrap();
        // Activity 0 always had postural 0 / location 0.
        let good = params.hierarchy_score(0, 0, Some(0), 0);
        let bad = params.hierarchy_score(0, 1, Some(0), 1);
        assert!(good > bad);
        // Gestural omission path.
        let no_gest = params.hierarchy_score(0, 0, None, 0);
        assert!(no_gest.is_finite());
    }
}
