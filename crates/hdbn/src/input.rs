//! Inference inputs: per-tick candidate micro states with observation
//! log-likelihoods.

use cace_mining::{AtomSpace, UserCandidates};
use serde::{Deserialize, Serialize};

/// One candidate micro tuple for one user at one tick, with the total
//  observation log-likelihood of the wearable/ambient evidence given the
/// tuple (Augmentation 4's `log N(o; μ, Γ)` or classifier log-probabilities).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroCandidate {
    /// Postural id.
    pub postural: usize,
    /// Gestural id (`None` when the modality is absent).
    pub gestural: Option<usize>,
    /// Sub-location id.
    pub location: usize,
    /// `log P(observations | this micro tuple)`.
    pub obs_loglik: f64,
}

/// The per-tick inference input for both users.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TickInput {
    /// Candidate micro tuples per user (nonempty for valid inference).
    pub candidates: [Vec<MicroCandidate>; 2],
    /// Allowed macro activities per user (`None` = all allowed).
    pub macro_candidates: [Option<Vec<usize>>; 2],
    /// Optional per-macro observation log-bonus shared by both users
    /// (e.g. CASAS item-sensor evidence). Empty = no bonus.
    pub macro_bonus: Vec<f64>,
}

impl TickInput {
    /// Builds a tick input from pruned factorized candidates plus a scoring
    /// function `score(user, postural, gestural, location) -> log-lik`.
    ///
    /// `use_gestural` controls whether the gestural dimension is expanded
    /// (CACE) or collapsed (CASAS / ablation).
    ///
    /// Candidates are capped at `max_candidates` per user, keeping the
    /// highest-scoring tuples — the beam that keeps the *unpruned* strategies
    /// finite (the paper's NH strategy similarly bounds its state space by
    /// classifier hypotheses).
    pub fn from_candidates<F>(
        space: &AtomSpace,
        pruned: &[UserCandidates; 2],
        use_gestural: bool,
        max_candidates: usize,
        mut score: F,
    ) -> Self
    where
        F: FnMut(usize, usize, Option<usize>, usize) -> f64,
    {
        let mut out = TickInput::default();
        for u in 0..2 {
            let cand = &pruned[u];
            let posturals = UserCandidates::allowed(&cand.posturals);
            let gesturals: Vec<Option<usize>> = if use_gestural {
                UserCandidates::allowed(&cand.gesturals)
                    .into_iter()
                    .map(Some)
                    .collect()
            } else {
                vec![None]
            };
            let locations = UserCandidates::allowed(&cand.locations);
            let mut tuples =
                Vec::with_capacity(posturals.len() * gesturals.len() * locations.len());
            for &p in &posturals {
                for &g in &gesturals {
                    for &l in &locations {
                        // A NaN log-lik (degenerate classifier, adversarial
                        // feature vector) is clamped to -inf at ingestion —
                        // the same convention `Scalar::from_f64` uses — so it
                        // ranks below every finite candidate instead of
                        // poisoning the sort or the decode kernels.
                        let raw = score(u, p, g, l);
                        let obs_loglik = if raw.is_nan() { f64::NEG_INFINITY } else { raw };
                        tuples.push(MicroCandidate {
                            postural: p,
                            gestural: g,
                            location: l,
                            obs_loglik,
                        });
                    }
                }
            }
            tuples.sort_by(|a, b| b.obs_loglik.total_cmp(&a.obs_loglik));
            tuples.truncate(max_candidates.max(1));
            out.candidates[u] = tuples;

            let macros = UserCandidates::allowed(&cand.macros);
            out.macro_candidates[u] = if macros.len() == space.n_macro {
                None
            } else {
                Some(macros)
            };
        }
        out
    }

    /// Macro-level observation bonus for activity `a` (0 when absent).
    pub fn bonus(&self, a: usize) -> f64 {
        self.macro_bonus.get(a).copied().unwrap_or(0.0)
    }

    /// The allowed macro ids for a user (all of `0..n_macro` when
    /// unrestricted).
    pub fn macros_for(&self, user: usize, n_macro: usize) -> Vec<usize> {
        match &self.macro_candidates[user] {
            Some(m) => m.clone(),
            None => (0..n_macro).collect(),
        }
    }

    /// Joint per-tick state count: `∏_u |macros_u| · |micro candidates_u|`
    /// — the quantity the overhead experiments report.
    pub fn joint_states(&self, n_macro: usize) -> u64 {
        (0..2)
            .map(|u| {
                let nm = self.macro_candidates[u]
                    .as_ref()
                    .map(|m| m.len())
                    .unwrap_or(n_macro) as u64;
                nm * self.candidates[u].len().max(1) as u64
            })
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_and_cap() {
        let space = AtomSpace::cace();
        let pruned = [UserCandidates::full(&space), UserCandidates::full(&space)];
        let input = TickInput::from_candidates(&space, &pruned, true, 10, |_, p, _, _| {
            -(p as f64) // prefer low postural ids
        });
        assert_eq!(input.candidates[0].len(), 10);
        // Best candidates have postural 0.
        assert_eq!(input.candidates[0][0].postural, 0);
        assert!(input.macro_candidates[0].is_none());
        assert_eq!(input.joint_states(11), (11 * 10) * (11 * 10));
    }

    #[test]
    fn pruned_macro_candidates_are_recorded() {
        let space = AtomSpace::cace();
        let mut cand = UserCandidates::full(&space);
        for a in 1..space.n_macro {
            cand.macros[a] = false;
        }
        let pruned = [cand, UserCandidates::full(&space)];
        let input = TickInput::from_candidates(&space, &pruned, true, 5, |_, _, _, _| 0.0);
        assert_eq!(input.macro_candidates[0], Some(vec![0]));
        assert_eq!(input.macros_for(0, 11), vec![0]);
        assert_eq!(input.macros_for(1, 11).len(), 11);
        assert_eq!(input.joint_states(11), 5 * (11 * 5));
    }

    #[test]
    fn nan_log_liks_are_clamped_instead_of_panicking() {
        let space = AtomSpace::cace();
        let pruned = [UserCandidates::full(&space), UserCandidates::full(&space)];
        // Poison a subset of the scores with NaN; the build must not panic
        // and the NaN tuples must rank strictly below every finite one.
        let input = TickInput::from_candidates(&space, &pruned, true, 10, |_, p, _, l| {
            if (p + l) % 3 == 0 {
                f64::NAN
            } else {
                -(p as f64)
            }
        });
        assert_eq!(input.candidates[0].len(), 10);
        for c in &input.candidates[0] {
            assert!(c.obs_loglik.is_finite(), "NaN survived the cap");
        }
        // All-NaN ticks degrade to -inf candidates rather than a crash.
        let all_nan = TickInput::from_candidates(&space, &pruned, true, 4, |_, _, _, _| f64::NAN);
        assert_eq!(all_nan.candidates[1].len(), 4);
        for c in &all_nan.candidates[1] {
            assert_eq!(c.obs_loglik, f64::NEG_INFINITY);
        }
    }

    #[test]
    fn casas_mode_collapses_gesturals() {
        let space = AtomSpace::casas();
        let pruned = [UserCandidates::full(&space), UserCandidates::full(&space)];
        let input = TickInput::from_candidates(&space, &pruned, false, 1000, |_, _, _, _| 0.0);
        // 6 posturals × 14 locations, no gestural expansion.
        assert_eq!(input.candidates[0].len(), 84);
        assert!(input.candidates[0].iter().all(|c| c.gestural.is_none()));
    }
}
