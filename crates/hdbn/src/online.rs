//! Online (streaming) Viterbi decoding with fixed-lag smoothing.
//!
//! The batch decoders in [`crate::viterbi`] and [`crate::single`] need the
//! whole session upfront; a smart-home runtime gets one sensor tick at a
//! time. The decoders here maintain the *trellis frontier* — the best
//! log-score of every current joint state — plus a bounded backpointer
//! window, and advance it by one DP step per pushed tick:
//! `O(|S1||S2|(|S1|+|S2|))` for the coupled chain, `O(|S|²)` for a single
//! chain, exactly the per-tick cost of the batch recursion and *without*
//! re-decoding the growing prefix.
//!
//! Smoothing is controlled by a [`Lag`]:
//!
//! * [`Lag::Unbounded`] never commits mid-stream; `finalize` backtracks the
//!   full trellis. Because every frontier update goes through the same
//!   shared step functions as the batch decoder, the result is
//!   **bit-identical** to [`crate::CoupledHdbn::viterbi`] /
//!   [`crate::SingleHdbn::viterbi`] — equality of every float, not just of
//!   the argmax.
//! * [`Lag::Fixed(l)`](Lag::Fixed) emits the decision for tick `t - l`
//!   right after consuming tick `t` (classic fixed-lag smoothing), keeping
//!   the backpointer window at `l + 2` entries regardless of stream length.
//!   A `Lag::Fixed(l)` with `l >=` the eventual stream length behaves like
//!   `Unbounded` (no decision ever ripens mid-stream), so it is also
//!   bit-identical to the batch path.
//!
//! ```
//! use cace_hdbn::{Lag, MicroCandidate, TickInput};
//! # use cace_mining::constraint::{ConstraintMiner, LabeledSequence};
//! # use cace_hdbn::{CoupledHdbn, HdbnConfig, HdbnParams, OnlineCoupledViterbi};
//! # let macros: Vec<usize> = (0..400).map(|i| (i / 10) % 2).collect();
//! # let n = macros.len();
//! # let seq = LabeledSequence {
//! #     macros: [macros.clone(), macros.clone()],
//! #     posturals: [macros.clone(), macros.clone()],
//! #     gesturals: [vec![0; n], vec![0; n]],
//! #     locations: [macros.clone(), macros],
//! # };
//! # let stats = ConstraintMiner {
//! #     laplace: 0.1, n_macro: 2, n_postural: 2, n_gestural: 2, n_location: 2,
//! # }.mine(&[seq]).unwrap();
//! # let model = CoupledHdbn::new(HdbnParams::new(stats, HdbnConfig::default()).unwrap());
//! # let tick = |m: usize| {
//! #     let cands: Vec<MicroCandidate> = (0..2).map(|p| MicroCandidate {
//! #         postural: p, gestural: Some(0), location: p,
//! #         obs_loglik: if p == m { 0.0 } else { -4.0 },
//! #     }).collect();
//! #     TickInput { candidates: [cands.clone(), cands], macro_candidates: [None, None],
//! #                 macro_bonus: Vec::new() }
//! # };
//! let mut online = OnlineCoupledViterbi::new(model.clone(), Lag::Fixed(2));
//! for t in 0..10 {
//!     if let Some(decision) = online.push(&tick(0)).unwrap() {
//!         // Ticks ripen `lag` steps after arrival.
//!         assert_eq!(decision.tick, t - 2);
//!         assert_eq!(decision.macros, [0, 0]);
//!     }
//! }
//! // The tail (the last `lag` ticks) is resolved at finalization.
//! let path = online.finalize().unwrap();
//! assert_eq!(path.macros[0].len(), 10);
//! ```

use std::collections::VecDeque;
use std::sync::Arc;

use cace_model::ModelError;
use serde::{Deserialize, Serialize};

use crate::arena::{fill_slice, Slice, StepScratch};
use crate::beam::DecoderConfig;
use crate::input::{MicroCandidate, TickInput};
use crate::params::HdbnParams;
use crate::park::{ParkedChain, ParkedChainEntry, ParkedCoupled, ParkedJointEntry, ParkedSlice};
use crate::scalar::{Precision, Scalar};
use crate::single::{self, SingleHdbn, SinglePath};
use crate::trellis::{
    self, BatchLane, BatchedTrellis, HierModel, OnlineTrellis, TrellisEntry, TrellisFamily,
};
use crate::viterbi::{self, CoupledHdbn, JointPath};

/// Fixed-lag smoothing horizon of an online decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Lag {
    /// Never commit mid-stream; decode everything at finalization.
    /// Bit-identical to the batch Viterbi decoders.
    Unbounded,
    /// Emit the decision for tick `t - lag` after consuming tick `t`,
    /// keeping the backpointer window bounded at `lag + 2` entries.
    Fixed(usize),
}

impl Lag {
    /// Convenience constructor mirroring `Lag::Fixed`.
    pub fn ticks(lag: usize) -> Self {
        Lag::Fixed(lag)
    }

    /// Whether this lag never emits mid-stream decisions.
    pub fn is_unbounded(&self) -> bool {
        matches!(self, Lag::Unbounded)
    }
}

/// A mid-stream decision of [`OnlineCoupledViterbi`]: the smoothed joint
/// state of one (now `lag`-old) tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothedJoint {
    /// The tick index this decision is for (`pushed - 1 - lag`).
    pub tick: usize,
    /// Decoded macro activity per user.
    pub macros: [usize; 2],
    /// Decoded micro tuple per user.
    pub micros: [MicroCandidate; 2],
}

/// A mid-stream decision of [`OnlineSingleViterbi`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothedChain {
    /// The tick index this decision is for.
    pub tick: usize,
    /// Decoded macro activity.
    pub macro_id: usize,
    /// Decoded micro tuple.
    pub micro: MicroCandidate,
}

/// One retained tick of the coupled backpointer window (pooled through
/// the core's free list — see [`TrellisEntry`]).
#[derive(Debug, Clone, Default)]
struct JointEntry {
    s1: Slice,
    s2: Slice,
    /// Backpointers into the previous tick's flattened frontier (empty for
    /// the first tick of the stream).
    back: Vec<u32>,
    /// The tick's candidate tuples, retained so decisions can report
    /// micro states after the [`TickInput`] is gone.
    cands: [Vec<MicroCandidate>; 2],
}

impl TrellisEntry for JointEntry {
    fn back(&self) -> &[u32] {
        &self.back
    }
}

/// The coupled family's [`TrellisFamily`] instantiation: the generic
/// online core drives [`crate::viterbi`]'s bespoke two-pass joint kernels
/// (see the [`crate::trellis`] module docs for why the joint step stays
/// specialized).
struct CoupledFamily<'a> {
    p: &'a HdbnParams,
}

impl<S: Scalar> TrellisFamily<S> for CoupledFamily<'_> {
    type Entry = JointEntry;

    fn init(&self, entry: &mut JointEntry, v: &mut Vec<S>) {
        viterbi::joint_init_into(self.p, &entry.s1, &entry.s2, v);
        entry.back.clear();
    }

    fn step_dense(
        &self,
        prev: &JointEntry,
        v: &[S],
        entry: &mut JointEntry,
        step: &mut StepScratch<S>,
    ) -> u64 {
        let (k1, k2) = (prev.s1.len(), prev.s2.len());
        let JointEntry { s1, s2, back, .. } = entry;
        viterbi::joint_step_into(self.p, &prev.s1, &prev.s2, v, &*s1, &*s2, step, back);
        (k1 as u64 * k2 as u64) * (s1.len() as u64 + s2.len() as u64)
    }

    fn step_pruned(
        &self,
        prev: &JointEntry,
        v: &[S],
        keep: &[u32],
        entry: &mut JointEntry,
        step: &mut StepScratch<S>,
    ) -> u64 {
        let JointEntry { s1, s2, back, .. } = entry;
        viterbi::joint_step_pruned_into(self.p, &prev.s1, &prev.s2, v, keep, &*s1, &*s2, step, back)
    }
}

/// The single-chain family's [`TrellisFamily`] instantiation: the generic
/// chain kernels over [`HierModel`].
struct ChainFamily<'a> {
    p: &'a HdbnParams,
}

impl<S: Scalar> TrellisFamily<S> for ChainFamily<'_> {
    type Entry = ChainEntry;

    fn init(&self, entry: &mut ChainEntry, v: &mut Vec<S>) {
        trellis::init_into(&HierModel::new(self.p), &entry.slice, v);
        entry.back.clear();
    }

    fn step_dense(
        &self,
        prev: &ChainEntry,
        v: &[S],
        entry: &mut ChainEntry,
        step: &mut StepScratch<S>,
    ) -> u64 {
        let ChainEntry { slice, back, .. } = entry;
        trellis::step_dense_into(&HierModel::new(self.p), &prev.slice, v, &*slice, step, back);
        (prev.slice.len() * slice.len()) as u64
    }

    fn step_pruned(
        &self,
        prev: &ChainEntry,
        v: &[S],
        keep: &[u32],
        entry: &mut ChainEntry,
        step: &mut StepScratch<S>,
    ) -> u64 {
        let ChainEntry { slice, back, .. } = entry;
        trellis::step_pruned_into(
            &HierModel::new(self.p),
            &prev.slice,
            v,
            keep,
            &*slice,
            step,
            back,
        );
        (keep.len() * slice.len()) as u64
    }
}

/// Incremental fixed-lag decoder for the loosely-coupled two-chain HDBN.
///
/// Feed ticks with [`push`](Self::push); finish with
/// [`finalize`](Self::finalize). See the [module docs](self) for the
/// equivalence guarantees. The window/cursor/counter machinery lives in
/// the family-independent [`OnlineTrellis`]; this wrapper adds the coupled
/// state enumeration and the two-user decision bookkeeping.
#[derive(Debug, Clone)]
pub struct OnlineCoupledViterbi {
    model: CoupledHdbn,
    /// The model's shared parameters, held directly so the hot push path
    /// can borrow them alongside the core's arena without aliasing
    /// `model`.
    params: Arc<HdbnParams>,
    core: OnlineTrellis<JointEntry>,
    /// Decisions already emitted (prefix of the stream).
    emitted_macros: [Vec<usize>; 2],
    emitted_micros: [Vec<MicroCandidate>; 2],
}

/// Decodes one flattened joint state of `entry` into per-user macros and
/// micro tuples.
fn decode_joint(entry: &JointEntry, flat: usize) -> ([usize; 2], [MicroCandidate; 2]) {
    let m2 = entry.s2.len();
    let (j1, j2) = (flat / m2, flat % m2);
    (
        [entry.s1.activities[j1], entry.s2.activities[j2]],
        [
            entry.cands[0][entry.s1.cands[j1]],
            entry.cands[1][entry.s2.cands[j2]],
        ],
    )
}

impl OnlineCoupledViterbi {
    /// Starts an empty stream against a trained model (the model's
    /// [`DecoderConfig`] governs beam pruning).
    pub fn new(model: CoupledHdbn, lag: Lag) -> Self {
        let params = model.shared_params();
        Self {
            model,
            params,
            core: OnlineTrellis::new(lag),
            emitted_macros: [Vec::new(), Vec::new()],
            emitted_micros: [Vec::new(), Vec::new()],
        }
    }

    /// Ticks consumed so far.
    pub fn ticks_pushed(&self) -> usize {
        self.core.ticks_pushed()
    }

    /// Current backpointer-window length (bounded by `lag + 2` for
    /// [`Lag::Fixed`]).
    pub fn window_len(&self) -> usize {
        self.core.window_len()
    }

    /// Pre-reserves the emitted-decision history for `additional` more
    /// ticks, so a serving loop with a known stream length performs
    /// *strictly* zero heap allocations per push once warmed (without
    /// this, decision history growth still amortizes to O(1) allocations
    /// per tick).
    pub fn reserve_ticks(&mut self, additional: usize) {
        for u in 0..2 {
            self.emitted_macros[u].reserve(additional);
            self.emitted_micros[u].reserve(additional);
        }
    }

    /// Consumes one tick, advancing the frontier by one DP step; returns
    /// the newly ripened fixed-lag decision, if any.
    ///
    /// Steady-state cost: one dense (or beam-pruned) DP step over reused
    /// arena buffers and a recycled window entry — zero heap allocations
    /// once the stream is warmed (`tests/alloc_steady_state.rs`).
    ///
    /// # Errors
    /// [`ModelError::EmptyStateSpace`] if the tick has no candidates for
    /// some user.
    pub fn push(&mut self, tick: &TickInput) -> Result<Option<SmoothedJoint>, ModelError> {
        viterbi::validate_tick(tick, self.core.ticks_pushed())?;
        let mut entry = self.core.take_entry();
        fill_slice(
            &self.params,
            tick,
            0,
            self.core.scratch_macro_ids(),
            &mut entry.s1,
        );
        fill_slice(
            &self.params,
            tick,
            1,
            self.core.scratch_macro_ids(),
            &mut entry.s2,
        );
        for u in 0..2 {
            entry.cands[u].clear();
            entry.cands[u].extend_from_slice(&tick.candidates[u]);
        }
        let n_states = (entry.s1.len() * entry.s2.len()) as u64;
        let decoder = self.model.decoder();
        self.core
            .push_entry(&CoupledFamily { p: &self.params }, decoder, entry, n_states);
        Ok(self.emit_after_push())
    }

    /// The decision tail every push (scalar or batched) ends with: ripen
    /// the fixed-lag decision, record it in the emitted history.
    fn emit_after_push(&mut self) -> Option<SmoothedJoint> {
        let decoder = self.model.decoder();
        let emitted = &self.emitted_macros;
        let decision = self.core.emit_ready(decoder.precision, |entry, flat, t| {
            debug_assert_eq!(t, emitted[0].len());
            let (macros, micros) = decode_joint(entry, flat);
            SmoothedJoint {
                tick: t,
                macros,
                micros,
            }
        });
        if let Some(d) = &decision {
            for u in 0..2 {
                self.emitted_macros[u].push(d.macros[u]);
                self.emitted_micros[u].push(d.micros[u]);
            }
        }
        decision
    }

    /// Fleet-batched push: advances every stream in `homes` by the same
    /// tick through **one** fused kernel pass
    /// ([`crate::viterbi`]'s batched joint step), with each shared-table
    /// transition score loaded once and swept across the whole cohort.
    /// Per-home backpointer windows, decision cursors, beam state, and
    /// overhead accounting advance exactly as under per-home
    /// [`push`](Self::push) — decisions are bit-identical in the `f64`
    /// lane (f32 within the fast-lane tolerance contract).
    ///
    /// Returns `Ok(None)` — no stream touched — when the cohort is not
    /// batchable: fewer than two streams, parameters not literally shared
    /// (`Arc` identity), mismatched decoder config or lag, a stream
    /// before its first tick, an actively-pruning beam (divergent
    /// survivor sets), or structurally diverged previous slices. The
    /// caller then falls back to per-home pushes.
    ///
    /// # Errors
    /// [`ModelError::EmptyStateSpace`] if the tick has no candidates for
    /// some user; no stream is touched.
    pub fn push_batch(
        homes: &mut [&mut OnlineCoupledViterbi],
        tick: &TickInput,
        bt: &mut BatchedTrellis,
    ) -> Result<Option<Vec<Option<SmoothedJoint>>>, ModelError> {
        if homes.len() < 2 {
            return Ok(None);
        }
        let params = Arc::clone(&homes[0].params);
        let decoder = homes[0].model.decoder();
        let lag = homes[0].core.lag();
        let batchable = homes.iter().all(|h| {
            Arc::ptr_eq(&h.params, &params)
                && h.model.decoder() == decoder
                && h.core.lag() == lag
                && h.core.ticks_pushed() >= 1
                && !h.core.pruned()
        });
        if !batchable {
            return Ok(None);
        }
        {
            let first = homes[0].core.last_entry().expect("ticks_pushed >= 1");
            if !homes[1..].iter().all(|h| {
                let e = h.core.last_entry().expect("ticks_pushed >= 1");
                e.s1.same_shape(&first.s1) && e.s2.same_shape(&first.s2)
            }) {
                return Ok(None);
            }
        }
        viterbi::validate_tick(tick, homes[0].core.ticks_pushed())?;
        let decisions = match decoder.precision {
            Precision::Exact64 => Self::push_batch_lane::<f64>(homes, tick, bt, &params, decoder),
            Precision::Fast32 => Self::push_batch_lane::<f32>(homes, tick, bt, &params, decoder),
        };
        Ok(Some(decisions))
    }

    /// Lane-monomorphic body of [`push_batch`](Self::push_batch):
    /// eligibility and validation already hold.
    fn push_batch_lane<S: BatchLane>(
        homes: &mut [&mut OnlineCoupledViterbi],
        tick: &TickInput,
        bt: &mut BatchedTrellis,
        params: &Arc<HdbnParams>,
        decoder: DecoderConfig,
    ) -> Vec<Option<SmoothedJoint>> {
        // Phase A: fill each home's window entry from the shared tick
        // (identical slices by construction — `fill_slice` is pure in
        // (params, tick, user)).
        let mut entries: Vec<JointEntry> = Vec::with_capacity(homes.len());
        for home in homes.iter_mut() {
            let mut entry = home.core.take_entry();
            fill_slice(
                params,
                tick,
                0,
                home.core.scratch_macro_ids(),
                &mut entry.s1,
            );
            fill_slice(
                params,
                tick,
                1,
                home.core.scratch_macro_ids(),
                &mut entry.s2,
            );
            for u in 0..2 {
                entry.cands[u].clear();
                entry.cands[u].extend_from_slice(&tick.candidates[u]);
            }
            entries.push(entry);
        }
        let (m1, m2) = (entries[0].s1.len(), entries[0].s2.len());
        let n_states = (m1 * m2) as u64;

        // Phase B: one fused kernel pass over every frontier at once.
        let charge = {
            let bs = S::scratch(bt);
            let prev = homes[0].core.last_entry().expect("ticks_pushed >= 1");
            let vs: Vec<&[S]> = homes.iter().map(|h| S::frontier_of(&h.core)).collect();
            viterbi::joint_step_batch_into(
                params,
                &prev.s1,
                &prev.s2,
                &vs,
                &entries[0].s1,
                &entries[0].s2,
                bs,
            );
            (prev.s1.len() as u64 * prev.s2.len() as u64) * (m1 as u64 + m2 as u64)
        };

        // Phase C: per-home frontier swap, window commit (same ordering
        // as the scalar push), decision ripening.
        let bs = S::scratch(bt);
        let mut decisions = Vec::with_capacity(homes.len());
        for (h, (home, mut entry)) in homes.iter_mut().zip(entries).enumerate() {
            std::mem::swap(S::frontier_vec(&mut home.core), &mut bs.v_next[h]);
            std::mem::swap(&mut entry.back, &mut bs.back[h]);
            home.core
                .commit_external_step(entry, n_states, charge, decoder);
            decisions.push(home.emit_after_push());
        }
        decisions
    }

    /// Checkpoints the stream: everything the decode depends on — the
    /// live frontier, the backpointer window, the decision cursor and
    /// emitted history, the overhead counters, and the pending beam
    /// survivors — in a serializable form. The model is *not* captured;
    /// [`resume`](Self::resume) re-attaches one, so a fleet of parked
    /// homes shares a single `Arc<HdbnParams>`.
    pub fn park(&self) -> ParkedCoupled {
        ParkedCoupled {
            v: self.core.frontier().to_vec(),
            v32: self.core.frontier32().to_vec(),
            window: self
                .core
                .entries()
                .map(|e| ParkedJointEntry {
                    s1: ParkedSlice::from_slice(&e.s1),
                    s2: ParkedSlice::from_slice(&e.s2),
                    back: e.back.clone(),
                    cands: e.cands.clone(),
                })
                .collect(),
            base: self.core.base(),
            pushed: self.core.ticks_pushed(),
            emitted_macros: self.emitted_macros.clone(),
            emitted_micros: self.emitted_micros.clone(),
            states_explored: self.core.states_explored(),
            transition_ops: self.core.transition_ops(),
            pruned: self.core.pruned(),
            keep: self.core.keep().to_vec(),
        }
    }

    /// Rehydrates a parked stream against `model`, continuing exactly
    /// where [`park`](Self::park) left off: subsequent pushes, emitted
    /// decisions, overhead accounting, and `finalize` are bit-identical
    /// to the uninterrupted stream. `model` and `lag` must match the ones
    /// the stream was opened with (the snapshot layer persists and
    /// re-checks both).
    ///
    /// # Errors
    /// [`ModelError::Persistence`] when the parked state is structurally
    /// inconsistent with the model — every index is bounds-checked before
    /// any kernel runs, so a tampered payload fails cleanly instead of
    /// panicking.
    pub fn resume(
        model: CoupledHdbn,
        lag: Lag,
        parked: &ParkedCoupled,
    ) -> Result<Self, ModelError> {
        let params = model.shared_params();
        parked.validate(&params, model.decoder().precision, lag)?;
        let window: VecDeque<JointEntry> = parked
            .window
            .iter()
            .map(|e| JointEntry {
                s1: e.s1.to_slice(),
                s2: e.s2.to_slice(),
                back: e.back.clone(),
                cands: e.cands.clone(),
            })
            .collect();
        Ok(Self {
            model,
            params,
            core: OnlineTrellis::from_parts(
                lag,
                parked.v.clone(),
                parked.v32.clone(),
                window,
                parked.base,
                parked.pushed,
                parked.states_explored,
                parked.transition_ops,
                parked.pruned,
                &parked.keep,
            ),
            emitted_macros: parked.emitted_macros.clone(),
            emitted_micros: parked.emitted_micros.clone(),
        })
    }

    /// Ends the stream: emits every not-yet-committed tick by backtracking
    /// from the final frontier and returns the full decoded path.
    ///
    /// Under [`Lag::Unbounded`] (or a fixed lag at least as long as the
    /// stream) the returned [`JointPath`] is bit-identical to
    /// [`CoupledHdbn::viterbi`] on the same ticks.
    ///
    /// # Errors
    /// [`ModelError::InsufficientData`] if no tick was ever pushed.
    pub fn finalize(mut self) -> Result<JointPath, ModelError> {
        if self.core.ticks_pushed() == 0 {
            return Err(ModelError::InsufficientData {
                what: "viterbi decoding".into(),
                available: 0,
                required: 1,
            });
        }
        let committed = self.emitted_macros[0].len();
        let (tail, log_prob) =
            self.core
                .resolve_tail(self.model.decoder().precision, committed, decode_joint);
        let mut macros = std::mem::take(&mut self.emitted_macros);
        let mut micros = std::mem::take(&mut self.emitted_micros);
        for (m, c) in tail {
            for u in 0..2 {
                macros[u].push(m[u]);
                micros[u].push(c[u]);
            }
        }
        Ok(JointPath {
            macros,
            micros,
            log_prob,
            states_explored: self.core.states_explored(),
            transition_ops: self.core.transition_ops(),
        })
    }
}

/// One retained tick of a single-chain backpointer window (pooled like
/// [`JointEntry`]).
#[derive(Debug, Clone, Default)]
struct ChainEntry {
    slice: Slice,
    back: Vec<u32>,
    cands: Vec<MicroCandidate>,
}

impl TrellisEntry for ChainEntry {
    fn back(&self) -> &[u32] {
        &self.back
    }
}

/// Incremental fixed-lag decoder for one user's hierarchical chain — the
/// streaming counterpart of [`SingleHdbn::viterbi`], wrapping the same
/// [`OnlineTrellis`] core as the coupled decoder.
pub struct OnlineSingleViterbi {
    model: SingleHdbn,
    params: Arc<HdbnParams>,
    user: usize,
    core: OnlineTrellis<ChainEntry>,
    emitted_macros: Vec<usize>,
    emitted_micros: Vec<MicroCandidate>,
}

impl OnlineSingleViterbi {
    /// Starts an empty stream decoding `user`'s chain (the model's
    /// [`DecoderConfig`] governs beam pruning).
    pub fn new(model: SingleHdbn, user: usize, lag: Lag) -> Self {
        let params = model.shared_params();
        Self {
            model,
            params,
            user,
            core: OnlineTrellis::new(lag),
            emitted_macros: Vec::new(),
            emitted_micros: Vec::new(),
        }
    }

    /// Ticks consumed so far.
    pub fn ticks_pushed(&self) -> usize {
        self.core.ticks_pushed()
    }

    /// Current backpointer-window length.
    pub fn window_len(&self) -> usize {
        self.core.window_len()
    }

    /// Pre-reserves the emitted-decision history for `additional` more
    /// ticks (see [`OnlineCoupledViterbi::reserve_ticks`]).
    pub fn reserve_ticks(&mut self, additional: usize) {
        self.emitted_macros.reserve(additional);
        self.emitted_micros.reserve(additional);
    }

    /// Consumes one tick; returns the newly ripened decision, if any.
    ///
    /// Zero heap allocations per push once warmed, like
    /// [`OnlineCoupledViterbi::push`].
    ///
    /// # Errors
    /// [`ModelError::EmptyStateSpace`] if the tick has no candidates for
    /// this user.
    pub fn push(&mut self, tick: &TickInput) -> Result<Option<SmoothedChain>, ModelError> {
        single::validate_tick_user(tick, self.core.ticks_pushed(), self.user)?;
        let mut entry = self.core.take_entry();
        fill_slice(
            &self.params,
            tick,
            self.user,
            self.core.scratch_macro_ids(),
            &mut entry.slice,
        );
        entry.cands.clear();
        entry.cands.extend_from_slice(&tick.candidates[self.user]);
        let n_states = entry.slice.len() as u64;
        let decoder = self.model.decoder();
        self.core
            .push_entry(&ChainFamily { p: &self.params }, decoder, entry, n_states);
        Ok(self.emit_after_push())
    }

    /// The decision tail every push (scalar or batched) ends with.
    fn emit_after_push(&mut self) -> Option<SmoothedChain> {
        let decoder = self.model.decoder();
        let decision = self
            .core
            .emit_ready(decoder.precision, |entry, j, t| SmoothedChain {
                tick: t,
                macro_id: entry.slice.activities[j],
                micro: entry.cands[entry.slice.cands[j]],
            });
        if let Some(d) = &decision {
            self.emitted_macros.push(d.macro_id);
            self.emitted_micros.push(d.micro);
        }
        decision
    }

    /// Fleet-batched push over the generic batched chain kernel
    /// ([`trellis::step_dense_batch_into`]) — the single-chain analogue
    /// of [`OnlineCoupledViterbi::push_batch`], with the same eligibility
    /// rules plus same-`user` (the decoded chain must match for the
    /// slices to be shared). Returns `Ok(None)` untouched when the cohort
    /// is not batchable.
    ///
    /// # Errors
    /// [`ModelError::EmptyStateSpace`] if the tick has no candidates for
    /// the decoded user; no stream is touched.
    pub fn push_batch(
        homes: &mut [&mut OnlineSingleViterbi],
        tick: &TickInput,
        bt: &mut BatchedTrellis,
    ) -> Result<Option<Vec<Option<SmoothedChain>>>, ModelError> {
        if homes.len() < 2 {
            return Ok(None);
        }
        let params = Arc::clone(&homes[0].params);
        let decoder = homes[0].model.decoder();
        let lag = homes[0].core.lag();
        let user = homes[0].user;
        let batchable = homes.iter().all(|h| {
            Arc::ptr_eq(&h.params, &params)
                && h.model.decoder() == decoder
                && h.core.lag() == lag
                && h.user == user
                && h.core.ticks_pushed() >= 1
                && !h.core.pruned()
        });
        if !batchable {
            return Ok(None);
        }
        {
            let first = homes[0].core.last_entry().expect("ticks_pushed >= 1");
            if !homes[1..].iter().all(|h| {
                let e = h.core.last_entry().expect("ticks_pushed >= 1");
                e.slice.same_shape(&first.slice)
            }) {
                return Ok(None);
            }
        }
        single::validate_tick_user(tick, homes[0].core.ticks_pushed(), user)?;
        let decisions = match decoder.precision {
            Precision::Exact64 => Self::push_batch_lane::<f64>(homes, tick, bt, &params, decoder),
            Precision::Fast32 => Self::push_batch_lane::<f32>(homes, tick, bt, &params, decoder),
        };
        Ok(Some(decisions))
    }

    /// Lane-monomorphic body of [`push_batch`](Self::push_batch).
    fn push_batch_lane<S: BatchLane>(
        homes: &mut [&mut OnlineSingleViterbi],
        tick: &TickInput,
        bt: &mut BatchedTrellis,
        params: &Arc<HdbnParams>,
        decoder: DecoderConfig,
    ) -> Vec<Option<SmoothedChain>> {
        let user = homes[0].user;
        let mut entries: Vec<ChainEntry> = Vec::with_capacity(homes.len());
        for home in homes.iter_mut() {
            let mut entry = home.core.take_entry();
            fill_slice(
                params,
                tick,
                user,
                home.core.scratch_macro_ids(),
                &mut entry.slice,
            );
            entry.cands.clear();
            entry.cands.extend_from_slice(&tick.candidates[user]);
            entries.push(entry);
        }
        let n_states = entries[0].slice.len() as u64;

        let charge = {
            let bs = S::scratch(bt);
            let prev = homes[0].core.last_entry().expect("ticks_pushed >= 1");
            let vs: Vec<&[S]> = homes.iter().map(|h| S::frontier_of(&h.core)).collect();
            trellis::step_dense_batch_into(
                &HierModel::new(params),
                &prev.slice,
                &vs,
                &entries[0].slice,
                bs,
            );
            (prev.slice.len() * entries[0].slice.len()) as u64
        };

        let bs = S::scratch(bt);
        let mut decisions = Vec::with_capacity(homes.len());
        for (h, (home, mut entry)) in homes.iter_mut().zip(entries).enumerate() {
            std::mem::swap(S::frontier_vec(&mut home.core), &mut bs.v_next[h]);
            std::mem::swap(&mut entry.back, &mut bs.back[h]);
            home.core
                .commit_external_step(entry, n_states, charge, decoder);
            decisions.push(home.emit_after_push());
        }
        decisions
    }

    /// Checkpoints the stream (see [`OnlineCoupledViterbi::park`]).
    pub fn park(&self) -> ParkedChain {
        ParkedChain {
            v: self.core.frontier().to_vec(),
            v32: self.core.frontier32().to_vec(),
            window: self
                .core
                .entries()
                .map(|e| ParkedChainEntry {
                    slice: ParkedSlice::from_slice(&e.slice),
                    back: e.back.clone(),
                    cands: e.cands.clone(),
                })
                .collect(),
            base: self.core.base(),
            pushed: self.core.ticks_pushed(),
            emitted_macros: self.emitted_macros.clone(),
            emitted_micros: self.emitted_micros.clone(),
            states_explored: self.core.states_explored(),
            transition_ops: self.core.transition_ops(),
            pruned: self.core.pruned(),
            keep: self.core.keep().to_vec(),
        }
    }

    /// Rehydrates a parked stream against `model`, decoding `user`'s
    /// chain (see [`OnlineCoupledViterbi::resume`] for the continuation
    /// guarantee).
    ///
    /// # Errors
    /// [`ModelError::Persistence`] when the parked state is structurally
    /// inconsistent with the model.
    pub fn resume(
        model: SingleHdbn,
        user: usize,
        lag: Lag,
        parked: &ParkedChain,
    ) -> Result<Self, ModelError> {
        let params = model.shared_params();
        parked.validate(&params, model.decoder().precision, lag)?;
        let window: VecDeque<ChainEntry> = parked
            .window
            .iter()
            .map(|e| ChainEntry {
                slice: e.slice.to_slice(),
                back: e.back.clone(),
                cands: e.cands.clone(),
            })
            .collect();
        Ok(Self {
            model,
            params,
            user,
            core: OnlineTrellis::from_parts(
                lag,
                parked.v.clone(),
                parked.v32.clone(),
                window,
                parked.base,
                parked.pushed,
                parked.states_explored,
                parked.transition_ops,
                parked.pruned,
                &parked.keep,
            ),
            emitted_macros: parked.emitted_macros.clone(),
            emitted_micros: parked.emitted_micros.clone(),
        })
    }

    /// Ends the stream, resolving the uncommitted tail; bit-identical to
    /// [`SingleHdbn::viterbi`] when no mid-stream decision was emitted.
    ///
    /// # Errors
    /// [`ModelError::InsufficientData`] if no tick was ever pushed.
    pub fn finalize(mut self) -> Result<SinglePath, ModelError> {
        if self.core.ticks_pushed() == 0 {
            return Err(ModelError::InsufficientData {
                what: "single-chain inference".into(),
                available: 0,
                required: 1,
            });
        }
        let committed = self.emitted_macros.len();
        let (tail, log_prob) =
            self.core
                .resolve_tail(self.model.decoder().precision, committed, |entry, j| {
                    (entry.slice.activities[j], entry.cands[entry.slice.cands[j]])
                });
        let mut macros = std::mem::take(&mut self.emitted_macros);
        let mut micros = std::mem::take(&mut self.emitted_micros);
        for (m, c) in tail {
            macros.push(m);
            micros.push(c);
        }
        Ok(SinglePath {
            macros,
            micros,
            log_prob,
            states_explored: self.core.states_explored(),
            transition_ops: self.core.transition_ops(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{HdbnConfig, HdbnParams};
    use cace_mining::constraint::{ConstraintMiner, LabeledSequence};

    fn toy_params(coupled: bool) -> HdbnParams {
        let mut macros = Vec::new();
        for r in 0..40 {
            for _ in 0..10 {
                macros.push(r % 2);
            }
        }
        let n = macros.len();
        let seq = LabeledSequence {
            macros: [macros.clone(), macros.clone()],
            posturals: [macros.clone(), macros.clone()],
            gesturals: [vec![0; n], vec![0; n]],
            locations: [macros.clone(), macros],
        };
        let stats = ConstraintMiner {
            laplace: 0.1,
            n_macro: 2,
            n_postural: 2,
            n_gestural: 2,
            n_location: 2,
        }
        .mine(&[seq])
        .unwrap();
        let config = if coupled {
            HdbnConfig::default()
        } else {
            HdbnConfig::uncoupled()
        };
        HdbnParams::new(stats, config).unwrap()
    }

    fn obs_tick(m: usize, strength: f64) -> TickInput {
        let cands = |fav: usize| -> Vec<MicroCandidate> {
            (0..2)
                .map(|p| MicroCandidate {
                    postural: p,
                    gestural: Some(0),
                    location: p,
                    obs_loglik: if p == fav { 0.0 } else { -strength },
                })
                .collect()
        };
        TickInput {
            candidates: [cands(m), cands(m)],
            macro_candidates: [None, None],
            macro_bonus: Vec::new(),
        }
    }

    fn glitchy_ticks() -> Vec<TickInput> {
        (0..30)
            .map(|t| {
                let m = usize::from(t >= 15);
                let strength = if t % 7 == 3 { 0.4 } else { 3.0 };
                obs_tick(if t % 11 == 5 { 1 - m } else { m }, strength)
            })
            .collect()
    }

    #[test]
    fn unbounded_lag_is_bit_identical_to_batch_coupled() {
        let model = CoupledHdbn::new(toy_params(true));
        let ticks = glitchy_ticks();
        let batch = model.viterbi(&ticks).unwrap();
        let mut online = OnlineCoupledViterbi::new(model, Lag::Unbounded);
        for tick in &ticks {
            assert_eq!(online.push(tick).unwrap(), None, "unbounded never emits");
        }
        let streamed = online.finalize().unwrap();
        assert_eq!(streamed, batch, "full JointPath equality, floats included");
    }

    #[test]
    fn long_fixed_lag_is_bit_identical_to_batch_coupled() {
        let model = CoupledHdbn::new(toy_params(true));
        let ticks = glitchy_ticks();
        let batch = model.viterbi(&ticks).unwrap();
        let mut online = OnlineCoupledViterbi::new(model, Lag::Fixed(ticks.len()));
        for tick in &ticks {
            assert_eq!(online.push(tick).unwrap(), None);
        }
        assert_eq!(online.finalize().unwrap(), batch);
    }

    #[test]
    fn unbounded_lag_is_bit_identical_to_batch_single() {
        let model = SingleHdbn::new(toy_params(false));
        let ticks = glitchy_ticks();
        for user in 0..2 {
            let batch = model.viterbi(&ticks, user).unwrap();
            let mut online = OnlineSingleViterbi::new(model.clone(), user, Lag::Unbounded);
            for tick in &ticks {
                assert_eq!(online.push(tick).unwrap(), None);
            }
            assert_eq!(online.finalize().unwrap(), batch, "user {user}");
        }
    }

    #[test]
    fn fixed_lag_emits_on_schedule_and_bounds_the_window() {
        let lag = 4;
        let model = CoupledHdbn::new(toy_params(true));
        let mut online = OnlineCoupledViterbi::new(model, Lag::Fixed(lag));
        let ticks = glitchy_ticks();
        let mut decisions = Vec::new();
        for (t, tick) in ticks.iter().enumerate() {
            let emitted = online.push(tick).unwrap();
            if t < lag {
                assert!(emitted.is_none(), "tick {t} before the lag horizon");
            } else {
                let d = emitted.expect("ripened decision");
                assert_eq!(d.tick, t - lag);
                decisions.push(d);
            }
            assert!(
                online.window_len() <= lag + 2,
                "window {} at tick {t}",
                online.window_len()
            );
        }
        assert_eq!(decisions.len(), ticks.len() - lag);
        let path = online.finalize().unwrap();
        assert_eq!(path.macros[0].len(), ticks.len());
        // The emitted prefix is embedded unchanged in the final path.
        for d in &decisions {
            assert_eq!(path.macros[0][d.tick], d.macros[0]);
            assert_eq!(path.macros[1][d.tick], d.macros[1]);
        }
    }

    #[test]
    fn fixed_lag_decisions_recover_clear_activities() {
        // Zero lag = greedy filtering; still trivially correct on
        // unambiguous input.
        let model = CoupledHdbn::new(toy_params(true));
        let mut online = OnlineCoupledViterbi::new(model, Lag::Fixed(0));
        for t in 0..20 {
            let m = usize::from(t >= 10);
            let d = online.push(&obs_tick(m, 6.0)).unwrap().expect("lag 0");
            assert_eq!(d.tick, t);
            assert_eq!(d.macros, [m, m], "tick {t}");
        }
        assert_eq!(online.window_len(), 1, "lag-0 window stays minimal");
    }

    #[test]
    fn single_chain_fixed_lag_matches_schedule() {
        let model = SingleHdbn::new(toy_params(false));
        let mut online = OnlineSingleViterbi::new(model, 0, Lag::Fixed(3));
        let ticks = glitchy_ticks();
        for (t, tick) in ticks.iter().enumerate() {
            let emitted = online.push(tick).unwrap();
            assert_eq!(emitted.is_some(), t >= 3, "tick {t}");
            if let Some(d) = emitted {
                assert_eq!(d.tick, t - 3);
            }
            assert!(online.window_len() <= 5);
        }
        let path = online.finalize().unwrap();
        assert_eq!(path.macros.len(), ticks.len());
    }

    #[test]
    fn beamed_online_coupled_matches_beamed_batch_bit_for_bit() {
        use crate::beam::DecoderConfig;
        let ticks = glitchy_ticks();
        for config in [DecoderConfig::top_k(4), DecoderConfig::log_threshold(3.0)] {
            let model = CoupledHdbn::new(toy_params(true)).with_decoder(config);
            let batch = model.viterbi(&ticks).unwrap();
            let mut online = OnlineCoupledViterbi::new(model, Lag::Unbounded);
            for tick in &ticks {
                assert_eq!(online.push(tick).unwrap(), None);
            }
            let streamed = online.finalize().unwrap();
            assert_eq!(streamed, batch, "{config:?}: floats and accounting");
        }
    }

    #[test]
    fn beamed_online_single_matches_beamed_batch_bit_for_bit() {
        use crate::beam::DecoderConfig;
        let ticks = glitchy_ticks();
        let model = SingleHdbn::new(toy_params(false)).with_decoder(DecoderConfig::top_k(2));
        for user in 0..2 {
            let batch = model.viterbi(&ticks, user).unwrap();
            let mut online = OnlineSingleViterbi::new(model.clone(), user, Lag::Unbounded);
            for tick in &ticks {
                assert_eq!(online.push(tick).unwrap(), None);
            }
            assert_eq!(online.finalize().unwrap(), batch, "user {user}");
        }
    }

    #[test]
    fn fast32_streaming_is_bit_identical_to_fast32_batch() {
        use crate::beam::DecoderConfig;
        let ticks = glitchy_ticks();
        // Both sides decode through the same generic f32 kernels, so the
        // online/batch equivalence guarantee holds per lane, not just for
        // the exact lane.
        let model =
            CoupledHdbn::new(toy_params(true)).with_decoder(DecoderConfig::exact().fast32());
        let batch = model.viterbi(&ticks).unwrap();
        let mut online = OnlineCoupledViterbi::new(model, Lag::Unbounded);
        for tick in &ticks {
            assert_eq!(online.push(tick).unwrap(), None);
        }
        assert_eq!(online.finalize().unwrap(), batch);

        let model =
            SingleHdbn::new(toy_params(false)).with_decoder(DecoderConfig::top_k(2).fast32());
        let batch = model.viterbi(&ticks, 0).unwrap();
        let mut online = OnlineSingleViterbi::new(model, 0, Lag::Unbounded);
        for tick in &ticks {
            assert_eq!(online.push(tick).unwrap(), None);
        }
        assert_eq!(online.finalize().unwrap(), batch);
    }

    /// Streams `ticks` through a coupled decoder, parking + resuming at
    /// tick `park_at`; returns (decisions, final path).
    fn coupled_with_park(
        model: &CoupledHdbn,
        ticks: &[TickInput],
        lag: Lag,
        park_at: usize,
    ) -> (Vec<SmoothedJoint>, JointPath) {
        let mut online = OnlineCoupledViterbi::new(model.clone(), lag);
        let mut decisions = Vec::new();
        for (t, tick) in ticks.iter().enumerate() {
            if t == park_at {
                let parked = online.park();
                online = OnlineCoupledViterbi::resume(model.clone(), lag, &parked)
                    .expect("own park output resumes");
            }
            decisions.extend(online.push(tick).unwrap());
        }
        (decisions, online.finalize().unwrap())
    }

    #[test]
    fn park_resume_at_every_tick_is_bit_identical_coupled() {
        use crate::beam::DecoderConfig;
        let ticks = glitchy_ticks();
        for config in [
            DecoderConfig::exact(),
            DecoderConfig::top_k(4),
            DecoderConfig::exact().fast32(),
        ] {
            for lag in [Lag::Unbounded, Lag::Fixed(4)] {
                let model = CoupledHdbn::new(toy_params(true)).with_decoder(config);
                let mut unbroken = OnlineCoupledViterbi::new(model.clone(), lag);
                let mut straight = Vec::new();
                for tick in &ticks {
                    straight.extend(unbroken.push(tick).unwrap());
                }
                let expected = unbroken.finalize().unwrap();
                for park_at in 0..=ticks.len() {
                    let (decisions, path) = coupled_with_park(&model, &ticks, lag, park_at);
                    assert_eq!(decisions, straight, "{config:?} {lag:?} park@{park_at}");
                    assert_eq!(path, expected, "{config:?} {lag:?} park@{park_at}");
                }
            }
        }
    }

    #[test]
    fn park_resume_at_every_tick_is_bit_identical_single() {
        use crate::beam::DecoderConfig;
        let ticks = glitchy_ticks();
        for config in [DecoderConfig::top_k(2), DecoderConfig::top_k(2).fast32()] {
            let lag = Lag::Fixed(3);
            let model = SingleHdbn::new(toy_params(false)).with_decoder(config);
            let mut unbroken = OnlineSingleViterbi::new(model.clone(), 1, lag);
            let mut straight = Vec::new();
            for tick in &ticks {
                straight.extend(unbroken.push(tick).unwrap());
            }
            let expected = unbroken.finalize().unwrap();
            for park_at in 0..=ticks.len() {
                let mut online = OnlineSingleViterbi::new(model.clone(), 1, lag);
                let mut decisions = Vec::new();
                for (t, tick) in ticks.iter().enumerate() {
                    if t == park_at {
                        let parked = online.park();
                        online = OnlineSingleViterbi::resume(model.clone(), 1, lag, &parked)
                            .expect("own park output resumes");
                    }
                    decisions.extend(online.push(tick).unwrap());
                }
                assert_eq!(decisions, straight, "{config:?} park@{park_at}");
                assert_eq!(
                    online.finalize().unwrap(),
                    expected,
                    "{config:?} park@{park_at}"
                );
            }
        }
    }

    #[test]
    fn tampered_parked_state_is_rejected_not_a_panic() {
        let model = CoupledHdbn::new(toy_params(true));
        let mut online = OnlineCoupledViterbi::new(model.clone(), Lag::Fixed(2));
        for tick in glitchy_ticks().iter().take(8) {
            online.push(tick).unwrap();
        }
        let parked = online.park();
        let resume =
            |p: &ParkedCoupled| OnlineCoupledViterbi::resume(model.clone(), Lag::Fixed(2), p);
        assert!(resume(&parked).is_ok());

        let mut bad = parked.clone();
        bad.pushed += 1; // cursor no longer covers the window
        assert!(matches!(resume(&bad), Err(ModelError::Persistence { .. })));

        let mut bad = parked.clone();
        bad.v[0] = f64::NAN;
        assert!(matches!(resume(&bad), Err(ModelError::Persistence { .. })));

        let mut bad = parked.clone();
        bad.v.pop(); // frontier shorter than the newest slice
        assert!(matches!(resume(&bad), Err(ModelError::Persistence { .. })));

        let mut bad = parked.clone();
        let last = bad.window.len() - 1;
        bad.window[last].back[0] = u32::MAX; // dangling backpointer
        assert!(matches!(resume(&bad), Err(ModelError::Persistence { .. })));

        let mut bad = parked.clone();
        bad.window[0].s1.pairs[0] = u32::MAX; // pair id outside the tables
        assert!(matches!(resume(&bad), Err(ModelError::Persistence { .. })));

        let mut bad = parked.clone();
        bad.emitted_macros[0].pop(); // emit schedule out of step with lag
        assert!(matches!(resume(&bad), Err(ModelError::Persistence { .. })));

        // A pruned stream with a corrupted survivor set is also rejected.
        let model_pruned =
            CoupledHdbn::new(toy_params(true)).with_decoder(crate::beam::DecoderConfig::top_k(2));
        let mut online = OnlineCoupledViterbi::new(model_pruned.clone(), Lag::Unbounded);
        for tick in glitchy_ticks().iter().take(5) {
            online.push(tick).unwrap();
        }
        let parked = online.park();
        assert!(parked.pruned, "TopK(2) prunes the toy frontier");
        let mut bad = parked.clone();
        bad.keep = vec![3, 1]; // not ascending
        assert!(matches!(
            OnlineCoupledViterbi::resume(model_pruned.clone(), Lag::Unbounded, &bad),
            Err(ModelError::Persistence { .. })
        ));
    }

    #[test]
    fn batched_cohort_is_bit_identical_to_dedicated_streams_coupled() {
        use crate::beam::DecoderConfig;
        let ticks = glitchy_ticks();
        for config in [
            DecoderConfig::exact(),
            DecoderConfig::top_k(16), // covers the 16-state joint frontier: never prunes
            DecoderConfig::exact().fast32(),
        ] {
            let model = CoupledHdbn::new(toy_params(true)).with_decoder(config);
            let lag = Lag::Fixed(3);
            let n = 4;
            // Stagger the first tick so every cohort frontier differs.
            let spawn = || -> Vec<OnlineCoupledViterbi> {
                (0..n)
                    .map(|i| {
                        let mut s = OnlineCoupledViterbi::new(model.clone(), lag);
                        s.push(&obs_tick(i % 2, 1.0 + i as f64)).unwrap();
                        s
                    })
                    .collect()
            };
            let mut batched = spawn();
            let mut scalar = spawn();
            let mut bt = BatchedTrellis::new();
            for tick in &ticks {
                let mut refs: Vec<&mut OnlineCoupledViterbi> = batched.iter_mut().collect();
                let ds = OnlineCoupledViterbi::push_batch(&mut refs, tick, &mut bt)
                    .unwrap()
                    .expect("cohort is batchable");
                for (s, d) in scalar.iter_mut().zip(ds) {
                    assert_eq!(s.push(tick).unwrap(), d, "{config:?}");
                }
            }
            for (b, s) in batched.into_iter().zip(scalar) {
                assert_eq!(
                    b.finalize().unwrap(),
                    s.finalize().unwrap(),
                    "{config:?}: floats and accounting"
                );
            }
        }
    }

    #[test]
    fn batched_cohort_is_bit_identical_to_dedicated_streams_single() {
        use crate::beam::DecoderConfig;
        let ticks = glitchy_ticks();
        let model = SingleHdbn::new(toy_params(false)).with_decoder(DecoderConfig::top_k(4));
        let lag = Lag::Fixed(2);
        let n = 3;
        let spawn = |user: usize| -> Vec<OnlineSingleViterbi> {
            (0..n)
                .map(|i| {
                    let mut s = OnlineSingleViterbi::new(model.clone(), user, lag);
                    s.push(&obs_tick(i % 2, 2.0)).unwrap();
                    s
                })
                .collect()
        };
        for user in 0..2 {
            let mut batched = spawn(user);
            let mut scalar = spawn(user);
            let mut bt = BatchedTrellis::new();
            for tick in &ticks {
                let mut refs: Vec<&mut OnlineSingleViterbi> = batched.iter_mut().collect();
                let ds = OnlineSingleViterbi::push_batch(&mut refs, tick, &mut bt)
                    .unwrap()
                    .expect("cohort is batchable");
                for (s, d) in scalar.iter_mut().zip(ds) {
                    assert_eq!(s.push(tick).unwrap(), d, "user {user}");
                }
            }
            for (b, s) in batched.into_iter().zip(scalar) {
                assert_eq!(b.finalize().unwrap(), s.finalize().unwrap(), "user {user}");
            }
        }
    }

    #[test]
    fn unbatchable_cohorts_are_refused_untouched() {
        use crate::beam::DecoderConfig;
        let model = CoupledHdbn::new(toy_params(true));
        let tick = obs_tick(0, 2.0);
        let mut bt = BatchedTrellis::new();

        // Fewer than two streams.
        let mut lone = OnlineCoupledViterbi::new(model.clone(), Lag::Fixed(2));
        lone.push(&tick).unwrap();
        let mut refs: Vec<&mut OnlineCoupledViterbi> = vec![&mut lone];
        assert!(OnlineCoupledViterbi::push_batch(&mut refs, &tick, &mut bt)
            .unwrap()
            .is_none());

        // Mismatched lag.
        let mut a = OnlineCoupledViterbi::new(model.clone(), Lag::Fixed(2));
        let mut b = OnlineCoupledViterbi::new(model.clone(), Lag::Fixed(5));
        a.push(&tick).unwrap();
        b.push(&tick).unwrap();
        let mut refs: Vec<&mut OnlineCoupledViterbi> = vec![&mut a, &mut b];
        assert!(OnlineCoupledViterbi::push_batch(&mut refs, &tick, &mut bt)
            .unwrap()
            .is_none());

        // Parameters trained separately (equal values, different Arc).
        let twin = CoupledHdbn::new(toy_params(true));
        let mut a = OnlineCoupledViterbi::new(model.clone(), Lag::Fixed(2));
        let mut b = OnlineCoupledViterbi::new(twin, Lag::Fixed(2));
        a.push(&tick).unwrap();
        b.push(&tick).unwrap();
        let mut refs: Vec<&mut OnlineCoupledViterbi> = vec![&mut a, &mut b];
        assert!(OnlineCoupledViterbi::push_batch(&mut refs, &tick, &mut bt)
            .unwrap()
            .is_none());

        // A stream before its first tick.
        let mut a = OnlineCoupledViterbi::new(model.clone(), Lag::Fixed(2));
        let mut b = OnlineCoupledViterbi::new(model.clone(), Lag::Fixed(2));
        a.push(&tick).unwrap();
        let mut refs: Vec<&mut OnlineCoupledViterbi> = vec![&mut a, &mut b];
        assert!(OnlineCoupledViterbi::push_batch(&mut refs, &tick, &mut bt)
            .unwrap()
            .is_none());

        // An actively-pruning beam (TopK(2) prunes the 16-state frontier).
        let pruning = model.clone().with_decoder(DecoderConfig::top_k(2));
        let mut a = OnlineCoupledViterbi::new(pruning.clone(), Lag::Fixed(2));
        let mut b = OnlineCoupledViterbi::new(pruning, Lag::Fixed(2));
        a.push(&tick).unwrap();
        b.push(&tick).unwrap();
        let mut refs: Vec<&mut OnlineCoupledViterbi> = vec![&mut a, &mut b];
        assert!(OnlineCoupledViterbi::push_batch(&mut refs, &tick, &mut bt)
            .unwrap()
            .is_none());

        // An invalid tick errors without touching any stream.
        let mut a = OnlineCoupledViterbi::new(model.clone(), Lag::Fixed(2));
        let mut b = OnlineCoupledViterbi::new(model.clone(), Lag::Fixed(2));
        a.push(&tick).unwrap();
        b.push(&tick).unwrap();
        let mut bad = obs_tick(0, 1.0);
        bad.candidates[1].clear();
        let mut refs: Vec<&mut OnlineCoupledViterbi> = vec![&mut a, &mut b];
        assert!(matches!(
            OnlineCoupledViterbi::push_batch(&mut refs, &bad, &mut bt),
            Err(ModelError::EmptyStateSpace { .. })
        ));
        assert_eq!(a.ticks_pushed(), 1);
        assert_eq!(b.ticks_pushed(), 1);
    }

    #[test]
    fn streaming_errors_mirror_batch_errors() {
        let model = CoupledHdbn::new(toy_params(true));
        let online = OnlineCoupledViterbi::new(model.clone(), Lag::Unbounded);
        assert!(matches!(
            online.finalize(),
            Err(ModelError::InsufficientData { .. })
        ));
        let mut online = OnlineCoupledViterbi::new(model, Lag::Unbounded);
        online.push(&obs_tick(0, 1.0)).unwrap();
        let mut bad = obs_tick(0, 1.0);
        bad.candidates[1].clear();
        assert!(matches!(
            online.push(&bad),
            Err(ModelError::EmptyStateSpace { tick: 1 })
        ));
    }
}
