//! Dense precomputed score tables: the decode-path view of
//! [`HdbnParams`].
//!
//! The naive scoring methods ([`HdbnParams::transition_score`],
//! [`HdbnParams::hierarchy_score`], [`HdbnParams::coupling_score`]) branch
//! on the continue-vs-switch case and chase two levels of `Vec<Vec<f64>>`
//! pointers per evaluation. Every decoder tick re-evaluates them across the
//! whole frontier even though the (activity, postural) alphabet is small,
//! model-fixed, and identical across ticks, sessions, and homes. A
//! [`ScoreTables`] folds the entire transition kernel into one flat dense
//! matrix over compact *pair ids* at model-build time:
//!
//! ```text
//! pair(a, p)        = a * n_postural + p          (compact state id)
//! trans[src][dst]   = transition_score(a_src, p_src, a_dst, p_dst)
//!                     stored flat, src-major:  trans[src * n_pair + dst]
//!                     and dst-major (`into_row`): trans_to[dst * n_pair + src]
//! cooc[a1][a2]      = coupling_score(a1, a2)     flat, n_macro stride
//! post/gest/loc[a]  = the hierarchy emission rows, flat
//! ```
//!
//! so the hot path is a single indexed load per edge — no branch, no
//! nested indirection — and a decoder's per-`j` transition column is a
//! gather from one contiguous `n_pair`-entry row that stays in L1. Each
//! table entry is *copied* from the naive scorer (built by calling it), so
//! table scoring is bit-identical to direct scoring by construction;
//! `tests/score_tables.rs` holds every entry and every decode path to
//! that.
//!
//! Tables are a pure function of the parameters, so persistence never
//! stores them: deserializing [`HdbnParams`] rebuilds
//! them through `HdbnParams::new`, bit-identically:
//!
//! ```
//! use cace_hdbn::{HdbnConfig, HdbnParams};
//! use serde::{Deserialize, Serialize};
//! # use cace_mining::constraint::{ConstraintMiner, LabeledSequence};
//! # let macros: Vec<usize> = (0..400).map(|i| (i / 10) % 2).collect();
//! # let n = macros.len();
//! # let seq = LabeledSequence {
//! #     macros: [macros.clone(), macros.clone()],
//! #     posturals: [macros.clone(), macros.clone()],
//! #     gesturals: [vec![0; n], vec![0; n]],
//! #     locations: [macros.clone(), macros],
//! # };
//! # let stats = ConstraintMiner {
//! #     laplace: 0.1, n_macro: 2, n_postural: 2, n_gestural: 2, n_location: 2,
//! # }.mine(&[seq]).unwrap();
//! let params = HdbnParams::new(stats, HdbnConfig::default()).unwrap();
//!
//! // Persist only (stats, config); the dense tables are derived state.
//! let reloaded = HdbnParams::deserialize(&params.serialize()).unwrap();
//!
//! // The rebuilt tables are bit-identical to the originals...
//! assert_eq!(reloaded.tables, params.tables);
//! // ...and every entry equals the naive scorer it was built from.
//! let t = &reloaded.tables;
//! let src = t.pair(0, 1);
//! let dst = t.pair(1, 0);
//! assert_eq!(t.transition(src, dst), params.transition_score(0, 1, 1, 0));
//! ```

use crate::params::HdbnParams;
use crate::scalar::Scalar;

/// Dense flat score tables over compact `(activity, postural)` pair ids —
/// see the [module docs](self) for the memory layout — generic over the
/// scoring lane `S` (see [`Scalar`]).
///
/// The canonical instantiation is [`ScoreTables`] (`S = f64`): built once
/// per model by [`HdbnParams::new`] (and therefore rebuilt on every
/// snapshot load), shared read-only by all decoders through the params
/// `Arc`, bit-identical to the naive scorers. The [`ScoreTablesF32`]
/// mirror is derived from it entry-wise, lazily, on the first `Fast32`
/// decode ([`HdbnParams::tables_f32`]) — and, like the f64 tables, is
/// never persisted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScoreTablesT<S> {
    n_macro: usize,
    n_postural: usize,
    n_gestural: usize,
    n_location: usize,
    /// `n_macro * n_postural` — the compact pair-id space.
    n_pair: usize,
    /// Transition kernel, src-major: `trans[src * n_pair + dst]`.
    trans: Vec<S>,
    /// Transition kernel, dst-major: `trans_to[dst * n_pair + src]` — the
    /// orientation the fold kernels gather from (`into_row`).
    trans_to: Vec<S>,
    /// Inter-user coupling, flat: `cooc[a1 * n_macro + a2]`.
    cooc: Vec<S>,
    /// `log P(postural | macro)` rows, flat: `post[a * n_postural + p]`.
    post: Vec<S>,
    /// `log P(gestural | macro)` rows, flat.
    gest: Vec<S>,
    /// `log P(location | macro)` rows, flat.
    loc: Vec<S>,
    /// Switch scores, dst-major: `switch_to[a * n_macro + ap]` is the
    /// transition score `ap → a` for `ap ≠ a` — which is independent of
    /// both posturals (`log_end[ap] + log_switch[ap][a]`), the low-rank
    /// structure the fold kernels exploit. Diagonal entries are `−∞`
    /// (a same-activity step is a *continue*, scored through `trans`).
    switch_to: Vec<S>,
}

/// The exact (`f64`) score tables — the canonical lane every model builds
/// eagerly and the naive scorers are bitwise-mirrored into.
pub type ScoreTables = ScoreTablesT<f64>;

/// The fast (`f32`) mirror, derived entry-wise from [`ScoreTables`] with
/// the finite-preserving cast of [`Scalar::from_f64`]. Built lazily per
/// model ([`HdbnParams::tables_f32`]); never persisted.
pub type ScoreTablesF32 = ScoreTablesT<f32>;

impl ScoreTables {
    /// Builds the dense tables by evaluating the naive scorers over the
    /// whole compact alphabet — every entry is a bitwise copy of the
    /// corresponding [`HdbnParams`] score.
    pub(crate) fn build(p: &HdbnParams) -> Self {
        let n_macro = p.stats.n_macro;
        let n_postural = p.stats.n_postural;
        let n_gestural = p.stats.n_gestural;
        let n_location = p.stats.n_location;
        let n_pair = n_macro * n_postural;

        let mut trans = vec![0.0; n_pair * n_pair];
        let mut trans_to = vec![0.0; n_pair * n_pair];
        for ap in 0..n_macro {
            for pp in 0..n_postural {
                let src = ap * n_postural + pp;
                for a in 0..n_macro {
                    for pn in 0..n_postural {
                        let dst = a * n_postural + pn;
                        let score = p.transition_score(ap, pp, a, pn);
                        trans[src * n_pair + dst] = score;
                        trans_to[dst * n_pair + src] = score;
                    }
                }
            }
        }

        let mut cooc = vec![0.0; n_macro * n_macro];
        for a1 in 0..n_macro {
            for a2 in 0..n_macro {
                cooc[a1 * n_macro + a2] = p.coupling_score(a1, a2);
            }
        }

        let mut switch_to = vec![f64::NEG_INFINITY; n_macro * n_macro];
        for a in 0..n_macro {
            for ap in 0..n_macro {
                if ap != a {
                    // Postural-independent: any postural pair gives the
                    // same switch score; 0 is always in range.
                    switch_to[a * n_macro + ap] = p.transition_score(ap, 0, a, 0);
                }
            }
        }

        let flatten = |rows: &[Vec<f64>]| -> Vec<f64> {
            rows.iter().flat_map(|r| r.iter().copied()).collect()
        };
        Self {
            n_macro,
            n_postural,
            n_gestural,
            n_location,
            n_pair,
            trans,
            trans_to,
            cooc,
            post: flatten(&p.log_post),
            gest: flatten(&p.log_gest),
            loc: flatten(&p.log_loc),
            switch_to,
        }
    }

    /// Entry-wise conversion into the `f32` mirror, through the
    /// finite-preserving cast of [`Scalar::from_f64`]: finite scores clamp
    /// into the finite `f32` range (never saturating to an absorbing
    /// `±∞`), structural `−∞` entries (impossible switches, the
    /// `switch_to` diagonal) stay `−∞`.
    ///
    /// Cost: one pass over every table (`2·n_pair² + 3·n_macro·|micro| +
    /// n_macro²` casts — tens of kilobytes for the paper's vocabularies),
    /// paid once per model on first use, not at build time
    /// ([`HdbnParams::tables_f32`]).
    pub(crate) fn to_f32(&self) -> ScoreTablesF32 {
        let cvt =
            |v: &[f64]| -> Vec<f32> { v.iter().map(|&x| <f32 as Scalar>::from_f64(x)).collect() };
        ScoreTablesT {
            n_macro: self.n_macro,
            n_postural: self.n_postural,
            n_gestural: self.n_gestural,
            n_location: self.n_location,
            n_pair: self.n_pair,
            trans: cvt(&self.trans),
            trans_to: cvt(&self.trans_to),
            cooc: cvt(&self.cooc),
            post: cvt(&self.post),
            gest: cvt(&self.gest),
            loc: cvt(&self.loc),
            switch_to: cvt(&self.switch_to),
        }
    }
}

impl<S: Scalar> ScoreTablesT<S> {
    /// Number of compact pair ids (`n_macro * n_postural`).
    #[inline]
    pub fn n_pair(&self) -> usize {
        self.n_pair
    }

    /// Compact pair id of `(activity, postural)`.
    #[inline]
    pub fn pair(&self, activity: usize, postural: usize) -> u32 {
        (activity * self.n_postural + postural) as u32
    }

    /// Transition score between two pair ids — the single indexed load the
    /// decoders perform per trellis edge
    /// (`== HdbnParams::transition_score` on the decoded pairs, bitwise in
    /// the `f64` lane).
    #[inline]
    pub fn transition(&self, src: u32, dst: u32) -> S {
        self.trans[src as usize * self.n_pair + dst as usize]
    }

    /// The dst-major transition row *into* `dst`: `row[src]` is the score
    /// of `src → dst`. One contiguous `n_pair`-entry slice per decoder
    /// column build.
    #[inline]
    pub fn into_row(&self, dst: u32) -> &[S] {
        let d = dst as usize * self.n_pair;
        &self.trans_to[d..d + self.n_pair]
    }

    /// The src-major transition row *out of* `src`: `row[dst]` is the
    /// score of `src → dst` (the backward pass's contiguous view).
    #[inline]
    pub fn from_row(&self, src: u32) -> &[S] {
        let s = src as usize * self.n_pair;
        &self.trans[s..s + self.n_pair]
    }

    /// Macro activity of a pair id.
    #[inline]
    pub fn activity_of(&self, pair: u32) -> usize {
        pair as usize / self.n_postural
    }

    /// The switch-score row *into* macro `a`, indexed by previous macro:
    /// `row[ap]` is the `ap → a` transition score for `ap ≠ a`
    /// (postural-independent; the diagonal is `−∞` and never read by the
    /// kernels, which score same-activity steps through [`Self::into_row`]).
    #[inline]
    pub fn switch_row(&self, a: usize) -> &[S] {
        &self.switch_to[a * self.n_macro..(a + 1) * self.n_macro]
    }

    /// Inter-user coupling score (`== HdbnParams::coupling_score`,
    /// bitwise in the `f64` lane).
    #[inline]
    pub fn coupling(&self, activity_u1: usize, activity_u2: usize) -> S {
        self.cooc[activity_u1 * self.n_macro + activity_u2]
    }

    /// Hierarchical emission score of a micro tuple
    /// (`== HdbnParams::hierarchy_score` in the `f64` lane, bitwise: same
    /// addends, same order).
    #[inline]
    pub fn hierarchy(
        &self,
        activity: usize,
        postural: usize,
        gestural: Option<usize>,
        location: usize,
    ) -> S {
        let mut score = self.post[activity * self.n_postural + postural]
            + self.loc[activity * self.n_location + location];
        if let Some(g) = gestural {
            score = score + self.gest[activity * self.n_gestural + g];
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use crate::params::tests::toy_stats;
    use crate::params::{HdbnConfig, HdbnParams};

    #[test]
    fn every_table_entry_matches_the_naive_scorer() {
        for config in [
            HdbnConfig::default(),
            HdbnConfig::uncoupled(),
            HdbnConfig {
                coupling_weight: 3.0,
                hierarchy_weight: 0.25,
                persistence_bonus: 0.7,
            },
        ] {
            let p = HdbnParams::new(toy_stats(), config).unwrap();
            let t = &p.tables;
            let (nm, np) = (p.stats.n_macro, p.stats.n_postural);
            for ap in 0..nm {
                for pp in 0..np {
                    let src = t.pair(ap, pp);
                    for a in 0..nm {
                        for pn in 0..np {
                            let dst = t.pair(a, pn);
                            let naive = p.transition_score(ap, pp, a, pn);
                            assert_eq!(t.transition(src, dst), naive);
                            assert_eq!(t.into_row(dst)[src as usize], naive);
                        }
                    }
                }
            }
            for a1 in 0..nm {
                for a2 in 0..nm {
                    assert_eq!(t.coupling(a1, a2), p.coupling_score(a1, a2));
                }
            }
            // The switch row is the postural-independent slice of the
            // transition kernel: identical across every postural combo.
            for a in 0..nm {
                for ap in 0..nm {
                    if ap == a {
                        continue;
                    }
                    for pp in 0..np {
                        for pn in 0..np {
                            assert_eq!(t.switch_row(a)[ap], p.transition_score(ap, pp, a, pn));
                        }
                    }
                }
            }
            for a in 0..nm {
                for post in 0..np {
                    for loc in 0..p.stats.n_location {
                        assert_eq!(
                            t.hierarchy(a, post, None, loc),
                            p.hierarchy_score(a, post, None, loc)
                        );
                        for g in 0..p.stats.n_gestural {
                            assert_eq!(
                                t.hierarchy(a, post, Some(g), loc),
                                p.hierarchy_score(a, post, Some(g), loc)
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pair_ids_are_macro_major() {
        let p = HdbnParams::new(toy_stats(), HdbnConfig::default()).unwrap();
        assert_eq!(p.tables.n_pair(), 4);
        assert_eq!(p.tables.pair(0, 0), 0);
        assert_eq!(p.tables.pair(0, 1), 1);
        assert_eq!(p.tables.pair(1, 0), 2);
    }
}
