//! Parked (checkpointable) state of the online decoders.
//!
//! A serving tier that holds many more homes than fit live in memory needs
//! to *park* an idle stream — serialize its decoder state to bytes — and
//! rehydrate it on the next tick with **bit-identical continuation**: the
//! resumed decoder must emit the same decisions, accumulate the same
//! overhead counters, and finalize to the same path as one that never
//! stopped. The types here are the parked mirrors of
//! [`OnlineCoupledViterbi`](crate::OnlineCoupledViterbi) and
//! [`OnlineSingleViterbi`](crate::OnlineSingleViterbi): the trellis
//! frontier (whichever scoring lane is live), the backpointer window with
//! its per-tick slices and retained candidate tuples, the decision cursor
//! (`base`/`pushed` plus the emitted history), the overhead counters, and
//! the pending beam-survivor set a pruned next step would consume.
//!
//! What is *not* parked is exactly the state that does not affect output:
//! the entry free list and the [`TrellisArena`](crate::TrellisArena)
//! scratch (rebuilt empty — they only exist to avoid steady-state
//! allocations), and the model itself (the caller re-attaches it at
//! resume, sharing one `Arc<HdbnParams>` across a whole fleet of parked
//! homes).
//!
//! Resume is **panic-free on malformed input**: every index and length in
//! a parked payload is validated against the attached model before any
//! kernel runs, so a tampered-but-checksummed snapshot surfaces as
//! [`ModelError::Persistence`] instead of an out-of-bounds panic — the
//! router quarantines the home and keeps serving its shard-mates.

use cace_model::ModelError;
use serde::{Deserialize, Serialize};

use crate::arena::Slice;
use crate::input::MicroCandidate;
use crate::online::Lag;
use crate::params::HdbnParams;
use crate::scalar::Precision;

/// Parked form of one chain's per-tick trellis slice (everything the step
/// kernels read; the pair→slot lookup is per-fill scratch and rebuilt).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct ParkedSlice {
    pub(crate) activities: Vec<usize>,
    pub(crate) cands: Vec<usize>,
    pub(crate) pairs: Vec<u32>,
    pub(crate) emissions: Vec<f64>,
    pub(crate) uniq_pairs: Vec<u32>,
    pub(crate) slots: Vec<u32>,
    pub(crate) runs: Vec<(u32, u32, u32)>,
}

impl ParkedSlice {
    pub(crate) fn from_slice(s: &Slice) -> Self {
        Self {
            activities: s.activities.clone(),
            cands: s.cands.clone(),
            pairs: s.pairs.clone(),
            emissions: s.emissions.clone(),
            uniq_pairs: s.uniq_pairs.clone(),
            slots: s.slots.clone(),
            runs: s.runs.clone(),
        }
    }

    pub(crate) fn to_slice(&self) -> Slice {
        Slice::restored(
            self.activities.clone(),
            self.cands.clone(),
            self.pairs.clone(),
            self.emissions.clone(),
            self.uniq_pairs.clone(),
            self.slots.clone(),
            self.runs.clone(),
        )
    }

    pub(crate) fn len(&self) -> usize {
        self.activities.len()
    }

    /// Bounds-checks every index the step kernels would read: state count
    /// nonzero and internally consistent, pair/slot ids inside the model's
    /// dense tables, candidate indices inside the retained tuple list,
    /// activity runs a partition-shaped cover of the state list, emissions
    /// free of NaN (the frontier argmax totally orders scores).
    pub(crate) fn validate(
        &self,
        what: &str,
        n_macro: usize,
        n_pair: usize,
        n_cands: usize,
    ) -> Result<(), ModelError> {
        let m = self.len();
        check(m > 0, || format!("{what}: empty trellis slice"))?;
        check(
            self.cands.len() == m
                && self.pairs.len() == m
                && self.emissions.len() == m
                && self.slots.len() == m,
            || format!("{what}: slice column lengths disagree"),
        )?;
        check(self.activities.iter().all(|&a| a < n_macro), || {
            format!("{what}: activity id out of range")
        })?;
        check(self.cands.iter().all(|&c| c < n_cands), || {
            format!("{what}: candidate index out of range")
        })?;
        check(self.pairs.iter().all(|&p| (p as usize) < n_pair), || {
            format!("{what}: pair id out of range")
        })?;
        check(
            self.uniq_pairs.iter().all(|&p| (p as usize) < n_pair),
            || format!("{what}: distinct pair id out of range"),
        )?;
        let n_slots = self.uniq_pairs.len() as u32;
        check(self.slots.iter().all(|&s| s < n_slots), || {
            format!("{what}: slot index out of range")
        })?;
        check(self.emissions.iter().all(|e| !e.is_nan()), || {
            format!("{what}: NaN emission score")
        })?;
        // Runs must tile 0..m in order — the fold kernels walk them as a
        // cover of the state list.
        let mut cursor = 0u32;
        for &(a, start, end) in &self.runs {
            check(
                (a as usize) < n_macro && start == cursor && end >= start,
                || format!("{what}: malformed activity run"),
            )?;
            cursor = end;
        }
        check(cursor as usize == m, || {
            format!("{what}: activity runs do not cover the slice")
        })?;
        Ok(())
    }
}

/// Parked form of one retained tick of the coupled backpointer window.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct ParkedJointEntry {
    pub(crate) s1: ParkedSlice,
    pub(crate) s2: ParkedSlice,
    pub(crate) back: Vec<u32>,
    pub(crate) cands: [Vec<MicroCandidate>; 2],
}

/// Parked [`OnlineCoupledViterbi`](crate::OnlineCoupledViterbi) state: the
/// serialized mid-stream checkpoint of one home's coupled decoder.
/// Produced by [`park`](crate::OnlineCoupledViterbi::park), consumed by
/// [`resume`](crate::OnlineCoupledViterbi::resume); the payload is opaque
/// to callers and versioned by the snapshot layer that embeds it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParkedCoupled {
    pub(crate) v: Vec<f64>,
    pub(crate) v32: Vec<f32>,
    pub(crate) window: Vec<ParkedJointEntry>,
    pub(crate) base: usize,
    pub(crate) pushed: usize,
    pub(crate) emitted_macros: [Vec<usize>; 2],
    pub(crate) emitted_micros: [Vec<MicroCandidate>; 2],
    pub(crate) states_explored: u64,
    pub(crate) transition_ops: u64,
    pub(crate) pruned: bool,
    pub(crate) keep: Vec<u32>,
}

impl ParkedCoupled {
    /// Ticks the parked stream had consumed when it was parked.
    pub fn ticks_pushed(&self) -> usize {
        self.pushed
    }

    /// Full structural validation against the model this checkpoint is
    /// being re-attached to (see the [module docs](self) for why resume
    /// must be panic-free).
    pub(crate) fn validate(
        &self,
        p: &HdbnParams,
        precision: Precision,
        lag: Lag,
    ) -> Result<(), ModelError> {
        validate_cursor(
            "parked coupled stream",
            self.base,
            self.pushed,
            self.window.len(),
            self.emitted_macros[0].len(),
            lag,
        )?;
        check(
            self.emitted_macros[1].len() == self.emitted_macros[0].len()
                && self.emitted_micros[0].len() == self.emitted_macros[0].len()
                && self.emitted_micros[1].len() == self.emitted_macros[0].len(),
            || "parked coupled stream: emitted histories disagree in length".to_string(),
        )?;
        let (n_macro, n_pair) = (p.n_macro(), p.tables.n_pair());
        let mut prev_flat = None;
        for (i, e) in self.window.iter().enumerate() {
            let what = format!("parked coupled window[{i}]");
            e.s1.validate(&what, n_macro, n_pair, e.cands[0].len())?;
            e.s2.validate(&what, n_macro, n_pair, e.cands[1].len())?;
            let flat = e.s1.len() * e.s2.len();
            // window[0]'s backpointers are never read (no predecessor to
            // point into); every later entry's must cover its frontier and
            // stay inside the previous one.
            if let Some(prev_flat) = prev_flat {
                check(e.back.len() == flat, || {
                    format!("{what}: backpointer count != frontier size")
                })?;
                check(e.back.iter().all(|&b| (b as usize) < prev_flat), || {
                    format!("{what}: backpointer out of range")
                })?;
            }
            prev_flat = Some(flat);
        }
        if let Some(frontier) = prev_flat {
            validate_frontier(
                "parked coupled stream",
                frontier,
                &self.v,
                &self.v32,
                precision,
                self.pruned,
                &self.keep,
            )?;
        }
        Ok(())
    }
}

/// Parked form of one retained tick of a single-chain backpointer window.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct ParkedChainEntry {
    pub(crate) slice: ParkedSlice,
    pub(crate) back: Vec<u32>,
    pub(crate) cands: Vec<MicroCandidate>,
}

/// Parked [`OnlineSingleViterbi`](crate::OnlineSingleViterbi) state — the
/// single-chain counterpart of [`ParkedCoupled`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParkedChain {
    pub(crate) v: Vec<f64>,
    pub(crate) v32: Vec<f32>,
    pub(crate) window: Vec<ParkedChainEntry>,
    pub(crate) base: usize,
    pub(crate) pushed: usize,
    pub(crate) emitted_macros: Vec<usize>,
    pub(crate) emitted_micros: Vec<MicroCandidate>,
    pub(crate) states_explored: u64,
    pub(crate) transition_ops: u64,
    pub(crate) pruned: bool,
    pub(crate) keep: Vec<u32>,
}

impl ParkedChain {
    /// Ticks the parked stream had consumed when it was parked.
    pub fn ticks_pushed(&self) -> usize {
        self.pushed
    }

    /// Single-chain counterpart of [`ParkedCoupled::validate`].
    pub(crate) fn validate(
        &self,
        p: &HdbnParams,
        precision: Precision,
        lag: Lag,
    ) -> Result<(), ModelError> {
        validate_cursor(
            "parked chain stream",
            self.base,
            self.pushed,
            self.window.len(),
            self.emitted_macros.len(),
            lag,
        )?;
        check(
            self.emitted_micros.len() == self.emitted_macros.len(),
            || "parked chain stream: emitted histories disagree in length".to_string(),
        )?;
        let (n_macro, n_pair) = (p.n_macro(), p.tables.n_pair());
        let mut prev_len = None;
        for (i, e) in self.window.iter().enumerate() {
            let what = format!("parked chain window[{i}]");
            e.slice.validate(&what, n_macro, n_pair, e.cands.len())?;
            let m = e.slice.len();
            if let Some(prev_len) = prev_len {
                check(e.back.len() == m, || {
                    format!("{what}: backpointer count != frontier size")
                })?;
                check(e.back.iter().all(|&b| (b as usize) < prev_len), || {
                    format!("{what}: backpointer out of range")
                })?;
            }
            prev_len = Some(m);
        }
        if let Some(frontier) = prev_len {
            validate_frontier(
                "parked chain stream",
                frontier,
                &self.v,
                &self.v32,
                precision,
                self.pruned,
                &self.keep,
            )?;
        }
        Ok(())
    }
}

/// Maps a failed structural invariant to [`ModelError::Persistence`]
/// with a lazily built description — the shared error shape of every
/// family's parked-state validation (including `cace-core`'s NH
/// frontier).
pub fn check(cond: bool, what: impl FnOnce() -> String) -> Result<(), ModelError> {
    if cond {
        Ok(())
    } else {
        Err(ModelError::Persistence { what: what() })
    }
}

/// Decision-cursor invariants shared by every parked decoder family: the
/// window holds exactly ticks `base..pushed`, the emitted prefix matches
/// the lag's ripening schedule (so the resumed decoder's `emit_ready`
/// picks up at the right tick), and finalization can still reach every
/// uncommitted tick.
pub fn validate_cursor(
    what: &str,
    base: usize,
    pushed: usize,
    window_len: usize,
    committed: usize,
    lag: Lag,
) -> Result<(), ModelError> {
    check(base + window_len == pushed, || {
        format!("{what}: window covers {window_len} ticks but cursor says {base}..{pushed}")
    })?;
    check(pushed == 0 || window_len > 0, || {
        format!("{what}: nonempty stream with empty window")
    })?;
    let expected = match lag {
        Lag::Unbounded => 0,
        Lag::Fixed(l) => pushed.saturating_sub(l),
    };
    check(committed == expected, || {
        format!(
            "{what}: {committed} committed decisions, lag schedule expects {expected} \
             after {pushed} ticks"
        )
    })?;
    check(base <= committed, || {
        format!("{what}: window base {base} past the committed prefix {committed}")
    })?;
    Ok(())
}

/// Frontier + pending-survivor invariants shared by every parked decoder
/// family: the active scoring lane's frontier matches the newest window
/// entry, carries no NaN (argmax totally orders scores), and a pending
/// pruned survivor set is a strict, strictly-ascending subset of it.
pub fn validate_frontier(
    what: &str,
    frontier: usize,
    v: &[f64],
    v32: &[f32],
    precision: Precision,
    pruned: bool,
    keep: &[u32],
) -> Result<(), ModelError> {
    match precision {
        Precision::Exact64 => {
            check(v.len() == frontier, || {
                format!("{what}: frontier length != newest window entry")
            })?;
            check(v.iter().all(|s| !s.is_nan()), || {
                format!("{what}: NaN frontier score")
            })?;
        }
        Precision::Fast32 => {
            check(v32.len() == frontier, || {
                format!("{what}: f32 frontier length != newest window entry")
            })?;
            check(v32.iter().all(|s| !s.is_nan()), || {
                format!("{what}: NaN frontier score")
            })?;
        }
    }
    if pruned {
        check(
            !keep.is_empty()
                && keep.len() < frontier
                && keep.windows(2).all(|w| w[0] < w[1])
                && keep.iter().all(|&k| (k as usize) < frontier),
            || format!("{what}: malformed beam survivor set"),
        )?;
    }
    Ok(())
}
