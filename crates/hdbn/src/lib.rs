//! # cace-hdbn
//!
//! Hierarchical dynamic Bayesian networks: the paper's core inference
//! machinery.
//!
//! The model follows §IV–VI of the paper. Each resident has a two-level
//! chain — hidden macro activities over partially observed micro states —
//! with end-of-sequence markers `E` controlling the hierarchy (blocking and
//! termination constraints, Eqns 3–6) and four dependency *augmentations*:
//!
//! 1. `E` markers depend on the macro state and the micro-level marker
//!    (Eqn 7) — realized here through per-activity termination probabilities
//!    mined by the constraint miner.
//! 2. Macro states depend on their prior and the micro level below
//!    (Eqns 8–10) — the hierarchical `P(micro | macro)` CPTs.
//! 3. Transition CPTs switch between a continuation table and a restart
//!    prior according to the markers, and couple to the partner chain
//!    (Eqns 11–14) — the concurrent inter-user co-occurrence factor.
//! 4. Observations are Gaussian/classifier log-likelihoods attached to the
//!    micro level (Eqn 15) — supplied per candidate in [`TickInput`].
//!
//! Inference is exact joint Viterbi over the pruned candidate space, with
//! the coupled-chain transition factorized as
//! `max_{s1'} [f1 + max_{s2'} (V + f2)]`, which turns the naive
//! `O(|S|²)`-per-tick joint recursion into
//! `O(|S1||S2|(|S1|+|S2|))` — the implementation-level reason pruned
//! candidate sets translate into the paper's 16-fold overhead reduction.
//! The same recursion also runs *incrementally*: the [`online`] module
//! maintains the trellis frontier tick by tick with fixed-lag smoothing,
//! for run-time recognition on live sensor streams. On top of the
//! candidate-space pruning, every decoder accepts a [`DecoderConfig`]
//! whose [`Beam`] restricts the *frontier* itself each tick (top-K or
//! log-threshold), trading a provably-bounded amount of path quality for
//! per-tick work proportional to the beam width — see [`beam`].
//!
//! The hot path is memory-engineered on two axes. *Scoring*: every decoder
//! reads transition/emission factors from the dense precomputed
//! [`ScoreTables`] over compact `(activity, postural)` pair ids — flat
//! array loads, bit-identical to the naive [`HdbnParams`] scorers they are
//! built from ([`tables`]). *Allocation*: all step-kernel scratch lives in
//! a [`TrellisArena`] allocated once per decode or stream, so a warmed
//! online push performs zero heap allocations per tick ([`arena`]).
//! On top of both, every step kernel is generic over a [`Scalar`] scoring
//! lane ([`scalar`]): the default [`Precision::Exact64`] `f64` lane stays
//! bit-identical to the naive scorers, while the opt-in
//! [`Precision::Fast32`] lane decodes through a lazily built `f32` table
//! mirror at roughly twice the per-tick speed, within a measured
//! agreement tolerance.
//!
//! The crate is deliberately index-based (runtime vocabulary sizes), so the
//! same machinery serves the 11-activity CACE and 15-activity CASAS
//! configurations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod beam;
pub mod em;
pub mod forward;
pub mod input;
pub mod online;
pub mod params;
pub mod park;
pub mod scalar;
pub mod single;
pub mod tables;
pub mod trellis;
pub mod viterbi;
pub mod wire;

pub use arena::{BatchScratch, StepScratch, TrellisArena};
pub use beam::{Beam, BeamScratch, DecoderConfig};
pub use em::{e_step, fit_em, fit_em_shared, DriftAccumulator, EmConfig, EmOutcome};
pub use forward::log_sum_exp;
pub use input::{MicroCandidate, TickInput};
pub use online::{Lag, OnlineCoupledViterbi, OnlineSingleViterbi, SmoothedChain, SmoothedJoint};
pub use params::{HdbnConfig, HdbnParams};
pub use park::{ParkedChain, ParkedCoupled};
pub use scalar::{Precision, Scalar};
pub use single::SingleHdbn;
pub use tables::{ScoreTables, ScoreTablesF32};
pub use trellis::{
    step_dense_batch_into, BatchLane, BatchedTrellis, Dest, HierModel, OnlineTrellis,
    PosteriorModel, ScoreModel, StateSpace, TrellisEntry, TrellisFamily,
};
pub use viterbi::{CoupledHdbn, JointPath};
