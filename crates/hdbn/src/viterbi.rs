//! Joint Viterbi decoding of the loosely-coupled two-chain HDBN.
//!
//! The joint transition kernel decomposes as
//! `f1(s1, s1′) + f2(s2, s2′) + g(a1, a2)` — per-chain hierarchical
//! transitions plus a concurrent inter-user coupling — so the naive
//! `O((|S1||S2|)²)` joint recursion folds into two passes of
//! `O(|S1||S2|(|S1|+|S2|))`. Pruned candidate sets therefore translate
//! directly into the paper's order-of-magnitude overhead reduction.

use std::sync::Arc;

use cace_model::ModelError;

use crate::arena::{fill_slice, Slice, StepScratch};
use crate::beam::{BeamScratch, DecoderConfig};
use crate::input::{MicroCandidate, TickInput};
use crate::params::HdbnParams;
use crate::scalar::{self, sweep_add_max, sweep_add_max_arg, sweep_max, Precision, Scalar};
use crate::tables::ScoreTablesT;

/// Rejects a tick that would empty the joint trellis.
pub(crate) fn validate_tick(tick: &TickInput, t: usize) -> Result<(), ModelError> {
    let empty_micro = tick.candidates.iter().any(|c| c.is_empty());
    let empty_macro = tick
        .macro_candidates
        .iter()
        .any(|m| m.as_ref().is_some_and(|v| v.is_empty()));
    if empty_micro || empty_macro {
        return Err(ModelError::EmptyStateSpace { tick: t });
    }
    Ok(())
}

/// First-tick joint frontier, written into `v`: per-chain emissions plus
/// macro priors plus the inter-user coupling, flattened as
/// `j1 * |S2| + j2`.
///
/// Shared by the batch decoder and [`crate::online::OnlineCoupledViterbi`]
/// so the two paths stay bit-identical (per lane: emissions and priors are
/// summed in f64, cast into the lane, then offset by the lane's coupling
/// table — the identity composition for `S = f64`).
pub(crate) fn joint_init_into<S: Scalar>(p: &HdbnParams, s1: &Slice, s2: &Slice, v: &mut Vec<S>) {
    let t = S::tables(p);
    v.clear();
    v.reserve(s1.len() * s2.len());
    for j1 in 0..s1.len() {
        let a1 = s1.activities[j1];
        let base1 = s1.emissions[j1] + p.log_prior[a1];
        for j2 in 0..s2.len() {
            let a2 = s2.activities[j2];
            let base2 = s2.emissions[j2] + p.log_prior[a2];
            v.push(S::from_f64(base1 + base2) + t.coupling(a1, a2));
        }
    }
}

/// One joint DP step: folds chain 2 then chain 1 exactly as documented in
/// the module header. The new frontier lands in `step.v_next` (the caller
/// swaps it with its live frontier) and the per-state flattened
/// backpointers into the previous tick's frontier land in `back` — all
/// buffers reused, so a warmed caller allocates nothing.
///
/// Transition scores are flat loads from the dense
/// [`ScoreTables`](crate::ScoreTables): the per-`j` transition column is a
/// gather from one contiguous `into_row` slice via the slices' precomputed
/// pair ids (bit-identical to evaluating
/// [`HdbnParams::transition_score`] per edge, which is how the table was
/// built).
///
/// This is the single implementation of the recursion; the batch
/// [`CoupledHdbn::viterbi`] and the incremental
/// [`crate::online::OnlineCoupledViterbi`] both call it, which is what
/// makes the streamed path bit-identical to the batch path. Generic over
/// the scoring lane `S`; the `f64` instantiation is bit-identical to the
/// historical monomorphic kernel (the lane folds and the hoisted gather
/// reorder only *selections* and *loads*, never arithmetic).
pub(crate) fn joint_step_into<S: Scalar>(
    p: &HdbnParams,
    prev1: &Slice,
    prev2: &Slice,
    v: &[S],
    cur1: &Slice,
    cur2: &Slice,
    step: &mut StepScratch<S>,
    back: &mut Vec<u32>,
) {
    let t = S::tables(p);
    let StepScratch {
        w,
        w_arg,
        w2,
        w2_arg,
        v_next,
        run_max,
        run_arg,
        gcol,
        vt,
        wt,
        acc_arg,
        crow,
        ..
    } = step;
    let (k1, k2) = (prev1.len(), prev2.len());
    // Two memoizations per pass, both bit-identical to the per-state
    // recursion they replace:
    // 1. A fold depends on the destination state only through its pair
    //    id — compute once per *distinct* pair (slot), fan out.
    // 2. Switch transitions are postural-independent, so a whole
    //    same-activity run of the source frontier collapses to one
    //    candidate (run max + switch constant); adding the same finite
    //    constant preserves strict order and first-argmax, and runs are
    //    visited in ascending state order, so tie-breaking matches the
    //    naive ascending scan.
    // On top of both, the folds are *column-major*: instead of reducing
    // one short run segment at a time (≈ candidates-per-activity wide,
    // too short to amortize a lane fold), each pass accumulates a whole
    // frontier row of destinations at once — `j1p`-contiguous in pass 1,
    // `slot2`-contiguous in pass 2 — against one broadcast transition
    // score per source. The inner loops are long contiguous
    // compare-and-select sweeps the stable-toolchain autovectorizer turns
    // into SIMD, and the `f32` lane halves their traffic. Candidate visit
    // order per destination is *unchanged* (runs in slice order; within a
    // continue run, sources ascending; strict `>` keeps the first
    // maximum), so the exact lane stays bit-identical to the naive
    // ascending scan.
    let (d1, d2) = (cur1.n_slots(), cur2.n_slots());

    // Transpose the frontier once per tick: vt[j2p][j1p] = V[j1p][j2p].
    vt.clear();
    vt.resize(k1 * k2, S::NEG_INFINITY);
    for j2p in 0..k2 {
        let col = &mut vt[j2p * k1..][..k1];
        for (j1p, x) in col.iter_mut().enumerate() {
            *x = v[j1p * k2 + j2p];
        }
    }

    // Chain-2 switch-candidate cache, j1p-contiguous: per chain-2 run r,
    // run_max[r][j1p] = first-max over the run's j2p of V[j1p][j2p]
    // (all-`−∞` runs keep the run start as argmax, like the fold helper).
    let nr2 = prev2.runs.len();
    run_max.clear();
    run_max.resize(nr2 * k1, S::NEG_INFINITY);
    run_arg.clear();
    run_arg.resize(nr2 * k1, 0);
    for (r, &(_, start, end)) in prev2.runs.iter().enumerate() {
        let rm = &mut run_max[r * k1..][..k1];
        let ra = &mut run_arg[r * k1..][..k1];
        ra.fill(start);
        for j2p in start..end {
            sweep_max(&vt[j2p as usize * k1..][..k1], j2p, rm, ra);
        }
    }

    // Pass 1 — fold chain 2, per distinct chain-2 dst pair:
    // W[s2, j1p] = max_{j2p} V[j1p, j2p] + f2(j2p → pair(s2)), slot-major.
    // Continue runs sweep one transposed frontier column per source j2p
    // (transition score broadcast); switch runs sweep the cached run max.
    w.clear();
    w.resize(d2 * k1, S::NEG_INFINITY);
    w_arg.clear();
    w_arg.resize(d2 * k1, 0);
    for (s2, &dp2) in cur2.uniq_pairs.iter().enumerate() {
        let a2 = t.activity_of(dp2);
        let row = t.into_row(dp2);
        let srow = t.switch_row(a2);
        let wrow = &mut w[s2 * k1..][..k1];
        let warow = &mut w_arg[s2 * k1..][..k1];
        for (r, &(ar, start, end)) in prev2.runs.iter().enumerate() {
            if ar as usize == a2 {
                for j2p in start as usize..end as usize {
                    let g = row[prev2.pairs[j2p] as usize];
                    sweep_add_max(&vt[j2p * k1..][..k1], g, j2p as u32, wrow, warow);
                }
            } else {
                let sw = srow[ar as usize];
                sweep_add_max_arg(
                    &run_max[r * k1..][..k1],
                    sw,
                    &run_arg[r * k1..][..k1],
                    wrow,
                    warow,
                );
            }
        }
    }

    // Transpose W once: wt[j1p][s2] = W[s2, j1p], so pass 2 accumulates
    // s2-contiguously.
    wt.clear();
    wt.resize(k1 * d2, S::NEG_INFINITY);
    for j1p in 0..k1 {
        let row = &mut wt[j1p * d2..][..d2];
        for (s2, x) in row.iter_mut().enumerate() {
            *x = w[s2 * k1 + j1p];
        }
    }

    // Chain-1 switch-candidate cache, s2-contiguous: per chain-1 run r,
    // run_max[r][s2] = first-max over the run's j1p of W[s2, j1p].
    let nr1 = prev1.runs.len();
    run_max.clear();
    run_max.resize(nr1 * d2, S::NEG_INFINITY);
    run_arg.clear();
    run_arg.resize(nr1 * d2, 0);
    for (r, &(_, start, end)) in prev1.runs.iter().enumerate() {
        let rm = &mut run_max[r * d2..][..d2];
        let ra = &mut run_arg[r * d2..][..d2];
        ra.fill(start);
        for j1p in start as usize..end as usize {
            sweep_max(&wt[j1p * d2..][..d2], j1p as u32, rm, ra);
        }
    }

    // Pass 2 — fold chain 1, per (distinct chain-1 pair, distinct
    // chain-2 pair): V''[s1, s2] = max_{j1p} W[s2, j1p] + f1(j1p → s1),
    // with the backpointer restored to full-frontier coordinates.
    w2.clear();
    w2.resize(d1 * d2, S::NEG_INFINITY);
    w2_arg.clear();
    w2_arg.resize(d1 * d2, 0);
    for (s1, &dp1) in cur1.uniq_pairs.iter().enumerate() {
        let a1 = t.activity_of(dp1);
        let row = t.into_row(dp1);
        let srow = t.switch_row(a1);
        let acc = &mut w2[s1 * d2..][..d2];
        acc_arg.clear();
        acc_arg.resize(d2, 0);
        for (r, &(ar, start, end)) in prev1.runs.iter().enumerate() {
            if ar as usize == a1 {
                for j1p in start as usize..end as usize {
                    let g = row[prev1.pairs[j1p] as usize];
                    sweep_add_max(&wt[j1p * d2..][..d2], g, j1p as u32, acc, acc_arg);
                }
            } else {
                let sw = srow[ar as usize];
                sweep_add_max_arg(
                    &run_max[r * d2..][..d2],
                    sw,
                    &run_arg[r * d2..][..d2],
                    acc,
                    acc_arg,
                );
            }
        }
        // Recover j2p chosen inside W for (best_j1p, s2).
        for s2 in 0..d2 {
            let best_j1p = acc_arg[s2] as usize;
            let j2p = w_arg[s2 * k1 + best_j1p];
            w2_arg[s1 * d2 + s2] = (acc_arg[s2]) * (k2 as u32) + j2p;
        }
    }

    // Fan out: per joint state, the memoized fold plus emissions and
    // coupling — shared with the pruned kernel, so both step kernels'
    // expansions stay bit-identical by construction.
    joint_fan_out(t, cur1, cur2, w2, w2_arg, gcol, crow, v_next, back);
}

/// Shared fan-out of both joint step kernels: expands the pass-2 fold
/// `V''[s1, s2]` (`w2`/`w2_arg`, per distinct destination pair) to the
/// full `m1 × m2` joint frontier, adding emissions and coupling.
///
/// Chain 2's emission conversions are hoisted out of the inner loop (per
/// `j2`, not per `(j1, j2)`), and the coupling scores — constant per
/// `(a1, j2)` — are materialized as one contiguous row per chain-1
/// activity run (`crow`). Each `j1`'s inner loop is then a single
/// unsegmented zip over four contiguous rows, which vectorizes in both
/// lanes; when the chain-2 slot map is the identity (every state a
/// distinct pair — the common dense case) the `wrow[s2]` gather
/// degenerates to the contiguous row itself and the backpointer row to a
/// plain copy. The addition *tree* per element is unchanged from the
/// historical per-state loops (`wrow[s2] + ((e1 + gcol[j2]) + c)`, IEEE
/// addition is commutative bit-for-bit), so the exact lane is unchanged.
#[allow(clippy::too_many_arguments)]
fn joint_fan_out<S: Scalar>(
    t: &ScoreTablesT<S>,
    cur1: &Slice,
    cur2: &Slice,
    w2: &[S],
    w2_arg: &[u32],
    gcol: &mut Vec<S>,
    crow: &mut Vec<S>,
    v_next: &mut Vec<S>,
    back: &mut Vec<u32>,
) {
    let (m1, m2) = (cur1.len(), cur2.len());
    let d2 = cur2.n_slots();
    v_next.clear();
    v_next.resize(m1 * m2, S::NEG_INFINITY);
    back.clear();
    back.resize(m1 * m2, 0);
    gcol.clear();
    gcol.extend(cur2.emissions.iter().map(|&e| S::from_f64(e)));
    let identity2 = d2 == m2 && cur2.slots.iter().enumerate().all(|(i, &s)| s as usize == i);
    for &(a1, start1, end1) in cur1.runs.iter() {
        let a1 = a1 as usize;
        crow.clear();
        crow.extend(cur2.activities.iter().map(|&a2| t.coupling(a1, a2)));
        for j1 in start1 as usize..end1 as usize {
            let s1 = cur1.slots[j1] as usize;
            let e1 = S::from_f64(cur1.emissions[j1]);
            let wrow = &w2[s1 * d2..][..d2];
            let brow = &w2_arg[s1 * d2..][..d2];
            let vrow = &mut v_next[j1 * m2..][..m2];
            let krow = &mut back[j1 * m2..][..m2];
            if identity2 {
                for (((x, &g), &c), &wv) in vrow
                    .iter_mut()
                    .zip(gcol.iter())
                    .zip(crow.iter())
                    .zip(wrow.iter())
                {
                    *x = wv + ((e1 + g) + c);
                }
                krow.copy_from_slice(brow);
            } else {
                for j2 in 0..m2 {
                    let s2 = cur2.slots[j2] as usize;
                    vrow[j2] = wrow[s2] + ((e1 + gcol[j2]) + crow[j2]);
                    krow[j2] = brow[s2];
                }
            }
        }
    }
}

/// One *fleet-batched* joint DP step: advances `B = vs.len()` co-model
/// streams — same parameters, same structurally-identical previous slices
/// (`Slice::same_shape`), same current tick — through one fused pass over
/// the shared [`ScoreTables`](crate::ScoreTables).
///
/// The kernel mirrors [`joint_step_into`] sweep for sweep, with every
/// buffer widened by the home dimension (innermost, contiguous — see
/// [`BatchScratch`](crate::arena::BatchScratch)): each `into_row` gather,
/// switch constant, and coupling row is loaded **once** and swept across
/// all `B` lanes via the branchless [`crate::scalar`] sweeps. Because the
/// sweeps are elementwise-independent and candidates are visited in the
/// exact order of the unbatched kernel (runs in slice order, sources
/// ascending, strict `>` first-win), home `h`'s slice of every
/// accumulator evolves exactly as its dedicated [`joint_step_into`] run
/// would — the per-home outputs in `bs.v_next[h]` / `bs.back[h]` are
/// bit-identical to the unbatched path, per lane.
pub(crate) fn joint_step_batch_into<S: Scalar>(
    p: &HdbnParams,
    prev1: &Slice,
    prev2: &Slice,
    vs: &[&[S]],
    cur1: &Slice,
    cur2: &Slice,
    bs: &mut crate::arena::BatchScratch<S>,
) {
    let t = S::tables(p);
    let b = vs.len();
    let (k1, k2) = (prev1.len(), prev2.len());
    let (d1, d2) = (cur1.n_slots(), cur2.n_slots());
    bs.ensure_homes(b);

    // Gather every stream's frontier directly into the home-blocked
    // transpose: vtb[j2p][h][j1p] = V_h[j1p][j2p].
    let bk1 = b * k1;
    let vtb = &mut bs.vt;
    vtb.clear();
    vtb.resize(k2 * bk1, S::NEG_INFINITY);
    for (h, v) in vs.iter().enumerate() {
        for j1p in 0..k1 {
            let row = &v[j1p * k2..][..k2];
            for (j2p, &x) in row.iter().enumerate() {
                vtb[j2p * bk1 + h * k1 + j1p] = x;
            }
        }
    }

    // Chain-2 switch-candidate cache, home-blocked: per chain-2 run r,
    // run_max[r][h][j1p] = first-max over the run's j2p of V_h[j1p][j2p]
    // (all-`−∞` runs keep the run start, like the unbatched cache).
    let nr2 = prev2.runs.len();
    bs.run_max.clear();
    bs.run_max.resize(nr2 * bk1, S::NEG_INFINITY);
    bs.run_arg.clear();
    bs.run_arg.resize(nr2 * bk1, 0);
    for (r, &(_, start, end)) in prev2.runs.iter().enumerate() {
        let rm = &mut bs.run_max[r * bk1..][..bk1];
        let ra = &mut bs.run_arg[r * bk1..][..bk1];
        ra.fill(start);
        for j2p in start..end {
            sweep_max(&vtb[j2p as usize * bk1..][..bk1], j2p, rm, ra);
        }
    }

    // Pass 1 — fold chain 2 for all homes at once, per distinct chain-2
    // dst pair: each transition score is computed once and swept across
    // the B·k1-wide home-blocked row.
    bs.w.clear();
    bs.w.resize(d2 * bk1, S::NEG_INFINITY);
    bs.w_arg.clear();
    bs.w_arg.resize(d2 * bk1, 0);
    for (s2, &dp2) in cur2.uniq_pairs.iter().enumerate() {
        let a2 = t.activity_of(dp2);
        let row = t.into_row(dp2);
        let srow = t.switch_row(a2);
        let wrow = &mut bs.w[s2 * bk1..][..bk1];
        let warow = &mut bs.w_arg[s2 * bk1..][..bk1];
        for (r, &(ar, start, end)) in prev2.runs.iter().enumerate() {
            if ar as usize == a2 {
                for j2p in start as usize..end as usize {
                    let g = row[prev2.pairs[j2p] as usize];
                    sweep_add_max(&vtb[j2p * bk1..][..bk1], g, j2p as u32, wrow, warow);
                }
            } else {
                let sw = srow[ar as usize];
                sweep_add_max_arg(
                    &bs.run_max[r * bk1..][..bk1],
                    sw,
                    &bs.run_arg[r * bk1..][..bk1],
                    wrow,
                    warow,
                );
            }
        }
    }

    // Transpose W once: wtb[j1p][h][s2] = W[s2][h][j1p], so pass 2
    // accumulates s2-contiguously per home.
    let bd2 = b * d2;
    bs.wt.clear();
    bs.wt.resize(k1 * bd2, S::NEG_INFINITY);
    for s2 in 0..d2 {
        for h in 0..b {
            let src = &bs.w[s2 * bk1 + h * k1..][..k1];
            for (j1p, &x) in src.iter().enumerate() {
                bs.wt[j1p * bd2 + h * d2 + s2] = x;
            }
        }
    }

    // Chain-1 switch-candidate cache over the transposed pass-1 fold.
    let nr1 = prev1.runs.len();
    bs.run_max.clear();
    bs.run_max.resize(nr1 * bd2, S::NEG_INFINITY);
    bs.run_arg.clear();
    bs.run_arg.resize(nr1 * bd2, 0);
    for (r, &(_, start, end)) in prev1.runs.iter().enumerate() {
        let rm = &mut bs.run_max[r * bd2..][..bd2];
        let ra = &mut bs.run_arg[r * bd2..][..bd2];
        ra.fill(start);
        for j1p in start as usize..end as usize {
            sweep_max(&bs.wt[j1p * bd2..][..bd2], j1p as u32, rm, ra);
        }
    }

    // Pass 2 — fold chain 1 for all homes, per distinct chain-1 dst pair,
    // then recover each home's flattened full-frontier backpointer.
    bs.w2.clear();
    bs.w2.resize(d1 * bd2, S::NEG_INFINITY);
    bs.w2_arg.clear();
    bs.w2_arg.resize(d1 * bd2, 0);
    for (s1, &dp1) in cur1.uniq_pairs.iter().enumerate() {
        let a1 = t.activity_of(dp1);
        let row = t.into_row(dp1);
        let srow = t.switch_row(a1);
        let acc = &mut bs.w2[s1 * bd2..][..bd2];
        bs.acc_arg.clear();
        bs.acc_arg.resize(bd2, 0);
        for (r, &(ar, start, end)) in prev1.runs.iter().enumerate() {
            if ar as usize == a1 {
                for j1p in start as usize..end as usize {
                    let g = row[prev1.pairs[j1p] as usize];
                    sweep_add_max(
                        &bs.wt[j1p * bd2..][..bd2],
                        g,
                        j1p as u32,
                        acc,
                        &mut bs.acc_arg,
                    );
                }
            } else {
                let sw = srow[ar as usize];
                sweep_add_max_arg(
                    &bs.run_max[r * bd2..][..bd2],
                    sw,
                    &bs.run_arg[r * bd2..][..bd2],
                    acc,
                    &mut bs.acc_arg,
                );
            }
        }
        for h in 0..b {
            for s2 in 0..d2 {
                let best_j1p = bs.acc_arg[h * d2 + s2];
                let j2p = bs.w_arg[s2 * bk1 + h * k1 + best_j1p as usize];
                bs.w2_arg[s1 * bd2 + h * d2 + s2] = best_j1p * (k2 as u32) + j2p;
            }
        }
    }

    // Per-home fan-out through the *shared* joint fan-out, so the batched
    // expansion stays bit-identical to the unbatched kernels by
    // construction (same addition tree, same slot gathers).
    for h in 0..b {
        bs.w2h.clear();
        bs.w2h_arg.clear();
        for s1 in 0..d1 {
            let src = &bs.w2[s1 * bd2 + h * d2..][..d2];
            bs.w2h.extend_from_slice(src);
            let srca = &bs.w2_arg[s1 * bd2 + h * d2..][..d2];
            bs.w2h_arg.extend_from_slice(srca);
        }
        let crate::arena::BatchScratch {
            w2h,
            w2h_arg,
            gcol,
            crow,
            v_next,
            back,
            ..
        } = bs;
        joint_fan_out(
            t,
            cur1,
            cur2,
            w2h,
            w2h_arg,
            gcol,
            crow,
            &mut v_next[h],
            &mut back[h],
        );
    }
}

/// Reusable work buffers of [`joint_step_pruned_into`], owned by the
/// [`crate::arena::TrellisArena`]'s step scratch: one allocation per
/// decode (batch) or stream (online), reused across ticks — the pruned
/// hot path allocates nothing once warmed, exactly like the dense kernel.
#[derive(Debug, Clone, Default)]
pub(crate) struct JointScratch<S> {
    /// Chain-1 state of each survivor group.
    group_j1p: Vec<u32>,
    /// Half-open `keep` range of each group.
    group_span: Vec<(u32, u32)>,
    /// Distinct surviving j2p values, ascending.
    uniq2: Vec<u32>,
    /// j2p → slot lookup into `uniq2` (only surviving slots are read, so
    /// stale entries from earlier ticks are harmless).
    slot_of: Vec<u32>,
    /// Per-survivor slot into `uniq2`, hoisted out of pass 1's fold (the
    /// fold runs once per distinct chain-2 destination pair; the survivor
    /// → slot mapping is tick-constant).
    keep_slot: Vec<u32>,
    /// Pass-1 f2 scores per distinct j2p.
    f2vals: Vec<S>,
    /// Pass-2 f1 scores per group.
    f1vals: Vec<S>,
}

/// [`joint_step_into`] restricted to a pruned previous frontier: only the
/// survivors in `keep` (flattened `j1p * |S2_prev| + j2p` indices, sorted
/// ascending) may be transitioned out of. The new frontier lands in
/// `step.v_next`, the backpointers (in the *same* full-frontier
/// coordinates as [`joint_step_into`], so backtracking is oblivious to
/// pruning) in `back`; returns the transition-op charge for the step under
/// the overhead experiments' accounting convention —
/// `|survivors| · (|S1|+|S2|)`, the exact step's `k1·k2·(m1+m2)` with the
/// survivor count in place of the full previous frontier, so charges stay
/// comparable across beam widths (and equal the exact charge when nothing
/// is pruned).
///
/// The fold order mirrors the dense kernel — chain 2 first, then chain 1,
/// candidates visited in ascending index order — so a `keep` covering the
/// whole frontier reproduces [`joint_step_into`] bit for bit. (The
/// decoders never take that path: [`crate::Beam`] selection degrades to
/// the dense kernel when nothing is pruned.)
pub(crate) fn joint_step_pruned_into<S: Scalar>(
    p: &HdbnParams,
    prev1: &Slice,
    prev2: &Slice,
    v: &[S],
    keep: &[u32],
    cur1: &Slice,
    cur2: &Slice,
    step: &mut StepScratch<S>,
    back: &mut Vec<u32>,
) -> u64 {
    let t = S::tables(p);
    let StepScratch {
        joint: scratch,
        w,
        w_arg,
        w2,
        w2_arg,
        v_next,
        gcol,
        crow,
        acc_arg,
        ..
    } = step;
    let JointScratch {
        group_j1p,
        group_span,
        uniq2,
        slot_of,
        keep_slot,
        f2vals,
        f1vals,
    } = scratch;
    let k2 = prev2.len() as u32;
    let (m1, m2) = (cur1.len(), cur2.len());
    // Like the dense kernel, both folds are memoized per distinct
    // destination pair (slot) — identical arithmetic and tie-breaking,
    // computed once and fanned out.
    let (d1, d2) = (cur1.n_slots(), cur2.n_slots());

    // Survivors grouped by j1p: `keep` is sorted, so each group is a
    // contiguous run. `group_j1p[g]` is the chain-1 state of group `g`,
    // `group_span[g]` its half-open range inside `keep`.
    group_j1p.clear();
    group_span.clear();
    let mut i = 0usize;
    while i < keep.len() {
        let j1p = keep[i] / k2;
        let start = i;
        while i < keep.len() && keep[i] / k2 == j1p {
            i += 1;
        }
        group_j1p.push(j1p);
        group_span.push((start as u32, i as u32));
    }
    let n_groups = group_j1p.len();

    // Distinct surviving j2p values, with a j2p → slot lookup so pass 1
    // scores each f2 edge once per (j2, distinct j2p); the per-survivor
    // slot is hoisted into `keep_slot` so the fold's inner loop does no
    // division or double lookup.
    uniq2.clear();
    uniq2.extend(keep.iter().map(|&f| f % k2));
    uniq2.sort_unstable();
    uniq2.dedup();
    slot_of.resize(k2 as usize, 0);
    for (slot, &j2p) in uniq2.iter().enumerate() {
        slot_of[j2p as usize] = slot as u32;
    }
    keep_slot.clear();
    keep_slot.extend(keep.iter().map(|&f| slot_of[(f % k2) as usize]));

    // Pass 1 — fold chain 2 over the survivors, per (group, distinct
    // chain-2 pair):
    // W[g, s2] = max_{(j1p_g, j2p) ∈ keep} V[j1p_g, j2p] + f2(j2p → s2).
    // Every entry of w/w_arg/f2vals is overwritten below before it is read.
    w.resize(n_groups * d2, S::NEG_INFINITY);
    w_arg.resize(n_groups * d2, 0);
    f2vals.resize(uniq2.len(), S::NEG_INFINITY);
    for (s2, &dp2) in cur2.uniq_pairs.iter().enumerate() {
        let row = t.into_row(dp2);
        for (slot, &j2p) in uniq2.iter().enumerate() {
            f2vals[slot] = row[prev2.pairs[j2p as usize] as usize];
        }
        for g in 0..n_groups {
            let (start, end) = group_span[g];
            let mut best = S::NEG_INFINITY;
            let mut best_j2p = 0u32;
            for i in start as usize..end as usize {
                let slot = keep_slot[i] as usize;
                let score = v[keep[i] as usize] + f2vals[slot];
                if score > best {
                    best = score;
                    best_j2p = uniq2[slot];
                }
            }
            w[g * d2 + s2] = best;
            w_arg[g * d2 + s2] = best_j2p;
        }
    }

    // Pass 2 — fold chain 1 over the surviving groups, per (distinct
    // chain-1 pair, distinct chain-2 pair). Each group's pass-1 scores
    // `W[g, ·]` are one contiguous row, so the fold is `n_groups` lane
    // sweeps (broadcast f1 score per group) instead of a branchy
    // per-(s2, g) scan — groups are visited ascending with strict `>`,
    // exactly the scan's order, so selections and backpointers are
    // unchanged. Backpointers are restored to full-frontier flat
    // coordinates afterwards.
    w2.clear();
    w2.resize(d1 * d2, S::NEG_INFINITY);
    w2_arg.clear();
    w2_arg.resize(d1 * d2, 0);
    f1vals.resize(n_groups, S::NEG_INFINITY);
    for (s1, &dp1) in cur1.uniq_pairs.iter().enumerate() {
        let row = t.into_row(dp1);
        for (g, &j1p) in group_j1p.iter().enumerate() {
            f1vals[g] = row[prev1.pairs[j1p as usize] as usize];
        }
        let acc = &mut w2[s1 * d2..][..d2];
        acc_arg.clear();
        acc_arg.resize(d2, 0);
        for (g, &f1) in f1vals.iter().enumerate() {
            sweep_add_max(&w[g * d2..][..d2], f1, g as u32, acc, acc_arg);
        }
        for s2 in 0..d2 {
            let g = acc_arg[s2] as usize;
            w2_arg[s1 * d2 + s2] = group_j1p[g] * k2 + w_arg[g * d2 + s2];
        }
    }

    // Fan out per joint state, plus emissions and coupling — shared with
    // the dense kernel (same addition tree as the historical per-state
    // loop here, so decoded paths are unchanged).
    joint_fan_out(t, cur1, cur2, w2, w2_arg, gcol, crow, v_next, back);
    keep.len() as u64 * (m1 as u64 + m2 as u64)
}

/// The decoded joint trajectory plus accounting for the overhead
/// experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct JointPath {
    /// Decoded macro activity per user per tick.
    pub macros: [Vec<usize>; 2],
    /// Decoded micro tuple per user per tick.
    pub micros: [Vec<MicroCandidate>; 2],
    /// Joint log-score (unnormalized) of the decoded path.
    pub log_prob: f64,
    /// Σ_t |S1(t)| · |S2(t)| — joint states instantiated.
    pub states_explored: u64,
    /// Σ_t |S1||S2|(|S1|+|S2|) — transition evaluations performed.
    pub transition_ops: u64,
}

/// The loosely-coupled HDBN decoder.
///
/// Parameters are held behind an [`Arc`], so many decoders — e.g. one per
/// worker in a batch-recognition fan-out — can share one read-only trained
/// model without copying its CPTs. Each [`viterbi`](Self::viterbi) call
/// allocates its own trellis, so a shared decoder is safe to use from
/// multiple threads concurrently.
///
/// Decoding defaults to the exact recursion;
/// [`with_decoder`](Self::with_decoder) installs a [`DecoderConfig`]
/// whose beam prunes the joint frontier each tick.
#[derive(Debug, Clone)]
pub struct CoupledHdbn {
    params: Arc<HdbnParams>,
    decoder: DecoderConfig,
}

impl CoupledHdbn {
    /// Wraps trained parameters (exact decoding).
    pub fn new(params: HdbnParams) -> Self {
        Self {
            params: Arc::new(params),
            decoder: DecoderConfig::default(),
        }
    }

    /// Wraps an already-shared parameter set without copying it (exact
    /// decoding).
    pub fn from_shared(params: Arc<HdbnParams>) -> Self {
        Self {
            params,
            decoder: DecoderConfig::default(),
        }
    }

    /// Installs a decoding configuration (beam pruning policy).
    pub fn with_decoder(mut self, decoder: DecoderConfig) -> Self {
        self.decoder = decoder;
        self
    }

    /// The decoding configuration in use.
    pub fn decoder(&self) -> DecoderConfig {
        self.decoder
    }

    /// The parameters in use.
    pub fn params(&self) -> &HdbnParams {
        &self.params
    }

    /// The shared parameter handle (for decoder frontiers that outlive a
    /// borrow of `self`).
    pub(crate) fn shared_params(&self) -> Arc<HdbnParams> {
        Arc::clone(&self.params)
    }

    /// Decodes the most likely joint state sequence (§III step 6: Viterbi at
    /// runtime inference).
    ///
    /// Dispatches on the configured [`Precision`]: the default `Exact64`
    /// runs the `f64` kernels (bit-identical to the historical decoder),
    /// `Fast32` the `f32` lane.
    ///
    /// # Errors
    /// Returns [`ModelError::EmptyStateSpace`] if any tick has no candidates
    /// for some user, and [`ModelError::InsufficientData`] for empty input.
    pub fn viterbi(&self, ticks: &[TickInput]) -> Result<JointPath, ModelError> {
        match self.decoder.precision {
            Precision::Exact64 => self.viterbi_impl::<f64>(ticks),
            Precision::Fast32 => self.viterbi_impl::<f32>(ticks),
        }
    }

    fn viterbi_impl<S: Scalar>(&self, ticks: &[TickInput]) -> Result<JointPath, ModelError> {
        if ticks.is_empty() {
            return Err(ModelError::InsufficientData {
                what: "viterbi decoding".into(),
                available: 0,
                required: 1,
            });
        }
        for (t, tick) in ticks.iter().enumerate() {
            validate_tick(tick, t)?;
        }

        let p = &self.params;
        let mut states_explored = 0u64;
        let mut transition_ops = 0u64;

        // All step-kernel scratch — beam survivors, fold buffers, the
        // ping-pong frontier — is allocated once per decode (in this
        // lane's width) and reused across ticks.
        let mut step: StepScratch<S> = StepScratch::default();
        let mut beam_scratch = BeamScratch::new();

        // Per-tick slices, retained for backtracking (no clones: the loop
        // below reads the previous tick's slices in place).
        let mut slices: Vec<(Slice, Slice)> = Vec::with_capacity(ticks.len());
        {
            let mut s1 = Slice::default();
            let mut s2 = Slice::default();
            fill_slice(p, &ticks[0], 0, &mut step.macro_ids, &mut s1);
            fill_slice(p, &ticks[0], 1, &mut step.macro_ids, &mut s2);
            slices.push((s1, s2));
        }
        states_explored += (slices[0].0.len() * slices[0].1.len()) as u64;

        // V flattened as j1 * |S2| + j2.
        let mut v: Vec<S> = Vec::new();
        joint_init_into(p, &slices[0].0, &slices[0].1, &mut v);

        // `pruned` tracks whether the *current* frontier was restricted
        // (false under `Beam::Exact`, and on any tick where the whole
        // frontier survives — the dense kernel then runs unchanged).
        let beam = self.decoder.beam;
        let mut pruned = beam.select_log(&v, &mut beam_scratch);

        // Backpointers per tick (index into the previous tick's flattened
        // joint trellis).
        let mut backptrs: Vec<Vec<u32>> = vec![Vec::new()];

        for tick in ticks.iter().skip(1) {
            let mut cur1 = Slice::default();
            let mut cur2 = Slice::default();
            fill_slice(p, tick, 0, &mut step.macro_ids, &mut cur1);
            fill_slice(p, tick, 1, &mut step.macro_ids, &mut cur2);
            let (prev1, prev2) = slices.last().expect("nonempty");
            let (k1, k2) = (prev1.len(), prev2.len());
            let (m1, m2) = (cur1.len(), cur2.len());
            states_explored += (m1 * m2) as u64;

            let mut back = Vec::new();
            if pruned {
                transition_ops += joint_step_pruned_into(
                    p,
                    prev1,
                    prev2,
                    &v,
                    beam_scratch.keep(),
                    &cur1,
                    &cur2,
                    &mut step,
                    &mut back,
                );
            } else {
                transition_ops += (k1 as u64 * k2 as u64) * (m1 as u64 + m2 as u64);
                joint_step_into(p, prev1, prev2, &v, &cur1, &cur2, &mut step, &mut back);
            }

            std::mem::swap(&mut v, &mut step.v_next);
            pruned = beam.select_log(&v, &mut beam_scratch);
            backptrs.push(back);
            slices.push((cur1, cur2));
        }

        // Termination: best final joint state (last-argmax, like the
        // historical `max_by` termination).
        let m2_last = slices.last().expect("nonempty").1.len();
        let (mut flat, best) = scalar::argmax(&v);
        let log_prob = best.to_f64();

        // Backtrack.
        let t_total = ticks.len();
        let mut macros = [vec![0usize; t_total], vec![0usize; t_total]];
        let mut micros = [
            vec![
                MicroCandidate {
                    postural: 0,
                    gestural: None,
                    location: 0,
                    obs_loglik: 0.0
                };
                t_total
            ],
            vec![
                MicroCandidate {
                    postural: 0,
                    gestural: None,
                    location: 0,
                    obs_loglik: 0.0
                };
                t_total
            ],
        ];
        let mut m2_cur = m2_last;
        for t in (0..t_total).rev() {
            let (s1_slice, s2_slice) = &slices[t];
            let j1 = flat / m2_cur;
            let j2 = flat % m2_cur;
            macros[0][t] = s1_slice.activities[j1];
            macros[1][t] = s2_slice.activities[j2];
            micros[0][t] = ticks[t].candidates[0][s1_slice.cands[j1]];
            micros[1][t] = ticks[t].candidates[1][s2_slice.cands[j2]];
            if t > 0 {
                flat = backptrs[t][flat] as usize;
                m2_cur = slices[t - 1].1.len();
            }
        }

        Ok(JointPath {
            macros,
            micros,
            log_prob,
            states_explored,
            transition_ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{HdbnConfig, HdbnParams};
    use cace_mining::constraint::{ConstraintMiner, LabeledSequence};
    use cace_mining::HierarchicalStats;

    /// Stats for a 2-activity world where activity k has posture k and
    /// location k, both users synchronized, runs of 10 ticks.
    fn toy_stats() -> HierarchicalStats {
        let mut macros = Vec::new();
        for r in 0..40 {
            for _ in 0..10 {
                macros.push(r % 2);
            }
        }
        let n = macros.len();
        let seq = LabeledSequence {
            macros: [macros.clone(), macros.clone()],
            posturals: [macros.clone(), macros.clone()],
            gesturals: [vec![0; n], vec![0; n]],
            locations: [macros.clone(), macros],
        };
        ConstraintMiner {
            laplace: 0.1,
            n_macro: 2,
            n_postural: 2,
            n_gestural: 2,
            n_location: 2,
        }
        .mine(&[seq])
        .unwrap()
    }

    fn decoder(coupling: bool) -> CoupledHdbn {
        let config = if coupling {
            HdbnConfig::default()
        } else {
            HdbnConfig::uncoupled()
        };
        CoupledHdbn::new(HdbnParams::new(toy_stats(), config).unwrap())
    }

    /// A tick where the observation clearly favors micro state `m` for both
    /// users (`strength` in log-odds).
    fn obs_tick(m: usize, strength: f64) -> TickInput {
        let cands = |fav: usize| -> Vec<MicroCandidate> {
            (0..2)
                .map(|p| MicroCandidate {
                    postural: p,
                    gestural: Some(0),
                    location: p,
                    obs_loglik: if p == fav { 0.0 } else { -strength },
                })
                .collect()
        };
        TickInput {
            candidates: [cands(m), cands(m)],
            macro_candidates: [None, None],
            macro_bonus: Vec::new(),
        }
    }

    #[test]
    fn decodes_clear_observations() {
        let d = decoder(true);
        let ticks: Vec<TickInput> = (0..20)
            .map(|t| obs_tick(if t < 10 { 0 } else { 1 }, 5.0))
            .collect();
        let path = d.viterbi(&ticks).unwrap();
        for t in 0..10 {
            assert_eq!(path.macros[0][t], 0, "tick {t}");
            assert_eq!(path.macros[1][t], 0, "tick {t}");
        }
        for t in 12..20 {
            assert_eq!(path.macros[0][t], 1, "tick {t}");
        }
        assert!(path.log_prob.is_finite());
        assert!(path.states_explored > 0);
        assert!(path.transition_ops > 0);
    }

    #[test]
    fn temporal_smoothing_overrides_single_glitch() {
        let d = decoder(true);
        let mut ticks: Vec<TickInput> = (0..15).map(|_| obs_tick(0, 2.0)).collect();
        // One weakly contradictory tick in the middle.
        ticks[7] = obs_tick(1, 0.3);
        let path = d.viterbi(&ticks).unwrap();
        assert_eq!(path.macros[0][7], 0, "persistence should absorb the glitch");
    }

    #[test]
    fn coupling_pulls_ambiguous_partner() {
        // User 1 sees clear evidence for activity 0; user 2 is ambiguous.
        let make = |coupled: bool| {
            let d = decoder(coupled);
            let ticks: Vec<TickInput> = (0..10)
                .map(|_| {
                    let clear: Vec<MicroCandidate> = (0..2)
                        .map(|p| MicroCandidate {
                            postural: p,
                            gestural: Some(0),
                            location: p,
                            obs_loglik: if p == 0 { 0.0 } else { -6.0 },
                        })
                        .collect();
                    let ambiguous: Vec<MicroCandidate> = (0..2)
                        .map(|p| MicroCandidate {
                            postural: p,
                            gestural: Some(0),
                            location: p,
                            obs_loglik: 0.0,
                        })
                        .collect();
                    TickInput {
                        candidates: [clear, ambiguous],
                        macro_candidates: [None, None],
                        macro_bonus: Vec::new(),
                    }
                })
                .collect();
            d.viterbi(&ticks).unwrap()
        };
        let coupled = make(true);
        // With coupling, the ambiguous partner is pulled to activity 0
        // (their co-occurrence statistics are perfectly synchronized).
        assert!(coupled.macros[1].iter().all(|&a| a == 0));
    }

    #[test]
    fn macro_candidate_restriction_is_respected() {
        let d = decoder(true);
        let mut ticks: Vec<TickInput> = (0..6).map(|_| obs_tick(0, 1.0)).collect();
        for tick in &mut ticks {
            tick.macro_candidates[0] = Some(vec![1]); // force activity 1
        }
        let path = d.viterbi(&ticks).unwrap();
        assert!(path.macros[0].iter().all(|&a| a == 1));
    }

    #[test]
    fn empty_input_and_empty_candidates_error() {
        let d = decoder(true);
        assert!(matches!(
            d.viterbi(&[]),
            Err(ModelError::InsufficientData { .. })
        ));
        let mut tick = obs_tick(0, 1.0);
        tick.candidates[1].clear();
        assert!(matches!(
            d.viterbi(&[obs_tick(0, 1.0), tick]),
            Err(ModelError::EmptyStateSpace { tick: 1 })
        ));
    }

    #[test]
    fn pruning_reduces_accounting() {
        let d = decoder(true);
        let full: Vec<TickInput> = (0..10).map(|_| obs_tick(0, 2.0)).collect();
        let mut pruned = full.clone();
        for tick in &mut pruned {
            tick.macro_candidates = [Some(vec![0]), Some(vec![0])];
            tick.candidates[0].truncate(1);
            tick.candidates[1].truncate(1);
        }
        let full_path = d.viterbi(&full).unwrap();
        let pruned_path = d.viterbi(&pruned).unwrap();
        assert!(pruned_path.states_explored * 4 < full_path.states_explored);
        assert!(pruned_path.transition_ops * 16 <= full_path.transition_ops);
        // And the answer on this easy input is unchanged.
        assert_eq!(pruned_path.macros[0], full_path.macros[0]);
    }

    #[test]
    fn beamed_decoder_matches_exact_on_clear_data_with_less_work() {
        use crate::beam::DecoderConfig;
        let ticks: Vec<TickInput> = (0..30)
            .map(|t| obs_tick(usize::from((t / 10) % 2 == 1), 4.0))
            .collect();
        let exact = decoder(true).viterbi(&ticks).unwrap();
        for config in [DecoderConfig::top_k(3), DecoderConfig::log_threshold(2.0)] {
            let pruned = decoder(true).with_decoder(config).viterbi(&ticks).unwrap();
            assert_eq!(pruned.macros, exact.macros, "{config:?}");
            assert!(pruned.log_prob <= exact.log_prob, "{config:?}");
            assert!(
                pruned.transition_ops < exact.transition_ops,
                "{config:?}: {} !< {}",
                pruned.transition_ops,
                exact.transition_ops
            );
            // Frontier pruning leaves the instantiated-state count alone.
            assert_eq!(pruned.states_explored, exact.states_explored);
        }
    }

    #[test]
    fn top_k_covering_the_joint_frontier_is_bit_identical_to_exact() {
        let ticks: Vec<TickInput> = (0..12).map(|t| obs_tick(t % 2, 1.5)).collect();
        let exact = decoder(true).viterbi(&ticks).unwrap();
        // 2 activities × 2 candidates per chain → 16 joint states.
        let wide = decoder(true)
            .with_decoder(crate::beam::DecoderConfig::top_k(16))
            .viterbi(&ticks)
            .unwrap();
        assert_eq!(wide, exact, "full-width beam degrades to the exact kernel");
    }

    #[test]
    fn fast32_lane_decodes_the_toy_world_like_exact() {
        let ticks: Vec<TickInput> = (0..30)
            .map(|t| obs_tick(usize::from((t / 10) % 2 == 1), 4.0))
            .collect();
        let exact = decoder(true).viterbi(&ticks).unwrap();
        let fast = decoder(true)
            .with_decoder(DecoderConfig::exact().fast32())
            .viterbi(&ticks)
            .unwrap();
        // Same decoded activities and identical accounting on this
        // well-separated workload; the log-score agrees to f32 tolerance
        // rather than bitwise.
        assert_eq!(fast.macros, exact.macros);
        assert_eq!(fast.states_explored, exact.states_explored);
        assert_eq!(fast.transition_ops, exact.transition_ops);
        let tol = 1e-3 * exact.log_prob.abs().max(1.0);
        assert!(
            (fast.log_prob - exact.log_prob).abs() < tol,
            "f32 log_prob {} vs f64 {}",
            fast.log_prob,
            exact.log_prob
        );
    }

    #[test]
    fn micro_path_aligns_with_macro_path() {
        let d = decoder(true);
        let ticks: Vec<TickInput> = (0..8).map(|_| obs_tick(1, 4.0)).collect();
        let path = d.viterbi(&ticks).unwrap();
        for t in 0..8 {
            // In the toy world, activity 1 ↔ posture 1 / location 1.
            assert_eq!(path.micros[0][t].postural, 1);
            assert_eq!(path.micros[0][t].location, 1);
            assert_eq!(path.macros[0][t], 1);
        }
    }
}
