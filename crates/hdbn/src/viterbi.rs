//! Joint Viterbi decoding of the loosely-coupled two-chain HDBN.
//!
//! The joint transition kernel decomposes as
//! `f1(s1, s1′) + f2(s2, s2′) + g(a1, a2)` — per-chain hierarchical
//! transitions plus a concurrent inter-user coupling — so the naive
//! `O((|S1||S2|)²)` joint recursion folds into two passes of
//! `O(|S1||S2|(|S1|+|S2|))`. Pruned candidate sets therefore translate
//! directly into the paper's order-of-magnitude overhead reduction.

use std::sync::Arc;

use cace_model::ModelError;

use crate::beam::{BeamScratch, DecoderConfig};
use crate::input::{MicroCandidate, TickInput};
use crate::params::HdbnParams;

/// One per-user trellis state: a macro activity over one micro candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ChainState {
    pub(crate) activity: usize,
    pub(crate) cand: usize,
}

/// Per-tick, per-chain trellis slice.
#[derive(Debug, Clone)]
pub(crate) struct Slice {
    pub(crate) states: Vec<ChainState>,
    /// Postural id of each state's candidate (needed by the micro-level
    /// transition factor).
    pub(crate) posturals: Vec<usize>,
    /// Emission score of each state.
    pub(crate) emissions: Vec<f64>,
}

/// Rejects a tick that would empty the joint trellis.
pub(crate) fn validate_tick(tick: &TickInput, t: usize) -> Result<(), ModelError> {
    let empty_micro = tick.candidates.iter().any(|c| c.is_empty());
    let empty_macro = tick
        .macro_candidates
        .iter()
        .any(|m| m.as_ref().is_some_and(|v| v.is_empty()));
    if empty_micro || empty_macro {
        return Err(ModelError::EmptyStateSpace { tick: t });
    }
    Ok(())
}

/// First-tick joint frontier: per-chain emissions plus macro priors plus the
/// inter-user coupling, flattened as `j1 * |S2| + j2`.
///
/// Shared by the batch decoder and [`crate::online::OnlineCoupledViterbi`]
/// so the two paths stay bit-identical.
pub(crate) fn joint_init(p: &HdbnParams, s1: &Slice, s2: &Slice) -> Vec<f64> {
    let mut v = Vec::with_capacity(s1.states.len() * s2.states.len());
    for (j1, &st1) in s1.states.iter().enumerate() {
        let base1 = s1.emissions[j1] + p.log_prior[st1.activity];
        for (j2, &st2) in s2.states.iter().enumerate() {
            let base2 = s2.emissions[j2] + p.log_prior[st2.activity];
            v.push(base1 + base2 + p.coupling_score(st1.activity, st2.activity));
        }
    }
    v
}

/// One joint DP step: folds chain 2 then chain 1 exactly as documented in
/// the module header, returning the new frontier and, per new joint state,
/// the flattened backpointer into the previous tick's frontier.
///
/// This is the single implementation of the recursion; the batch
/// [`CoupledHdbn::viterbi`] and the incremental
/// [`crate::online::OnlineCoupledViterbi`] both call it, which is what
/// makes the streamed path bit-identical to the batch path.
pub(crate) fn joint_step(
    p: &HdbnParams,
    prev1: &Slice,
    prev2: &Slice,
    v: &[f64],
    cur1: &Slice,
    cur2: &Slice,
) -> (Vec<f64>, Vec<u32>) {
    let (k1, k2) = (prev1.states.len(), prev2.states.len());
    let (m1, m2) = (cur1.states.len(), cur2.states.len());

    // Pass 1 — fold chain 2:
    // W[j1p * m2 + j2] = max_{j2p} V[j1p, j2p] + f2(j2p → j2).
    let mut w = vec![f64::NEG_INFINITY; k1 * m2];
    let mut w_arg = vec![0u32; k1 * m2];
    for (j2, &s2) in cur2.states.iter().enumerate() {
        // f2 depends only on (prev state, new state): precompute per
        // j2 the column of scores over j2p.
        let f2_col: Vec<f64> = (0..k2)
            .map(|j2p| {
                p.transition_score(
                    prev2.states[j2p].activity,
                    prev2.posturals[j2p],
                    s2.activity,
                    cur2.posturals[j2],
                )
            })
            .collect();
        for j1p in 0..k1 {
            let row = &v[j1p * k2..(j1p + 1) * k2];
            let mut best = f64::NEG_INFINITY;
            let mut best_arg = 0u32;
            for (j2p, (&vv, &f2)) in row.iter().zip(&f2_col).enumerate() {
                let score = vv + f2;
                if score > best {
                    best = score;
                    best_arg = j2p as u32;
                }
            }
            w[j1p * m2 + j2] = best;
            w_arg[j1p * m2 + j2] = best_arg;
        }
    }

    // Pass 2 — fold chain 1:
    // V'[j1, j2] = max_{j1p} W[j1p, j2] + f1(j1p → j1), plus
    // emissions and coupling.
    let mut v_new = vec![f64::NEG_INFINITY; m1 * m2];
    let mut back = vec![0u32; m1 * m2];
    for (j1, &s1) in cur1.states.iter().enumerate() {
        let f1_col: Vec<f64> = (0..k1)
            .map(|j1p| {
                p.transition_score(
                    prev1.states[j1p].activity,
                    prev1.posturals[j1p],
                    s1.activity,
                    cur1.posturals[j1],
                )
            })
            .collect();
        for (j2, &s2) in cur2.states.iter().enumerate() {
            let mut best = f64::NEG_INFINITY;
            let mut best_j1p = 0usize;
            for (j1p, &f1) in f1_col.iter().enumerate() {
                let score = w[j1p * m2 + j2] + f1;
                if score > best {
                    best = score;
                    best_j1p = j1p;
                }
            }
            let emit = cur1.emissions[j1]
                + cur2.emissions[j2]
                + p.coupling_score(s1.activity, s2.activity);
            v_new[j1 * m2 + j2] = best + emit;
            // Recover j2p chosen inside W for (best_j1p, j2).
            let j2p = w_arg[best_j1p * m2 + j2];
            back[j1 * m2 + j2] = (best_j1p as u32) * (k2 as u32) + j2p;
        }
    }
    (v_new, back)
}

/// Reusable work buffers of [`joint_step_pruned`]: one allocation per
/// decode (batch) or stream (online), reused across ticks — the pruned
/// hot path only allocates the returned frontier and backpointer vectors,
/// exactly like the dense kernel.
#[derive(Debug, Clone, Default)]
pub(crate) struct JointScratch {
    /// Chain-1 state of each survivor group.
    group_j1p: Vec<u32>,
    /// Half-open `keep` range of each group.
    group_span: Vec<(u32, u32)>,
    /// Distinct surviving j2p values, ascending.
    uniq2: Vec<u32>,
    /// j2p → slot lookup into `uniq2` (only surviving slots are read, so
    /// stale entries from earlier ticks are harmless).
    slot_of: Vec<u32>,
    /// Pass-1 f2 scores per distinct j2p.
    f2vals: Vec<f64>,
    /// Pass-2 f1 scores per group.
    f1vals: Vec<f64>,
    /// Pass-1 fold `W[g, j2]` and its j2p argmax.
    w: Vec<f64>,
    w_arg: Vec<u32>,
}

/// [`joint_step`] restricted to a pruned previous frontier: only the
/// survivors in `keep` (flattened `j1p * |S2_prev| + j2p` indices, sorted
/// ascending) may be transitioned out of. Returns the new frontier, the
/// backpointers (in the *same* full-frontier coordinates as [`joint_step`],
/// so backtracking is oblivious to pruning), and the transition-op charge
/// for the step under the overhead experiments' accounting convention —
/// `|survivors| · (|S1|+|S2|)`, the exact step's `k1·k2·(m1+m2)` with the
/// survivor count in place of the full previous frontier, so charges stay
/// comparable across beam widths (and equal the exact charge when nothing
/// is pruned).
///
/// The fold order mirrors the dense kernel — chain 2 first, then chain 1,
/// candidates visited in ascending index order — so a `keep` covering the
/// whole frontier reproduces [`joint_step`] bit for bit. (The decoders
/// never take that path: [`crate::Beam`] selection degrades to the dense
/// kernel when nothing is pruned.)
pub(crate) fn joint_step_pruned(
    p: &HdbnParams,
    prev1: &Slice,
    prev2: &Slice,
    v: &[f64],
    keep: &[u32],
    cur1: &Slice,
    cur2: &Slice,
    scratch: &mut JointScratch,
) -> (Vec<f64>, Vec<u32>, u64) {
    let k2 = prev2.states.len() as u32;
    let (m1, m2) = (cur1.states.len(), cur2.states.len());

    // Survivors grouped by j1p: `keep` is sorted, so each group is a
    // contiguous run. `group_j1p[g]` is the chain-1 state of group `g`,
    // `group_span[g]` its half-open range inside `keep`.
    scratch.group_j1p.clear();
    scratch.group_span.clear();
    let mut i = 0usize;
    while i < keep.len() {
        let j1p = keep[i] / k2;
        let start = i;
        while i < keep.len() && keep[i] / k2 == j1p {
            i += 1;
        }
        scratch.group_j1p.push(j1p);
        scratch.group_span.push((start as u32, i as u32));
    }
    let n_groups = scratch.group_j1p.len();

    // Distinct surviving j2p values, with a j2p → slot lookup so pass 1
    // scores each f2 edge once per (j2, distinct j2p).
    scratch.uniq2.clear();
    scratch.uniq2.extend(keep.iter().map(|&f| f % k2));
    scratch.uniq2.sort_unstable();
    scratch.uniq2.dedup();
    scratch.slot_of.resize(k2 as usize, 0);
    for (slot, &j2p) in scratch.uniq2.iter().enumerate() {
        scratch.slot_of[j2p as usize] = slot as u32;
    }

    // Pass 1 — fold chain 2 over the survivors:
    // W[g, j2] = max_{(j1p_g, j2p) ∈ keep} V[j1p_g, j2p] + f2(j2p → j2).
    // Every entry of w/w_arg/f2vals is overwritten below before it is read.
    scratch.w.resize(n_groups * m2, f64::NEG_INFINITY);
    scratch.w_arg.resize(n_groups * m2, 0);
    scratch.f2vals.resize(scratch.uniq2.len(), 0.0);
    for (j2, &s2) in cur2.states.iter().enumerate() {
        for (slot, &j2p) in scratch.uniq2.iter().enumerate() {
            scratch.f2vals[slot] = p.transition_score(
                prev2.states[j2p as usize].activity,
                prev2.posturals[j2p as usize],
                s2.activity,
                cur2.posturals[j2],
            );
        }
        for g in 0..n_groups {
            let (start, end) = scratch.group_span[g];
            let mut best = f64::NEG_INFINITY;
            let mut best_j2p = 0u32;
            for &flat in &keep[start as usize..end as usize] {
                let j2p = flat % k2;
                let score =
                    v[flat as usize] + scratch.f2vals[scratch.slot_of[j2p as usize] as usize];
                if score > best {
                    best = score;
                    best_j2p = j2p;
                }
            }
            scratch.w[g * m2 + j2] = best;
            scratch.w_arg[g * m2 + j2] = best_j2p;
        }
    }

    // Pass 2 — fold chain 1 over the surviving groups, plus emissions and
    // coupling; backpointers restored to full-frontier flat coordinates.
    let mut v_new = vec![f64::NEG_INFINITY; m1 * m2];
    let mut back = vec![0u32; m1 * m2];
    scratch.f1vals.resize(n_groups, 0.0);
    for (j1, &s1) in cur1.states.iter().enumerate() {
        for (g, &j1p) in scratch.group_j1p.iter().enumerate() {
            scratch.f1vals[g] = p.transition_score(
                prev1.states[j1p as usize].activity,
                prev1.posturals[j1p as usize],
                s1.activity,
                cur1.posturals[j1],
            );
        }
        for (j2, &s2) in cur2.states.iter().enumerate() {
            let mut best = f64::NEG_INFINITY;
            let mut best_g = 0usize;
            for (g, &f1) in scratch.f1vals.iter().enumerate() {
                let score = scratch.w[g * m2 + j2] + f1;
                if score > best {
                    best = score;
                    best_g = g;
                }
            }
            let emit = cur1.emissions[j1]
                + cur2.emissions[j2]
                + p.coupling_score(s1.activity, s2.activity);
            v_new[j1 * m2 + j2] = best + emit;
            back[j1 * m2 + j2] = scratch.group_j1p[best_g] * k2 + scratch.w_arg[best_g * m2 + j2];
        }
    }
    let ops = keep.len() as u64 * (m1 as u64 + m2 as u64);
    (v_new, back, ops)
}

/// The decoded joint trajectory plus accounting for the overhead
/// experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct JointPath {
    /// Decoded macro activity per user per tick.
    pub macros: [Vec<usize>; 2],
    /// Decoded micro tuple per user per tick.
    pub micros: [Vec<MicroCandidate>; 2],
    /// Joint log-score (unnormalized) of the decoded path.
    pub log_prob: f64,
    /// Σ_t |S1(t)| · |S2(t)| — joint states instantiated.
    pub states_explored: u64,
    /// Σ_t |S1||S2|(|S1|+|S2|) — transition evaluations performed.
    pub transition_ops: u64,
}

/// The loosely-coupled HDBN decoder.
///
/// Parameters are held behind an [`Arc`], so many decoders — e.g. one per
/// worker in a batch-recognition fan-out — can share one read-only trained
/// model without copying its CPTs. Each [`viterbi`](Self::viterbi) call
/// allocates its own trellis, so a shared decoder is safe to use from
/// multiple threads concurrently.
///
/// Decoding defaults to the exact recursion;
/// [`with_decoder`](Self::with_decoder) installs a [`DecoderConfig`]
/// whose beam prunes the joint frontier each tick.
#[derive(Debug, Clone)]
pub struct CoupledHdbn {
    params: Arc<HdbnParams>,
    decoder: DecoderConfig,
}

impl CoupledHdbn {
    /// Wraps trained parameters (exact decoding).
    pub fn new(params: HdbnParams) -> Self {
        Self {
            params: Arc::new(params),
            decoder: DecoderConfig::default(),
        }
    }

    /// Wraps an already-shared parameter set without copying it (exact
    /// decoding).
    pub fn from_shared(params: Arc<HdbnParams>) -> Self {
        Self {
            params,
            decoder: DecoderConfig::default(),
        }
    }

    /// Installs a decoding configuration (beam pruning policy).
    pub fn with_decoder(mut self, decoder: DecoderConfig) -> Self {
        self.decoder = decoder;
        self
    }

    /// The decoding configuration in use.
    pub fn decoder(&self) -> DecoderConfig {
        self.decoder
    }

    /// The parameters in use.
    pub fn params(&self) -> &HdbnParams {
        &self.params
    }

    pub(crate) fn slice(&self, input: &TickInput, user: usize) -> Slice {
        let macros = input.macros_for(user, self.params.n_macro());
        let n = macros.len() * input.candidates[user].len();
        let mut states = Vec::with_capacity(n);
        let mut posturals = Vec::with_capacity(n);
        let mut emissions = Vec::with_capacity(n);
        for &a in &macros {
            for (c, cand) in input.candidates[user].iter().enumerate() {
                states.push(ChainState {
                    activity: a,
                    cand: c,
                });
                posturals.push(cand.postural);
                emissions.push(
                    cand.obs_loglik
                        + input.bonus(a)
                        + self.params.hierarchy_score(
                            a,
                            cand.postural,
                            cand.gestural,
                            cand.location,
                        ),
                );
            }
        }
        Slice {
            states,
            posturals,
            emissions,
        }
    }

    /// Decodes the most likely joint state sequence (§III step 6: Viterbi at
    /// runtime inference).
    ///
    /// # Errors
    /// Returns [`ModelError::EmptyStateSpace`] if any tick has no candidates
    /// for some user, and [`ModelError::InsufficientData`] for empty input.
    pub fn viterbi(&self, ticks: &[TickInput]) -> Result<JointPath, ModelError> {
        if ticks.is_empty() {
            return Err(ModelError::InsufficientData {
                what: "viterbi decoding".into(),
                available: 0,
                required: 1,
            });
        }
        for (t, tick) in ticks.iter().enumerate() {
            validate_tick(tick, t)?;
        }

        let p = &self.params;
        let mut states_explored = 0u64;
        let mut transition_ops = 0u64;

        let mut prev1 = self.slice(&ticks[0], 0);
        let mut prev2 = self.slice(&ticks[0], 1);
        states_explored += (prev1.states.len() * prev2.states.len()) as u64;

        // V flattened as j1 * |S2| + j2.
        let mut v = joint_init(p, &prev1, &prev2);

        // Beam survivor scratch, allocated once and reused across ticks.
        // `pruned` tracks whether the *current* frontier was restricted
        // (false under `Beam::Exact`, and on any tick where the whole
        // frontier survives — the dense kernel then runs unchanged).
        let beam = self.decoder.beam;
        let mut scratch = BeamScratch::new();
        let mut jscratch = JointScratch::default();
        let mut pruned = beam.select_log(&v, &mut scratch);

        // Backpointers per tick (index into the previous tick's flattened
        // joint trellis), plus the slices for backtracking.
        let mut backptrs: Vec<Vec<u32>> = vec![Vec::new()];
        let mut slices: Vec<(Slice, Slice)> = Vec::with_capacity(ticks.len());
        slices.push((prev1.clone(), prev2.clone()));

        for tick in ticks.iter().skip(1) {
            let cur1 = self.slice(tick, 0);
            let cur2 = self.slice(tick, 1);
            let (k1, k2) = (prev1.states.len(), prev2.states.len());
            let (m1, m2) = (cur1.states.len(), cur2.states.len());
            states_explored += (m1 * m2) as u64;

            let (v_new, back) = if pruned {
                let (v_new, back, ops) = joint_step_pruned(
                    p,
                    &prev1,
                    &prev2,
                    &v,
                    scratch.keep(),
                    &cur1,
                    &cur2,
                    &mut jscratch,
                );
                transition_ops += ops;
                (v_new, back)
            } else {
                transition_ops += (k1 as u64 * k2 as u64) * (m1 as u64 + m2 as u64);
                joint_step(p, &prev1, &prev2, &v, &cur1, &cur2)
            };

            v = v_new;
            pruned = beam.select_log(&v, &mut scratch);
            backptrs.push(back);
            prev1 = cur1.clone();
            prev2 = cur2.clone();
            slices.push((cur1, cur2));
        }

        // Termination: best final joint state.
        let m2_last = prev2.states.len();
        let (mut flat, log_prob) = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(i, &s)| (i, s))
            .expect("nonempty trellis");

        // Backtrack.
        let t_total = ticks.len();
        let mut macros = [vec![0usize; t_total], vec![0usize; t_total]];
        let mut micros = [
            vec![
                MicroCandidate {
                    postural: 0,
                    gestural: None,
                    location: 0,
                    obs_loglik: 0.0
                };
                t_total
            ],
            vec![
                MicroCandidate {
                    postural: 0,
                    gestural: None,
                    location: 0,
                    obs_loglik: 0.0
                };
                t_total
            ],
        ];
        let mut m2_cur = m2_last;
        for t in (0..t_total).rev() {
            let (s1_slice, s2_slice) = &slices[t];
            let j1 = flat / m2_cur;
            let j2 = flat % m2_cur;
            let s1 = s1_slice.states[j1];
            let s2 = s2_slice.states[j2];
            macros[0][t] = s1.activity;
            macros[1][t] = s2.activity;
            micros[0][t] = ticks[t].candidates[0][s1.cand];
            micros[1][t] = ticks[t].candidates[1][s2.cand];
            if t > 0 {
                flat = backptrs[t][flat] as usize;
                m2_cur = slices[t - 1].1.states.len();
            }
        }

        Ok(JointPath {
            macros,
            micros,
            log_prob,
            states_explored,
            transition_ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{HdbnConfig, HdbnParams};
    use cace_mining::constraint::{ConstraintMiner, LabeledSequence};
    use cace_mining::HierarchicalStats;

    /// Stats for a 2-activity world where activity k has posture k and
    /// location k, both users synchronized, runs of 10 ticks.
    fn toy_stats() -> HierarchicalStats {
        let mut macros = Vec::new();
        for r in 0..40 {
            for _ in 0..10 {
                macros.push(r % 2);
            }
        }
        let n = macros.len();
        let seq = LabeledSequence {
            macros: [macros.clone(), macros.clone()],
            posturals: [macros.clone(), macros.clone()],
            gesturals: [vec![0; n], vec![0; n]],
            locations: [macros.clone(), macros],
        };
        ConstraintMiner {
            laplace: 0.1,
            n_macro: 2,
            n_postural: 2,
            n_gestural: 2,
            n_location: 2,
        }
        .mine(&[seq])
        .unwrap()
    }

    fn decoder(coupling: bool) -> CoupledHdbn {
        let config = if coupling {
            HdbnConfig::default()
        } else {
            HdbnConfig::uncoupled()
        };
        CoupledHdbn::new(HdbnParams::new(toy_stats(), config).unwrap())
    }

    /// A tick where the observation clearly favors micro state `m` for both
    /// users (`strength` in log-odds).
    fn obs_tick(m: usize, strength: f64) -> TickInput {
        let cands = |fav: usize| -> Vec<MicroCandidate> {
            (0..2)
                .map(|p| MicroCandidate {
                    postural: p,
                    gestural: Some(0),
                    location: p,
                    obs_loglik: if p == fav { 0.0 } else { -strength },
                })
                .collect()
        };
        TickInput {
            candidates: [cands(m), cands(m)],
            macro_candidates: [None, None],
            macro_bonus: Vec::new(),
        }
    }

    #[test]
    fn decodes_clear_observations() {
        let d = decoder(true);
        let ticks: Vec<TickInput> = (0..20)
            .map(|t| obs_tick(if t < 10 { 0 } else { 1 }, 5.0))
            .collect();
        let path = d.viterbi(&ticks).unwrap();
        for t in 0..10 {
            assert_eq!(path.macros[0][t], 0, "tick {t}");
            assert_eq!(path.macros[1][t], 0, "tick {t}");
        }
        for t in 12..20 {
            assert_eq!(path.macros[0][t], 1, "tick {t}");
        }
        assert!(path.log_prob.is_finite());
        assert!(path.states_explored > 0);
        assert!(path.transition_ops > 0);
    }

    #[test]
    fn temporal_smoothing_overrides_single_glitch() {
        let d = decoder(true);
        let mut ticks: Vec<TickInput> = (0..15).map(|_| obs_tick(0, 2.0)).collect();
        // One weakly contradictory tick in the middle.
        ticks[7] = obs_tick(1, 0.3);
        let path = d.viterbi(&ticks).unwrap();
        assert_eq!(path.macros[0][7], 0, "persistence should absorb the glitch");
    }

    #[test]
    fn coupling_pulls_ambiguous_partner() {
        // User 1 sees clear evidence for activity 0; user 2 is ambiguous.
        let make = |coupled: bool| {
            let d = decoder(coupled);
            let ticks: Vec<TickInput> = (0..10)
                .map(|_| {
                    let clear: Vec<MicroCandidate> = (0..2)
                        .map(|p| MicroCandidate {
                            postural: p,
                            gestural: Some(0),
                            location: p,
                            obs_loglik: if p == 0 { 0.0 } else { -6.0 },
                        })
                        .collect();
                    let ambiguous: Vec<MicroCandidate> = (0..2)
                        .map(|p| MicroCandidate {
                            postural: p,
                            gestural: Some(0),
                            location: p,
                            obs_loglik: 0.0,
                        })
                        .collect();
                    TickInput {
                        candidates: [clear, ambiguous],
                        macro_candidates: [None, None],
                        macro_bonus: Vec::new(),
                    }
                })
                .collect();
            d.viterbi(&ticks).unwrap()
        };
        let coupled = make(true);
        // With coupling, the ambiguous partner is pulled to activity 0
        // (their co-occurrence statistics are perfectly synchronized).
        assert!(coupled.macros[1].iter().all(|&a| a == 0));
    }

    #[test]
    fn macro_candidate_restriction_is_respected() {
        let d = decoder(true);
        let mut ticks: Vec<TickInput> = (0..6).map(|_| obs_tick(0, 1.0)).collect();
        for tick in &mut ticks {
            tick.macro_candidates[0] = Some(vec![1]); // force activity 1
        }
        let path = d.viterbi(&ticks).unwrap();
        assert!(path.macros[0].iter().all(|&a| a == 1));
    }

    #[test]
    fn empty_input_and_empty_candidates_error() {
        let d = decoder(true);
        assert!(matches!(
            d.viterbi(&[]),
            Err(ModelError::InsufficientData { .. })
        ));
        let mut tick = obs_tick(0, 1.0);
        tick.candidates[1].clear();
        assert!(matches!(
            d.viterbi(&[obs_tick(0, 1.0), tick]),
            Err(ModelError::EmptyStateSpace { tick: 1 })
        ));
    }

    #[test]
    fn pruning_reduces_accounting() {
        let d = decoder(true);
        let full: Vec<TickInput> = (0..10).map(|_| obs_tick(0, 2.0)).collect();
        let mut pruned = full.clone();
        for tick in &mut pruned {
            tick.macro_candidates = [Some(vec![0]), Some(vec![0])];
            tick.candidates[0].truncate(1);
            tick.candidates[1].truncate(1);
        }
        let full_path = d.viterbi(&full).unwrap();
        let pruned_path = d.viterbi(&pruned).unwrap();
        assert!(pruned_path.states_explored * 4 < full_path.states_explored);
        assert!(pruned_path.transition_ops * 16 <= full_path.transition_ops);
        // And the answer on this easy input is unchanged.
        assert_eq!(pruned_path.macros[0], full_path.macros[0]);
    }

    #[test]
    fn beamed_decoder_matches_exact_on_clear_data_with_less_work() {
        use crate::beam::DecoderConfig;
        let ticks: Vec<TickInput> = (0..30)
            .map(|t| obs_tick(usize::from((t / 10) % 2 == 1), 4.0))
            .collect();
        let exact = decoder(true).viterbi(&ticks).unwrap();
        for config in [DecoderConfig::top_k(3), DecoderConfig::log_threshold(2.0)] {
            let pruned = decoder(true).with_decoder(config).viterbi(&ticks).unwrap();
            assert_eq!(pruned.macros, exact.macros, "{config:?}");
            assert!(pruned.log_prob <= exact.log_prob, "{config:?}");
            assert!(
                pruned.transition_ops < exact.transition_ops,
                "{config:?}: {} !< {}",
                pruned.transition_ops,
                exact.transition_ops
            );
            // Frontier pruning leaves the instantiated-state count alone.
            assert_eq!(pruned.states_explored, exact.states_explored);
        }
    }

    #[test]
    fn top_k_covering_the_joint_frontier_is_bit_identical_to_exact() {
        let ticks: Vec<TickInput> = (0..12).map(|t| obs_tick(t % 2, 1.5)).collect();
        let exact = decoder(true).viterbi(&ticks).unwrap();
        // 2 activities × 2 candidates per chain → 16 joint states.
        let wide = decoder(true)
            .with_decoder(crate::beam::DecoderConfig::top_k(16))
            .viterbi(&ticks)
            .unwrap();
        assert_eq!(wide, exact, "full-width beam degrades to the exact kernel");
    }

    #[test]
    fn micro_path_aligns_with_macro_path() {
        let d = decoder(true);
        let ticks: Vec<TickInput> = (0..8).map(|_| obs_tick(1, 4.0)).collect();
        let path = d.viterbi(&ticks).unwrap();
        for t in 0..8 {
            // In the toy world, activity 1 ↔ posture 1 / location 1.
            assert_eq!(path.micros[0][t].postural, 1);
            assert_eq!(path.micros[0][t].location, 1);
            assert_eq!(path.macros[0][t], 1);
        }
    }
}
