//! Joint Viterbi decoding of the loosely-coupled two-chain HDBN.
//!
//! The joint transition kernel decomposes as
//! `f1(s1, s1′) + f2(s2, s2′) + g(a1, a2)` — per-chain hierarchical
//! transitions plus a concurrent inter-user coupling — so the naive
//! `O((|S1||S2|)²)` joint recursion folds into two passes of
//! `O(|S1||S2|(|S1|+|S2|))`. Pruned candidate sets therefore translate
//! directly into the paper's order-of-magnitude overhead reduction.

use std::sync::Arc;

use cace_model::ModelError;

use crate::arena::{fill_slice, Slice, StepScratch, TrellisArena};
use crate::beam::DecoderConfig;
use crate::input::{MicroCandidate, TickInput};
use crate::params::HdbnParams;

/// Rejects a tick that would empty the joint trellis.
pub(crate) fn validate_tick(tick: &TickInput, t: usize) -> Result<(), ModelError> {
    let empty_micro = tick.candidates.iter().any(|c| c.is_empty());
    let empty_macro = tick
        .macro_candidates
        .iter()
        .any(|m| m.as_ref().is_some_and(|v| v.is_empty()));
    if empty_micro || empty_macro {
        return Err(ModelError::EmptyStateSpace { tick: t });
    }
    Ok(())
}

/// First-tick joint frontier, written into `v`: per-chain emissions plus
/// macro priors plus the inter-user coupling, flattened as
/// `j1 * |S2| + j2`.
///
/// Shared by the batch decoder and [`crate::online::OnlineCoupledViterbi`]
/// so the two paths stay bit-identical.
pub(crate) fn joint_init_into(p: &HdbnParams, s1: &Slice, s2: &Slice, v: &mut Vec<f64>) {
    let t = &p.tables;
    v.clear();
    v.reserve(s1.len() * s2.len());
    for j1 in 0..s1.len() {
        let a1 = s1.activities[j1];
        let base1 = s1.emissions[j1] + p.log_prior[a1];
        for j2 in 0..s2.len() {
            let a2 = s2.activities[j2];
            let base2 = s2.emissions[j2] + p.log_prior[a2];
            v.push(base1 + base2 + t.coupling(a1, a2));
        }
    }
}

/// One joint DP step: folds chain 2 then chain 1 exactly as documented in
/// the module header. The new frontier lands in `step.v_next` (the caller
/// swaps it with its live frontier) and the per-state flattened
/// backpointers into the previous tick's frontier land in `back` — all
/// buffers reused, so a warmed caller allocates nothing.
///
/// Transition scores are flat loads from the dense
/// [`ScoreTables`](crate::ScoreTables): the per-`j` transition column is a
/// gather from one contiguous `into_row` slice via the slices' precomputed
/// pair ids (bit-identical to evaluating
/// [`HdbnParams::transition_score`] per edge, which is how the table was
/// built).
///
/// This is the single implementation of the recursion; the batch
/// [`CoupledHdbn::viterbi`] and the incremental
/// [`crate::online::OnlineCoupledViterbi`] both call it, which is what
/// makes the streamed path bit-identical to the batch path.
pub(crate) fn joint_step_into(
    p: &HdbnParams,
    prev1: &Slice,
    prev2: &Slice,
    v: &[f64],
    cur1: &Slice,
    cur2: &Slice,
    step: &mut StepScratch,
    back: &mut Vec<u32>,
) {
    let t = &p.tables;
    let StepScratch {
        w,
        w_arg,
        w2,
        w2_arg,
        v_next,
        run_max,
        run_arg,
        ..
    } = step;
    let (k1, k2) = (prev1.len(), prev2.len());
    let (m1, m2) = (cur1.len(), cur2.len());
    // Two memoizations per pass, both bit-identical to the per-state
    // recursion they replace:
    // 1. A fold depends on the destination state only through its pair
    //    id — compute once per *distinct* pair (slot), fan out.
    // 2. Switch transitions are postural-independent, so a whole
    //    same-activity run of the source frontier collapses to one
    //    candidate (run max + switch constant); adding the same finite
    //    constant preserves strict order and first-argmax, and runs are
    //    visited in ascending state order, so tie-breaking matches the
    //    naive ascending scan.
    let (d1, d2) = (cur1.n_slots(), cur2.n_slots());

    // Pass 1 — fold chain 2, per (j1p, distinct chain-2 pair):
    // W[j1p, s2] = max_{j2p} V[j1p, j2p] + f2(j2p → pair(s2)).
    // Switch-candidate cache: per (j1p, chain-2 run) max of the V row.
    let nr2 = prev2.runs.len();
    run_max.clear();
    run_max.resize(k1 * nr2, f64::NEG_INFINITY);
    run_arg.clear();
    run_arg.resize(k1 * nr2, 0);
    for j1p in 0..k1 {
        let vrow = &v[j1p * k2..(j1p + 1) * k2];
        for (r, &(_, start, end)) in prev2.runs.iter().enumerate() {
            let mut best = f64::NEG_INFINITY;
            let mut arg = 0u32;
            for j2p in start..end {
                let vv = vrow[j2p as usize];
                if vv > best {
                    best = vv;
                    arg = j2p;
                }
            }
            run_max[j1p * nr2 + r] = best;
            run_arg[j1p * nr2 + r] = arg;
        }
    }
    w.clear();
    w.resize(k1 * d2, f64::NEG_INFINITY);
    w_arg.clear();
    w_arg.resize(k1 * d2, 0);
    for (s2, &dp2) in cur2.uniq_pairs.iter().enumerate() {
        let a2 = t.activity_of(dp2);
        let row = t.into_row(dp2);
        let srow = t.switch_row(a2);
        for j1p in 0..k1 {
            let vrow = &v[j1p * k2..(j1p + 1) * k2];
            let rmax = &run_max[j1p * nr2..][..nr2];
            let rarg = &run_arg[j1p * nr2..][..nr2];
            let mut best = f64::NEG_INFINITY;
            let mut best_arg = 0u32;
            for (r, &(ar, start, end)) in prev2.runs.iter().enumerate() {
                if ar as usize == a2 {
                    // Continue run: postural-dependent, scan its members.
                    for j2p in start..end {
                        let score = vrow[j2p as usize] + row[prev2.pairs[j2p as usize] as usize];
                        if score > best {
                            best = score;
                            best_arg = j2p;
                        }
                    }
                } else {
                    let score = rmax[r] + srow[ar as usize];
                    if score > best {
                        best = score;
                        best_arg = rarg[r];
                    }
                }
            }
            w[j1p * d2 + s2] = best;
            w_arg[j1p * d2 + s2] = best_arg;
        }
    }

    // Pass 2 — fold chain 1, per (distinct chain-1 pair, distinct
    // chain-2 pair): V''[s1, s2] = max_{j1p} W[j1p, s2] + f1(j1p → s1),
    // with the backpointer restored to full-frontier coordinates.
    // Switch-candidate cache: per (chain-1 run, s2) max of the W column.
    let nr1 = prev1.runs.len();
    run_max.clear();
    run_max.resize(nr1 * d2, f64::NEG_INFINITY);
    run_arg.clear();
    run_arg.resize(nr1 * d2, 0);
    for (r, &(_, start, end)) in prev1.runs.iter().enumerate() {
        for s2 in 0..d2 {
            let mut best = f64::NEG_INFINITY;
            let mut arg = 0u32;
            for j1p in start..end {
                let ww = w[j1p as usize * d2 + s2];
                if ww > best {
                    best = ww;
                    arg = j1p;
                }
            }
            run_max[r * d2 + s2] = best;
            run_arg[r * d2 + s2] = arg;
        }
    }
    w2.clear();
    w2.resize(d1 * d2, f64::NEG_INFINITY);
    w2_arg.clear();
    w2_arg.resize(d1 * d2, 0);
    for (s1, &dp1) in cur1.uniq_pairs.iter().enumerate() {
        let a1 = t.activity_of(dp1);
        let row = t.into_row(dp1);
        let srow = t.switch_row(a1);
        for s2 in 0..d2 {
            let mut best = f64::NEG_INFINITY;
            let mut best_j1p = 0usize;
            for (r, &(ar, start, end)) in prev1.runs.iter().enumerate() {
                if ar as usize == a1 {
                    for j1p in start..end {
                        let score =
                            w[j1p as usize * d2 + s2] + row[prev1.pairs[j1p as usize] as usize];
                        if score > best {
                            best = score;
                            best_j1p = j1p as usize;
                        }
                    }
                } else {
                    let score = run_max[r * d2 + s2] + srow[ar as usize];
                    if score > best {
                        best = score;
                        best_j1p = run_arg[r * d2 + s2] as usize;
                    }
                }
            }
            w2[s1 * d2 + s2] = best;
            // Recover j2p chosen inside W for (best_j1p, s2).
            let j2p = w_arg[best_j1p * d2 + s2];
            w2_arg[s1 * d2 + s2] = (best_j1p as u32) * (k2 as u32) + j2p;
        }
    }

    // Fan out: per joint state, the memoized fold plus emissions and
    // coupling.
    v_next.clear();
    v_next.resize(m1 * m2, f64::NEG_INFINITY);
    back.clear();
    back.resize(m1 * m2, 0);
    for j1 in 0..m1 {
        let s1 = cur1.slots[j1] as usize;
        let a1 = cur1.activities[j1];
        let e1 = cur1.emissions[j1];
        let wrow = &w2[s1 * d2..][..d2];
        let brow = &w2_arg[s1 * d2..][..d2];
        for j2 in 0..m2 {
            let s2 = cur2.slots[j2] as usize;
            let emit = e1 + cur2.emissions[j2] + t.coupling(a1, cur2.activities[j2]);
            v_next[j1 * m2 + j2] = wrow[s2] + emit;
            back[j1 * m2 + j2] = brow[s2];
        }
    }
}

/// Reusable work buffers of [`joint_step_pruned_into`], owned by the
/// [`TrellisArena`]'s step scratch: one allocation per decode (batch) or
/// stream (online), reused across ticks — the pruned hot path allocates
/// nothing once warmed, exactly like the dense kernel.
#[derive(Debug, Clone, Default)]
pub(crate) struct JointScratch {
    /// Chain-1 state of each survivor group.
    group_j1p: Vec<u32>,
    /// Half-open `keep` range of each group.
    group_span: Vec<(u32, u32)>,
    /// Distinct surviving j2p values, ascending.
    uniq2: Vec<u32>,
    /// j2p → slot lookup into `uniq2` (only surviving slots are read, so
    /// stale entries from earlier ticks are harmless).
    slot_of: Vec<u32>,
    /// Pass-1 f2 scores per distinct j2p.
    f2vals: Vec<f64>,
    /// Pass-2 f1 scores per group.
    f1vals: Vec<f64>,
}

/// [`joint_step_into`] restricted to a pruned previous frontier: only the
/// survivors in `keep` (flattened `j1p * |S2_prev| + j2p` indices, sorted
/// ascending) may be transitioned out of. The new frontier lands in
/// `step.v_next`, the backpointers (in the *same* full-frontier
/// coordinates as [`joint_step_into`], so backtracking is oblivious to
/// pruning) in `back`; returns the transition-op charge for the step under
/// the overhead experiments' accounting convention —
/// `|survivors| · (|S1|+|S2|)`, the exact step's `k1·k2·(m1+m2)` with the
/// survivor count in place of the full previous frontier, so charges stay
/// comparable across beam widths (and equal the exact charge when nothing
/// is pruned).
///
/// The fold order mirrors the dense kernel — chain 2 first, then chain 1,
/// candidates visited in ascending index order — so a `keep` covering the
/// whole frontier reproduces [`joint_step_into`] bit for bit. (The
/// decoders never take that path: [`crate::Beam`] selection degrades to
/// the dense kernel when nothing is pruned.)
pub(crate) fn joint_step_pruned_into(
    p: &HdbnParams,
    prev1: &Slice,
    prev2: &Slice,
    v: &[f64],
    keep: &[u32],
    cur1: &Slice,
    cur2: &Slice,
    step: &mut StepScratch,
    back: &mut Vec<u32>,
) -> u64 {
    let t = &p.tables;
    let StepScratch {
        joint: scratch,
        w,
        w_arg,
        w2,
        w2_arg,
        v_next,
        ..
    } = step;
    let k2 = prev2.len() as u32;
    let (m1, m2) = (cur1.len(), cur2.len());
    // Like the dense kernel, both folds are memoized per distinct
    // destination pair (slot) — identical arithmetic and tie-breaking,
    // computed once and fanned out.
    let (d1, d2) = (cur1.n_slots(), cur2.n_slots());

    // Survivors grouped by j1p: `keep` is sorted, so each group is a
    // contiguous run. `group_j1p[g]` is the chain-1 state of group `g`,
    // `group_span[g]` its half-open range inside `keep`.
    scratch.group_j1p.clear();
    scratch.group_span.clear();
    let mut i = 0usize;
    while i < keep.len() {
        let j1p = keep[i] / k2;
        let start = i;
        while i < keep.len() && keep[i] / k2 == j1p {
            i += 1;
        }
        scratch.group_j1p.push(j1p);
        scratch.group_span.push((start as u32, i as u32));
    }
    let n_groups = scratch.group_j1p.len();

    // Distinct surviving j2p values, with a j2p → slot lookup so pass 1
    // scores each f2 edge once per (j2, distinct j2p).
    scratch.uniq2.clear();
    scratch.uniq2.extend(keep.iter().map(|&f| f % k2));
    scratch.uniq2.sort_unstable();
    scratch.uniq2.dedup();
    scratch.slot_of.resize(k2 as usize, 0);
    for (slot, &j2p) in scratch.uniq2.iter().enumerate() {
        scratch.slot_of[j2p as usize] = slot as u32;
    }

    // Pass 1 — fold chain 2 over the survivors, per (group, distinct
    // chain-2 pair):
    // W[g, s2] = max_{(j1p_g, j2p) ∈ keep} V[j1p_g, j2p] + f2(j2p → s2).
    // Every entry of w/w_arg/f2vals is overwritten below before it is read.
    w.resize(n_groups * d2, f64::NEG_INFINITY);
    w_arg.resize(n_groups * d2, 0);
    scratch.f2vals.resize(scratch.uniq2.len(), 0.0);
    for (s2, &dp2) in cur2.uniq_pairs.iter().enumerate() {
        let row = t.into_row(dp2);
        for (slot, &j2p) in scratch.uniq2.iter().enumerate() {
            scratch.f2vals[slot] = row[prev2.pairs[j2p as usize] as usize];
        }
        for g in 0..n_groups {
            let (start, end) = scratch.group_span[g];
            let mut best = f64::NEG_INFINITY;
            let mut best_j2p = 0u32;
            for &flat in &keep[start as usize..end as usize] {
                let j2p = flat % k2;
                let score =
                    v[flat as usize] + scratch.f2vals[scratch.slot_of[j2p as usize] as usize];
                if score > best {
                    best = score;
                    best_j2p = j2p;
                }
            }
            w[g * d2 + s2] = best;
            w_arg[g * d2 + s2] = best_j2p;
        }
    }

    // Pass 2 — fold chain 1 over the surviving groups, per (distinct
    // chain-1 pair, distinct chain-2 pair); backpointers restored to
    // full-frontier flat coordinates.
    w2.clear();
    w2.resize(d1 * d2, f64::NEG_INFINITY);
    w2_arg.clear();
    w2_arg.resize(d1 * d2, 0);
    scratch.f1vals.resize(n_groups, 0.0);
    for (s1, &dp1) in cur1.uniq_pairs.iter().enumerate() {
        let row = t.into_row(dp1);
        for (g, &j1p) in scratch.group_j1p.iter().enumerate() {
            scratch.f1vals[g] = row[prev1.pairs[j1p as usize] as usize];
        }
        for s2 in 0..d2 {
            let mut best = f64::NEG_INFINITY;
            let mut best_g = 0usize;
            for (g, &f1) in scratch.f1vals.iter().enumerate() {
                let score = w[g * d2 + s2] + f1;
                if score > best {
                    best = score;
                    best_g = g;
                }
            }
            w2[s1 * d2 + s2] = best;
            w2_arg[s1 * d2 + s2] = scratch.group_j1p[best_g] * k2 + w_arg[best_g * d2 + s2];
        }
    }

    // Fan out per joint state, plus emissions and coupling.
    v_next.clear();
    v_next.resize(m1 * m2, f64::NEG_INFINITY);
    back.clear();
    back.resize(m1 * m2, 0);
    for j1 in 0..m1 {
        let s1 = cur1.slots[j1] as usize;
        let a1 = cur1.activities[j1];
        let e1 = cur1.emissions[j1];
        let wrow = &w2[s1 * d2..][..d2];
        let brow = &w2_arg[s1 * d2..][..d2];
        for j2 in 0..m2 {
            let s2 = cur2.slots[j2] as usize;
            let emit = e1 + cur2.emissions[j2] + t.coupling(a1, cur2.activities[j2]);
            v_next[j1 * m2 + j2] = wrow[s2] + emit;
            back[j1 * m2 + j2] = brow[s2];
        }
    }
    keep.len() as u64 * (m1 as u64 + m2 as u64)
}

/// The decoded joint trajectory plus accounting for the overhead
/// experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct JointPath {
    /// Decoded macro activity per user per tick.
    pub macros: [Vec<usize>; 2],
    /// Decoded micro tuple per user per tick.
    pub micros: [Vec<MicroCandidate>; 2],
    /// Joint log-score (unnormalized) of the decoded path.
    pub log_prob: f64,
    /// Σ_t |S1(t)| · |S2(t)| — joint states instantiated.
    pub states_explored: u64,
    /// Σ_t |S1||S2|(|S1|+|S2|) — transition evaluations performed.
    pub transition_ops: u64,
}

/// The loosely-coupled HDBN decoder.
///
/// Parameters are held behind an [`Arc`], so many decoders — e.g. one per
/// worker in a batch-recognition fan-out — can share one read-only trained
/// model without copying its CPTs. Each [`viterbi`](Self::viterbi) call
/// allocates its own trellis, so a shared decoder is safe to use from
/// multiple threads concurrently.
///
/// Decoding defaults to the exact recursion;
/// [`with_decoder`](Self::with_decoder) installs a [`DecoderConfig`]
/// whose beam prunes the joint frontier each tick.
#[derive(Debug, Clone)]
pub struct CoupledHdbn {
    params: Arc<HdbnParams>,
    decoder: DecoderConfig,
}

impl CoupledHdbn {
    /// Wraps trained parameters (exact decoding).
    pub fn new(params: HdbnParams) -> Self {
        Self {
            params: Arc::new(params),
            decoder: DecoderConfig::default(),
        }
    }

    /// Wraps an already-shared parameter set without copying it (exact
    /// decoding).
    pub fn from_shared(params: Arc<HdbnParams>) -> Self {
        Self {
            params,
            decoder: DecoderConfig::default(),
        }
    }

    /// Installs a decoding configuration (beam pruning policy).
    pub fn with_decoder(mut self, decoder: DecoderConfig) -> Self {
        self.decoder = decoder;
        self
    }

    /// The decoding configuration in use.
    pub fn decoder(&self) -> DecoderConfig {
        self.decoder
    }

    /// The parameters in use.
    pub fn params(&self) -> &HdbnParams {
        &self.params
    }

    /// The shared parameter handle (for decoder frontiers that outlive a
    /// borrow of `self`).
    pub(crate) fn shared_params(&self) -> Arc<HdbnParams> {
        Arc::clone(&self.params)
    }

    /// Decodes the most likely joint state sequence (§III step 6: Viterbi at
    /// runtime inference).
    ///
    /// # Errors
    /// Returns [`ModelError::EmptyStateSpace`] if any tick has no candidates
    /// for some user, and [`ModelError::InsufficientData`] for empty input.
    pub fn viterbi(&self, ticks: &[TickInput]) -> Result<JointPath, ModelError> {
        if ticks.is_empty() {
            return Err(ModelError::InsufficientData {
                what: "viterbi decoding".into(),
                available: 0,
                required: 1,
            });
        }
        for (t, tick) in ticks.iter().enumerate() {
            validate_tick(tick, t)?;
        }

        let p = &self.params;
        let mut states_explored = 0u64;
        let mut transition_ops = 0u64;

        // All step-kernel scratch — beam survivors, fold buffers, the
        // ping-pong frontier — lives in one arena, allocated once per
        // decode and reused across ticks.
        let mut arena = TrellisArena::new();

        // Per-tick slices, retained for backtracking (no clones: the loop
        // below reads the previous tick's slices in place).
        let mut slices: Vec<(Slice, Slice)> = Vec::with_capacity(ticks.len());
        {
            let mut s1 = Slice::default();
            let mut s2 = Slice::default();
            fill_slice(p, &ticks[0], 0, &mut arena.step.macro_ids, &mut s1);
            fill_slice(p, &ticks[0], 1, &mut arena.step.macro_ids, &mut s2);
            slices.push((s1, s2));
        }
        states_explored += (slices[0].0.len() * slices[0].1.len()) as u64;

        // V flattened as j1 * |S2| + j2.
        let mut v = Vec::new();
        joint_init_into(p, &slices[0].0, &slices[0].1, &mut v);

        // `pruned` tracks whether the *current* frontier was restricted
        // (false under `Beam::Exact`, and on any tick where the whole
        // frontier survives — the dense kernel then runs unchanged).
        let beam = self.decoder.beam;
        let mut pruned = beam.select_log(&v, &mut arena.beam);

        // Backpointers per tick (index into the previous tick's flattened
        // joint trellis).
        let mut backptrs: Vec<Vec<u32>> = vec![Vec::new()];

        for tick in ticks.iter().skip(1) {
            let mut cur1 = Slice::default();
            let mut cur2 = Slice::default();
            fill_slice(p, tick, 0, &mut arena.step.macro_ids, &mut cur1);
            fill_slice(p, tick, 1, &mut arena.step.macro_ids, &mut cur2);
            let (prev1, prev2) = slices.last().expect("nonempty");
            let (k1, k2) = (prev1.len(), prev2.len());
            let (m1, m2) = (cur1.len(), cur2.len());
            states_explored += (m1 * m2) as u64;

            let mut back = Vec::new();
            if pruned {
                transition_ops += joint_step_pruned_into(
                    p,
                    prev1,
                    prev2,
                    &v,
                    arena.beam.keep(),
                    &cur1,
                    &cur2,
                    &mut arena.step,
                    &mut back,
                );
            } else {
                transition_ops += (k1 as u64 * k2 as u64) * (m1 as u64 + m2 as u64);
                joint_step_into(
                    p,
                    prev1,
                    prev2,
                    &v,
                    &cur1,
                    &cur2,
                    &mut arena.step,
                    &mut back,
                );
            }

            std::mem::swap(&mut v, &mut arena.step.v_next);
            pruned = beam.select_log(&v, &mut arena.beam);
            backptrs.push(back);
            slices.push((cur1, cur2));
        }

        // Termination: best final joint state.
        let m2_last = slices.last().expect("nonempty").1.len();
        let (mut flat, log_prob) = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .map(|(i, &s)| (i, s))
            .expect("nonempty trellis");

        // Backtrack.
        let t_total = ticks.len();
        let mut macros = [vec![0usize; t_total], vec![0usize; t_total]];
        let mut micros = [
            vec![
                MicroCandidate {
                    postural: 0,
                    gestural: None,
                    location: 0,
                    obs_loglik: 0.0
                };
                t_total
            ],
            vec![
                MicroCandidate {
                    postural: 0,
                    gestural: None,
                    location: 0,
                    obs_loglik: 0.0
                };
                t_total
            ],
        ];
        let mut m2_cur = m2_last;
        for t in (0..t_total).rev() {
            let (s1_slice, s2_slice) = &slices[t];
            let j1 = flat / m2_cur;
            let j2 = flat % m2_cur;
            macros[0][t] = s1_slice.activities[j1];
            macros[1][t] = s2_slice.activities[j2];
            micros[0][t] = ticks[t].candidates[0][s1_slice.cands[j1]];
            micros[1][t] = ticks[t].candidates[1][s2_slice.cands[j2]];
            if t > 0 {
                flat = backptrs[t][flat] as usize;
                m2_cur = slices[t - 1].1.len();
            }
        }

        Ok(JointPath {
            macros,
            micros,
            log_prob,
            states_explored,
            transition_ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{HdbnConfig, HdbnParams};
    use cace_mining::constraint::{ConstraintMiner, LabeledSequence};
    use cace_mining::HierarchicalStats;

    /// Stats for a 2-activity world where activity k has posture k and
    /// location k, both users synchronized, runs of 10 ticks.
    fn toy_stats() -> HierarchicalStats {
        let mut macros = Vec::new();
        for r in 0..40 {
            for _ in 0..10 {
                macros.push(r % 2);
            }
        }
        let n = macros.len();
        let seq = LabeledSequence {
            macros: [macros.clone(), macros.clone()],
            posturals: [macros.clone(), macros.clone()],
            gesturals: [vec![0; n], vec![0; n]],
            locations: [macros.clone(), macros],
        };
        ConstraintMiner {
            laplace: 0.1,
            n_macro: 2,
            n_postural: 2,
            n_gestural: 2,
            n_location: 2,
        }
        .mine(&[seq])
        .unwrap()
    }

    fn decoder(coupling: bool) -> CoupledHdbn {
        let config = if coupling {
            HdbnConfig::default()
        } else {
            HdbnConfig::uncoupled()
        };
        CoupledHdbn::new(HdbnParams::new(toy_stats(), config).unwrap())
    }

    /// A tick where the observation clearly favors micro state `m` for both
    /// users (`strength` in log-odds).
    fn obs_tick(m: usize, strength: f64) -> TickInput {
        let cands = |fav: usize| -> Vec<MicroCandidate> {
            (0..2)
                .map(|p| MicroCandidate {
                    postural: p,
                    gestural: Some(0),
                    location: p,
                    obs_loglik: if p == fav { 0.0 } else { -strength },
                })
                .collect()
        };
        TickInput {
            candidates: [cands(m), cands(m)],
            macro_candidates: [None, None],
            macro_bonus: Vec::new(),
        }
    }

    #[test]
    fn decodes_clear_observations() {
        let d = decoder(true);
        let ticks: Vec<TickInput> = (0..20)
            .map(|t| obs_tick(if t < 10 { 0 } else { 1 }, 5.0))
            .collect();
        let path = d.viterbi(&ticks).unwrap();
        for t in 0..10 {
            assert_eq!(path.macros[0][t], 0, "tick {t}");
            assert_eq!(path.macros[1][t], 0, "tick {t}");
        }
        for t in 12..20 {
            assert_eq!(path.macros[0][t], 1, "tick {t}");
        }
        assert!(path.log_prob.is_finite());
        assert!(path.states_explored > 0);
        assert!(path.transition_ops > 0);
    }

    #[test]
    fn temporal_smoothing_overrides_single_glitch() {
        let d = decoder(true);
        let mut ticks: Vec<TickInput> = (0..15).map(|_| obs_tick(0, 2.0)).collect();
        // One weakly contradictory tick in the middle.
        ticks[7] = obs_tick(1, 0.3);
        let path = d.viterbi(&ticks).unwrap();
        assert_eq!(path.macros[0][7], 0, "persistence should absorb the glitch");
    }

    #[test]
    fn coupling_pulls_ambiguous_partner() {
        // User 1 sees clear evidence for activity 0; user 2 is ambiguous.
        let make = |coupled: bool| {
            let d = decoder(coupled);
            let ticks: Vec<TickInput> = (0..10)
                .map(|_| {
                    let clear: Vec<MicroCandidate> = (0..2)
                        .map(|p| MicroCandidate {
                            postural: p,
                            gestural: Some(0),
                            location: p,
                            obs_loglik: if p == 0 { 0.0 } else { -6.0 },
                        })
                        .collect();
                    let ambiguous: Vec<MicroCandidate> = (0..2)
                        .map(|p| MicroCandidate {
                            postural: p,
                            gestural: Some(0),
                            location: p,
                            obs_loglik: 0.0,
                        })
                        .collect();
                    TickInput {
                        candidates: [clear, ambiguous],
                        macro_candidates: [None, None],
                        macro_bonus: Vec::new(),
                    }
                })
                .collect();
            d.viterbi(&ticks).unwrap()
        };
        let coupled = make(true);
        // With coupling, the ambiguous partner is pulled to activity 0
        // (their co-occurrence statistics are perfectly synchronized).
        assert!(coupled.macros[1].iter().all(|&a| a == 0));
    }

    #[test]
    fn macro_candidate_restriction_is_respected() {
        let d = decoder(true);
        let mut ticks: Vec<TickInput> = (0..6).map(|_| obs_tick(0, 1.0)).collect();
        for tick in &mut ticks {
            tick.macro_candidates[0] = Some(vec![1]); // force activity 1
        }
        let path = d.viterbi(&ticks).unwrap();
        assert!(path.macros[0].iter().all(|&a| a == 1));
    }

    #[test]
    fn empty_input_and_empty_candidates_error() {
        let d = decoder(true);
        assert!(matches!(
            d.viterbi(&[]),
            Err(ModelError::InsufficientData { .. })
        ));
        let mut tick = obs_tick(0, 1.0);
        tick.candidates[1].clear();
        assert!(matches!(
            d.viterbi(&[obs_tick(0, 1.0), tick]),
            Err(ModelError::EmptyStateSpace { tick: 1 })
        ));
    }

    #[test]
    fn pruning_reduces_accounting() {
        let d = decoder(true);
        let full: Vec<TickInput> = (0..10).map(|_| obs_tick(0, 2.0)).collect();
        let mut pruned = full.clone();
        for tick in &mut pruned {
            tick.macro_candidates = [Some(vec![0]), Some(vec![0])];
            tick.candidates[0].truncate(1);
            tick.candidates[1].truncate(1);
        }
        let full_path = d.viterbi(&full).unwrap();
        let pruned_path = d.viterbi(&pruned).unwrap();
        assert!(pruned_path.states_explored * 4 < full_path.states_explored);
        assert!(pruned_path.transition_ops * 16 <= full_path.transition_ops);
        // And the answer on this easy input is unchanged.
        assert_eq!(pruned_path.macros[0], full_path.macros[0]);
    }

    #[test]
    fn beamed_decoder_matches_exact_on_clear_data_with_less_work() {
        use crate::beam::DecoderConfig;
        let ticks: Vec<TickInput> = (0..30)
            .map(|t| obs_tick(usize::from((t / 10) % 2 == 1), 4.0))
            .collect();
        let exact = decoder(true).viterbi(&ticks).unwrap();
        for config in [DecoderConfig::top_k(3), DecoderConfig::log_threshold(2.0)] {
            let pruned = decoder(true).with_decoder(config).viterbi(&ticks).unwrap();
            assert_eq!(pruned.macros, exact.macros, "{config:?}");
            assert!(pruned.log_prob <= exact.log_prob, "{config:?}");
            assert!(
                pruned.transition_ops < exact.transition_ops,
                "{config:?}: {} !< {}",
                pruned.transition_ops,
                exact.transition_ops
            );
            // Frontier pruning leaves the instantiated-state count alone.
            assert_eq!(pruned.states_explored, exact.states_explored);
        }
    }

    #[test]
    fn top_k_covering_the_joint_frontier_is_bit_identical_to_exact() {
        let ticks: Vec<TickInput> = (0..12).map(|t| obs_tick(t % 2, 1.5)).collect();
        let exact = decoder(true).viterbi(&ticks).unwrap();
        // 2 activities × 2 candidates per chain → 16 joint states.
        let wide = decoder(true)
            .with_decoder(crate::beam::DecoderConfig::top_k(16))
            .viterbi(&ticks)
            .unwrap();
        assert_eq!(wide, exact, "full-width beam degrades to the exact kernel");
    }

    #[test]
    fn micro_path_aligns_with_macro_path() {
        let d = decoder(true);
        let ticks: Vec<TickInput> = (0..8).map(|_| obs_tick(1, 4.0)).collect();
        let path = d.viterbi(&ticks).unwrap();
        for t in 0..8 {
            // In the toy world, activity 1 ↔ posture 1 / location 1.
            assert_eq!(path.micros[0][t].postural, 1);
            assert_eq!(path.micros[0][t].location, 1);
            assert_eq!(path.macros[0][t], 1);
        }
    }
}
