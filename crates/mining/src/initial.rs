//! User-provided initial rules.
//!
//! The paper's "Base application" is a smartphone interface through which a
//! resident walks the apartment, touches each instrumented object, and
//! defines semantic correlation rules by hand ("select correlated low- and
//! high-level activities … and click Set"). Fig 12 shows these initial
//! rules improving both accuracy and overhead before enough training data
//! accumulates.
//!
//! This module constructs that same starter rule set programmatically from
//! the CACE vocabulary: one venue+posture ⇒ activity rule per activity with
//! an unambiguous venue, plus the bathroom exclusivity.

use cace_model::{MacroActivity, Postural, SubLocation};

use crate::item::{Atom, AtomSpace, Item};
use crate::rules::{NegativeRule, Rule, RuleSet};

/// Builds the CACE initial rule set (both users, current time).
pub fn initial_cace_rules() -> RuleSet {
    let space = AtomSpace::cace();
    let mut rules = Vec::new();

    // Venue + characteristic posture ⇒ activity, for the activities whose
    // primary venue is unambiguous (exactly the ones a resident would define
    // through the app: bike ⇒ exercising, bed ⇒ sleeping, …).
    let definitions: [(MacroActivity, SubLocation, Postural); 6] = [
        (
            MacroActivity::Exercising,
            SubLocation::ExerciseBike,
            Postural::Cycling,
        ),
        (MacroActivity::Sleeping, SubLocation::Bed, Postural::Lying),
        (
            MacroActivity::Studying,
            SubLocation::ReadingTable,
            Postural::Sitting,
        ),
        (
            MacroActivity::Dining,
            SubLocation::DiningTable,
            Postural::Sitting,
        ),
        (
            MacroActivity::Bathrooming,
            SubLocation::Bathroom,
            Postural::Standing,
        ),
        (
            MacroActivity::WatchingTv,
            SubLocation::Couch1,
            Postural::Sitting,
        ),
    ];

    for user in 0..2u8 {
        for (activity, venue, posture) in definitions {
            let mut antecedent = vec![
                space.encode(Item {
                    user,
                    lag: 0,
                    atom: Atom::Location(venue.index() as u16),
                }),
                space.encode(Item {
                    user,
                    lag: 0,
                    atom: Atom::Postural(posture.index() as u16),
                }),
            ];
            antecedent.sort_unstable();
            rules.push(Rule {
                antecedent,
                consequent: space.encode(Item {
                    user,
                    lag: 0,
                    atom: Atom::Macro(activity.index() as u16),
                }),
                support: 0.05, // nominal: user-asserted, not mined
                confidence: 1.0,
            });
        }
    }

    let mut set = RuleSet::new(space.clone(), rules);

    // Bathroom exclusivity, both directions.
    let bath = SubLocation::Bathroom.index() as u16;
    let negatives = vec![
        NegativeRule {
            if_item: space.encode(Item {
                user: 0,
                lag: 0,
                atom: Atom::Location(bath),
            }),
            then_not: space.encode(Item {
                user: 1,
                lag: 0,
                atom: Atom::Location(bath),
            }),
            support: 0.05,
        },
        NegativeRule {
            if_item: space.encode(Item {
                user: 1,
                lag: 0,
                atom: Atom::Location(bath),
            }),
            then_not: space.encode(Item {
                user: 0,
                lag: 0,
                atom: Atom::Location(bath),
            }),
            support: 0.05,
        },
    ];
    set.set_negatives(negatives);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::{CandidateTick, PruningEngine, UserCandidates};

    #[test]
    fn initial_rules_cover_both_users() {
        let set = initial_cace_rules();
        assert_eq!(set.rules().len(), 12); // 6 definitions × 2 users
        assert_eq!(set.negatives().len(), 2);
        assert_eq!(set.len(), 14);
        for rule in set.rules() {
            assert_eq!(rule.confidence, 1.0);
            assert_eq!(rule.antecedent.len(), 2);
        }
    }

    #[test]
    fn initial_rules_prune_like_mined_rules() {
        let set = initial_cace_rules();
        let space = set.space().clone();
        let engine = PruningEngine::new(set);
        let mut tick = CandidateTick::full(&space);
        // User 1 cycling at SR1 → exercising identified.
        let mut evidence = vec![
            space.encode(Item {
                user: 0,
                lag: 0,
                atom: Atom::Location(SubLocation::ExerciseBike.index() as u16),
            }),
            space.encode(Item {
                user: 0,
                lag: 0,
                atom: Atom::Postural(Postural::Cycling.index() as u16),
            }),
        ];
        evidence.sort_unstable();
        let report = engine.prune(&evidence, &mut tick);
        assert!(report.positive_fired >= 1);
        assert_eq!(
            UserCandidates::allowed(&tick.users[0].macros),
            vec![MacroActivity::Exercising.index()]
        );
    }

    #[test]
    fn bathroom_exclusivity_is_bidirectional() {
        let set = initial_cace_rules();
        let space = set.space().clone();
        let engine = PruningEngine::new(set);
        let bath = SubLocation::Bathroom.index();
        for user in 0..2usize {
            let mut tick = CandidateTick::full(&space);
            let evidence = vec![space.encode(Item {
                user: user as u8,
                lag: 0,
                atom: Atom::Location(bath as u16),
            })];
            engine.prune(&evidence, &mut tick);
            assert!(
                !tick.users[1 - user].locations[bath],
                "user {user} in bathroom must exclude partner"
            );
        }
    }
}
