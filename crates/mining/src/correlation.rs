//! The correlation miner's runtime half: deterministic state-space pruning.
//!
//! §V-B of the paper: mined rules "eliminate various infeasible state
//! combination\[s\] from the HDBN". Candidates are kept factorized per user —
//! a macro-activity set plus per-dimension micro sets — so the joint state
//! count is the product the paper's complexity argument is about, and rule
//! application is a cheap set restriction.

use serde::{Deserialize, Serialize};

use crate::item::{Atom, AtomSpace, ItemId};
use crate::rules::RuleSet;

/// Factorized candidate sets for one user at one tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserCandidates {
    /// Allowed macro activities.
    pub macros: Vec<bool>,
    /// Allowed postural states.
    pub posturals: Vec<bool>,
    /// Allowed gestural states.
    pub gesturals: Vec<bool>,
    /// Allowed sub-locations.
    pub locations: Vec<bool>,
}

impl UserCandidates {
    /// Everything allowed.
    pub fn full(space: &AtomSpace) -> Self {
        Self {
            macros: vec![true; space.n_macro],
            posturals: vec![true; space.n_postural],
            gesturals: vec![true; space.n_gestural],
            locations: vec![true; space.n_location],
        }
    }

    fn dim_mut(&mut self, atom: Atom) -> (&mut Vec<bool>, usize) {
        match atom {
            Atom::Macro(i) => (&mut self.macros, i as usize),
            Atom::Postural(i) => (&mut self.posturals, i as usize),
            Atom::Gestural(i) => (&mut self.gesturals, i as usize),
            Atom::Location(i) => (&mut self.locations, i as usize),
            Atom::Room(_) => unreachable!("rooms are expanded before dispatch"),
        }
    }

    /// Restricts a dimension to exactly one value. Returns how many
    /// candidates were removed; refuses (returns 0) when the value is
    /// already excluded — evidence conflicts must not empty the space here.
    pub fn restrict(&mut self, space: &AtomSpace, atom: Atom) -> usize {
        if let Atom::Room(r) = atom {
            // A room consequent keeps every sub-location inside the room.
            let mut removed = 0;
            let allowed_any = self
                .locations
                .iter()
                .enumerate()
                .any(|(l, &ok)| ok && space.loc_to_room[l] == r as usize);
            if !allowed_any {
                return 0;
            }
            for (l, slot) in self.locations.iter_mut().enumerate() {
                if *slot && space.loc_to_room[l] != r as usize {
                    *slot = false;
                    removed += 1;
                }
            }
            return removed;
        }
        let (dim, idx) = self.dim_mut(atom);
        if idx >= dim.len() || !dim[idx] {
            return 0;
        }
        let mut removed = 0;
        for (i, slot) in dim.iter_mut().enumerate() {
            if i != idx && *slot {
                *slot = false;
                removed += 1;
            }
        }
        removed
    }

    /// Forbids one value. Returns whether it was removed. Refuses to empty a
    /// dimension (the last candidate survives).
    pub fn forbid(&mut self, space: &AtomSpace, atom: Atom) -> bool {
        if let Atom::Room(r) = atom {
            // Forbid every sub-location inside the room, keeping ≥ 1 overall.
            let mut any = false;
            for l in 0..self.locations.len() {
                if space.loc_to_room[l] == r as usize {
                    any |= self.forbid(space, Atom::Location(l as u16));
                }
            }
            return any;
        }
        let (dim, idx) = self.dim_mut(atom);
        if idx >= dim.len() || !dim[idx] {
            return false;
        }
        if dim.iter().filter(|&&b| b).count() <= 1 {
            return false; // never empty a dimension
        }
        dim[idx] = false;
        true
    }

    /// Number of allowed micro tuples (product of micro dimensions).
    pub fn micro_size(&self) -> usize {
        let count = |v: &Vec<bool>| v.iter().filter(|&&b| b).count();
        count(&self.posturals) * count(&self.gesturals) * count(&self.locations)
    }

    /// Number of allowed (macro, micro) states.
    pub fn joint_size(&self) -> usize {
        self.macros.iter().filter(|&&b| b).count() * self.micro_size()
    }

    /// Whether any dimension has been emptied.
    pub fn any_empty(&self) -> bool {
        [
            &self.macros,
            &self.posturals,
            &self.gesturals,
            &self.locations,
        ]
        .iter()
        .any(|d| d.iter().all(|&b| !b))
    }

    /// Indices of allowed values in a dimension.
    pub fn allowed(dim: &[bool]) -> Vec<usize> {
        dim.iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The joint candidate space at one tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateTick {
    /// Per-user candidate sets.
    pub users: [UserCandidates; 2],
}

impl CandidateTick {
    /// Everything allowed for both users.
    pub fn full(space: &AtomSpace) -> Self {
        Self {
            users: [UserCandidates::full(space), UserCandidates::full(space)],
        }
    }

    /// Joint state count across both users (the paper's explosion metric).
    pub fn joint_size(&self) -> u128 {
        self.users.iter().map(|u| u.joint_size() as u128).product()
    }
}

/// Outcome of one pruning pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneReport {
    /// How many positive rules fired.
    pub positive_fired: usize,
    /// How many negative rules fired.
    pub negative_fired: usize,
    /// Candidate entries removed across all dimensions.
    pub removed: usize,
}

/// The deterministic pruning engine.
#[derive(Debug, Clone)]
pub struct PruningEngine {
    rules: RuleSet,
}

impl PruningEngine {
    /// Wraps a mined (or user-provided) rule set.
    pub fn new(rules: RuleSet) -> Self {
        Self { rules }
    }

    /// The rule set in use.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Applies every applicable rule to the tick's candidates.
    ///
    /// `evidence` is the sorted list of items known true around this tick
    /// (observed micro states at `t` and the committed states at `t − 1`).
    /// Iterates to a fixed point (rules can cascade, as in the paper's
    /// living-room example where a location rule enables a macro rule).
    pub fn prune(&self, evidence: &[ItemId], tick: &mut CandidateTick) -> PruneReport {
        debug_assert!(
            evidence.windows(2).all(|w| w[0] <= w[1]),
            "evidence must be sorted"
        );
        let space = self.rules.space().clone();
        let mut report = PruneReport::default();
        // Two passes reach the fixed point for cascades whose intermediate
        // conclusions are candidate restrictions (deeper chains would need
        // re-deriving evidence, which the engine intentionally avoids: only
        // observed facts count as evidence).
        for _ in 0..2 {
            let mut changed = false;
            for rule in self.rules.rules() {
                if !rule.fires_on(evidence) {
                    continue;
                }
                let Some(item) = space.decode(rule.consequent) else {
                    continue;
                };
                if item.lag != 0 {
                    continue; // past-state consequents carry no runtime prune
                }
                let removed = tick.users[item.user as usize].restrict(&space, item.atom);
                if removed > 0 {
                    report.positive_fired += 1;
                    report.removed += removed;
                    changed = true;
                }
            }
            for neg in self.rules.negatives() {
                if evidence.binary_search(&neg.if_item).is_err() {
                    continue;
                }
                let Some(item) = space.decode(neg.then_not) else {
                    continue;
                };
                if item.lag != 0 {
                    continue;
                }
                if tick.users[item.user as usize].forbid(&space, item.atom) {
                    report.negative_fired += 1;
                    report.removed += 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Item;
    use crate::rules::{NegativeRule, Rule};

    fn space() -> AtomSpace {
        AtomSpace::cace()
    }

    fn enc(s: &AtomSpace, user: u8, atom: Atom) -> ItemId {
        s.encode(Item { user, lag: 0, atom })
    }

    fn engine_with(s: &AtomSpace, rules: Vec<Rule>, negatives: Vec<NegativeRule>) -> PruningEngine {
        let mut set = RuleSet::new(s.clone(), rules);
        set.set_negatives(negatives);
        PruningEngine::new(set)
    }

    #[test]
    fn full_tick_size_matches_model() {
        let s = space();
        let tick = CandidateTick::full(&s);
        // 11 macro × (6 × 5 × 14) micro per user.
        assert_eq!(tick.users[0].joint_size(), 11 * 420);
        assert_eq!(tick.joint_size(), (11u128 * 420).pow(2));
        assert!(!tick.users[0].any_empty());
    }

    #[test]
    fn positive_rule_restricts_macro() {
        let s = space();
        let cycling = enc(&s, 0, Atom::Postural(3));
        let sr1 = enc(&s, 0, Atom::Location(0));
        let mut ants = vec![cycling, sr1];
        ants.sort_unstable();
        let rule = Rule {
            antecedent: ants,
            consequent: enc(&s, 0, Atom::Macro(0)),
            support: 0.1,
            confidence: 1.0,
        };
        let engine = engine_with(&s, vec![rule], vec![]);

        let mut tick = CandidateTick::full(&s);
        let mut evidence = vec![cycling, sr1];
        evidence.sort_unstable();
        let report = engine.prune(&evidence, &mut tick);
        assert_eq!(report.positive_fired, 1);
        assert_eq!(UserCandidates::allowed(&tick.users[0].macros), vec![0]);
        // User 2 untouched.
        assert_eq!(tick.users[1].macros.iter().filter(|&&b| b).count(), 11);
        // Joint size shrank by 11×.
        assert_eq!(tick.joint_size(), 420 * (11u128 * 420));
    }

    #[test]
    fn rule_does_not_fire_without_full_antecedent() {
        let s = space();
        let cycling = enc(&s, 0, Atom::Postural(3));
        let sr1 = enc(&s, 0, Atom::Location(0));
        let mut ants = vec![cycling, sr1];
        ants.sort_unstable();
        let rule = Rule {
            antecedent: ants,
            consequent: enc(&s, 0, Atom::Macro(0)),
            support: 0.1,
            confidence: 1.0,
        };
        let engine = engine_with(&s, vec![rule], vec![]);
        let mut tick = CandidateTick::full(&s);
        let report = engine.prune(&[cycling], &mut tick);
        assert_eq!(report.positive_fired, 0);
        assert_eq!(tick.joint_size(), (11u128 * 420).pow(2));
    }

    #[test]
    fn negative_rule_forbids_partner_bathroom() {
        let s = space();
        let u1_bath = enc(&s, 0, Atom::Location(8));
        let u2_bath = enc(&s, 1, Atom::Location(8));
        let neg = NegativeRule {
            if_item: u1_bath,
            then_not: u2_bath,
            support: 0.2,
        };
        let engine = engine_with(&s, vec![], vec![neg]);

        let mut tick = CandidateTick::full(&s);
        let report = engine.prune(&[u1_bath], &mut tick);
        assert_eq!(report.negative_fired, 1);
        assert!(
            !tick.users[1].locations[8],
            "partner bathroom must be pruned"
        );
        assert_eq!(tick.users[1].locations.iter().filter(|&&b| b).count(), 13);
    }

    #[test]
    fn room_consequent_restricts_to_room_sublocations() {
        let s = space();
        let trigger = enc(&s, 0, Atom::Postural(2));
        // room 0 = living room (6 sub-locations).
        let rule = Rule {
            antecedent: vec![trigger],
            consequent: enc(&s, 0, Atom::Room(0)),
            support: 0.1,
            confidence: 1.0,
        };
        let engine = engine_with(&s, vec![rule], vec![]);
        let mut tick = CandidateTick::full(&s);
        engine.prune(&[trigger], &mut tick);
        let allowed = UserCandidates::allowed(&tick.users[0].locations);
        assert_eq!(allowed.len(), 6);
        assert!(allowed.iter().all(|&l| s.loc_to_room[l] == 0));
    }

    #[test]
    fn conflicting_restriction_is_refused() {
        let s = space();
        let trigger = enc(&s, 0, Atom::Postural(0));
        let rule_a = Rule {
            antecedent: vec![trigger],
            consequent: enc(&s, 0, Atom::Macro(2)),
            support: 0.1,
            confidence: 1.0,
        };
        let rule_b = Rule {
            antecedent: vec![trigger],
            consequent: enc(&s, 0, Atom::Macro(5)),
            support: 0.1,
            confidence: 1.0,
        };
        let engine = engine_with(&s, vec![rule_a, rule_b], vec![]);
        let mut tick = CandidateTick::full(&s);
        engine.prune(&[trigger], &mut tick);
        // First rule restricted to {2}; second would contradict and is
        // refused; space never empties.
        assert!(!tick.users[0].any_empty());
        assert_eq!(UserCandidates::allowed(&tick.users[0].macros), vec![2]);
    }

    #[test]
    fn forbid_never_empties_a_dimension() {
        let s = space();
        let mut cand = UserCandidates::full(&s);
        // Forbid all but one location; the final forbid must refuse.
        for l in 0..13u16 {
            assert!(cand.forbid(&s, Atom::Location(l)));
        }
        assert!(!cand.forbid(&s, Atom::Location(13)));
        assert_eq!(UserCandidates::allowed(&cand.locations), vec![13]);
    }

    #[test]
    fn paper_example_watching_tv_cascade() {
        // The §V-B walkthrough: livingroom occupancy + sitting identifies
        // watchingTV (macro 3) for user A, walking identifies jogging-like
        // exercising for B — here we verify at least that two rules fire in
        // one pass and both users' spaces shrink.
        let s = space();
        let u1_sitting = enc(&s, 0, Atom::Postural(2));
        let u1_room = enc(&s, 0, Atom::Room(0));
        let u2_walking = enc(&s, 1, Atom::Postural(0));
        let mut a1 = vec![u1_sitting, u1_room];
        a1.sort_unstable();
        let rule1 = Rule {
            antecedent: a1,
            consequent: enc(&s, 0, Atom::Macro(3)), // watching TV
            support: 0.1,
            confidence: 1.0,
        };
        let rule2 = Rule {
            antecedent: vec![u2_walking],
            consequent: enc(&s, 1, Atom::Room(0)),
            support: 0.1,
            confidence: 1.0,
        };
        let engine = engine_with(&s, vec![rule1, rule2], vec![]);
        let mut tick = CandidateTick::full(&s);
        let mut evidence = vec![u1_sitting, u1_room, u2_walking];
        evidence.sort_unstable();
        let before = tick.joint_size();
        let report = engine.prune(&evidence, &mut tick);
        assert_eq!(report.positive_fired, 2);
        assert!(tick.joint_size() < before / 10, "cascade should cut ≥ 10×");
    }
}
