//! The probabilistic constraint miner.
//!
//! §V-C of the paper: after the correlation miner removes infeasible states,
//! the constraint miner supplies the *probabilistic* structure — transition
//! statistics, inter-user co-occurrence, episode-termination probabilities,
//! and the hierarchical micro-given-macro conditional probability tables
//! stored in the loosely-coupled HDBN's CPTs.

use cace_model::ModelError;
use serde::{Deserialize, Serialize};

/// One labeled training sequence for two residents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LabeledSequence {
    /// `macros[u][t]` — macro-activity id.
    pub macros: [Vec<usize>; 2],
    /// `posturals[u][t]` — postural id.
    pub posturals: [Vec<usize>; 2],
    /// `gesturals[u][t]` — gestural id (empty vectors when absent, CASAS).
    pub gesturals: [Vec<usize>; 2],
    /// `locations[u][t]` — sub-location id.
    pub locations: [Vec<usize>; 2],
}

impl LabeledSequence {
    /// Number of ticks, validating internal alignment.
    ///
    /// # Errors
    /// Returns [`ModelError::LengthMismatch`] if channels disagree.
    pub fn len_checked(&self) -> Result<usize, ModelError> {
        let n = self.macros[0].len();
        let all_match = self.macros[1].len() == n
            && self.posturals.iter().all(|v| v.len() == n)
            && self.locations.iter().all(|v| v.len() == n)
            && self.gesturals.iter().all(|v| v.is_empty() || v.len() == n);
        if all_match {
            Ok(n)
        } else {
            Err(ModelError::LengthMismatch {
                what: "labeled sequence channels".into(),
                left: n,
                right: self.macros[1].len(),
            })
        }
    }
}

/// Everything the constraint miner learns, Laplace-smoothed and normalized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalStats {
    /// Macro-activity count.
    pub n_macro: usize,
    /// Postural count.
    pub n_postural: usize,
    /// Gestural count.
    pub n_gestural: usize,
    /// Sub-location count.
    pub n_location: usize,
    /// `P(macro)` marginal.
    pub macro_prior: Vec<f64>,
    /// `P(macro_t = j | macro_{t−1} = i)` — intra-user temporal constraint
    /// (Proposition 3).
    pub intra_trans: Vec<Vec<f64>>,
    /// `P(partner = b | user = a)` at the same tick — inter-user spatial
    /// constraint (Proposition 4).
    pub inter_cooc: Vec<Vec<f64>>,
    /// `P(episode of activity i ends at any given tick)` — drives the
    /// end-of-sequence markers `E` (Eqn 7).
    pub end_prob: Vec<f64>,
    /// `P(postural | macro)` (Augmentation 2 hierarchy).
    pub postural_given_macro: Vec<Vec<f64>>,
    /// `P(gestural | macro)`; uniform when the modality is absent.
    pub gestural_given_macro: Vec<Vec<f64>>,
    /// `P(location | macro)`.
    pub location_given_macro: Vec<Vec<f64>>,
    /// Micro-level postural transition `P(p_t | p_{t−1})`.
    pub postural_trans: Vec<Vec<f64>>,
}

impl HierarchicalStats {
    fn assert_row_normalized(rows: &[Vec<f64>]) -> bool {
        rows.iter()
            .all(|r| (r.iter().sum::<f64>() - 1.0).abs() < 1e-9)
    }

    /// Validates that every stored distribution is normalized.
    pub fn validate(&self) -> Result<(), ModelError> {
        let tables: [(&str, &Vec<Vec<f64>>); 5] = [
            ("intra_trans", &self.intra_trans),
            ("inter_cooc", &self.inter_cooc),
            ("postural_given_macro", &self.postural_given_macro),
            ("gestural_given_macro", &self.gestural_given_macro),
            ("location_given_macro", &self.location_given_macro),
        ];
        for (name, table) in tables {
            if !Self::assert_row_normalized(table) {
                return Err(ModelError::InvalidDistribution {
                    what: name.into(),
                    mass: table
                        .iter()
                        .map(|r| r.iter().sum::<f64>())
                        .find(|m| (m - 1.0).abs() >= 1e-9)
                        .unwrap_or(0.0),
                });
            }
        }
        let prior_mass: f64 = self.macro_prior.iter().sum();
        if (prior_mass - 1.0).abs() >= 1e-9 {
            return Err(ModelError::InvalidDistribution {
                what: "macro_prior".into(),
                mass: prior_mass,
            });
        }
        if self.end_prob.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
            return Err(ModelError::InvalidDistribution {
                what: "end_prob".into(),
                mass: -1.0,
            });
        }
        Ok(())
    }
}

/// The constraint miner: counts over labeled training sequences.
#[derive(Debug, Clone, Copy)]
pub struct ConstraintMiner {
    /// Laplace smoothing pseudo-count.
    pub laplace: f64,
    /// Macro-activity count.
    pub n_macro: usize,
    /// Postural count.
    pub n_postural: usize,
    /// Gestural count.
    pub n_gestural: usize,
    /// Sub-location count.
    pub n_location: usize,
}

impl ConstraintMiner {
    /// A miner for the CACE vocabulary sizes.
    pub fn cace() -> Self {
        Self {
            laplace: 0.5,
            n_macro: 11,
            n_postural: 6,
            n_gestural: 5,
            n_location: 14,
        }
    }

    /// A miner for the CASAS vocabulary sizes.
    pub fn casas() -> Self {
        Self {
            n_macro: 15,
            ..Self::cace()
        }
    }

    /// Mines the full [`HierarchicalStats`] from labeled sequences.
    ///
    /// # Errors
    /// Returns [`ModelError::InsufficientData`] when no sequence has at
    /// least two ticks, and propagates alignment errors.
    pub fn mine(&self, sequences: &[LabeledSequence]) -> Result<HierarchicalStats, ModelError> {
        let total_ticks: usize = sequences
            .iter()
            .map(|s| s.len_checked())
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .sum();
        if total_ticks < 2 {
            return Err(ModelError::InsufficientData {
                what: "constraint mining".into(),
                available: total_ticks,
                required: 2,
            });
        }

        let nm = self.n_macro;
        let mut prior = vec![self.laplace; nm];
        let mut intra = vec![vec![self.laplace; nm]; nm];
        let mut inter = vec![vec![self.laplace; nm]; nm];
        let mut ends = vec![self.laplace; nm];
        let mut stays = vec![self.laplace; nm];
        let mut post_given = vec![vec![self.laplace; self.n_postural]; nm];
        let mut gest_given = vec![vec![self.laplace; self.n_gestural]; nm];
        let mut loc_given = vec![vec![self.laplace; self.n_location]; nm];
        let mut post_trans = vec![vec![self.laplace; self.n_postural]; self.n_postural];

        for seq in sequences {
            let n = seq.len_checked()?;
            for u in 0..2 {
                let has_gest = !seq.gesturals[u].is_empty();
                for t in 0..n {
                    let m = seq.macros[u][t];
                    prior[m] += 1.0;
                    post_given[m][seq.posturals[u][t]] += 1.0;
                    loc_given[m][seq.locations[u][t]] += 1.0;
                    if has_gest {
                        gest_given[m][seq.gesturals[u][t]] += 1.0;
                    }
                    // Inter-user co-occurrence (count once per ordered pair).
                    inter[m][seq.macros[1 - u][t]] += 1.0;
                    if t > 0 {
                        let prev = seq.macros[u][t - 1];
                        intra[prev][m] += 1.0;
                        if prev == m {
                            stays[m] += 1.0;
                        } else {
                            ends[prev] += 1.0;
                        }
                        post_trans[seq.posturals[u][t - 1]][seq.posturals[u][t]] += 1.0;
                    }
                }
            }
        }

        let normalize = |rows: &mut Vec<Vec<f64>>| {
            for row in rows {
                let total: f64 = row.iter().sum();
                for v in row {
                    *v /= total;
                }
            }
        };
        normalize(&mut intra);
        normalize(&mut inter);
        normalize(&mut post_given);
        normalize(&mut gest_given);
        normalize(&mut loc_given);
        normalize(&mut post_trans);
        let prior_total: f64 = prior.iter().sum();
        for p in &mut prior {
            *p /= prior_total;
        }
        let end_prob: Vec<f64> = ends
            .iter()
            .zip(&stays)
            .map(|(&e, &s)| (e / (e + s)).clamp(1e-6, 1.0 - 1e-6))
            .collect();

        let stats = HierarchicalStats {
            n_macro: nm,
            n_postural: self.n_postural,
            n_gestural: self.n_gestural,
            n_location: self.n_location,
            macro_prior: prior,
            intra_trans: intra,
            inter_cooc: inter,
            end_prob,
            postural_given_macro: post_given,
            gestural_given_macro: gest_given,
            location_given_macro: loc_given,
            postural_trans: post_trans,
        };
        stats.validate()?;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sequence where both users alternate long runs of activity 0 and 1,
    /// always together, activity 0 at location 0 with posture 0.
    fn synchronized_sequence(runs: usize, run_len: usize) -> LabeledSequence {
        let mut macros = Vec::new();
        for r in 0..runs {
            for _ in 0..run_len {
                macros.push(r % 2);
            }
        }
        let n = macros.len();
        let posturals: Vec<usize> = macros.clone();
        let locations: Vec<usize> = macros.clone();
        LabeledSequence {
            macros: [macros.clone(), macros],
            posturals: [posturals.clone(), posturals],
            gesturals: [vec![0; n], vec![0; n]],
            locations: [locations.clone(), locations],
        }
    }

    fn miner() -> ConstraintMiner {
        ConstraintMiner {
            laplace: 0.1,
            n_macro: 3,
            n_postural: 3,
            n_gestural: 2,
            n_location: 3,
        }
    }

    #[test]
    fn transition_statistics_reflect_runs() {
        let stats = miner().mine(&[synchronized_sequence(10, 20)]).unwrap();
        // Self-transitions dominate (runs of 20).
        assert!(stats.intra_trans[0][0] > 0.9, "{:?}", stats.intra_trans[0]);
        assert!(stats.intra_trans[1][1] > 0.9);
        // 0 goes to 1 much more than to 2 (2 never occurs).
        assert!(stats.intra_trans[0][1] > 5.0 * stats.intra_trans[0][2]);
    }

    #[test]
    fn inter_user_cooccurrence_captures_synchrony() {
        let stats = miner().mine(&[synchronized_sequence(10, 20)]).unwrap();
        // Users always share the activity.
        assert!(stats.inter_cooc[0][0] > 0.95, "{:?}", stats.inter_cooc[0]);
        assert!(stats.inter_cooc[1][1] > 0.95);
    }

    #[test]
    fn end_probability_matches_run_length() {
        let stats = miner().mine(&[synchronized_sequence(20, 10)]).unwrap();
        // Runs of 10 ticks → P(end) ≈ 1/10.
        assert!(
            (stats.end_prob[0] - 0.1).abs() < 0.05,
            "end prob {}",
            stats.end_prob[0]
        );
    }

    #[test]
    fn hierarchy_cpts_are_peaked_and_normalized() {
        let stats = miner().mine(&[synchronized_sequence(10, 20)]).unwrap();
        assert!(stats.validate().is_ok());
        // Activity 0 is always at posture 0 / location 0.
        assert!(stats.postural_given_macro[0][0] > 0.9);
        assert!(stats.location_given_macro[0][0] > 0.9);
        assert!(stats.location_given_macro[1][1] > 0.9);
    }

    #[test]
    fn absent_gesturals_yield_uniform_rows() {
        let mut seq = synchronized_sequence(5, 10);
        seq.gesturals = [vec![], vec![]];
        let stats = miner().mine(&[seq]).unwrap();
        for row in &stats.gestural_given_macro {
            for &v in row {
                assert!((v - 0.5).abs() < 1e-9, "uniform expected, got {row:?}");
            }
        }
    }

    #[test]
    fn insufficient_data_is_rejected() {
        let err = miner().mine(&[]);
        assert!(matches!(err, Err(ModelError::InsufficientData { .. })));
    }

    #[test]
    fn misaligned_channels_are_rejected() {
        let mut seq = synchronized_sequence(2, 5);
        seq.locations[1].pop();
        assert!(matches!(
            miner().mine(&[seq]),
            Err(ModelError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn priors_sum_to_one() {
        let stats = miner().mine(&[synchronized_sequence(4, 5)]).unwrap();
        assert!((stats.macro_prior.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
