//! Context atoms, items, and transactions for association-rule mining.
//!
//! §V-A of the paper: "we consider each context tuple \[to\] consist of 94
//! context elements (47 for current time t and 47 for the previous time
//! instant t − 1)". An [`Item`] is one context element *of one user at one
//! lag*; a [`Transaction`] is the set of items that held around one tick.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One atomic context predicate over runtime-sized vocabularies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Atom {
    /// Macro activity with the given id.
    Macro(u16),
    /// Postural micro state.
    Postural(u16),
    /// Oral-gestural micro state.
    Gestural(u16),
    /// Sub-location.
    Location(u16),
    /// Room (PIR-level location).
    Room(u16),
}

/// Sizes of the atom vocabularies plus the location→room map.
///
/// The CACE instantiation has 11 + 6 + 5 + 14 + 6 = 42 atoms per
/// user-instant; CASAS swaps in 15 macro activities.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomSpace {
    /// Number of macro activities.
    pub n_macro: usize,
    /// Number of postural states.
    pub n_postural: usize,
    /// Number of gestural states.
    pub n_gestural: usize,
    /// Number of sub-locations.
    pub n_location: usize,
    /// Number of rooms.
    pub n_room: usize,
    /// Room index of each sub-location.
    pub loc_to_room: Vec<usize>,
}

impl AtomSpace {
    /// The CACE vocabulary (Table III).
    pub fn cace() -> Self {
        use cace_model::{Gestural, MacroActivity, Postural, Room, SubLocation};
        Self {
            n_macro: MacroActivity::COUNT,
            n_postural: Postural::COUNT,
            n_gestural: Gestural::COUNT,
            n_location: SubLocation::COUNT,
            n_room: Room::COUNT,
            loc_to_room: SubLocation::ALL.iter().map(|l| l.room().index()).collect(),
        }
    }

    /// The CASAS vocabulary: 15 activities, same floor plan, no gestural
    /// stream (the gestural dimension collapses to the single "silent"
    /// placeholder and is never emitted into transactions).
    pub fn casas() -> Self {
        Self {
            n_macro: cace_model::CasasActivity::COUNT,
            ..Self::cace()
        }
    }

    /// Atoms per user-instant.
    pub fn n_atoms(&self) -> usize {
        self.n_macro + self.n_postural + self.n_gestural + self.n_location + self.n_room
    }

    /// Total distinct items: 2 users × 2 lags × atoms.
    pub fn n_items(&self) -> usize {
        4 * self.n_atoms()
    }

    /// Dense atom index.
    ///
    /// # Panics
    /// Panics if the atom's id exceeds its vocabulary.
    pub fn atom_index(&self, atom: Atom) -> usize {
        match atom {
            Atom::Macro(i) => {
                assert!((i as usize) < self.n_macro, "macro id out of range");
                i as usize
            }
            Atom::Postural(i) => {
                assert!((i as usize) < self.n_postural, "postural id out of range");
                self.n_macro + i as usize
            }
            Atom::Gestural(i) => {
                assert!((i as usize) < self.n_gestural, "gestural id out of range");
                self.n_macro + self.n_postural + i as usize
            }
            Atom::Location(i) => {
                assert!((i as usize) < self.n_location, "location id out of range");
                self.n_macro + self.n_postural + self.n_gestural + i as usize
            }
            Atom::Room(i) => {
                assert!((i as usize) < self.n_room, "room id out of range");
                self.n_macro + self.n_postural + self.n_gestural + self.n_location + i as usize
            }
        }
    }

    /// Inverse of [`atom_index`](Self::atom_index).
    pub fn atom_from_index(&self, mut index: usize) -> Option<Atom> {
        if index < self.n_macro {
            return Some(Atom::Macro(index as u16));
        }
        index -= self.n_macro;
        if index < self.n_postural {
            return Some(Atom::Postural(index as u16));
        }
        index -= self.n_postural;
        if index < self.n_gestural {
            return Some(Atom::Gestural(index as u16));
        }
        index -= self.n_gestural;
        if index < self.n_location {
            return Some(Atom::Location(index as u16));
        }
        index -= self.n_location;
        if index < self.n_room {
            return Some(Atom::Room(index as u16));
        }
        None
    }

    /// Encodes an item into its dense id.
    ///
    /// # Panics
    /// Panics if `user > 1` or `lag > 1` or the atom id is out of range.
    pub fn encode(&self, item: Item) -> ItemId {
        assert!(item.user < 2, "two-resident instantiation");
        assert!(item.lag < 2, "lags are t (0) and t-1 (1)");
        let slot = (item.user as usize * 2 + item.lag as usize) * self.n_atoms();
        ItemId((slot + self.atom_index(item.atom)) as u32)
    }

    /// Decodes a dense id back into an item.
    pub fn decode(&self, id: ItemId) -> Option<Item> {
        let raw = id.0 as usize;
        if raw >= self.n_items() {
            return None;
        }
        let slot = raw / self.n_atoms();
        let atom = self.atom_from_index(raw % self.n_atoms())?;
        Some(Item {
            user: (slot / 2) as u8,
            lag: (slot % 2) as u8,
            atom,
        })
    }

    /// Human-readable rendering of an item (Table IV style).
    pub fn render(&self, id: ItemId) -> String {
        match self.decode(id) {
            None => format!("item#{}", id.0),
            Some(item) => item.to_string(),
        }
    }
}

/// One context element of one user at one lag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Item {
    /// User chain (0 or 1).
    pub user: u8,
    /// Temporal lag: 0 = `t`, 1 = `t − 1`.
    pub lag: u8,
    /// The predicate.
    pub atom: Atom,
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lag = if self.lag == 0 { "t" } else { "t-1" };
        let atom = match self.atom {
            Atom::Macro(i) => format!("macro#{i}"),
            Atom::Postural(i) => format!("postural#{i}"),
            Atom::Gestural(i) => format!("gestural#{i}"),
            Atom::Location(i) => format!("SR{}", i + 1),
            Atom::Room(i) => format!("room#{i}"),
        };
        write!(f, "U{}({lag}): {atom}", self.user + 1)
    }
}

/// Dense item identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u32);

/// A sorted, deduplicated set of items that held around one tick.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    items: Vec<ItemId>,
}

impl Transaction {
    /// Builds a transaction (sorts and deduplicates).
    pub fn new(mut items: Vec<ItemId>) -> Self {
        items.sort_unstable();
        items.dedup();
        Self { items }
    }

    /// The sorted items.
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Membership test (binary search).
    pub fn contains(&self, id: ItemId) -> bool {
        self.items.binary_search(&id).is_ok()
    }

    /// Whether the transaction contains every item of `subset` (both must be
    /// sorted; `subset` typically is a candidate itemset).
    pub fn contains_all(&self, subset: &[ItemId]) -> bool {
        let mut pos = 0usize;
        for &needle in subset {
            match self.items[pos..].binary_search(&needle) {
                Ok(offset) => pos += offset + 1,
                Err(_) => return false,
            }
        }
        true
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the transaction is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Builds the pair of per-user atom lists for one tick of labeled context.
///
/// `macro_id`, `postural`, `gestural`, `location` are per-user dense ids;
/// gestural entries are omitted when `include_gestural` is false (CASAS).
#[allow(clippy::too_many_arguments)]
pub fn atoms_of_tick(
    space: &AtomSpace,
    user: u8,
    lag: u8,
    macro_id: usize,
    postural: usize,
    gestural: Option<usize>,
    location: usize,
) -> Vec<ItemId> {
    let mut out = vec![
        space.encode(Item {
            user,
            lag,
            atom: Atom::Macro(macro_id as u16),
        }),
        space.encode(Item {
            user,
            lag,
            atom: Atom::Postural(postural as u16),
        }),
        space.encode(Item {
            user,
            lag,
            atom: Atom::Location(location as u16),
        }),
        space.encode(Item {
            user,
            lag,
            atom: Atom::Room(space.loc_to_room[location] as u16),
        }),
    ];
    if let Some(g) = gestural {
        out.push(space.encode(Item {
            user,
            lag,
            atom: Atom::Gestural(g as u16),
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cace_space_counts() {
        let s = AtomSpace::cace();
        assert_eq!(s.n_atoms(), 42);
        assert_eq!(s.n_items(), 168);
        let c = AtomSpace::casas();
        assert_eq!(c.n_macro, 15);
        assert_eq!(c.n_atoms(), 46);
    }

    #[test]
    fn atom_index_roundtrip() {
        let s = AtomSpace::cace();
        for i in 0..s.n_atoms() {
            let atom = s.atom_from_index(i).expect("in range");
            assert_eq!(s.atom_index(atom), i);
        }
        assert_eq!(s.atom_from_index(s.n_atoms()), None);
    }

    #[test]
    fn item_encode_decode_roundtrip() {
        let s = AtomSpace::cace();
        for user in 0..2u8 {
            for lag in 0..2u8 {
                for i in 0..s.n_atoms() {
                    let atom = s.atom_from_index(i).unwrap();
                    let item = Item { user, lag, atom };
                    let id = s.encode(item);
                    assert_eq!(s.decode(id), Some(item));
                }
            }
        }
        assert_eq!(s.decode(ItemId(s.n_items() as u32)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_rejects_oversized_atom() {
        let s = AtomSpace::cace();
        s.encode(Item {
            user: 0,
            lag: 0,
            atom: Atom::Macro(99),
        });
    }

    #[test]
    fn transaction_sorted_dedup_contains() {
        let t = Transaction::new(vec![ItemId(5), ItemId(1), ItemId(5), ItemId(3)]);
        assert_eq!(t.items(), &[ItemId(1), ItemId(3), ItemId(5)]);
        assert!(t.contains(ItemId(3)));
        assert!(!t.contains(ItemId(2)));
        assert!(t.contains_all(&[ItemId(1), ItemId(5)]));
        assert!(!t.contains_all(&[ItemId(1), ItemId(2)]));
        assert!(t.contains_all(&[]));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn atoms_of_tick_builds_room_atom() {
        let s = AtomSpace::cace();
        // Location 9 = SR10 kitchen; its room index must appear.
        let atoms = atoms_of_tick(&s, 0, 0, 8, 1, Some(0), 9);
        assert_eq!(atoms.len(), 5);
        let decoded: Vec<Item> = atoms.iter().map(|&a| s.decode(a).unwrap()).collect();
        let kitchen_room = s.loc_to_room[9] as u16;
        assert!(decoded
            .iter()
            .any(|i| matches!(i.atom, Atom::Room(r) if r == kitchen_room)));
        // Without gestural, 4 atoms.
        assert_eq!(atoms_of_tick(&s, 1, 1, 0, 0, None, 0).len(), 4);
    }

    #[test]
    fn render_is_table_iv_style() {
        let s = AtomSpace::cace();
        let id = s.encode(Item {
            user: 0,
            lag: 0,
            atom: Atom::Location(8),
        });
        assert_eq!(s.render(id), "U1(t): SR9");
        let id2 = s.encode(Item {
            user: 1,
            lag: 1,
            atom: Atom::Macro(2),
        });
        assert_eq!(s.render(id2), "U2(t-1): macro#2");
    }
}
