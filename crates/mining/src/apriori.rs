//! Apriori frequent-itemset mining and association-rule generation.
//!
//! §V-A of the paper: "Apriori algorithm is used to identify such rules",
//! taking `minSup` and `minConf` parameters, with `minConf = 99 %` and
//! `minSup = 4 %` chosen to "strike \[a\] good balance between tolerating
//! occasional inconsistencies and highlighting the viable rules".

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::item::{AtomSpace, ItemId, Transaction};
use crate::rules::{Rule, RuleSet};

/// Mining thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AprioriConfig {
    /// Minimum support (fraction of transactions).
    pub min_support: f64,
    /// Minimum confidence for emitted rules.
    pub min_confidence: f64,
    /// Largest itemset size explored (antecedent + consequent).
    pub max_itemset: usize,
}

impl AprioriConfig {
    /// The paper's thresholds: minSup = 4 %, minConf = 99 %, itemsets up to
    /// size 4 (three antecedent atoms plus the consequent, as in Table IV).
    pub fn paper_default() -> Self {
        Self {
            min_support: 0.04,
            min_confidence: 0.99,
            max_itemset: 4,
        }
    }
}

impl Default for AprioriConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A frequent itemset with its support.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequentItemset {
    /// Sorted items.
    pub items: Vec<ItemId>,
    /// Fraction of transactions containing the itemset.
    pub support: f64,
}

/// Mines all frequent itemsets up to `config.max_itemset`.
///
/// Returns itemsets grouped by size (index 0 = singletons).
pub fn mine_frequent_itemsets(
    transactions: &[Transaction],
    config: &AprioriConfig,
) -> Vec<Vec<FrequentItemset>> {
    if transactions.is_empty() {
        return Vec::new();
    }
    let n = transactions.len() as f64;
    let min_count = (config.min_support * n).ceil().max(1.0) as usize;

    // L1.
    let mut counts: HashMap<ItemId, usize> = HashMap::new();
    for t in transactions {
        for &i in t.items() {
            *counts.entry(i).or_insert(0) += 1;
        }
    }
    let mut level: Vec<Vec<ItemId>> = counts
        .iter()
        .filter(|&(_, &c)| c >= min_count)
        .map(|(&i, _)| vec![i])
        .collect();
    level.sort();
    let mut all_levels: Vec<Vec<FrequentItemset>> = Vec::new();
    all_levels.push(
        level
            .iter()
            .map(|set| FrequentItemset {
                items: set.clone(),
                support: counts[&set[0]] as f64 / n,
            })
            .collect(),
    );

    let mut k = 2usize;
    while k <= config.max_itemset && !level.is_empty() {
        // Candidate generation: join sets sharing the first k−2 items.
        let mut candidates: Vec<Vec<ItemId>> = Vec::new();
        for i in 0..level.len() {
            for j in (i + 1)..level.len() {
                let (a, b) = (&level[i], &level[j]);
                if a[..k - 2] != b[..k - 2] {
                    break; // sorted: once prefixes diverge, later j's diverge too
                }
                let mut cand = a.clone();
                cand.push(b[k - 2]);
                // Apriori prune: all (k−1)-subsets must be frequent.
                let all_frequent = (0..cand.len()).all(|skip| {
                    let sub: Vec<ItemId> = cand
                        .iter()
                        .enumerate()
                        .filter(|&(idx, _)| idx != skip)
                        .map(|(_, &v)| v)
                        .collect();
                    level.binary_search(&sub).is_ok()
                });
                if all_frequent {
                    candidates.push(cand);
                }
            }
        }

        // Support counting.
        let mut freq: Vec<FrequentItemset> = Vec::new();
        let mut next_level: Vec<Vec<ItemId>> = Vec::new();
        for cand in candidates {
            let count = transactions
                .iter()
                .filter(|t| t.contains_all(&cand))
                .count();
            if count >= min_count {
                freq.push(FrequentItemset {
                    items: cand.clone(),
                    support: count as f64 / n,
                });
                next_level.push(cand);
            }
        }
        next_level.sort();
        level = next_level;
        all_levels.push(freq);
        k += 1;
    }
    all_levels
}

/// Mines association rules `antecedent ⇒ consequent` (single consequent,
/// matching the paper's `⟨c1, …, cn ⇒ R⟩` form), then drops redundant rules
/// — a rule is redundant when a strictly more general rule (subset
/// antecedent, same consequent) reaches at least its confidence. This is the
/// paper's "redundant (e.g., transitive) rules were subsequently merged".
pub fn mine_rules(
    transactions: &[Transaction],
    space: &AtomSpace,
    config: &AprioriConfig,
) -> RuleSet {
    let levels = mine_frequent_itemsets(transactions, config);
    if levels.is_empty() {
        return RuleSet::new(space.clone(), Vec::new());
    }
    // Support lookup across all levels.
    let mut support: HashMap<Vec<ItemId>, f64> = HashMap::new();
    for level in &levels {
        for set in level {
            support.insert(set.items.clone(), set.support);
        }
    }

    let mut rules: Vec<Rule> = Vec::new();
    for level in levels.iter().skip(1) {
        for set in level {
            for (pos, &consequent) in set.items.iter().enumerate() {
                let antecedent: Vec<ItemId> = set
                    .items
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != pos)
                    .map(|(_, &v)| v)
                    .collect();
                let Some(&ant_support) = support.get(&antecedent) else {
                    continue;
                };
                let confidence = set.support / ant_support;
                if confidence >= config.min_confidence {
                    rules.push(Rule {
                        antecedent,
                        consequent,
                        support: set.support,
                        confidence: confidence.min(1.0),
                    });
                }
            }
        }
    }

    // Redundancy filter.
    rules.sort_by_key(|r| r.antecedent.len());
    let mut kept: Vec<Rule> = Vec::new();
    'outer: for rule in rules {
        for general in &kept {
            if general.consequent == rule.consequent
                && general.confidence >= rule.confidence - 1e-12
                && is_subset(&general.antecedent, &rule.antecedent)
            {
                continue 'outer;
            }
        }
        kept.push(rule);
    }
    RuleSet::new(space.clone(), kept)
}

fn is_subset(small: &[ItemId], big: &[ItemId]) -> bool {
    small.iter().all(|i| big.binary_search(i).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{Atom, Item};

    fn space() -> AtomSpace {
        AtomSpace::cace()
    }

    fn id(space: &AtomSpace, user: u8, atom: Atom) -> ItemId {
        space.encode(Item { user, lag: 0, atom })
    }

    /// Corpus where cycling ∧ SR1 always implies exercising (macro 0), plus
    /// background noise transactions.
    fn exercise_corpus(space: &AtomSpace) -> Vec<Transaction> {
        let cycling = id(space, 0, Atom::Postural(3));
        let sr1 = id(space, 0, Atom::Location(0));
        let exercising = id(space, 0, Atom::Macro(0));
        let sitting = id(space, 0, Atom::Postural(2));
        let couch = id(space, 0, Atom::Location(1));
        let tv = id(space, 0, Atom::Macro(3));
        let mut corpus = Vec::new();
        for _ in 0..30 {
            corpus.push(Transaction::new(vec![cycling, sr1, exercising]));
        }
        for _ in 0..70 {
            corpus.push(Transaction::new(vec![sitting, couch, tv]));
        }
        corpus
    }

    #[test]
    fn frequent_itemsets_respect_support() {
        let s = space();
        let corpus = exercise_corpus(&s);
        let levels = mine_frequent_itemsets(&corpus, &AprioriConfig::paper_default());
        // Singletons: all six items are ≥ 4 % frequent.
        assert_eq!(levels[0].len(), 6);
        // The 3-itemsets {cycling,SR1,exercising} and {sitting,couch,TV}.
        assert_eq!(levels[2].len(), 2);
        for set in &levels[2] {
            assert!(set.support >= 0.04);
        }
    }

    #[test]
    fn support_is_antitone_in_itemset_size() {
        let s = space();
        let corpus = exercise_corpus(&s);
        let levels = mine_frequent_itemsets(&corpus, &AprioriConfig::paper_default());
        let max_by_level: Vec<f64> = levels
            .iter()
            .filter(|l| !l.is_empty())
            .map(|l| l.iter().map(|f| f.support).fold(0.0, f64::max))
            .collect();
        for w in max_by_level.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "support must not grow with size");
        }
    }

    #[test]
    fn rules_capture_the_correlation() {
        let s = space();
        let corpus = exercise_corpus(&s);
        let rules = mine_rules(&corpus, &s, &AprioriConfig::paper_default());
        let cycling = id(&s, 0, Atom::Postural(3));
        let exercising = id(&s, 0, Atom::Macro(0));
        // Some rule must conclude "exercising" from cycling (alone or with
        // SR1).
        let found = rules
            .rules()
            .iter()
            .any(|r| r.consequent == exercising && r.antecedent.contains(&cycling));
        assert!(found, "missing cycling ⇒ exercising rule:\n{rules}");
        for r in rules.rules() {
            assert!(r.confidence >= 0.99);
            assert!(r.support >= 0.04);
        }
    }

    #[test]
    fn redundant_rules_are_merged() {
        let s = space();
        let corpus = exercise_corpus(&s);
        let rules = mine_rules(&corpus, &s, &AprioriConfig::paper_default());
        let exercising = id(&s, 0, Atom::Macro(0));
        let cycling = id(&s, 0, Atom::Postural(3));
        // Since {cycling} ⇒ exercising already has confidence 1, the longer
        // {cycling, SR1} ⇒ exercising must have been dropped.
        let longer = rules.rules().iter().any(|r| {
            r.consequent == exercising && r.antecedent.len() == 2 && r.antecedent.contains(&cycling)
        });
        assert!(!longer, "redundant specialization survived:\n{rules}");
    }

    #[test]
    fn low_confidence_rules_are_dropped() {
        let s = space();
        let a = id(&s, 0, Atom::Postural(2));
        let b = id(&s, 0, Atom::Macro(3));
        let c = id(&s, 0, Atom::Macro(5));
        // a co-occurs with b 60 % and with c 40 % — below 99 % confidence.
        let mut corpus = Vec::new();
        for _ in 0..60 {
            corpus.push(Transaction::new(vec![a, b]));
        }
        for _ in 0..40 {
            corpus.push(Transaction::new(vec![a, c]));
        }
        let rules = mine_rules(&corpus, &s, &AprioriConfig::paper_default());
        assert!(
            rules
                .rules()
                .iter()
                .all(|r| !r.antecedent.contains(&a) || r.consequent != b),
            "60 % confidence rule must not survive minConf 99 %"
        );
    }

    #[test]
    fn empty_corpus_yields_no_rules() {
        let s = space();
        assert!(mine_rules(&[], &s, &AprioriConfig::paper_default())
            .rules()
            .is_empty());
        assert!(mine_frequent_itemsets(&[], &AprioriConfig::paper_default()).is_empty());
    }

    #[test]
    fn support_counts_match_manual_computation() {
        let s = space();
        let a = id(&s, 0, Atom::Postural(0));
        let b = id(&s, 1, Atom::Postural(0));
        let corpus = vec![
            Transaction::new(vec![a, b]),
            Transaction::new(vec![a]),
            Transaction::new(vec![b]),
            Transaction::new(vec![a, b]),
        ];
        let cfg = AprioriConfig {
            min_support: 0.5,
            min_confidence: 0.5,
            max_itemset: 2,
        };
        let levels = mine_frequent_itemsets(&corpus, &cfg);
        let pair = levels[1]
            .iter()
            .find(|f| {
                f.items == {
                    let mut v = vec![a, b];
                    v.sort_unstable();
                    v
                }
            })
            .expect("pair {a,b} is 50 % frequent");
        assert!((pair.support - 0.5).abs() < 1e-12);
    }
}
