//! The rule language: positive association rules and negative exclusivity
//! rules, with Table IV-style rendering.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::item::{AtomSpace, ItemId};

/// A positive association rule `⟨c1, …, cn ⇒ R⟩` with its mining statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Sorted antecedent items.
    pub antecedent: Vec<ItemId>,
    /// The single consequent item.
    pub consequent: ItemId,
    /// Fraction of transactions containing antecedent ∪ {consequent}.
    pub support: f64,
    /// `support(antecedent ∪ {consequent}) / support(antecedent)`.
    pub confidence: f64,
}

impl Rule {
    /// Whether every antecedent item is in the (sorted) evidence set.
    pub fn fires_on(&self, evidence: &[ItemId]) -> bool {
        self.antecedent
            .iter()
            .all(|i| evidence.binary_search(i).is_ok())
    }
}

/// A negative exclusivity rule: `a(t) ⇒ ¬b(t)` — the two items never
/// co-occur although both are individually frequent. Captures the paper's
/// Proposition 2 examples (`U1: SR9 ⇒ U2: ¬SR9`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NegativeRule {
    /// The trigger item.
    pub if_item: ItemId,
    /// The item that must then be absent.
    pub then_not: ItemId,
    /// Support of the trigger.
    pub support: f64,
}

/// A set of mined rules plus the atom space for rendering/decoding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    space: AtomSpace,
    rules: Vec<Rule>,
    negatives: Vec<NegativeRule>,
}

impl RuleSet {
    /// Wraps a list of rules.
    pub fn new(space: AtomSpace, rules: Vec<Rule>) -> Self {
        Self {
            space,
            rules,
            negatives: Vec::new(),
        }
    }

    /// The positive rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The negative exclusivity rules.
    pub fn negatives(&self) -> &[NegativeRule] {
        &self.negatives
    }

    /// The atom space.
    pub fn space(&self) -> &AtomSpace {
        &self.space
    }

    /// Total rule count (positive + negative).
    pub fn len(&self) -> usize {
        self.rules.len() + self.negatives.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.negatives.is_empty()
    }

    /// Adds positive rules (deduplicating exact matches).
    pub fn extend_rules<I: IntoIterator<Item = Rule>>(&mut self, rules: I) {
        for rule in rules {
            if !self
                .rules
                .iter()
                .any(|r| r.antecedent == rule.antecedent && r.consequent == rule.consequent)
            {
                self.rules.push(rule);
            }
        }
    }

    /// Replaces the negative rules.
    pub fn set_negatives(&mut self, negatives: Vec<NegativeRule>) {
        self.negatives = negatives;
    }

    /// Keeps only the positive rules satisfying the predicate.
    pub fn retain_rules<F: FnMut(&Rule) -> bool>(&mut self, keep: F) {
        self.rules.retain(keep);
    }

    /// The strongest rules by (confidence, support), for Table IV printing.
    pub fn top(&self, n: usize) -> Vec<&Rule> {
        let mut sorted: Vec<&Rule> = self.rules.iter().collect();
        sorted.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .expect("finite confidences")
                .then(b.support.partial_cmp(&a.support).expect("finite supports"))
        });
        sorted.truncate(n);
        sorted
    }

    /// Renders one rule in Table IV style.
    pub fn render_rule(&self, rule: &Rule) -> String {
        let ants: Vec<String> = rule
            .antecedent
            .iter()
            .map(|&i| self.space.render(i))
            .collect();
        format!(
            "{} ⇒ {}; ({:.2})",
            ants.join(" ∧ "),
            self.space.render(rule.consequent),
            rule.confidence
        )
    }

    /// Renders one negative rule in Table IV style.
    pub fn render_negative(&self, rule: &NegativeRule) -> String {
        format!(
            "{} ⇒ ¬{}; (1)",
            self.space.render(rule.if_item),
            self.space.render(rule.then_not)
        )
    }
}

impl fmt::Display for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{}", self.render_rule(rule))?;
        }
        for neg in &self.negatives {
            writeln!(f, "{}", self.render_negative(neg))?;
        }
        Ok(())
    }
}

/// Mines negative exclusivity rules: same-lag item pairs that are each
/// individually frequent (support ≥ `min_item_support`) yet never co-occur.
///
/// Two families are produced, both capturing the paper's Proposition 2
/// semantics:
///
/// * **Inter-user spatial exclusivities** — the same location atom held by
///   both users (`U1: SR9 ⇒ ¬U2: SR9`).
/// * **Intra-user micro→macro exclusions** — an observed location, room, or
///   postural state of a user that never coincides with one of that user's
///   macro activities (`U1: bed ⇒ ¬U1: cooking`). These are what lets the
///   correlation miner collapse the *hidden* macro dimension from observed
///   evidence, the main source of the paper's state-space reduction.
pub fn mine_negative_rules(
    transactions: &[crate::item::Transaction],
    space: &AtomSpace,
    min_item_support: f64,
) -> Vec<NegativeRule> {
    use crate::item::Atom;
    if transactions.is_empty() {
        return Vec::new();
    }
    let n = transactions.len() as f64;

    // Candidate items: current-time location/room/postural/macro atoms.
    let mut candidates: Vec<(ItemId, usize)> = Vec::new();
    for raw in 0..space.n_items() as u32 {
        let id = ItemId(raw);
        let Some(item) = space.decode(id) else {
            continue;
        };
        if item.lag != 0 {
            continue;
        }
        if !matches!(
            item.atom,
            Atom::Location(_) | Atom::Room(_) | Atom::Postural(_) | Atom::Macro(_)
        ) {
            continue;
        }
        let count = transactions.iter().filter(|t| t.contains(id)).count();
        if count as f64 / n >= min_item_support {
            candidates.push((id, count));
        }
    }

    let mut out = Vec::new();
    for &(a, count_a) in candidates.iter() {
        for &(b, count_b) in candidates.iter() {
            if a == b {
                continue;
            }
            let (ia, ib) = (
                space.decode(a).expect("candidate decodes"),
                space.decode(b).expect("candidate decodes"),
            );
            let eligible = if ia.user != ib.user {
                // Inter-user: same location atom for both users, emitted
                // once per ordered pair (a < b avoids duplicates; the
                // pruning engine applies them symmetrically anyway).
                a < b && ia.atom == ib.atom && matches!(ia.atom, Atom::Location(_) | Atom::Room(_))
            } else {
                // Intra-user: observed micro context excludes a hidden
                // macro activity.
                matches!(
                    ia.atom,
                    Atom::Location(_) | Atom::Room(_) | Atom::Postural(_)
                ) && matches!(ib.atom, Atom::Macro(_))
            };
            if !eligible {
                continue;
            }
            let joint = transactions
                .iter()
                .filter(|t| t.contains(a) && t.contains(b))
                .count();
            if joint == 0 {
                out.push(NegativeRule {
                    if_item: a,
                    then_not: b,
                    support: count_a.min(count_b) as f64 / n,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{Atom, Item, Transaction};

    fn space() -> AtomSpace {
        AtomSpace::cace()
    }

    fn loc(space: &AtomSpace, user: u8, l: u16) -> ItemId {
        space.encode(Item {
            user,
            lag: 0,
            atom: Atom::Location(l),
        })
    }

    #[test]
    fn fires_on_sorted_evidence() {
        let s = space();
        let a = loc(&s, 0, 0);
        let b = loc(&s, 0, 1);
        let c = loc(&s, 1, 2);
        let mut ants = vec![a, b];
        ants.sort_unstable();
        let rule = Rule {
            antecedent: ants,
            consequent: c,
            support: 0.1,
            confidence: 1.0,
        };
        let mut evidence = vec![b, a, c];
        evidence.sort_unstable();
        assert!(rule.fires_on(&evidence));
        let mut partial = vec![a];
        partial.sort_unstable();
        assert!(!rule.fires_on(&partial));
    }

    #[test]
    fn negative_mining_finds_bathroom_exclusivity() {
        let s = space();
        let u1_bath = loc(&s, 0, 8); // SR9
        let u2_bath = loc(&s, 1, 8);
        let u1_kitchen = loc(&s, 0, 9);
        let u2_kitchen = loc(&s, 1, 9);
        let mut corpus = Vec::new();
        // Bathroom is used often but never by both.
        for i in 0..100 {
            if i % 3 == 0 {
                corpus.push(Transaction::new(vec![u1_bath, u2_kitchen]));
            } else if i % 3 == 1 {
                corpus.push(Transaction::new(vec![u2_bath, u1_kitchen]));
            } else {
                corpus.push(Transaction::new(vec![u1_kitchen, u2_kitchen]));
            }
        }
        let negs = mine_negative_rules(&corpus, &s, 0.04);
        let found = negs.iter().any(|r| {
            (r.if_item == u1_bath && r.then_not == u2_bath)
                || (r.if_item == u2_bath && r.then_not == u1_bath)
        });
        assert!(found, "bathroom exclusivity not mined: {negs:?}");
        // The kitchen IS shared, so no kitchen exclusivity.
        let kitchen_rule = negs
            .iter()
            .any(|r| r.if_item == u1_kitchen && r.then_not == u2_kitchen);
        assert!(!kitchen_rule, "kitchen is shared; no exclusivity expected");
    }

    #[test]
    fn negative_mining_requires_frequency() {
        let s = space();
        let u1_porch = loc(&s, 0, 10);
        let u2_porch = loc(&s, 1, 10);
        let u1_kitchen = loc(&s, 0, 9);
        let u2_kitchen = loc(&s, 1, 9);
        // Porch appears once each (1 % support): too rare to conclude.
        let mut corpus = vec![
            Transaction::new(vec![u1_porch, u2_kitchen]),
            Transaction::new(vec![u2_porch, u1_kitchen]),
        ];
        for _ in 0..98 {
            corpus.push(Transaction::new(vec![u1_kitchen, u2_kitchen]));
        }
        let negs = mine_negative_rules(&corpus, &s, 0.04);
        assert!(
            !negs
                .iter()
                .any(|r| r.if_item == u1_porch || r.if_item == u2_porch),
            "rare items must not generate exclusivities"
        );
    }

    #[test]
    fn rendering_matches_table_iv_style() {
        let s = space();
        let cycling = s.encode(Item {
            user: 0,
            lag: 0,
            atom: Atom::Postural(3),
        });
        let sr1 = loc(&s, 0, 0);
        let exercising = s.encode(Item {
            user: 0,
            lag: 0,
            atom: Atom::Macro(0),
        });
        let mut ants = vec![cycling, sr1];
        ants.sort_unstable();
        let set = RuleSet::new(
            s,
            vec![Rule {
                antecedent: ants,
                consequent: exercising,
                support: 0.1,
                confidence: 1.0,
            }],
        );
        let rendered = set.to_string();
        assert!(rendered.contains("SR1"), "{rendered}");
        assert!(rendered.contains("⇒"), "{rendered}");
        assert!(rendered.contains("(1.00)"), "{rendered}");
    }

    #[test]
    fn top_orders_by_confidence_then_support() {
        let s = space();
        let a = loc(&s, 0, 0);
        let b = loc(&s, 0, 1);
        let c = loc(&s, 1, 2);
        let mk = |sup: f64, conf: f64| Rule {
            antecedent: vec![a],
            consequent: if sup > 0.15 { b } else { c },
            support: sup,
            confidence: conf,
        };
        let set = RuleSet::new(s, vec![mk(0.1, 0.99), mk(0.2, 1.0), mk(0.1, 1.0)]);
        let top = set.top(2);
        assert_eq!(top.len(), 2);
        assert!(top[0].support >= top[1].support || top[0].confidence > top[1].confidence);
        assert!((top[0].confidence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extend_rules_deduplicates() {
        let s = space();
        let a = loc(&s, 0, 0);
        let b = loc(&s, 0, 1);
        let rule = Rule {
            antecedent: vec![a],
            consequent: b,
            support: 0.5,
            confidence: 1.0,
        };
        let mut set = RuleSet::new(s, vec![rule.clone()]);
        set.extend_rules(vec![rule.clone(), rule]);
        assert_eq!(set.rules().len(), 1);
        assert_eq!(set.len(), 1);
    }
}
