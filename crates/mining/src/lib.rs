//! # cace-mining
//!
//! The Constraints-And-Correlations mining engine that gives CACE its name.
//!
//! Four pieces (paper §IV–V):
//!
//! * [`apriori`] — classic Apriori frequent-itemset mining and association-
//!   rule generation with `minSup = 4 %` and `minConf = 99 %` over context
//!   transactions spanning both users at `t` and `t − 1`.
//! * [`rules`] — the rule language (Table IV semantics) over a runtime-sized
//!   [`AtomSpace`], so the same machinery serves the 11-activity CACE
//!   vocabulary and the 15-activity CASAS vocabulary.
//! * [`correlation`] — the deterministic pruning engine: positive rules
//!   (`cycling ∧ SR1 ⇒ exercising`) restrict candidate sets; negative
//!   exclusivity rules (`U1:SR9 ⇒ ¬U2:SR9`), mined as never-co-occurring
//!   frequent item pairs, cut joint states.
//! * [`constraint`] — the probabilistic constraint miner: intra-/inter-user
//!   transition and co-occurrence statistics, durations, and hierarchical
//!   micro-given-macro CPTs that parameterize the loosely-coupled HDBN.
//!
//! ```
//! use cace_mining::{AtomSpace, Transaction, AprioriConfig, mine_rules};
//! use cace_mining::item::{Atom, Item};
//!
//! let space = AtomSpace::cace();
//! // Toy corpus: cycling at SR1 always means exercising.
//! let mut corpus = Vec::new();
//! for _ in 0..100 {
//!     let items = vec![
//!         space.encode(Item { user: 0, lag: 0, atom: Atom::Postural(3) }),
//!         space.encode(Item { user: 0, lag: 0, atom: Atom::Location(0) }),
//!         space.encode(Item { user: 0, lag: 0, atom: Atom::Macro(0) }),
//!     ];
//!     corpus.push(Transaction::new(items));
//! }
//! let rules = mine_rules(&corpus, &space, &AprioriConfig::paper_default());
//! assert!(!rules.rules().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod constraint;
pub mod correlation;
pub mod initial;
pub mod item;
pub mod rules;

pub use apriori::{mine_frequent_itemsets, mine_rules, AprioriConfig};
pub use constraint::{ConstraintMiner, HierarchicalStats};
pub use correlation::{CandidateTick, PruningEngine, UserCandidates};
pub use initial::initial_cace_rules;
pub use item::{Atom, AtomSpace, Item, ItemId, Transaction};
pub use rules::{NegativeRule, Rule, RuleSet};
