//! Streaming filters: single-pole high-pass / low-pass and moving average.
//!
//! The paper applies a "high-band pass filter" to both IMUs before computing
//! acceleration trajectories (§VII-D); the high-pass removes the gravity and
//! orientation-drift components so only motion dynamics remain.

use crate::Vec3;

/// First-order IIR low-pass filter `y[n] = y[n−1] + α (x[n] − y[n−1])`.
#[derive(Debug, Clone)]
pub struct LowPassFilter {
    alpha: f64,
    state: Option<f64>,
}

impl LowPassFilter {
    /// Creates a low-pass with cutoff `fc` Hz at sampling rate `fs` Hz.
    ///
    /// # Panics
    /// Panics if `fc <= 0` or `fs <= 0`.
    pub fn new(fc: f64, fs: f64) -> Self {
        assert!(
            fc > 0.0 && fs > 0.0,
            "cutoff and sample rate must be positive"
        );
        let rc = 1.0 / (2.0 * std::f64::consts::PI * fc);
        let dt = 1.0 / fs;
        Self {
            alpha: dt / (rc + dt),
            state: None,
        }
    }

    /// Filters one sample.
    pub fn apply(&mut self, x: f64) -> f64 {
        let y = match self.state {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.state = Some(y);
        y
    }

    /// Resets the filter state.
    pub fn reset(&mut self) {
        self.state = None;
    }
}

/// First-order IIR high-pass filter (complement of [`LowPassFilter`]):
/// `y[n] = α (y[n−1] + x[n] − x[n−1])`.
#[derive(Debug, Clone)]
pub struct HighPassFilter {
    alpha: f64,
    prev_x: Option<f64>,
    prev_y: f64,
}

impl HighPassFilter {
    /// Creates a high-pass with cutoff `fc` Hz at sampling rate `fs` Hz.
    ///
    /// # Panics
    /// Panics if `fc <= 0` or `fs <= 0`.
    pub fn new(fc: f64, fs: f64) -> Self {
        assert!(
            fc > 0.0 && fs > 0.0,
            "cutoff and sample rate must be positive"
        );
        let rc = 1.0 / (2.0 * std::f64::consts::PI * fc);
        let dt = 1.0 / fs;
        Self {
            alpha: rc / (rc + dt),
            prev_x: None,
            prev_y: 0.0,
        }
    }

    /// Filters one sample.
    pub fn apply(&mut self, x: f64) -> f64 {
        let y = match self.prev_x {
            None => 0.0, // a constant signal carries no pass-band content
            Some(px) => self.alpha * (self.prev_y + x - px),
        };
        self.prev_x = Some(x);
        self.prev_y = y;
        y
    }

    /// Resets the filter state.
    pub fn reset(&mut self) {
        self.prev_x = None;
        self.prev_y = 0.0;
    }
}

/// Component-wise 3-axis high-pass, used for gravity removal on IMU streams.
#[derive(Debug, Clone)]
pub struct HighPassFilter3 {
    x: HighPassFilter,
    y: HighPassFilter,
    z: HighPassFilter,
}

impl HighPassFilter3 {
    /// Creates a 3-axis high-pass with cutoff `fc` Hz at rate `fs` Hz.
    pub fn new(fc: f64, fs: f64) -> Self {
        let f = HighPassFilter::new(fc, fs);
        Self {
            x: f.clone(),
            y: f.clone(),
            z: f,
        }
    }

    /// Filters one 3-axis sample.
    pub fn apply(&mut self, v: Vec3) -> Vec3 {
        Vec3::new(self.x.apply(v.x), self.y.apply(v.y), self.z.apply(v.z))
    }
}

/// Simple moving average over a fixed window.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: usize,
    buf: Vec<f64>,
    next: usize,
    filled: usize,
    sum: f64,
}

impl MovingAverage {
    /// Creates a moving average of the given window length.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be nonzero");
        Self {
            window,
            buf: vec![0.0; window],
            next: 0,
            filled: 0,
            sum: 0.0,
        }
    }

    /// Pushes a sample and returns the current mean of the window.
    pub fn apply(&mut self, x: f64) -> f64 {
        if self.filled == self.window {
            self.sum -= self.buf[self.next];
        } else {
            self.filled += 1;
        }
        self.buf[self.next] = x;
        self.sum += x;
        self.next = (self.next + 1) % self.window;
        self.sum / self.filled as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_pass_tracks_dc() {
        let mut lp = LowPassFilter::new(5.0, 50.0);
        let mut y = 0.0;
        for _ in 0..500 {
            y = lp.apply(2.5);
        }
        assert!(
            (y - 2.5).abs() < 1e-6,
            "low-pass should converge to DC level, got {y}"
        );
    }

    #[test]
    fn high_pass_rejects_dc() {
        let mut hp = HighPassFilter::new(0.5, 50.0);
        let mut y = f64::MAX;
        for _ in 0..2000 {
            y = hp.apply(9.81); // gravity-like constant
        }
        assert!(y.abs() < 1e-3, "high-pass should kill constants, got {y}");
    }

    #[test]
    fn high_pass_passes_fast_oscillation() {
        let fs = 50.0;
        let mut hp = HighPassFilter::new(0.5, fs);
        let mut max_out: f64 = 0.0;
        for n in 0..500 {
            let t = n as f64 / fs;
            let x = (2.0 * std::f64::consts::PI * 10.0 * t).sin(); // 10 Hz
            max_out = max_out.max(hp.apply(x).abs());
        }
        assert!(
            max_out > 0.8,
            "10 Hz should pass nearly unattenuated, got {max_out}"
        );
    }

    #[test]
    fn three_axis_filter_removes_gravity() {
        let mut hp = HighPassFilter3::new(0.5, 50.0);
        let gravity = Vec3::new(0.0, 0.0, 9.81);
        let mut out = Vec3::ZERO;
        for _ in 0..2000 {
            out = hp.apply(gravity);
        }
        assert!(out.norm() < 1e-3);
    }

    #[test]
    fn moving_average_of_constant_is_constant() {
        let mut ma = MovingAverage::new(4);
        for _ in 0..10 {
            assert!((ma.apply(3.0) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn moving_average_window_behavior() {
        let mut ma = MovingAverage::new(2);
        assert_eq!(ma.apply(1.0), 1.0);
        assert_eq!(ma.apply(3.0), 2.0);
        assert_eq!(ma.apply(5.0), 4.0); // window now [3, 5]
    }

    #[test]
    fn reset_clears_state() {
        let mut hp = HighPassFilter::new(1.0, 50.0);
        hp.apply(1.0);
        hp.apply(2.0);
        hp.reset();
        assert_eq!(hp.apply(42.0), 0.0); // first sample after reset
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cutoff_rejected() {
        LowPassFilter::new(0.0, 50.0);
    }
}
