//! Frame segmentation: fixed-length windows with configurable overlap.
//!
//! The paper segments acceleration trajectories into 1.5 s frames with 50 %
//! overlap ("best segment achieved from trial and error") before feature
//! extraction.

/// An iterator-producing view of a signal as overlapping frames.
#[derive(Debug, Clone)]
pub struct FrameWindows {
    frame_len: usize,
    hop: usize,
}

impl FrameWindows {
    /// Creates a segmentation with `frame_len` samples per frame and a hop of
    /// `frame_len − overlap` samples.
    ///
    /// # Panics
    /// Panics if `frame_len == 0` or `overlap >= frame_len`.
    pub fn new(frame_len: usize, overlap: usize) -> Self {
        assert!(frame_len > 0, "frame length must be nonzero");
        assert!(
            overlap < frame_len,
            "overlap must be smaller than the frame"
        );
        Self {
            frame_len,
            hop: frame_len - overlap,
        }
    }

    /// The paper's default: 1.5 s frames with 50 % overlap at `fs` Hz.
    pub fn paper_default(fs: f64) -> Self {
        let frame_len = (1.5 * fs).round() as usize;
        Self::new(frame_len, frame_len / 2)
    }

    /// Samples per frame.
    pub const fn frame_len(&self) -> usize {
        self.frame_len
    }

    /// Samples between consecutive frame starts.
    pub const fn hop(&self) -> usize {
        self.hop
    }

    /// Number of complete frames available in a signal of length `n`.
    pub fn frame_count(&self, n: usize) -> usize {
        if n < self.frame_len {
            0
        } else {
            (n - self.frame_len) / self.hop + 1
        }
    }

    /// Iterates over complete frames of `signal`.
    pub fn iter<'a, T>(&self, signal: &'a [T]) -> impl Iterator<Item = &'a [T]> + 'a {
        let frame_len = self.frame_len;
        let hop = self.hop;
        (0..self.frame_count(signal.len()))
            .map(move |i| i * hop)
            .map(move |start| &signal[start..start + frame_len])
    }

    /// Start sample index of frame `i`.
    pub fn frame_start(&self, i: usize) -> usize {
        i * self.hop
    }

    /// Maps a sample index to the *last* frame whose window starts at or
    /// before it (`sample / hop`). Because the hop never exceeds the frame
    /// length, that frame always covers the sample; near the end of a finite
    /// signal it may be an incomplete frame that [`iter`](Self::iter) does
    /// not emit, so callers should clamp to `frame_count - 1`.
    pub fn frame_of_sample(&self, sample: usize) -> usize {
        sample / self.hop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_at_50hz() {
        let w = FrameWindows::paper_default(50.0);
        assert_eq!(w.frame_len(), 75);
        assert_eq!(w.hop(), 38); // 75 - 37 (75/2 = 37 integer division)
    }

    #[test]
    fn frame_counting() {
        let w = FrameWindows::new(4, 2);
        assert_eq!(w.frame_count(0), 0);
        assert_eq!(w.frame_count(3), 0);
        assert_eq!(w.frame_count(4), 1);
        assert_eq!(w.frame_count(6), 2);
        assert_eq!(w.frame_count(8), 3);
    }

    #[test]
    fn frames_have_right_content() {
        let signal: Vec<i32> = (0..8).collect();
        let w = FrameWindows::new(4, 2);
        let frames: Vec<&[i32]> = w.iter(&signal).collect();
        assert_eq!(
            frames,
            vec![&[0, 1, 2, 3][..], &[2, 3, 4, 5], &[4, 5, 6, 7]]
        );
    }

    #[test]
    fn no_overlap_partition() {
        let signal: Vec<i32> = (0..9).collect();
        let w = FrameWindows::new(3, 0);
        let frames: Vec<&[i32]> = w.iter(&signal).collect();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[2], &[6, 7, 8]);
    }

    #[test]
    fn frame_of_sample_contains_the_sample() {
        let w = FrameWindows::new(4, 2);
        assert_eq!(w.frame_of_sample(0), 0);
        assert_eq!(w.frame_of_sample(3), 1);
        assert_eq!(w.frame_of_sample(5), 2);
        // Consistency: the frame returned actually contains the sample.
        for s in 0..50 {
            let f = w.frame_of_sample(s);
            let start = w.frame_start(f);
            assert!((start..start + w.frame_len()).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn rejects_full_overlap() {
        FrameWindows::new(4, 4);
    }
}
