//! Descriptive statistics over signal frames.

/// A one-pass summary of a frame of samples.
///
/// Collects the statistical moments and extrema that make up most of the
/// paper's 32-feature frame vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Root mean square.
    pub rms: f64,
}

impl Summary {
    /// Summarizes a slice. Returns the default (all-zero) summary for an
    /// empty slice.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let variance = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let rms = (samples.iter().map(|x| x * x).sum::<f64>() / n).sqrt();
        Self {
            count: samples.len(),
            mean,
            variance,
            min,
            max,
            rms,
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Peak-to-peak range.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// Mean absolute deviation around the mean.
pub fn mean_abs_deviation(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    samples.iter().map(|x| (x - mean).abs()).sum::<f64>() / samples.len() as f64
}

/// Number of mean crossings (a periodicity cue).
pub fn mean_crossings(samples: &[f64]) -> usize {
    if samples.len() < 2 {
        return 0;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    samples
        .windows(2)
        .filter(|w| (w[0] - mean).signum() != (w[1] - mean).signum() && w[0] != w[1])
        .count()
}

/// Pearson correlation of two equal-length signals; `0.0` when either is
/// constant or the slices are empty.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson requires equal-length inputs");
    if a.is_empty() {
        return 0.0;
    }
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

/// Signal magnitude area of a 3-axis frame: `Σ(|x|+|y|+|z|) / n`.
pub fn signal_magnitude_area(x: &[f64], y: &[f64], z: &[f64]) -> f64 {
    let n = x.len().min(y.len()).min(z.len());
    if n == 0 {
        return 0.0;
    }
    (0..n)
        .map(|i| x[i].abs() + y[i].abs() + z[i].abs())
        .sum::<f64>()
        / n as f64
}

/// Sample skewness (0 for symmetric, empty, or constant signals).
pub fn skewness(samples: &[f64]) -> f64 {
    let s = Summary::of(samples);
    if s.count == 0 || s.variance == 0.0 {
        return 0.0;
    }
    let n = s.count as f64;
    let m3 = samples.iter().map(|x| (x - s.mean).powi(3)).sum::<f64>() / n;
    m3 / s.variance.powf(1.5)
}

/// Excess kurtosis (0 for a Gaussian; negative for flat distributions).
pub fn kurtosis(samples: &[f64]) -> f64 {
    let s = Summary::of(samples);
    if s.count == 0 || s.variance == 0.0 {
        return 0.0;
    }
    let n = s.count as f64;
    let m4 = samples.iter().map(|x| (x - s.mean).powi(4)).sum::<f64>() / n;
    m4 / (s.variance * s.variance) - 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.range() - 3.0).abs() < 1e-12);
        assert!((s.rms - (7.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_default() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn mad_and_crossings() {
        assert!((mean_abs_deviation(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        // A sawtooth around its mean crosses many times.
        let saw: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert_eq!(mean_crossings(&saw), 19);
        assert_eq!(mean_crossings(&[5.0; 10]), 0);
    }

    #[test]
    fn pearson_correlations() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[1.0; 4]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn pearson_length_mismatch() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn sma() {
        assert!(
            (signal_magnitude_area(&[1.0, -1.0], &[2.0, -2.0], &[3.0, -3.0]) - 6.0).abs() < 1e-12
        );
        assert_eq!(signal_magnitude_area(&[], &[], &[]), 0.0);
    }

    #[test]
    fn skew_and_kurtosis_of_symmetric_signal() {
        let sym = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&sym).abs() < 1e-12);
        // Uniform-ish distribution has negative excess kurtosis.
        assert!(kurtosis(&sym) < 0.0);
        // Right-skewed data has positive skewness.
        assert!(skewness(&[0.0, 0.0, 0.0, 0.0, 10.0]) > 0.0);
    }

    #[test]
    fn degenerate_moments_are_zero() {
        assert_eq!(skewness(&[3.0; 5]), 0.0);
        assert_eq!(kurtosis(&[]), 0.0);
    }
}
