//! Deterministic random sampling for the sensing simulator.
//!
//! Every stochastic component of the workspace draws through
//! [`GaussianSampler`], a self-contained xoshiro256++ generator with
//! SplitMix64 seeding and a Box–Muller normal transform. Keeping the
//! generator in-crate (rather than using `rand`'s `StdRng`, which documents
//! itself as non-portable) guarantees that a single `u64` seed reproduces an
//! entire synthetic dataset bit-for-bit on any platform.

use crate::Vec3;

/// xoshiro256++ core state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// SplitMix64 expansion of a 64-bit seed into the full state.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A seeded source of Gaussian, uniform, and categorical variates.
#[derive(Debug, Clone)]
pub struct GaussianSampler {
    rng: Xoshiro256,
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Creates a sampler from a seed; equal seeds produce equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            rng: Xoshiro256::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Derives an independent child sampler; children with distinct tags are
    /// decorrelated from each other and from the parent's future output.
    pub fn fork(&mut self, tag: u64) -> GaussianSampler {
        let base = self.rng.next_u64();
        GaussianSampler::seed_from_u64(base ^ tag.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// A standard normal variate (mean 0, variance 1) via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        let u1 = loop {
            let u = self.uniform();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0_f64 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `std_dev < 0`.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be nonnegative");
        mean + std_dev * self.standard_normal()
    }

    /// An isotropic 3-D Gaussian sample.
    pub fn normal_vec3(&mut self, mean: Vec3, std_dev: f64) -> Vec3 {
        Vec3::new(
            self.normal(mean.x, std_dev),
            self.normal(mean.y, std_dev),
            self.normal(mean.z, std_dev),
        )
    }

    /// A uniform variate in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform variate in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire-style rejection-free bounded draw (slight modulo bias is
        // negligible for the simulator's small n).
        (self.rng.next_u64() % n as u64) as usize
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Chooses an index according to unnormalized nonnegative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to zero or less.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be nonempty with positive sum"
        );
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = GaussianSampler::seed_from_u64(7);
        let mut b = GaussianSampler::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussianSampler::seed_from_u64(1);
        let mut b = GaussianSampler::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.standard_normal() == b.standard_normal())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut parent = GaussianSampler::seed_from_u64(3);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn moments_are_about_right() {
        let mut s = GaussianSampler::seed_from_u64(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| s.normal(3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "variance {var}");
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut s = GaussianSampler::seed_from_u64(13);
        for _ in 0..10_000 {
            let u = s.uniform();
            assert!((0.0..1.0).contains(&u));
        }
        let x = s.uniform_in(-2.0, 5.0);
        assert!((-2.0..5.0).contains(&x));
    }

    #[test]
    fn chance_frequencies() {
        let mut s = GaussianSampler::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| s.chance(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!(0..100).any(|_| s.chance(0.0)));
        assert!((0..100).all(|_| s.chance(1.0)));
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut s = GaussianSampler::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[s.weighted_choice(&[1.0, 2.0, 7.0])] += 1;
        }
        let f2 = counts[2] as f64 / 30_000.0;
        assert!((f2 - 0.7).abs() < 0.02, "heavy weight frequency {f2}");
        assert!(counts[0] < counts[1] && counts[1] < counts[2]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut s = GaussianSampler::seed_from_u64(17);
        let mut v: Vec<u32> = (0..100).collect();
        s.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn below_is_in_range() {
        let mut s = GaussianSampler::seed_from_u64(11);
        for _ in 0..1000 {
            assert!(s.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_std_dev_rejected() {
        GaussianSampler::seed_from_u64(0).normal(0.0, -1.0);
    }
}
