//! Goertzel algorithm: single-bin DFT power estimation.
//!
//! The paper's 32 frame features include "Goertzel coefficients of 1–5 Hz" —
//! the spectral energy of the acceleration trajectory at each integer
//! frequency from 1 to 5 Hz, which separates periodic motions (walking,
//! cycling, chewing) from static postures.

/// Power of the signal at `target_hz`, computed by the Goertzel recurrence.
///
/// Returns `0.0` for an empty signal. `sample_rate_hz` must be positive and
/// `target_hz` must be below the Nyquist rate.
///
/// # Panics
/// Panics if `sample_rate_hz <= 0` or `target_hz < 0` or
/// `target_hz > sample_rate_hz / 2`.
///
/// # Examples
/// ```
/// use cace_signal::goertzel_power;
/// let fs = 50.0;
/// let tone: Vec<f64> = (0..150)
///     .map(|n| (2.0 * std::f64::consts::PI * 3.0 * n as f64 / fs).sin())
///     .collect();
/// assert!(goertzel_power(&tone, 3.0, fs) > goertzel_power(&tone, 1.0, fs));
/// ```
pub fn goertzel_power(signal: &[f64], target_hz: f64, sample_rate_hz: f64) -> f64 {
    assert!(sample_rate_hz > 0.0, "sample rate must be positive");
    assert!(
        (0.0..=sample_rate_hz / 2.0).contains(&target_hz),
        "target frequency {target_hz} outside [0, Nyquist]"
    );
    if signal.is_empty() {
        return 0.0;
    }
    let n = signal.len() as f64;
    // Normalized frequency; the classic integer-bin k = round(N f / fs).
    let k = (n * target_hz / sample_rate_hz).round();
    let omega = 2.0 * std::f64::consts::PI * k / n;
    let coeff = 2.0 * omega.cos();
    let (mut s_prev, mut s_prev2) = (0.0_f64, 0.0_f64);
    for &x in signal {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let power = s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2;
    // Normalize by window length so frame sizes don't change the scale.
    power / (n * n)
}

/// Goertzel powers at 1–5 Hz, the paper's five spectral features per axis.
///
/// Runs all five recurrences in one pass over the signal (the naive form
/// reads the frame five times). Each bin's floating-point sequence is the
/// recurrence [`goertzel_power`] would run for it, so the result is
/// bit-identical to five independent calls.
///
/// # Panics
/// As [`goertzel_power`], for each bin in ascending order.
pub fn goertzel_band(signal: &[f64], sample_rate_hz: f64) -> [f64; 5] {
    for i in 0..5 {
        let target_hz = (i + 1) as f64;
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        assert!(
            (0.0..=sample_rate_hz / 2.0).contains(&target_hz),
            "target frequency {target_hz} outside [0, Nyquist]"
        );
    }
    if signal.is_empty() {
        return [0.0; 5];
    }
    let n = signal.len() as f64;
    let mut coeff = [0.0_f64; 5];
    for (i, c) in coeff.iter_mut().enumerate() {
        let k = (n * (i + 1) as f64 / sample_rate_hz).round();
        let omega = 2.0 * std::f64::consts::PI * k / n;
        *c = 2.0 * omega.cos();
    }
    let mut s_prev = [0.0_f64; 5];
    let mut s_prev2 = [0.0_f64; 5];
    for &x in signal {
        for i in 0..5 {
            let s = x + coeff[i] * s_prev[i] - s_prev2[i];
            s_prev2[i] = s_prev[i];
            s_prev[i] = s;
        }
    }
    let mut out = [0.0; 5];
    for i in 0..5 {
        let power =
            s_prev[i] * s_prev[i] + s_prev2[i] * s_prev2[i] - coeff[i] * s_prev[i] * s_prev2[i];
        out[i] = power / (n * n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * freq * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn detects_the_right_bin() {
        let fs = 50.0;
        let sig = tone(2.0, fs, 200);
        let p2 = goertzel_power(&sig, 2.0, fs);
        for f in [1.0, 3.0, 4.0, 5.0] {
            let p = goertzel_power(&sig, f, fs);
            assert!(p2 > 10.0 * p, "2 Hz tone: bin {f} Hz has power {p} vs {p2}");
        }
    }

    #[test]
    fn empty_signal_is_zero() {
        assert_eq!(goertzel_power(&[], 2.0, 50.0), 0.0);
    }

    #[test]
    fn constant_signal_has_no_ac_power() {
        let sig = vec![5.0; 150];
        let p = goertzel_power(&sig, 3.0, 50.0);
        assert!(p < 1e-20, "DC should contribute nothing at 3 Hz, got {p}");
    }

    #[test]
    fn band_orders_match_frequencies() {
        let fs = 50.0;
        let sig = tone(4.0, fs, 300);
        let band = goertzel_band(&sig, fs);
        let best = band
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best + 1, 4, "strongest bin should be 4 Hz: {band:?}");
    }

    #[test]
    fn power_scales_with_amplitude() {
        let fs = 50.0;
        let s1 = tone(3.0, fs, 150);
        let s2: Vec<f64> = s1.iter().map(|x| 2.0 * x).collect();
        let p1 = goertzel_power(&s1, 3.0, fs);
        let p2 = goertzel_power(&s2, 3.0, fs);
        assert!(
            (p2 / p1 - 4.0).abs() < 1e-6,
            "doubling amplitude quadruples power"
        );
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn rejects_above_nyquist() {
        goertzel_power(&[1.0, 2.0], 30.0, 50.0);
    }

    #[test]
    fn fused_band_is_bit_identical_to_per_bin_calls() {
        let fs = 50.0;
        for (freq, len) in [(1.0, 75), (2.7, 150), (4.0, 300)] {
            let sig = tone(freq, fs, len);
            let band = goertzel_band(&sig, fs);
            for (i, &p) in band.iter().enumerate() {
                let solo = goertzel_power(&sig, (i + 1) as f64, fs);
                assert_eq!(
                    p.to_bits(),
                    solo.to_bits(),
                    "bin {} of {freq} Hz tone",
                    i + 1
                );
            }
        }
        assert_eq!(goertzel_band(&[], fs), [0.0; 5]);
    }
}
