//! Acceleration-trajectory generation from 9-axis IMU streams.
//!
//! §VII-D of the paper: orientation is tracked as a quaternion from 9-axis
//! fusion; the raw accelerometer stream is high-pass filtered, rotated into
//! a stable reference frame, and — for the pocket smartphone — expressed
//! *relative to the neck-mounted SensorTag frame* via Eqn 16
//! (`w = q_t · w₀ · q_t⁻¹`, `w₀ = ĵ`, unit neck-to-pocket length).

use crate::filter::HighPassFilter3;
use crate::{Quaternion, Vec3};

/// One 9-axis IMU sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ImuSample {
    /// Specific force from the accelerometer (m/s², body frame, incl. gravity).
    pub accel: Vec3,
    /// Angular rate from the gyroscope (rad/s, body frame).
    pub gyro: Vec3,
    /// Magnetic field direction (unit-less, body frame).
    pub mag: Vec3,
}

/// A computed trajectory point: orientation plus filtered world-frame
/// acceleration (and, when a reference device is configured, the relative
/// position of this device in the reference frame).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Device orientation at this sample.
    pub orientation: Quaternion,
    /// Gravity-removed acceleration rotated into the world frame.
    pub accel_world: Vec3,
    /// Position of the device relative to the reference frame (Eqn 16);
    /// equals `orientation.rotate(w0)`.
    pub relative_position: Vec3,
}

/// Streaming trajectory builder implementing the paper's fusion pipeline:
/// gyro integration + complementary accelerometer/magnetometer correction,
/// high-pass gravity removal, and Eqn-16 relative positioning.
#[derive(Debug, Clone)]
pub struct TrajectoryBuilder {
    sample_rate_hz: f64,
    /// Complementary-filter blend weight toward the accel/mag attitude.
    correction_gain: f64,
    orientation: Quaternion,
    high_pass: HighPassFilter3,
    /// `w₀`: the mount offset rotated by the orientation (Eqn 16).
    mount_offset: Vec3,
}

impl TrajectoryBuilder {
    /// Creates a builder for a device sampled at `sample_rate_hz`.
    ///
    /// `mount_offset` is `w₀` of Eqn 16 — for the pocket smartphone relative
    /// to the neck tag the paper uses the unit vector `ĵ`.
    ///
    /// # Panics
    /// Panics if `sample_rate_hz <= 0`.
    pub fn new(sample_rate_hz: f64, mount_offset: Vec3) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        Self {
            sample_rate_hz,
            correction_gain: 0.02,
            orientation: Quaternion::IDENTITY,
            high_pass: HighPassFilter3::new(0.3, sample_rate_hz),
            mount_offset,
        }
    }

    /// The paper's smartphone-in-pocket configuration: 50 Hz, `w₀ = ĵ`.
    pub fn pocket_phone() -> Self {
        Self::new(50.0, Vec3::Y)
    }

    /// The neck-tag configuration (reference device, zero offset).
    pub fn neck_tag() -> Self {
        Self::new(50.0, Vec3::ZERO)
    }

    /// Sets the complementary-filter gain (0 = gyro only, 1 = accel only).
    pub fn with_correction_gain(mut self, gain: f64) -> Self {
        self.correction_gain = gain.clamp(0.0, 1.0);
        self
    }

    /// Current orientation estimate.
    pub fn orientation(&self) -> Quaternion {
        self.orientation
    }

    /// Processes one IMU sample and returns the trajectory point.
    pub fn push(&mut self, sample: ImuSample) -> TrajectoryPoint {
        let dt = 1.0 / self.sample_rate_hz;
        // 1. Gyro prediction.
        self.orientation = self.orientation.integrate_gyro(sample.gyro, dt);
        // 2. Accelerometer tilt correction: when near free-fall magnitude of
        //    gravity, nudge the estimated "down" toward the measured one.
        if let Some(measured_down) = (-sample.accel).normalized() {
            let est_down = self.orientation.conjugate().rotate(-Vec3::Z);
            let axis = est_down.cross(measured_down);
            let angle = axis.norm().asin().min(0.5);
            if angle > 1e-9 {
                let correction = Quaternion::from_axis_angle(axis, -angle * self.correction_gain);
                self.orientation = (self.orientation * correction).normalized();
            }
        }
        // 3. World-frame, gravity-removed acceleration.
        let accel_world_raw = self.orientation.rotate(sample.accel) - Vec3::new(0.0, 0.0, 9.81);
        let accel_world = self.high_pass.apply(accel_world_raw);
        // 4. Eqn 16 relative position.
        let relative_position = self.orientation.rotate(self.mount_offset);
        TrajectoryPoint {
            orientation: self.orientation,
            accel_world,
            relative_position,
        }
    }

    /// Processes a whole stream.
    pub fn process(&mut self, samples: &[ImuSample]) -> Vec<TrajectoryPoint> {
        samples.iter().map(|&s| self.push(s)).collect()
    }
}

/// Absolute (magnitude) acceleration series of a trajectory, the scalar
/// stream the paper's 32 features are computed on.
pub fn absolute_acceleration(points: &[TrajectoryPoint]) -> Vec<f64> {
    points.iter().map(|p| p.accel_world.norm()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn still_sample() -> ImuSample {
        // Device flat: accelerometer measures +g on z (reaction to gravity).
        ImuSample {
            accel: Vec3::new(0.0, 0.0, 9.81),
            gyro: Vec3::ZERO,
            mag: Vec3::X,
        }
    }

    #[test]
    fn stationary_device_produces_near_zero_acceleration() {
        let mut tb = TrajectoryBuilder::neck_tag();
        let stream = vec![still_sample(); 500];
        let points = tb.process(&stream);
        let tail = &points[400..];
        for p in tail {
            assert!(
                p.accel_world.norm() < 0.05,
                "residual accel {}",
                p.accel_world
            );
        }
    }

    #[test]
    fn shake_produces_acceleration_energy() {
        let mut tb = TrajectoryBuilder::neck_tag();
        let fs = 50.0;
        let stream: Vec<ImuSample> = (0..500)
            .map(|n| {
                let t = n as f64 / fs;
                let shake = (2.0 * std::f64::consts::PI * 4.0 * t).sin() * 3.0;
                ImuSample {
                    accel: Vec3::new(shake, 0.0, 9.81),
                    gyro: Vec3::ZERO,
                    mag: Vec3::X,
                }
            })
            .collect();
        let points = tb.process(&stream);
        let abs = absolute_acceleration(&points[100..]);
        let mean_energy = abs.iter().sum::<f64>() / abs.len() as f64;
        assert!(
            mean_energy > 0.5,
            "shaking should register, got {mean_energy}"
        );
    }

    #[test]
    fn relative_position_has_unit_length_for_unit_offset() {
        let mut tb = TrajectoryBuilder::pocket_phone();
        let p = tb.push(still_sample());
        assert!((p.relative_position.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bending_forward_moves_the_pocket() {
        // Rotate the torso 90° about x over one second: the pocket offset ĵ
        // should rotate away from ĵ.
        let mut tb = TrajectoryBuilder::pocket_phone().with_correction_gain(0.0);
        let fs = 50.0;
        let omega = Vec3::new(std::f64::consts::FRAC_PI_2, 0.0, 0.0);
        let mut last = tb.push(ImuSample::default());
        for _ in 0..fs as usize {
            last = tb.push(ImuSample {
                accel: Vec3::ZERO,
                gyro: omega,
                mag: Vec3::X,
            });
        }
        assert!(
            last.relative_position.dot(Vec3::Y) < 0.2,
            "pocket should have rotated away from ĵ: {}",
            last.relative_position
        );
    }

    #[test]
    fn tilt_correction_rights_the_orientation() {
        // Start with a wrong orientation; feeding still samples should pull
        // the estimated gravity direction back toward the truth.
        let mut tb = TrajectoryBuilder::neck_tag().with_correction_gain(0.1);
        tb.orientation = Quaternion::from_axis_angle(Vec3::X, 0.5);
        for _ in 0..400 {
            tb.push(still_sample());
        }
        let est_down = tb.orientation().conjugate().rotate(-Vec3::Z);
        let err = (est_down - (-Vec3::Z)).norm();
        assert!(err < 0.15, "orientation should re-align, error {err}");
    }

    #[test]
    fn process_matches_push() {
        let stream = vec![still_sample(); 10];
        let mut a = TrajectoryBuilder::neck_tag();
        let mut b = TrajectoryBuilder::neck_tag();
        let via_process = a.process(&stream);
        let via_push: Vec<_> = stream.iter().map(|&s| b.push(s)).collect();
        assert_eq!(via_process, via_push);
    }
}
