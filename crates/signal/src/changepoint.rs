//! Change-point detection over frame feature streams.
//!
//! The paper uses "a change-point detection-based classification method
//! towards feature extraction" (§VII-E) for the gestural stream: candidate
//! segment boundaries are placed where the statistical profile of the signal
//! shifts, and classification votes are aggregated within segments. We
//! implement a two-sided CUSUM detector on mean shift plus a segmentation
//! helper.

/// A contiguous segment `[start, end)` of frames between change points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Segment {
    /// First frame index (inclusive).
    pub start: usize,
    /// One past the last frame index.
    pub end: usize,
}

impl Segment {
    /// Length of the segment.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Two-sided CUSUM mean-shift detector.
///
/// Maintains high/low cumulative sums against a reference mean re-estimated
/// after every detection; a change point fires when either sum exceeds the
/// threshold `h` (expressed in units of the drift-adjusted deviation).
#[derive(Debug, Clone)]
pub struct ChangePointDetector {
    /// Detection threshold (typical: 4–8 standard deviations).
    threshold: f64,
    /// Allowed slack before deviations accumulate.
    drift: f64,
    reference: Option<f64>,
    count: usize,
    sum_high: f64,
    sum_low: f64,
}

impl ChangePointDetector {
    /// Creates a detector with the given threshold and drift.
    ///
    /// # Panics
    /// Panics if `threshold <= 0` or `drift < 0`.
    pub fn new(threshold: f64, drift: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        assert!(drift >= 0.0, "drift must be nonnegative");
        Self {
            threshold,
            drift,
            reference: None,
            count: 0,
            sum_high: 0.0,
            sum_low: 0.0,
        }
    }

    /// Feeds one observation; returns `true` when a change point fires.
    ///
    /// After a detection the detector re-anchors on the new level.
    pub fn observe(&mut self, x: f64) -> bool {
        match self.reference {
            None => {
                self.reference = Some(x);
                self.count = 1;
                false
            }
            Some(reference) => {
                let dev = x - reference;
                self.sum_high = (self.sum_high + dev - self.drift).max(0.0);
                self.sum_low = (self.sum_low + (-dev) - self.drift).max(0.0);
                if self.sum_high > self.threshold || self.sum_low > self.threshold {
                    self.reset_to(x);
                    true
                } else {
                    // Track the reference with an exponentially weighted mean
                    // so slow drift is absorbed while abrupt shifts still
                    // accumulate in the CUSUM sums.
                    self.count += 1;
                    self.reference = Some(reference + 0.1 * (x - reference));
                    false
                }
            }
        }
    }

    fn reset_to(&mut self, level: f64) {
        self.reference = Some(level);
        self.count = 1;
        self.sum_high = 0.0;
        self.sum_low = 0.0;
    }

    /// Segments a whole feature stream, returning segment boundaries.
    ///
    /// Always returns at least one segment covering the whole stream when
    /// `stream` is nonempty.
    pub fn segment(&mut self, stream: &[f64]) -> Vec<Segment> {
        let mut segments = Vec::new();
        let mut start = 0usize;
        for (i, &x) in stream.iter().enumerate() {
            if self.observe(x) && i > start {
                segments.push(Segment { start, end: i });
                start = i;
            }
        }
        if start < stream.len() {
            segments.push(Segment {
                start,
                end: stream.len(),
            });
        }
        segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_change_in_constant_stream() {
        let mut d = ChangePointDetector::new(5.0, 0.1);
        let stream = vec![1.0; 100];
        let segs = d.segment(&stream);
        assert_eq!(segs, vec![Segment { start: 0, end: 100 }]);
    }

    #[test]
    fn detects_a_level_shift() {
        let mut d = ChangePointDetector::new(3.0, 0.1);
        let mut stream = vec![0.0; 50];
        stream.extend(vec![5.0; 50]);
        let segs = d.segment(&stream);
        assert!(segs.len() >= 2, "expected a split, got {segs:?}");
        // The first boundary should fall very near sample 50.
        let boundary = segs[0].end;
        assert!((49..=53).contains(&boundary), "boundary at {boundary}");
    }

    #[test]
    fn segments_cover_stream_without_gaps() {
        let mut d = ChangePointDetector::new(2.0, 0.05);
        let stream: Vec<f64> = (0..200)
            .map(|i| if (i / 40) % 2 == 0 { 0.0 } else { 3.0 })
            .collect();
        let segs = d.segment(&stream);
        assert_eq!(segs.first().unwrap().start, 0);
        assert_eq!(segs.last().unwrap().end, stream.len());
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must tile the stream");
        }
        assert!(segs.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn empty_stream_yields_no_segments() {
        let mut d = ChangePointDetector::new(2.0, 0.0);
        assert!(d.segment(&[]).is_empty());
    }

    #[test]
    fn drift_tolerance_suppresses_slow_ramps() {
        // A very slow ramp with generous drift allowance should not fire.
        let mut d = ChangePointDetector::new(5.0, 0.2);
        let stream: Vec<f64> = (0..100).map(|i| i as f64 * 0.01).collect();
        let segs = d.segment(&stream);
        assert_eq!(segs.len(), 1, "slow ramp should stay one segment: {segs:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_threshold() {
        ChangePointDetector::new(0.0, 0.1);
    }
}
