//! Quaternion algebra for 9-axis IMU orientation tracking.
//!
//! The paper (§VII-D) represents device orientation as unit quaternions
//! `q = q_s + q_x î + q_y ĵ + q_z k̂` computed from 9-axis IMU fusion, and
//! computes the smartphone's position relative to the neck-mounted SensorTag
//! frame as `w = q_t · w₀ · q_t⁻¹` (Eqn 16) with `w₀ = ĵ` (unit length from
//! neck to pocket).

use crate::Vec3;
use std::fmt;
use std::ops::Mul;

/// A quaternion `s + x·î + y·ĵ + z·k̂`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quaternion {
    /// Scalar part `q_s`.
    pub s: f64,
    /// Imaginary `î` coefficient.
    pub x: f64,
    /// Imaginary `ĵ` coefficient.
    pub y: f64,
    /// Imaginary `k̂` coefficient.
    pub z: f64,
}

impl Quaternion {
    /// The identity rotation.
    pub const IDENTITY: Quaternion = Quaternion {
        s: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from scalar and vector parts.
    pub const fn new(s: f64, x: f64, y: f64, z: f64) -> Self {
        Self { s, x, y, z }
    }

    /// A pure quaternion `0 + v`.
    pub const fn pure(v: Vec3) -> Self {
        Self {
            s: 0.0,
            x: v.x,
            y: v.y,
            z: v.z,
        }
    }

    /// Rotation of `angle` radians about the given axis.
    ///
    /// The axis need not be normalized; a zero axis yields the identity.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Self {
        match axis.normalized() {
            None => Self::IDENTITY,
            Some(u) => {
                let (sin, cos) = (angle / 2.0).sin_cos();
                Self {
                    s: cos,
                    x: u.x * sin,
                    y: u.y * sin,
                    z: u.z * sin,
                }
            }
        }
    }

    /// Intrinsic Z-Y-X Euler construction (yaw, pitch, roll in radians).
    pub fn from_euler(yaw: f64, pitch: f64, roll: f64) -> Self {
        let qz = Self::from_axis_angle(Vec3::Z, yaw);
        let qy = Self::from_axis_angle(Vec3::Y, pitch);
        let qx = Self::from_axis_angle(Vec3::X, roll);
        qz * qy * qx
    }

    /// Vector (imaginary) part.
    pub const fn vector(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Quaternion magnitude `|q|`.
    pub fn magnitude(self) -> f64 {
        (self.s * self.s + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Whether `|q| = 1` within `tol`.
    pub fn is_unit(self, tol: f64) -> bool {
        (self.magnitude() - 1.0).abs() <= tol
    }

    /// Conjugate `q* = s − x î − y ĵ − z k̂`.
    pub const fn conjugate(self) -> Self {
        Self {
            s: self.s,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Multiplicative inverse; for unit quaternions this equals the
    /// conjugate. Returns `None` for the zero quaternion.
    pub fn inverse(self) -> Option<Self> {
        let m2 = self.s * self.s + self.x * self.x + self.y * self.y + self.z * self.z;
        if m2 == 0.0 {
            return None;
        }
        let c = self.conjugate();
        Some(Self {
            s: c.s / m2,
            x: c.x / m2,
            y: c.y / m2,
            z: c.z / m2,
        })
    }

    /// Rescales to unit magnitude; the zero quaternion becomes the identity.
    pub fn normalized(self) -> Self {
        let m = self.magnitude();
        if m == 0.0 {
            Self::IDENTITY
        } else {
            Self {
                s: self.s / m,
                x: self.x / m,
                y: self.y / m,
                z: self.z / m,
            }
        }
    }

    /// Rotates a vector: `q · (0 + v) · q⁻¹` (paper Eqn 16 with `w₀ = v`).
    pub fn rotate(self, v: Vec3) -> Vec3 {
        let q = self.normalized();
        let inv = q.conjugate(); // unit quaternion inverse
        (q * Quaternion::pure(v) * inv).vector()
    }

    /// The 3×3 rotation-matrix form (row-major) of the unit quaternion.
    pub fn to_rotation_matrix(self) -> [[f64; 3]; 3] {
        let q = self.normalized();
        let (s, x, y, z) = (q.s, q.x, q.y, q.z);
        [
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - s * z),
                2.0 * (x * z + s * y),
            ],
            [
                2.0 * (x * y + s * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - s * x),
            ],
            [
                2.0 * (x * z - s * y),
                2.0 * (y * z + s * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        ]
    }

    /// Incremental orientation update from a gyroscope reading.
    ///
    /// Integrates angular rate `omega` (rad/s, body frame) over `dt` seconds:
    /// `q ← normalize(q + ½·q·(0, ω)·dt)`. This is the prediction step of the
    /// complementary/Madgwick-style fusion the sensing substrate uses.
    pub fn integrate_gyro(self, omega: Vec3, dt: f64) -> Self {
        let dq = self * Quaternion::pure(omega);
        let q = Quaternion::new(
            self.s + 0.5 * dq.s * dt,
            self.x + 0.5 * dq.x * dt,
            self.y + 0.5 * dq.y * dt,
            self.z + 0.5 * dq.z * dt,
        );
        q.normalized()
    }

    /// Spherical linear interpolation between unit quaternions.
    pub fn slerp(self, other: Quaternion, t: f64) -> Quaternion {
        let a = self.normalized();
        let mut b = other.normalized();
        let mut dot = a.s * b.s + a.x * b.x + a.y * b.y + a.z * b.z;
        // Take the short arc.
        if dot < 0.0 {
            b = Quaternion::new(-b.s, -b.x, -b.y, -b.z);
            dot = -dot;
        }
        if dot > 0.9995 {
            // Nearly parallel: linear interpolation is numerically safer.
            return Quaternion::new(
                a.s + t * (b.s - a.s),
                a.x + t * (b.x - a.x),
                a.y + t * (b.y - a.y),
                a.z + t * (b.z - a.z),
            )
            .normalized();
        }
        let theta = dot.clamp(-1.0, 1.0).acos();
        let (sa, sb) = (((1.0 - t) * theta).sin(), (t * theta).sin());
        let denom = theta.sin();
        Quaternion::new(
            (a.s * sa + b.s * sb) / denom,
            (a.x * sa + b.x * sb) / denom,
            (a.y * sa + b.y * sb) / denom,
            (a.z * sa + b.z * sb) / denom,
        )
        .normalized()
    }
}

impl Default for Quaternion {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mul for Quaternion {
    type Output = Quaternion;
    /// Hamilton product.
    fn mul(self, o: Quaternion) -> Quaternion {
        Quaternion {
            s: self.s * o.s - self.x * o.x - self.y * o.y - self.z * o.z,
            x: self.s * o.x + self.x * o.s + self.y * o.z - self.z * o.y,
            y: self.s * o.y - self.x * o.z + self.y * o.s + self.z * o.x,
            z: self.s * o.z + self.x * o.y - self.y * o.x + self.z * o.s,
        }
    }
}

impl fmt::Display for Quaternion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} + {:.4}i + {:.4}j + {:.4}k",
            self.s, self.x, self.y, self.z
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn assert_vec_close(a: Vec3, b: Vec3) {
        assert!((a - b).norm() < 1e-10, "{a} != {b}");
    }

    fn assert_vec_near(a: Vec3, b: Vec3, tol: f64) {
        assert!((a - b).norm() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn identity_rotation_is_noop() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_vec_close(Quaternion::IDENTITY.rotate(v), v);
    }

    #[test]
    fn quarter_turn_about_z() {
        let q = Quaternion::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert_vec_close(q.rotate(Vec3::X), Vec3::Y);
        assert_vec_close(q.rotate(Vec3::Y), -Vec3::X);
        assert_vec_close(q.rotate(Vec3::Z), Vec3::Z);
    }

    #[test]
    fn rotation_preserves_norm() {
        let q = Quaternion::from_euler(0.3, -1.1, 2.0);
        let v = Vec3::new(0.4, -2.2, 1.7);
        assert!((q.rotate(v).norm() - v.norm()).abs() < 1e-10);
    }

    #[test]
    fn composition_matches_sequential_rotation() {
        let q1 = Quaternion::from_axis_angle(Vec3::X, 0.7);
        let q2 = Quaternion::from_axis_angle(Vec3::Y, -0.4);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_vec_close((q2 * q1).rotate(v), q2.rotate(q1.rotate(v)));
    }

    #[test]
    fn inverse_undoes_rotation() {
        let q = Quaternion::from_euler(1.0, 0.5, -0.8);
        let v = Vec3::new(-1.0, 0.5, 2.0);
        let inv = q.inverse().expect("nonzero quaternion");
        assert_vec_close(inv.rotate(q.rotate(v)), v);
        assert_eq!(Quaternion::new(0.0, 0.0, 0.0, 0.0).inverse(), None);
    }

    #[test]
    fn unit_magnitude_from_axis_angle() {
        let q = Quaternion::from_axis_angle(Vec3::new(1.0, 2.0, 3.0), 2.1);
        assert!(q.is_unit(1e-12));
    }

    #[test]
    fn rotation_matrix_agrees_with_rotate() {
        let q = Quaternion::from_euler(0.2, 0.9, -1.3);
        let m = q.to_rotation_matrix();
        let v = Vec3::new(0.5, -1.0, 2.0);
        let mv = Vec3::new(
            m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z,
        );
        assert_vec_close(mv, q.rotate(v));
    }

    #[test]
    fn gyro_integration_approximates_axis_angle() {
        // Integrate a constant 90°/s turn about z for 1 s in small steps.
        let mut q = Quaternion::IDENTITY;
        let omega = Vec3::new(0.0, 0.0, FRAC_PI_2);
        let steps = 2000;
        for _ in 0..steps {
            q = q.integrate_gyro(omega, 1.0 / steps as f64);
        }
        let expected = Quaternion::from_axis_angle(Vec3::Z, FRAC_PI_2);
        // First-order integration: accuracy bounded by O(dt), not exact.
        assert_vec_near(q.rotate(Vec3::X), expected.rotate(Vec3::X), 1e-3);
    }

    #[test]
    fn slerp_endpoints_and_midpoint() {
        let a = Quaternion::IDENTITY;
        let b = Quaternion::from_axis_angle(Vec3::Z, PI / 2.0);
        assert_vec_close(a.slerp(b, 0.0).rotate(Vec3::X), Vec3::X);
        assert_vec_close(a.slerp(b, 1.0).rotate(Vec3::X), Vec3::Y);
        let mid = a.slerp(b, 0.5);
        let expected = Quaternion::from_axis_angle(Vec3::Z, PI / 4.0);
        assert_vec_close(mid.rotate(Vec3::X), expected.rotate(Vec3::X));
    }

    #[test]
    fn eqn16_neck_to_pocket() {
        // Paper Eqn 16: w = q · w0 · q^-1 with w0 = ĵ. With the body upright
        // (identity orientation) the pocket sits one unit along ĵ; pitching
        // the torso forward by 90° about x̂ maps ĵ onto k̂.
        let w0 = Vec3::Y;
        assert_vec_close(Quaternion::IDENTITY.rotate(w0), Vec3::Y);
        let bent = Quaternion::from_axis_angle(Vec3::X, FRAC_PI_2);
        assert_vec_close(bent.rotate(w0), Vec3::Z);
    }
}
