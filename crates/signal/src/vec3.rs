//! Three-component vectors for inertial data.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-D vector (acceleration, angular rate, magnetic field, or position).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm (avoids the square root).
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Unit vector in the same direction; `None` for the zero vector.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise absolute value.
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Components as an array `[x, y, z]`.
    pub const fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Whether all components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4}, {:.4})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        let a = Vec3::new(1.0, 2.0, 3.0);
        // Cross product is perpendicular to both inputs.
        let c = a.cross(Vec3::new(-2.0, 0.5, 4.0));
        assert!(c.dot(a).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0);
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm_sq(), 25.0);
        let u = Vec3::new(0.0, 0.0, 9.81).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(), None);
    }

    #[test]
    fn conversions() {
        let v: Vec3 = [1.0, 2.0, 3.0].into();
        assert_eq!(v.to_array(), [1.0, 2.0, 3.0]);
        assert!(v.is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
    }
}
