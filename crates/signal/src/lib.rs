//! # cace-signal
//!
//! Signal-processing substrate for the CACE reproduction.
//!
//! The paper's micro-activity recognizers operate on 9-axis inertial data:
//! quaternion-based orientation tracking, high-band-pass filtering,
//! acceleration-trajectory generation (paper Eqn 16), 1.5 s framing windows
//! with 50 % overlap, 32 statistical features per frame (including Goertzel
//! coefficients at 1–5 Hz), and change-point-detection-based segmentation.
//! This crate implements all of that from scratch, plus the deterministic
//! Gaussian sampling used by the sensing simulator.
//!
//! ```
//! use cace_signal::{Quaternion, Vec3};
//!
//! // Rotating the y-axis 90° about z maps it onto -x.
//! let q = Quaternion::from_axis_angle(Vec3::new(0.0, 0.0, 1.0), std::f64::consts::FRAC_PI_2);
//! let v = q.rotate(Vec3::new(0.0, 1.0, 0.0));
//! assert!((v.x - (-1.0)).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod changepoint;
pub mod filter;
pub mod goertzel;
pub mod quaternion;
pub mod rng;
pub mod stats;
pub mod trajectory;
pub mod vec3;
pub mod window;

pub use changepoint::{ChangePointDetector, Segment};
pub use filter::{HighPassFilter, LowPassFilter, MovingAverage};
pub use goertzel::goertzel_power;
pub use quaternion::Quaternion;
pub use rng::GaussianSampler;
pub use stats::Summary;
pub use trajectory::TrajectoryBuilder;
pub use vec3::Vec3;
pub use window::FrameWindows;
