//! Binary high-sensitivity object sensors.
//!
//! The paper attaches eight wireless sensor tags to "concerned objects"; a
//! tag fires when its object is touched or vibrated, indicating possession
//! "by one or more inhabitants" (again unattributed). Sensitivity is tuned
//! to 55 %.

use cace_model::{MacroActivity, SubLocation};
use cace_signal::GaussianSampler;

use crate::NoiseConfig;

use serde::{Deserialize, Serialize};

/// The eight instrumented objects of the PogoPlug deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// The exercise bike frame.
    ExerciseBike,
    /// Closet 1 door.
    ClosetDoor1,
    /// Closet 2 door.
    ClosetDoor2,
    /// Stove knob / pan area.
    Stove,
    /// Refrigerator door.
    Fridge,
    /// TV remote control.
    TvRemote,
    /// Dining ware (plates/cutlery drawer).
    DiningWare,
    /// Reading-table bookshelf.
    BookShelf,
}

impl ObjectKind {
    /// Number of object sensors.
    pub const COUNT: usize = 8;

    /// Every object, in index order.
    pub const ALL: [ObjectKind; Self::COUNT] = [
        ObjectKind::ExerciseBike,
        ObjectKind::ClosetDoor1,
        ObjectKind::ClosetDoor2,
        ObjectKind::Stove,
        ObjectKind::Fridge,
        ObjectKind::TvRemote,
        ObjectKind::DiningWare,
        ObjectKind::BookShelf,
    ];

    /// Dense index in `0..Self::COUNT`.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`index`](Self::index).
    pub fn from_index(index: usize) -> Option<Self> {
        Self::ALL.get(index).copied()
    }

    /// Where the object lives.
    pub const fn location(self) -> SubLocation {
        match self {
            ObjectKind::ExerciseBike => SubLocation::ExerciseBike,
            ObjectKind::ClosetDoor1 => SubLocation::Closet1,
            ObjectKind::ClosetDoor2 => SubLocation::Closet2,
            ObjectKind::Stove => SubLocation::Kitchen,
            ObjectKind::Fridge => SubLocation::Kitchen,
            ObjectKind::TvRemote => SubLocation::Couch1,
            ObjectKind::DiningWare => SubLocation::DiningTable,
            ObjectKind::BookShelf => SubLocation::ReadingTable,
        }
    }

    /// Objects a macro activity plausibly touches (drives the behavioral
    /// simulator's ground truth).
    pub fn used_by(activity: MacroActivity) -> &'static [ObjectKind] {
        use MacroActivity as A;
        use ObjectKind::*;
        match activity {
            A::Exercising => &[ExerciseBike],
            A::PrepareClothes => &[ClosetDoor1, ClosetDoor2],
            A::Dining => &[DiningWare],
            A::WatchingTv => &[TvRemote],
            A::PrepareFood => &[Fridge, DiningWare],
            A::Studying => &[BookShelf],
            A::Sleeping => &[],
            A::Bathrooming => &[],
            A::Cooking => &[Stove, Fridge],
            A::PastTimes => &[],
            A::Random => &[],
        }
    }
}

/// Simulates one reading of the full object-sensor bank.
///
/// `in_use` lists the objects currently being touched by any resident. A
/// touched sensor fires with probability `object_sensitivity`; an untouched
/// one fires with the false-positive rate.
pub fn read_bank(
    in_use: &[ObjectKind],
    noise: &NoiseConfig,
    rng: &mut GaussianSampler,
) -> [bool; ObjectKind::COUNT] {
    let mut out = [false; ObjectKind::COUNT];
    for kind in ObjectKind::ALL {
        let touched = in_use.contains(&kind);
        out[kind.index()] = if touched {
            rng.chance(noise.object_sensitivity)
        } else {
            rng.chance(noise.object_false_positive)
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_objects_with_roundtrip_indices() {
        assert_eq!(ObjectKind::ALL.len(), 8);
        for o in ObjectKind::ALL {
            assert_eq!(ObjectKind::from_index(o.index()), Some(o));
        }
        assert_eq!(ObjectKind::from_index(8), None);
    }

    #[test]
    fn objects_live_in_sensible_places() {
        assert_eq!(ObjectKind::Stove.location(), SubLocation::Kitchen);
        assert_eq!(
            ObjectKind::TvRemote.location().room(),
            cace_model::Room::LivingRoom
        );
    }

    #[test]
    fn cooking_uses_the_stove() {
        let objs = ObjectKind::used_by(MacroActivity::Cooking);
        assert!(objs.contains(&ObjectKind::Stove));
        assert!(ObjectKind::used_by(MacroActivity::Sleeping).is_empty());
    }

    #[test]
    fn sensitivity_controls_hit_rate() {
        let noise = NoiseConfig::default(); // 55 % sensitivity
        let mut rng = GaussianSampler::seed_from_u64(1);
        let trials = 10_000;
        let hits = (0..trials)
            .filter(|_| {
                read_bank(&[ObjectKind::Stove], &noise, &mut rng)[ObjectKind::Stove.index()]
            })
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.55).abs() < 0.02, "hit rate {rate}");
    }

    #[test]
    fn untouched_objects_rarely_fire() {
        let noise = NoiseConfig::default();
        let mut rng = GaussianSampler::seed_from_u64(2);
        let trials = 10_000;
        let false_hits = (0..trials)
            .filter(|_| read_bank(&[], &noise, &mut rng)[ObjectKind::Fridge.index()])
            .count();
        let rate = false_hits as f64 / trials as f64;
        assert!(rate < 0.03, "false-positive rate {rate}");
    }

    #[test]
    fn noiseless_bank_is_exact() {
        let noise = NoiseConfig::noiseless();
        let mut rng = GaussianSampler::seed_from_u64(3);
        let bank = read_bank(&[ObjectKind::BookShelf], &noise, &mut rng);
        for kind in ObjectKind::ALL {
            assert_eq!(bank[kind.index()], kind == ObjectKind::BookShelf);
        }
    }
}
