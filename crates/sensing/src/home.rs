//! The assembled smart home: all sensors driven by ground-truth context.
//!
//! [`SmartHome::sense_tick`] is the simulator's "physics step": given the
//! true micro state of each resident for one 1.5 s tick, it produces exactly
//! the observations the PogoPlug testbed would emit — PIR bank, object-sensor
//! bank, per-resident iBeacon localization, and per-resident IMU frames.

use cace_model::{MicroState, Room, UserId};
use cace_signal::trajectory::ImuSample;
use cace_signal::GaussianSampler;

use crate::beacon::{BeaconEstimate, BeaconGrid};
use crate::imu::ImuSynthesizer;
use crate::object::{self, ObjectKind};
use crate::pir;
use crate::{NoiseConfig, SAMPLES_PER_TICK};

/// Ground truth for one resident over one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserTickTruth {
    /// True micro state (posture, gesture, sub-location).
    pub micro: MicroState,
    /// Object the resident is touching this tick, if any.
    pub object: Option<ObjectKind>,
    /// Whether the resident is inside the home (occupancy detection).
    pub present: bool,
}

impl UserTickTruth {
    /// A present resident with no object interaction.
    pub const fn of(micro: MicroState) -> Self {
        Self {
            micro,
            object: None,
            present: true,
        }
    }
}

/// Ground truth for the whole household over one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruthTick {
    /// Per-resident truth, indexed by chain.
    pub users: [UserTickTruth; 2],
}

/// Ambient (unattributed) observations for one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct AmbientReading {
    /// PIR firing per room (in `Room` index order).
    pub pir: [bool; Room::COUNT],
    /// Object-sensor firing (in `ObjectKind` index order).
    pub objects: [bool; ObjectKind::COUNT],
}

impl AmbientReading {
    /// Rooms whose PIR fired this tick.
    pub fn occupied_rooms(&self) -> impl Iterator<Item = Room> + '_ {
        Room::ALL.into_iter().filter(|r| self.pir[r.index()])
    }

    /// Objects whose sensor fired this tick.
    pub fn fired_objects(&self) -> impl Iterator<Item = ObjectKind> + '_ {
        ObjectKind::ALL
            .into_iter()
            .filter(|o| self.objects[o.index()])
    }
}

/// Per-resident wearable observations for one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct WearableReading {
    /// Smartphone IMU frame; `None` when the frame was dropped.
    pub phone: Option<Vec<ImuSample>>,
    /// Neck-tag IMU frame; `None` when the frame was dropped.
    pub tag: Option<Vec<ImuSample>>,
    /// iBeacon localization of the smartphone.
    pub beacon: BeaconEstimate,
}

/// All observations for one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorTick {
    /// Shared ambient channel.
    pub ambient: AmbientReading,
    /// One wearable channel per resident (chain order).
    pub wearables: [WearableReading; 2],
}

/// The simulated smart home.
#[derive(Debug, Clone)]
pub struct SmartHome {
    synth: ImuSynthesizer,
    beacons: BeaconGrid,
    noise: NoiseConfig,
    rng: GaussianSampler,
    /// Smoothed resident positions (meters) for beacon simulation.
    positions: [(f64, f64); 2],
}

impl SmartHome {
    /// Creates a home with the given noise model and seed.
    ///
    /// # Panics
    /// Panics if `noise` fails validation.
    pub fn new(noise: NoiseConfig, seed: u64) -> Self {
        noise.validate().expect("invalid noise configuration");
        Self {
            synth: ImuSynthesizer::new(noise.clone()),
            beacons: BeaconGrid::paper_default(noise.clone()),
            rng: GaussianSampler::seed_from_u64(seed),
            positions: [(4.5, 3.5); 2],
            noise,
        }
    }

    /// The noise configuration in use.
    pub fn noise(&self) -> &NoiseConfig {
        &self.noise
    }

    /// Simulates every sensor for one tick of ground truth.
    pub fn sense_tick(&mut self, truth: &GroundTruthTick) -> SensorTick {
        // --- ambient: PIR ---
        let occupants: Vec<_> = truth
            .users
            .iter()
            .filter(|u| u.present)
            .map(|u| (u.micro.location, u.micro.postural))
            .collect();
        let pir = pir::read_bank(&occupants, &self.noise, &mut self.rng);

        // --- ambient: objects ---
        let in_use: Vec<ObjectKind> = truth
            .users
            .iter()
            .filter(|u| u.present)
            .filter_map(|u| u.object)
            .collect();
        let objects = object::read_bank(&in_use, &self.noise, &mut self.rng);

        // --- wearables ---
        let mut wearables = Vec::with_capacity(2);
        for (i, user) in truth.users.iter().enumerate() {
            // Residents drift toward the centroid of their true sub-region.
            let target = if user.present {
                user.micro.location.centroid()
            } else {
                (30.0, 30.0) // far outside the home bounds
            };
            let p = self.positions[i];
            let pull = 0.6;
            let jitter = self.noise.position_jitter;
            self.positions[i] = (
                p.0 + pull * (target.0 - p.0) + self.rng.normal(0.0, jitter),
                p.1 + pull * (target.1 - p.1) + self.rng.normal(0.0, jitter),
            );
            let beacon = self.beacons.sense(self.positions[i], &mut self.rng);

            let phone = if self.synth.frame_dropped(&mut self.rng) {
                None
            } else {
                Some(
                    self.synth
                        .phone_frame(user.micro.postural, SAMPLES_PER_TICK, &mut self.rng),
                )
            };
            let tag = if self.synth.frame_dropped(&mut self.rng) {
                None
            } else {
                Some(self.synth.tag_frame(
                    user.micro.gestural,
                    user.micro.postural,
                    SAMPLES_PER_TICK,
                    &mut self.rng,
                ))
            };
            wearables.push(WearableReading { phone, tag, beacon });
        }
        let w1 = wearables.pop().expect("two wearables");
        let w0 = wearables.pop().expect("two wearables");

        SensorTick {
            ambient: AmbientReading { pir, objects },
            wearables: [w0, w1],
        }
    }

    /// The wearable channel index for a user.
    pub fn channel_of(user: UserId) -> usize {
        user.chain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cace_model::{Gestural, Postural, SubLocation};

    fn truth(l1: SubLocation, p1: Postural, l2: SubLocation, p2: Postural) -> GroundTruthTick {
        GroundTruthTick {
            users: [
                UserTickTruth::of(MicroState::new(p1, Gestural::Silent, l1)),
                UserTickTruth::of(MicroState::new(p2, Gestural::Talking, l2)),
            ],
        }
    }

    #[test]
    fn tick_has_all_channels() {
        let mut home = SmartHome::new(NoiseConfig::noiseless(), 1);
        let t = truth(
            SubLocation::Kitchen,
            Postural::Walking,
            SubLocation::Couch1,
            Postural::Sitting,
        );
        let tick = home.sense_tick(&t);
        assert!(tick.wearables[0].phone.as_ref().unwrap().len() == SAMPLES_PER_TICK);
        assert!(tick.wearables[1].tag.as_ref().unwrap().len() == SAMPLES_PER_TICK);
    }

    #[test]
    fn pir_follows_motion() {
        let mut home = SmartHome::new(NoiseConfig::noiseless(), 2);
        let t = truth(
            SubLocation::Kitchen,
            Postural::Walking,
            SubLocation::Couch1,
            Postural::Sitting,
        );
        let tick = home.sense_tick(&t);
        assert!(tick.ambient.pir[Room::Kitchen.index()]);
        assert!(
            !tick.ambient.pir[Room::LivingRoom.index()],
            "sitting does not trip PIR"
        );
        assert!(!tick.ambient.pir[Room::Bathroom.index()]);
    }

    #[test]
    fn object_sensing_reflects_use() {
        let mut home = SmartHome::new(NoiseConfig::noiseless(), 3);
        let mut t = truth(
            SubLocation::Kitchen,
            Postural::Standing,
            SubLocation::Couch1,
            Postural::Sitting,
        );
        t.users[0].object = Some(ObjectKind::Stove);
        let tick = home.sense_tick(&t);
        assert!(tick.ambient.objects[ObjectKind::Stove.index()]);
        assert!(!tick.ambient.objects[ObjectKind::TvRemote.index()]);
    }

    #[test]
    fn beacons_converge_to_true_subregion() {
        let mut home = SmartHome::new(NoiseConfig::noiseless(), 4);
        let t = truth(
            SubLocation::Kitchen,
            Postural::Standing,
            SubLocation::Bed,
            Postural::Lying,
        );
        // A few ticks for the position low-pass to settle.
        let mut tick = home.sense_tick(&t);
        for _ in 0..6 {
            tick = home.sense_tick(&t);
        }
        assert_eq!(tick.wearables[0].beacon.nearest, SubLocation::Kitchen);
        assert_eq!(tick.wearables[1].beacon.nearest, SubLocation::Bed);
        assert!(tick.wearables[0].beacon.in_home);
    }

    #[test]
    fn absent_user_leaves_home() {
        let mut home = SmartHome::new(NoiseConfig::noiseless(), 5);
        let mut t = truth(
            SubLocation::Kitchen,
            Postural::Walking,
            SubLocation::Porch,
            Postural::Standing,
        );
        t.users[1].present = false;
        let mut tick = home.sense_tick(&t);
        for _ in 0..8 {
            tick = home.sense_tick(&t);
        }
        assert!(
            !tick.wearables[1].beacon.in_home,
            "absent user should localize outside"
        );
        assert!(tick.wearables[0].beacon.in_home);
    }

    #[test]
    fn dropout_produces_missing_frames() {
        let mut cfg = NoiseConfig::noiseless();
        cfg.imu_dropout = 1.0;
        let mut home = SmartHome::new(cfg, 6);
        let t = truth(
            SubLocation::Kitchen,
            Postural::Walking,
            SubLocation::Couch1,
            Postural::Sitting,
        );
        let tick = home.sense_tick(&t);
        assert!(tick.wearables[0].phone.is_none());
        assert!(tick.wearables[0].tag.is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let t = truth(
            SubLocation::Kitchen,
            Postural::Walking,
            SubLocation::Couch1,
            Postural::Sitting,
        );
        let mut a = SmartHome::new(NoiseConfig::default(), 42);
        let mut b = SmartHome::new(NoiseConfig::default(), 42);
        assert_eq!(a.sense_tick(&t), b.sense_tick(&t));
    }

    #[test]
    fn ambient_iterators() {
        let mut home = SmartHome::new(NoiseConfig::noiseless(), 7);
        let mut t = truth(
            SubLocation::Kitchen,
            Postural::Walking,
            SubLocation::Couch1,
            Postural::Sitting,
        );
        t.users[0].object = Some(ObjectKind::Fridge);
        let tick = home.sense_tick(&t);
        let rooms: Vec<Room> = tick.ambient.occupied_rooms().collect();
        assert_eq!(rooms, vec![Room::Kitchen]);
        let objs: Vec<ObjectKind> = tick.ambient.fired_objects().collect();
        assert_eq!(objs, vec![ObjectKind::Fridge]);
    }
}
