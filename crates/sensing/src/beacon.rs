//! iBeacon ranging, trilateration, and sub-region localization.
//!
//! The paper deploys nine iBeacons; an Android app reports the distance
//! between each resident's smartphone and every beacon, and "trilateration
//! … detect\[s\] whether the carried smartphone is inside the smart home or
//! not (multiple occupancy detection)" plus sub-region-level location.
//!
//! We place nine beacons over the one-bedroom floor plan, synthesize noisy
//! range estimates from the resident's true position, and solve the
//! weighted least-squares trilateration with a few Gauss–Newton steps.

use cace_model::SubLocation;
use cace_signal::GaussianSampler;

use crate::NoiseConfig;

/// Beacon coordinates (meters) covering the floor plan of Fig 7.
pub const BEACON_POSITIONS: [(f64, f64); 9] = [
    (0.5, 0.5),
    (4.5, 0.5),
    (8.5, 0.5),
    (0.5, 3.5),
    (4.5, 3.5),
    (8.5, 3.5),
    (0.5, 7.0),
    (4.5, 7.0),
    (8.0, 6.5),
];

/// Axis-aligned bounds of the apartment (meters); positions outside are
/// treated as "not home".
pub const HOME_BOUNDS: (f64, f64, f64, f64) = (-0.5, 9.5, -0.5, 8.0);

/// Result of one localization attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeaconEstimate {
    /// Estimated smartphone position (meters).
    pub position: (f64, f64),
    /// Sub-region whose centroid is nearest to the estimate.
    pub nearest: SubLocation,
    /// Whether the estimate falls inside the home bounds (occupancy).
    pub in_home: bool,
    /// Root-mean-square range residual (meters) — a confidence proxy.
    pub residual: f64,
}

/// The beacon constellation plus its noise model.
#[derive(Debug, Clone)]
pub struct BeaconGrid {
    positions: Vec<(f64, f64)>,
    noise: NoiseConfig,
}

impl BeaconGrid {
    /// The paper's nine-beacon deployment.
    pub fn paper_default(noise: NoiseConfig) -> Self {
        Self {
            positions: BEACON_POSITIONS.to_vec(),
            noise,
        }
    }

    /// A custom constellation (≥ 3 beacons required for trilateration).
    ///
    /// # Panics
    /// Panics if fewer than three beacons are given.
    pub fn new(positions: Vec<(f64, f64)>, noise: NoiseConfig) -> Self {
        assert!(
            positions.len() >= 3,
            "trilateration needs at least 3 beacons"
        );
        Self { positions, noise }
    }

    /// Number of beacons.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the constellation is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Synthesizes the ranges a phone at `truth` would measure.
    pub fn measure(&self, truth: (f64, f64), rng: &mut GaussianSampler) -> Vec<f64> {
        self.positions
            .iter()
            .map(|&(bx, by)| {
                let d = ((truth.0 - bx).powi(2) + (truth.1 - by).powi(2)).sqrt();
                let factor = 1.0 + rng.normal(0.0, self.noise.beacon_range_noise);
                (d * factor.max(0.05)).max(0.05)
            })
            .collect()
    }

    /// Solves for position from measured ranges via Gauss–Newton weighted
    /// least squares, then snaps to the nearest sub-region centroid.
    ///
    /// # Panics
    /// Panics if `ranges.len()` differs from the number of beacons.
    pub fn localize(&self, ranges: &[f64]) -> BeaconEstimate {
        assert_eq!(
            ranges.len(),
            self.positions.len(),
            "one range per beacon required"
        );
        // Initialize at the range-weighted centroid of the beacons (closer
        // beacons get more weight).
        let mut x = 0.0;
        let mut y = 0.0;
        let mut wsum = 0.0;
        for (&(bx, by), &r) in self.positions.iter().zip(ranges) {
            let w = 1.0 / (r * r + 1e-6);
            x += w * bx;
            y += w * by;
            wsum += w;
        }
        x /= wsum;
        y /= wsum;

        // Gauss–Newton on f_i = |p - b_i| - r_i.
        for _ in 0..12 {
            let mut jtj = [[0.0f64; 2]; 2];
            let mut jtr = [0.0f64; 2];
            for (&(bx, by), &r) in self.positions.iter().zip(ranges) {
                let dx = x - bx;
                let dy = y - by;
                let dist = (dx * dx + dy * dy).sqrt().max(1e-6);
                let res = dist - r;
                let (jx, jy) = (dx / dist, dy / dist);
                jtj[0][0] += jx * jx;
                jtj[0][1] += jx * jy;
                jtj[1][0] += jx * jy;
                jtj[1][1] += jy * jy;
                jtr[0] += jx * res;
                jtr[1] += jy * res;
            }
            let det = jtj[0][0] * jtj[1][1] - jtj[0][1] * jtj[1][0];
            if det.abs() < 1e-12 {
                break;
            }
            let step_x = (jtj[1][1] * jtr[0] - jtj[0][1] * jtr[1]) / det;
            let step_y = (-jtj[1][0] * jtr[0] + jtj[0][0] * jtr[1]) / det;
            x -= step_x;
            y -= step_y;
            if step_x.abs() + step_y.abs() < 1e-9 {
                break;
            }
        }

        let residual = {
            let ss: f64 = self
                .positions
                .iter()
                .zip(ranges)
                .map(|(&(bx, by), &r)| {
                    let d = ((x - bx).powi(2) + (y - by).powi(2)).sqrt();
                    (d - r).powi(2)
                })
                .sum();
            (ss / ranges.len() as f64).sqrt()
        };

        let nearest = SubLocation::ALL
            .into_iter()
            .min_by(|a, b| {
                let da = dist2((x, y), a.centroid());
                let db = dist2((x, y), b.centroid());
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("nonempty vocabulary");

        let (x0, x1, y0, y1) = HOME_BOUNDS;
        let in_home = (x0..=x1).contains(&x) && (y0..=y1).contains(&y);

        BeaconEstimate {
            position: (x, y),
            nearest,
            in_home,
            residual,
        }
    }

    /// Convenience: measure at `truth` and localize in one call.
    pub fn sense(&self, truth: (f64, f64), rng: &mut GaussianSampler) -> BeaconEstimate {
        let ranges = self.measure(truth, rng);
        self.localize(&ranges)
    }
}

fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_localization_is_exact() {
        let grid = BeaconGrid::paper_default(NoiseConfig::noiseless());
        let mut rng = GaussianSampler::seed_from_u64(1);
        for loc in SubLocation::ALL {
            let est = grid.sense(loc.centroid(), &mut rng);
            assert!(
                dist2(est.position, loc.centroid()) < 0.01,
                "{loc}: {:?} vs {:?}",
                est.position,
                loc.centroid()
            );
            assert_eq!(est.nearest, loc, "snap failed for {loc}");
            assert!(est.in_home);
            assert!(est.residual < 1e-3);
        }
    }

    #[test]
    fn noisy_localization_mostly_snaps_right() {
        let grid = BeaconGrid::paper_default(NoiseConfig::default());
        let mut rng = GaussianSampler::seed_from_u64(2);
        let mut hits = 0;
        let trials = 300;
        for i in 0..trials {
            let loc = SubLocation::from_index(i % SubLocation::COUNT).unwrap();
            let est = grid.sense(loc.centroid(), &mut rng);
            if est.nearest == loc {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!(rate > 0.6, "snap accuracy too low: {rate}");
    }

    #[test]
    fn outside_position_is_not_home() {
        let grid = BeaconGrid::paper_default(NoiseConfig::noiseless());
        let mut rng = GaussianSampler::seed_from_u64(3);
        let est = grid.sense((25.0, 25.0), &mut rng);
        assert!(
            !est.in_home,
            "25m away should be outside: {:?}",
            est.position
        );
    }

    #[test]
    fn residual_grows_with_noise() {
        let clean = BeaconGrid::paper_default(NoiseConfig::noiseless());
        let mut noisy_cfg = NoiseConfig::noiseless();
        noisy_cfg.beacon_range_noise = 0.5;
        let noisy = BeaconGrid::paper_default(noisy_cfg);
        let mut rng = GaussianSampler::seed_from_u64(4);
        let truth = SubLocation::Kitchen.centroid();
        let r_clean = clean.sense(truth, &mut rng).residual;
        let mut worst = 0.0f64;
        for _ in 0..10 {
            worst = worst.max(noisy.sense(truth, &mut rng).residual);
        }
        assert!(
            worst > r_clean,
            "noise should raise residual: {worst} vs {r_clean}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_beacons_rejected() {
        BeaconGrid::new(vec![(0.0, 0.0), (1.0, 1.0)], NoiseConfig::noiseless());
    }

    #[test]
    #[should_panic(expected = "one range per beacon")]
    fn range_count_checked() {
        let grid = BeaconGrid::paper_default(NoiseConfig::noiseless());
        grid.localize(&[1.0, 2.0]);
    }
}
